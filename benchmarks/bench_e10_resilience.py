"""E10: safety under randomized hostile schedules + physical testbed."""

from conftest import run_and_record


def test_e10_resilience(benchmark):
    tables = run_and_record(benchmark, "E10")
    main = tables[0]
    assert all(v == 0 for v in main.column("agreement_violations"))
    assert all(v == 0 for v in main.column("validity_violations"))
