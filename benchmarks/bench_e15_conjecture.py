"""E15: Conjecture 1 exploration — overlapping vs disjoint universes."""

from conftest import run_and_record


def test_e15_conjecture_exploration(benchmark):
    (table,) = run_and_record(benchmark, "E15")
    assert all(table.column("overlap_dominates"))
    # The adversary's empirical reach grows with |I| in both universes.
    ks = table.column("k_overlapping")
    assert ks == sorted(ks)
