"""E13: time-varying completeness (the conclusion's open questions)."""

from conftest import run_and_record


def test_e13_eventual_completeness(benchmark):
    (table,) = run_and_record(benchmark, "E13")
    outcomes = [str(o) for o in table.column("outcome")]
    assert any("violation: agreement" in o for o in outcomes)
    assert any("solved within Theorem 2 bound" in o for o in outcomes)
    assert any("constant-round decision" in o for o in outcomes)
    assert not any("FAILED" in o for o in outcomes)
