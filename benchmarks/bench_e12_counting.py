"""E12: anonymous counting — k-wake-up solvable, leader-election not."""

from conftest import run_and_record


def test_e12_counting(benchmark):
    convergence, impossibility = run_and_record(benchmark, "E12")
    assert all(convergence.column("converged"))
    assert all(impossibility.column("counting_defeated"))
