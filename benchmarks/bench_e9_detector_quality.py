"""E9: substrate calibration — radio loss, detector classes, clock skew."""

from conftest import run_and_record


def test_e9a_radio_loss(benchmark):
    (table,) = run_and_record(benchmark, "E9a")
    by_b = dict(zip(table.column("broadcasters"),
                    table.column("loss_fraction")))
    assert by_b[1] < 0.05 and by_b[2] < by_b[3]


def test_e9b_carrier_sense_classes(benchmark):
    (table,) = run_and_record(benchmark, "E9b")
    for row in table.rows:
        assert row["zero"] > 0.99
        assert row["majority"] > 0.9


def test_e9c_clock_skew(benchmark):
    (table,) = run_and_record(benchmark, "E9c")
    assert all(table.column("aligned"))
