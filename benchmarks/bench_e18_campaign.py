#!/usr/bin/env python3
"""E18 campaign benchmark: resumable matrix sweeps through the
checkpointing :class:`~repro.experiments.campaign.CampaignRunner`.

Runs the (n x detector x loss_rate x seed) consensus matrix with every
finished cell committed to a sqlite ``campaign.db``, then reports cells
per second and how much of the grid this pass actually had to run — a
resumed campaign skips checkpointed cells entirely.  Usage::

    PYTHONPATH=src python benchmarks/bench_e18_campaign.py --quick \
        --db campaign.db --out BENCH_e18.json

CI's resume smoke exercises the durability story end to end::

    # pass 1: interrupted (timeout kill and/or a --max-cells budget)
    timeout 60 python benchmarks/bench_e18_campaign.py --quick \
        --db campaign.db --max-cells 6 || true
    # pass 2: resume to completion, dump the canonical report
    python benchmarks/bench_e18_campaign.py --quick --db campaign.db \
        --report-out resumed.json
    # clean single pass in a fresh store
    python benchmarks/bench_e18_campaign.py --quick --db clean.db \
        --report-out clean.json
    cmp resumed.json clean.json        # byte-identical or CI fails

The report deliberately excludes wall-clock noise, so the comparison is
exact; ``--quick`` shrinks the grid for CI.  ``--processes`` composes
with ``--timeout-per-cell`` (the deadline-aware pool), and
``--compare-timeout-paths N`` additionally publishes serial-timeout vs
pooled-timeout wall-clock (and report equality) in the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import tempfile
import time

from repro.experiments.campaign import CampaignRunner
from repro.experiments.harness import consensus_sweep_cell


def grid_axes(quick: bool) -> dict:
    """The benchmark's sweep axes (trial indexes replicate seeds)."""
    if quick:
        return dict(
            n=[3, 4], detector=["0-OAC"], loss_rate=[0.1, 0.3],
            trial=[0, 1, 2], values=[16], record_policy=["summary"],
        )
    return dict(
        n=[4, 8, 16], detector=["0-OAC", "maj-OAC"],
        loss_rate=[0.1, 0.3, 0.5], trial=list(range(5)), values=[64],
        record_policy=["summary"],
    )


def compare_timeout_paths(
    quick: bool, processes: int, cell_timeout: float, base_seed: int
) -> dict:
    """Wall-clock the serial-timeout path against the deadline pool.

    Runs the same grid twice in throwaway stores — once with
    ``processes=1`` (one worker process per cell, serially) and once
    with the deadline-aware pool at ``processes`` width — under the
    same generous per-cell budget, and also byte-compares the two
    reports: parallelism under deadlines must never change the merged
    outcomes, only the wall-clock.
    """
    axes = grid_axes(quick)
    tmp = tempfile.mkdtemp(prefix="repro-e18-timing-")
    timings: dict = {}
    reports = {}
    try:
        for label, procs in (("serial", 1), ("pooled", processes)):
            db = os.path.join(tmp, f"{label}.db")
            runner = CampaignRunner(
                consensus_sweep_cell,
                db_path=db,
                base_seed=base_seed,
                processes=procs,
                cell_timeout=cell_timeout,
                extra_params={"sqlite_db": db},
            )
            start = time.perf_counter()
            outcomes = runner.resume(**axes)
            timings[f"{label}_seconds"] = time.perf_counter() - start
            timings[f"{label}_cells"] = len(outcomes)
            reports[label] = runner.report(**axes)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    timings["processes"] = processes
    timings["cell_timeout"] = cell_timeout
    timings["speedup"] = (
        timings["serial_seconds"] / timings["pooled_seconds"]
        if timings["pooled_seconds"] > 0 else None
    )
    timings["reports_identical"] = reports["serial"] == reports["pooled"]
    return timings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid for CI smoke runs")
    parser.add_argument("--db", default="campaign.db",
                        help="sqlite checkpoint store (default campaign.db)")
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--processes", type=int, default=None,
                        help="workers (0/1 = serial)")
    parser.add_argument("--timeout-per-cell", type=float, default=None,
                        help="per-cell wall-clock budget in seconds")
    parser.add_argument("--max-cells", type=int, default=None,
                        help="run at most this many pending cells then "
                             "exit (deterministic interruption)")
    parser.add_argument("--compare-timeout-paths", type=int, default=None,
                        metavar="N",
                        help="also wall-clock the serial timeout path "
                             "against the deadline-aware pool at N "
                             "workers (same grid, throwaway stores) and "
                             "publish the comparison in the artifact")
    parser.add_argument("--compare-timeout", type=float, default=60.0,
                        help="per-cell budget for the comparison legs "
                             "(default 60s — generous, so the runs "
                             "measure dispatch, not timeouts)")
    parser.add_argument("--out", default=None,
                        help="write the bench JSON artifact here")
    parser.add_argument("--report-out", default=None,
                        help="write the campaign's canonical JSON report "
                             "here (byte-stable across interrupt/resume)")
    args = parser.parse_args()

    axes = grid_axes(args.quick)
    runner = CampaignRunner(
        consensus_sweep_cell,
        db_path=args.db,
        base_seed=args.base_seed,
        processes=args.processes,
        cell_timeout=args.timeout_per_cell,
        extra_params={"sqlite_db": args.db},
    )
    total = len(runner.cells(**axes))
    # Only done/timed_out cells are skipped on resume; failed cells are
    # retried, so they count toward the pending work this pass runs
    # (bounded by --max-cells).
    already = sum(
        1 for o in runner.outcomes(**axes)
        if o.status in ("done", "timed_out")
    )
    pending = total - already
    ran = pending if args.max_cells is None else min(pending, args.max_cells)

    start = time.perf_counter()
    outcomes = runner.resume(max_cells=args.max_cells, **axes)
    elapsed = time.perf_counter() - start
    statuses = {}
    for outcome in outcomes:
        statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
    print(f"grid: {total} cells | checkpointed before this pass: {already} "
          f"| ran now: {ran} | store now holds: {len(outcomes)}")
    print(f"statuses: {statuses}")
    print(f"elapsed: {elapsed:.2f}s "
          f"({ran / elapsed if elapsed > 0 else float('inf'):.1f} cells/s "
          "this pass)")

    comparison = None
    if args.compare_timeout_paths is not None:
        comparison = compare_timeout_paths(
            args.quick, args.compare_timeout_paths, args.compare_timeout,
            args.base_seed,
        )
        print(
            f"timeout paths: serial {comparison['serial_seconds']:.2f}s vs "
            f"pooled({comparison['processes']}) "
            f"{comparison['pooled_seconds']:.2f}s "
            f"-> {comparison['speedup']:.2f}x, reports identical: "
            f"{comparison['reports_identical']}"
        )

    if args.out:
        artifact = {
            "benchmark": "e18_campaign",
            "quick": args.quick,
            "python": platform.python_version(),
            "db": os.path.abspath(args.db),
            "grid_cells": total,
            "skipped_checkpointed": already,
            "ran_this_pass": ran,
            "statuses": statuses,
            "elapsed_seconds": elapsed,
            "cells_per_second": (ran / elapsed) if elapsed > 0 else None,
        }
        if comparison is not None:
            artifact["timeout_paths"] = comparison
        with open(args.out, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")

    if args.report_out:
        with open(args.report_out, "w") as fh:
            fh.write(runner.report(**axes))
            fh.write("\n")
        print(f"wrote {args.report_out}")

    incomplete = len(outcomes) < total
    if incomplete:
        print(f"campaign interrupted with {total - len(outcomes)} cells "
              "pending; rerun the same command to resume")
    return 3 if incomplete else 0


if __name__ == "__main__":
    raise SystemExit(main())
