#!/usr/bin/env python3
"""E18 campaign benchmark: resumable matrix sweeps through the
checkpointing :class:`~repro.experiments.campaign.CampaignRunner`.

Runs the (n x detector x loss_rate x seed) consensus matrix with every
finished cell committed to a sqlite ``campaign.db``, then reports cells
per second and how much of the grid this pass actually had to run — a
resumed campaign skips checkpointed cells entirely.  Usage::

    PYTHONPATH=src python benchmarks/bench_e18_campaign.py --quick \
        --db campaign.db --out BENCH_e18.json

CI's resume smoke exercises the durability story end to end::

    # pass 1: interrupted (timeout kill and/or a --max-cells budget)
    timeout 60 python benchmarks/bench_e18_campaign.py --quick \
        --db campaign.db --max-cells 6 || true
    # pass 2: resume to completion, dump the canonical report
    python benchmarks/bench_e18_campaign.py --quick --db campaign.db \
        --report-out resumed.json
    # clean in-process serial reference pass in a fresh store
    python benchmarks/bench_e18_campaign.py --quick --db clean.db \
        --in-process --report-out clean.json
    cmp resumed.json clean.json        # byte-identical or CI fails

The report deliberately excludes wall-clock noise, so the comparison is
exact; ``--quick`` shrinks the grid for CI.  Every configuration runs
the unified :class:`~repro.experiments.dispatch.CampaignDispatcher`
pool (``--in-process`` is the serial escape hatch), and the artifact
publishes ``worker_reuse`` — distinct worker pids vs cells dispatched —
so a regression to spawn-per-cell is visible in the JSON.
``--compare-timeout-paths N`` additionally wall-clocks the loop at
width 1 against width N under deadlines and publishes the comparison;
``--fault-overhead`` measures the Faultline injection hooks'
installed-but-idle cost (CI gates the ratio below 3%).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import tempfile
import time

from repro.experiments.campaign import CampaignRunner
from repro.experiments.harness import consensus_sweep_cell


def grid_axes(quick: bool) -> dict:
    """The benchmark's sweep axes (trial indexes replicate seeds)."""
    if quick:
        return dict(
            n=[3, 4], detector=["0-OAC"], loss_rate=[0.1, 0.3],
            trial=[0, 1, 2], values=[16], record_policy=["summary"],
        )
    return dict(
        n=[4, 8, 16], detector=["0-OAC", "maj-OAC"],
        loss_rate=[0.1, 0.3, 0.5], trial=list(range(5)), values=[64],
        record_policy=["summary"],
    )


#: Per-cell wall-clock beat for the width comparison.  The consensus
#: simulation itself runs in ~2ms, which no pool width can amortise
#: past its own dispatch cost; the comparison is about the *loop's*
#: concurrency under deadlines (the long-tailed cells deadline pools
#: exist for), so each cell carries a fixed beat.
PAD_SECONDS = 0.08


def _padded_cell(params, seed):
    """``consensus_sweep_cell`` plus a fixed wall-clock beat.

    ``pad_seconds`` arrives via ``extra_params`` — merged into
    ``params`` at execution time but excluded from cell identity and
    seeding — so both comparison legs produce byte-identical reports
    while each cell holds its worker long enough that the measurement
    is dispatch concurrency, not the ~2ms simulation.
    """
    payload = consensus_sweep_cell(params, seed)
    time.sleep(float(params.get("pad_seconds", 0.0)))
    return payload


def compare_timeout_paths(
    quick: bool, processes: int, cell_timeout: float, base_seed: int
) -> dict:
    """Wall-clock the unified loop at width 1 against width ``processes``.

    Runs the same grid twice in throwaway stores — once on a one-worker
    dispatcher pool and once at ``processes`` width — both under the
    same generous per-cell budget, and also byte-compares the two
    reports: pool width under deadlines must never change the merged
    outcomes, only the wall-clock.  Each leg publishes its
    ``worker_reuse`` accounting (distinct worker pids vs cells), so a
    regression to spawn-per-cell dispatch shows up in the artifact.
    """
    axes = grid_axes(quick)
    tmp = tempfile.mkdtemp(prefix="repro-e18-timing-")
    timings: dict = {"worker_reuse": {}}
    reports = {}
    try:
        for label, procs in (("width1", 1), ("pooled", processes)):
            db = os.path.join(tmp, f"{label}.db")
            with CampaignRunner(
                _padded_cell,
                db_path=db,
                base_seed=base_seed,
                processes=procs,
                cell_timeout=cell_timeout,
                extra_params={"sqlite_db": db,
                              "pad_seconds": PAD_SECONDS},
            ) as runner:
                start = time.perf_counter()
                outcomes = runner.resume(**axes)
                timings[f"{label}_seconds"] = time.perf_counter() - start
                timings[f"{label}_cells"] = len(outcomes)
                timings["worker_reuse"][label] = runner.last_dispatch_stats
                reports[label] = runner.report(**axes)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    timings["processes"] = processes
    timings["cell_timeout"] = cell_timeout
    timings["pad_seconds"] = PAD_SECONDS
    timings["speedup"] = (
        timings["width1_seconds"] / timings["pooled_seconds"]
        if timings["pooled_seconds"] > 0 else None
    )
    timings["reports_identical"] = reports["width1"] == reports["pooled"]
    return timings


#: The idle plan for ``--fault-overhead``: armed (so every hook runs
#: the full fire() path — clock tick, rule scan) but matching nothing
#: the campaign ever visits, so no fault actually fires.
_IDLE_PLAN_SPEC = {
    "name": "idle-overhead-probe",
    "seed": 0,
    "rules": [
        {"site": "merge", "match": "no-such-shard",
         "action": {"kind": "error"}},
    ],
}


def fault_overhead(quick: bool, base_seed: int, reps: int = 3) -> dict:
    """Measure the Faultline hooks' installed-but-idle overhead.

    Runs the grid in-process (no pool spawn noise) with no plan and
    with an armed-but-never-firing plan, in fresh throwaway stores.
    With no plan the hooks are a ``None``-check; with the idle plan
    every injection site pays the full clock-tick + rule-scan path.

    The true overhead (sub-microsecond per visit, a few hundred visits
    per quick grid) sits far below the wall-clock noise floor of a
    shared CI host, so the **gated** ratio is assembled from
    variance-controlled factors: the exact number of injection-point
    visits the idle leg performed (read off the plan's
    :class:`~repro.testing.faultline.FaultClock`) times the measured
    per-visit cost (a tight microbenchmark of the same ``fire()``
    path), over the campaign's min-of-reps wall clock.  The raw
    two-leg wall clocks are published alongside as
    ``wallclock_ratio`` for eyeballing; gating on that directly would
    only measure the host's scheduler.
    """
    import timeit

    from repro.testing.faultline import FaultPlan

    axes = dict(grid_axes(quick), trial=list(range(8)))
    tmp = tempfile.mkdtemp(prefix="repro-e18-faultline-")
    results: dict = {"reps": reps}
    best: dict = {}
    visits = None

    def one_pass(label: str, rep: str) -> float:
        nonlocal visits
        db = os.path.join(tmp, f"{label}-{rep}.db")
        plan = (
            FaultPlan.from_spec(_IDLE_PLAN_SPEC)
            if label == "idle" else None
        )
        with CampaignRunner(
            consensus_sweep_cell,
            db_path=db,
            base_seed=base_seed,
            in_process=True,
            fault_plan=plan,
        ) as runner:
            start = time.perf_counter()
            outcomes = runner.resume(**axes)
            elapsed = time.perf_counter() - start
        if plan is not None:
            if plan.log:
                raise RuntimeError(
                    f"idle overhead plan fired {plan.log!r}; the "
                    "measurement is void"
                )
            visits = plan.clock.total()
        results.setdefault(f"{label}_cells", len(outcomes))
        return elapsed

    try:
        for label in ("absent", "idle"):
            one_pass(label, "warmup")  # caches, imports, page-ins
        for rep in range(reps):
            # Alternate the legs so host drift hits both equally.
            for label in ("absent", "idle"):
                elapsed = one_pass(label, str(rep))
                best[label] = min(best.get(label, elapsed), elapsed)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    probe = FaultPlan.from_spec(_IDLE_PLAN_SPEC)
    per_visit = min(timeit.repeat(
        lambda: probe.fire("sqlite", "record-cell"),
        number=20000, repeat=5,
    )) / 20000

    results["absent_seconds"] = best["absent"]
    results["idle_seconds"] = best["idle"]
    results["wallclock_ratio"] = (
        best["idle"] / best["absent"] - 1.0
        if best["absent"] > 0 else None
    )
    results["hook_visits"] = visits
    results["per_visit_seconds"] = per_visit
    results["overhead_ratio"] = (
        (visits * per_visit) / best["absent"]
        if best["absent"] > 0 else None
    )
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid for CI smoke runs")
    parser.add_argument("--db", default="campaign.db",
                        help="sqlite checkpoint store (default campaign.db)")
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--processes", type=int, default=None,
                        help="dispatcher pool width (0/1 = a one-worker "
                             "pool; default: one per cpu)")
    parser.add_argument("--in-process", action="store_true",
                        help="run cells serially inside this process "
                             "(the serial reference; no workers, "
                             "timeouts unenforced)")
    parser.add_argument("--timeout-per-cell", type=float, default=None,
                        help="per-cell wall-clock budget in seconds")
    parser.add_argument("--max-cells", type=int, default=None,
                        help="run at most this many pending cells then "
                             "exit (deterministic interruption)")
    parser.add_argument("--compare-timeout-paths", type=int, default=None,
                        metavar="N",
                        help="also wall-clock the unified loop at width "
                             "1 against width N under deadlines (same "
                             "grid, throwaway stores) and publish the "
                             "comparison in the artifact")
    parser.add_argument("--compare-timeout", type=float, default=60.0,
                        help="per-cell budget for the comparison legs "
                             "(default 60s — generous, so the runs "
                             "measure dispatch, not timeouts)")
    parser.add_argument("--fault-overhead", action="store_true",
                        help="also measure the Faultline hooks' "
                             "installed-but-idle overhead (min-of-reps, "
                             "in-process legs with and without an armed "
                             "plan) and publish the ratio in the "
                             "artifact; CI gates it below 3%%")
    parser.add_argument("--out", default=None,
                        help="write the bench JSON artifact here")
    parser.add_argument("--report-out", default=None,
                        help="write the campaign's canonical JSON report "
                             "here (byte-stable across interrupt/resume)")
    args = parser.parse_args()

    axes = grid_axes(args.quick)
    runner = CampaignRunner(
        consensus_sweep_cell,
        db_path=args.db,
        base_seed=args.base_seed,
        processes=args.processes,
        cell_timeout=args.timeout_per_cell,
        extra_params={"sqlite_db": args.db},
        in_process=args.in_process,
    )
    total = len(runner.cells(**axes))
    # Only done/timed_out cells are skipped on resume; failed cells are
    # retried, so they count toward the pending work this pass runs
    # (bounded by --max-cells).
    already = sum(
        1 for o in runner.outcomes(**axes)
        if o.status in ("done", "timed_out")
    )
    pending = total - already
    ran = pending if args.max_cells is None else min(pending, args.max_cells)

    start = time.perf_counter()
    try:
        outcomes = runner.resume(max_cells=args.max_cells, **axes)
    finally:
        runner.close()
    elapsed = time.perf_counter() - start
    worker_reuse = runner.last_dispatch_stats  # None if nothing ran
    if worker_reuse is not None and not worker_reuse["in_process"]:
        print(f"worker reuse: {worker_reuse['distinct_worker_pids']} "
              f"distinct worker pids over {worker_reuse['cells']} cells")
    statuses = {}
    for outcome in outcomes:
        statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
    print(f"grid: {total} cells | checkpointed before this pass: {already} "
          f"| ran now: {ran} | store now holds: {len(outcomes)}")
    print(f"statuses: {statuses}")
    print(f"elapsed: {elapsed:.2f}s "
          f"({ran / elapsed if elapsed > 0 else float('inf'):.1f} cells/s "
          "this pass)")

    comparison = None
    if args.compare_timeout_paths is not None:
        comparison = compare_timeout_paths(
            args.quick, args.compare_timeout_paths, args.compare_timeout,
            args.base_seed,
        )
        print(
            f"timeout paths: width1 {comparison['width1_seconds']:.2f}s vs "
            f"pooled({comparison['processes']}) "
            f"{comparison['pooled_seconds']:.2f}s "
            f"-> {comparison['speedup']:.2f}x, reports identical: "
            f"{comparison['reports_identical']}"
        )

    overhead = None
    if args.fault_overhead:
        overhead = fault_overhead(args.quick, args.base_seed)
        print(
            f"fault-overhead: {overhead['hook_visits']} hook visits x "
            f"{overhead['per_visit_seconds'] * 1e6:.2f}us over "
            f"{overhead['absent_seconds']:.3f}s -> "
            f"{overhead['overhead_ratio'] * 100.0:.3f}% "
            f"(wallclock legs: absent {overhead['absent_seconds']:.3f}s "
            f"vs idle {overhead['idle_seconds']:.3f}s, "
            f"{overhead['wallclock_ratio'] * 100.0:+.2f}% informational)"
        )

    if args.out:
        artifact = {
            "benchmark": "e18_campaign",
            "quick": args.quick,
            "python": platform.python_version(),
            "db": os.path.abspath(args.db),
            "grid_cells": total,
            "skipped_checkpointed": already,
            "ran_this_pass": ran,
            "statuses": statuses,
            "elapsed_seconds": elapsed,
            "cells_per_second": (ran / elapsed) if elapsed > 0 else None,
            "worker_reuse": worker_reuse,
        }
        if comparison is not None:
            artifact["timeout_paths"] = comparison
        if overhead is not None:
            artifact["fault_overhead"] = overhead
        with open(args.out, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")

    if args.report_out:
        with open(args.report_out, "w") as fh:
            fh.write(runner.report(**axes))
            fh.write("\n")
        print(f"wrote {args.report_out}")

    incomplete = len(outcomes) < total
    if incomplete:
        print(f"campaign interrupted with {total - len(outcomes)} cells "
              "pending; rerun the same command to resume")
    return 3 if incomplete else 0


if __name__ == "__main__":
    raise SystemExit(main())
