"""E14: the Section 1.4 applications — aggregation + cluster voting."""

from conftest import run_and_record


def test_e14_applications(benchmark):
    aggregation, clustering = run_and_record(benchmark, "E14")
    # Consensus-hardened aggregation is exact at every loss rate; the
    # naive pipeline degrades as loss grows.
    assert all(v == 1.0 for v in aggregation.column("consensus_exact"))
    naive = aggregation.column("naive_exact")
    assert naive[0] > naive[-1]
    # Clustering always agrees, and wins once the source is far away.
    assert all(clustering.column("all_agreed"))
    costs = list(zip(clustering.column("naive_hop_cost"),
                     clustering.column("clustered_hop_cost")))
    assert costs[-1][1] < costs[-1][0]
