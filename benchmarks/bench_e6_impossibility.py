"""E6: impossibility witnesses (Theorems 4, 5, 8)."""

from conftest import run_and_record


def test_e6_impossibility_witnesses(benchmark):
    (table,) = run_and_record(benchmark, "E6")
    assert all(table.column("as_expected"))
