"""E1: regenerate the Figure 1 / Section 1.5 solvability matrix."""

from conftest import run_and_record


def test_e1_solvability_matrix(benchmark):
    (table,) = run_and_record(benchmark, "E1")
    measured = " ".join(str(m) for m in table.column("measured"))
    assert "FAILED" not in measured and "UNEXPECTED" not in measured
