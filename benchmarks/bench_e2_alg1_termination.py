"""E2: Algorithm 1's CST + 2 termination across n, CST, seeds (Theorem 1)."""

from conftest import run_and_record


def test_e2_alg1_termination(benchmark):
    (table,) = run_and_record(benchmark, "E2")
    assert all(table.column("within_bound"))
    assert all(table.column("agreement"))
