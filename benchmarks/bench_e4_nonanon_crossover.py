"""E4: the non-anonymous min{lg|V|, lg|I|} crossover (Corollary 3)."""

from conftest import run_and_record


def test_e4_nonanon_crossover(benchmark):
    (table,) = run_and_record(benchmark, "E4")
    assert {"leader-elect", "alg2-on-values"} <= set(table.column("branch"))
    assert all(table.column("within_bound"))
