"""E11: simulator engineering numbers — rounds/second of the round engine.

Not a paper artifact, but the number a downstream user asks first: how
fast does the simulator turn rounds over, and how does that scale with n?
The benchmark drives Algorithm 2 under a lossy channel (the representative
workload) and, separately, the raw engine with scripted processes (the
upper bound on achievable throughput) — the latter across all three
record policies, since the streaming modes (``SUMMARY``/``NONE``) are the
engine's high-volume fast path.
"""

import pytest

from repro.adversary.loss import IIDLoss
from repro.algorithms.alg2 import algorithm_2
from repro.contention.services import NoContentionManager
from repro.core.algorithm import Algorithm
from repro.core.environment import Environment
from repro.core.execution import ExecutionEngine, run_consensus
from repro.core.process import ScriptedProcess
from repro.core.records import RecordPolicy
from repro.detectors.classes import ZERO_AC
from repro.experiments.scenarios import zero_oac_environment

VALUES = list(range(256))
ROUNDS = 200


def raw_engine_rounds(n: int, policy: RecordPolicy = RecordPolicy.FULL) -> int:
    env = Environment(
        indices=tuple(range(n)),
        detector=ZERO_AC.make(),
        contention=NoContentionManager(),
        loss=IIDLoss(0.3, seed=0),
    )
    env.reset()
    algo = Algorithm(
        lambda i: ScriptedProcess(["m"] * ROUNDS), anonymous=False
    )
    engine = ExecutionEngine(
        env, algo.spawn_all(env.indices), record_policy=policy
    )
    engine.run(ROUNDS, until_all_decided=False)
    return engine.round


@pytest.mark.parametrize("n", [4, 16, 64])
@pytest.mark.parametrize(
    "policy", [RecordPolicy.FULL, RecordPolicy.SUMMARY, RecordPolicy.NONE],
    ids=lambda p: p.value,
)
def test_e11_raw_engine_throughput(benchmark, n, policy):
    completed = benchmark(raw_engine_rounds, n, policy)
    assert completed == ROUNDS


@pytest.mark.parametrize("n", [4, 16])
def test_e11_alg2_end_to_end_throughput(benchmark, n):
    def run():
        env = zero_oac_environment(n, cst=5, seed=1)
        assignment = {i: VALUES[(i * 31) % 256] for i in range(n)}
        return run_consensus(
            env, algorithm_2(VALUES), assignment, max_rounds=100
        )

    result = benchmark(run)
    assert result.all_correct_decided()


@pytest.mark.parametrize("n", [16])
def test_e11_alg2_summary_mode_throughput(benchmark, n):
    def run():
        env = zero_oac_environment(n, cst=5, seed=1)
        assignment = {i: VALUES[(i * 31) % 256] for i in range(n)}
        return run_consensus(
            env, algorithm_2(VALUES), assignment, max_rounds=100,
            record_policy=RecordPolicy.SUMMARY,
        )

    result = benchmark(run)
    assert result.all_correct_decided()
