"""E5: Algorithm 3 under NOCF, including crash-induced re-ascent (Thm 3)."""

from conftest import run_and_record


def test_e5_alg3_nocf(benchmark):
    (table,) = run_and_record(benchmark, "E5")
    assert all(table.column("within_bound"))
    assert all(table.column("solved"))
