"""Quick-mode E11 smoke benchmark: engine rounds/sec per record policy.

Writes a small JSON artifact (default ``BENCH_e11.json``) so CI can track
the engine's throughput trajectory from PR to PR without the full
pytest-benchmark machinery.  Usage::

    PYTHONPATH=src python benchmarks/e11_smoke.py --quick --out BENCH_e11.json

``--quick`` shrinks repetitions for CI; omit it for steadier numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.adversary.loss import IIDLoss
from repro.contention.services import NoContentionManager
from repro.core.algorithm import Algorithm
from repro.core.environment import Environment
from repro.core.execution import ExecutionEngine
from repro.core.process import ScriptedProcess
from repro.core.records import RecordPolicy
from repro.detectors.classes import ZERO_AC


def run_rounds(n: int, rounds: int, policy: RecordPolicy) -> float:
    """One timed raw-engine execution; returns elapsed seconds."""
    env = Environment(
        indices=tuple(range(n)),
        detector=ZERO_AC.make(),
        contention=NoContentionManager(),
        loss=IIDLoss(0.3, seed=0),
    )
    env.reset()
    algo = Algorithm(
        lambda i: ScriptedProcess(["m"] * rounds), anonymous=False
    )
    engine = ExecutionEngine(
        env, algo.spawn_all(env.indices), record_policy=policy
    )
    start = time.perf_counter()
    engine.run(rounds, until_all_decided=False)
    elapsed = time.perf_counter() - start
    assert engine.round == rounds
    return elapsed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_e11.json")
    parser.add_argument("--n", type=int, default=64)
    parser.add_argument("--rounds", type=int, default=200)
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer repetitions (CI smoke mode)",
    )
    args = parser.parse_args()

    reps = 3 if args.quick else 7
    report = {
        "benchmark": "e11_engine_throughput_smoke",
        "n": args.n,
        "rounds": args.rounds,
        "repetitions": reps,
        "python": platform.python_version(),
        "results": {},
    }
    for policy in (RecordPolicy.FULL, RecordPolicy.SUMMARY, RecordPolicy.NONE):
        timings = [run_rounds(args.n, args.rounds, policy) for _ in range(reps)]
        best = min(timings)
        report["results"][policy.value] = {
            "best_seconds": best,
            "rounds_per_second": args.rounds / best,
        }
        print(
            f"{policy.value:8s} best {best * 1000:8.1f} ms   "
            f"{args.rounds / best:8.0f} rounds/s"
        )

    full = report["results"]["full"]["rounds_per_second"]
    summary = report["results"]["summary"]["rounds_per_second"]
    report["summary_over_full"] = summary / full
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
