"""Quick-mode E11 smoke benchmark: engine rounds/sec per record policy
(vectorised kernel vs pure-python scalar path), plus per-adversary
batched-vs-legacy loss-resolution throughput.

Writes a small JSON artifact (default ``BENCH_e11.json``) so CI can track
the engine's throughput trajectory from PR to PR without the full
pytest-benchmark machinery.  Usage::

    PYTHONPATH=src python benchmarks/e11_smoke.py --quick --out BENCH_e11.json

``--quick`` shrinks repetitions for CI; omit it for steadier numbers.

Every record-policy row carries two figures: ``rounds_per_second`` is the
engine as shipped (array round kernel active whenever numpy is — the
number the CI regression guard tracks), ``scalar_rounds_per_second``
forces ``use_array_kernel=False``, so the kernel's own win is visible as
``kernel_speedup`` without leaving the artifact.

The ``n_scaling`` section publishes the size curve the interned kernel
is for: SUMMARY-mode throughput at n in {16, 64, 256, 1024}, kernel and
scalar, with per-n ``kernel_speedup``.  Round counts shrink as n grows
so the block stays CI-sized; the per-n speedups are same-run ratios and
therefore machine-independent.

The per-adversary section runs every built-in loss adversary three ways
under ``RecordPolicy.NONE``: batched resolution on the array kernel
(``batched_rounds_per_second``), batched resolution with the kernel
forced off (``scalar_kernel_rounds_per_second``), and the per-receiver
base-class fallback with the kernel off (``legacy_rounds_per_second`` —
the path a third-party adversary without a batched override still
takes).  CI gates on the ``capture`` row: the vectorised block-substream
rework must hold >= 2x the pre-rework 829 rounds/sec figure.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.adversary.loss import (
    AlphaLoss,
    CaptureEffectLoss,
    ComposedLoss,
    EventualCollisionFreedom,
    IIDLoss,
    LossAdversary,
    PartitionLoss,
    ReliableDelivery,
    SilenceLoss,
)
from repro.contention.services import NoContentionManager
from repro.core.algorithm import Algorithm
from repro.core.environment import Environment, array_kernel_module
from repro.core.execution import ExecutionEngine
from repro.core.process import ScriptedProcess
from repro.core.records import RecordPolicy
from repro.detectors.classes import ZERO_AC


class PerReceiverFallback(LossAdversary):
    """Force the base-class per-receiver fallback for any adversary.

    Delegates ``losses`` but deliberately does not override
    ``losses_for_round``, so the engine exercises the legacy resolution
    path — the baseline every batched override is measured against.
    """

    def __init__(self, inner: LossAdversary) -> None:
        self.inner = inner

    def losses(self, round_index, senders, receiver):
        return self.inner.losses(round_index, senders, receiver)

    def reset(self) -> None:
        self.inner.reset()

    @property
    def r_cf(self):
        return self.inner.r_cf


def _adversary_matrix(n: int):
    """Name -> factory for every built-in loss adversary at size ``n``."""
    half = n // 2
    return {
        "reliable": lambda: ReliableDelivery(),
        "silence": lambda: SilenceLoss(),
        "alpha": lambda: AlphaLoss(),
        "iid_0.3": lambda: IIDLoss(0.3, seed=0),
        "capture": lambda: CaptureEffectLoss(capture_limit=1, seed=0),
        "partition": lambda: PartitionLoss(
            [range(half), range(half, n)]
        ),
        "composed": lambda: ComposedLoss(
            [PartitionLoss([range(half), range(half, n)]),
             IIDLoss(0.2, seed=1)]
        ),
        "ecf_iid": lambda: EventualCollisionFreedom(
            IIDLoss(0.3, seed=0), r_cf=1
        ),
    }


def run_rounds(
    n: int,
    rounds: int,
    policy: RecordPolicy,
    loss: LossAdversary = None,
    use_array_kernel=None,
) -> float:
    """One timed raw-engine execution; returns elapsed seconds.

    ``use_array_kernel`` passes through to the engine: ``None`` is the
    shipped auto-gated behaviour, ``False`` pins the pure-python
    reference path for the scalar comparison legs.
    """
    env = Environment(
        indices=tuple(range(n)),
        detector=ZERO_AC.make(),
        contention=NoContentionManager(),
        loss=loss if loss is not None else IIDLoss(0.3, seed=0),
    )
    env.reset()
    algo = Algorithm(
        lambda i: ScriptedProcess(["m"] * rounds), anonymous=False
    )
    engine = ExecutionEngine(
        env, algo.spawn_all(env.indices), record_policy=policy,
        use_array_kernel=use_array_kernel,
    )
    start = time.perf_counter()
    engine.run(rounds, until_all_decided=False)
    elapsed = time.perf_counter() - start
    assert engine.round == rounds
    return elapsed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_e11.json")
    parser.add_argument("--n", type=int, default=64)
    parser.add_argument("--rounds", type=int, default=200)
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer repetitions (CI smoke mode)",
    )
    args = parser.parse_args()

    reps = 3 if args.quick else 7
    kernel_active = array_kernel_module() is not None
    report = {
        "benchmark": "e11_engine_throughput_smoke",
        "n": args.n,
        "rounds": args.rounds,
        "repetitions": reps,
        "python": platform.python_version(),
        "array_kernel": kernel_active,
        "results": {},
        "adversaries": {},
    }
    print(f"array kernel: {'active' if kernel_active else 'off (pure python)'}")
    for policy in (RecordPolicy.FULL, RecordPolicy.SUMMARY, RecordPolicy.NONE):
        best = min(
            run_rounds(args.n, args.rounds, policy) for _ in range(reps)
        )
        scalar_best = min(
            run_rounds(
                args.n, args.rounds, policy, use_array_kernel=False
            )
            for _ in range(reps)
        )
        report["results"][policy.value] = {
            "best_seconds": best,
            "rounds_per_second": args.rounds / best,
            "scalar_best_seconds": scalar_best,
            "scalar_rounds_per_second": args.rounds / scalar_best,
            "kernel_speedup": scalar_best / best,
        }
        print(
            f"{policy.value:8s} best {best * 1000:8.1f} ms   "
            f"{args.rounds / best:8.0f} rounds/s   "
            f"(scalar {args.rounds / scalar_best:8.0f} r/s, "
            f"kernel {scalar_best / best:.2f}x)"
        )

    full = report["results"]["full"]["rounds_per_second"]
    summary = report["results"]["summary"]["rounds_per_second"]
    report["summary_over_full"] = summary / full

    # The n-scaling curve (SUMMARY mode: the campaign workhorse).
    # Rounds shrink with n to keep the block CI-sized; throughput is
    # per-round so the rows stay comparable along the curve.
    report["n_scaling"] = {}
    scale_reps = 2 if args.quick else 3
    print(f"\n{'n':>6s} {'kernel r/s':>12s} {'scalar r/s':>12s} "
          f"{'speedup':>8s}")
    for size in (16, 64, 256, 1024):
        scale_rounds = max(30, (args.rounds * 64) // size)
        best = min(
            run_rounds(size, scale_rounds, RecordPolicy.SUMMARY)
            for _ in range(scale_reps)
        )
        scalar_best = min(
            run_rounds(
                size, scale_rounds, RecordPolicy.SUMMARY,
                use_array_kernel=False,
            )
            for _ in range(scale_reps)
        )
        row = {
            "rounds": scale_rounds,
            "rounds_per_second": scale_rounds / best,
            "scalar_rounds_per_second": scale_rounds / scalar_best,
            "kernel_speedup": scalar_best / best,
        }
        report["n_scaling"][str(size)] = row
        print(
            f"{size:6d} {row['rounds_per_second']:12.0f} "
            f"{row['scalar_rounds_per_second']:12.0f} "
            f"{row['kernel_speedup']:7.2f}x"
        )

    # Per-adversary batched vs scalar-kernel vs per-receiver-fallback
    # throughput (NONE mode: the loss resolution dominates, so the
    # ratios isolate the batching and kernel wins per adversary).
    # Quick mode still takes min-of-3: the CI regression guard gates on
    # these rows, and a single scheduling stall must not be able to
    # masquerade as a >20% per-row regression.
    adv_reps = 3 if args.quick else 4
    adv_rounds = max(50, args.rounds // 2)
    print(f"\n{'adversary':10s} {'batched r/s':>12s} {'scalar r/s':>12s} "
          f"{'legacy r/s':>12s} {'speedup':>8s}")
    for name, factory in _adversary_matrix(args.n).items():
        batched = min(
            run_rounds(args.n, adv_rounds, RecordPolicy.NONE, factory())
            for _ in range(adv_reps)
        )
        scalar = min(
            run_rounds(
                args.n, adv_rounds, RecordPolicy.NONE, factory(),
                use_array_kernel=False,
            )
            for _ in range(adv_reps)
        )
        legacy = min(
            run_rounds(
                args.n, adv_rounds, RecordPolicy.NONE,
                PerReceiverFallback(factory()), use_array_kernel=False,
            )
            for _ in range(adv_reps)
        )
        entry = {
            "batched_rounds_per_second": adv_rounds / batched,
            "scalar_kernel_rounds_per_second": adv_rounds / scalar,
            "legacy_rounds_per_second": adv_rounds / legacy,
            "speedup": legacy / batched,
            "kernel_speedup": scalar / batched,
        }
        report["adversaries"][name] = entry
        print(
            f"{name:10s} {entry['batched_rounds_per_second']:12.0f} "
            f"{entry['scalar_kernel_rounds_per_second']:12.0f} "
            f"{entry['legacy_rounds_per_second']:12.0f} "
            f"{entry['speedup']:7.2f}x"
        )

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
