"""E7: round-complexity lower-bound witnesses (Theorems 6, 7, 9)."""

from conftest import run_and_record


def test_e7_round_complexity_witnesses(benchmark):
    (table,) = run_and_record(benchmark, "E7")
    assert all(table.column("as_expected"))
