#!/usr/bin/env python3
"""E19 churn benchmark: the dynamic-membership campaign end to end.

Runs the (n x detector x loss_rate x churn_rate x topology x seed) churn
grid with every finished cell committed to a sqlite ``campaign.db``,
then reports cells per second, status counts, and the agreement-quality
aggregates (decision rate, agreement violations, mean rejoins) that make
churn worth sweeping in the first place.  Usage::

    PYTHONPATH=src python benchmarks/bench_e19_churn.py --quick \
        --db churn.db --out BENCH_e19.json

CI's resume smoke follows the E18 protocol::

    # pass 1: interrupted by a --max-cells budget (exit 3)
    python benchmarks/bench_e19_churn.py --quick --db churn.db \
        --max-cells 4 || true
    # pass 2: resume to completion, dump the canonical report
    python benchmarks/bench_e19_churn.py --quick --db churn.db \
        --report-out resumed.json
    # clean in-process serial reference pass in a fresh store
    python benchmarks/bench_e19_churn.py --quick --db clean.db \
        --in-process --report-out clean.json
    cmp resumed.json clean.json        # byte-identical or CI fails

The report deliberately excludes wall-clock noise, so the comparison is
exact; ``--quick`` shrinks the grid for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

from repro.experiments.campaign import CampaignRunner
from repro.experiments.churn import churn_sweep_cell


def grid_axes(quick: bool) -> dict:
    """The benchmark's sweep axes (trial indexes replicate seeds)."""
    if quick:
        return dict(
            n=[4], detector=["0-OAC"], loss_rate=[0.1],
            churn_rate=[0.0, 0.25], topology=["clique", "ring"],
            trial=[0, 1], values=[8], record_policy=["summary"],
        )
    return dict(
        n=[4, 6, 8], detector=["0-OAC", "maj-OAC"],
        loss_rate=[0.1, 0.3], churn_rate=[0.0, 0.15, 0.3],
        topology=["clique", "ring"], trial=list(range(3)), values=[8],
        record_policy=["summary"],
    )


def agreement_stats(outcomes) -> dict:
    """Aggregate agreement quality over the done cells."""
    done = [o for o in outcomes if o.status == "done"]
    rates = [
        o.payload["decision_rate"] for o in done
        if o.payload.get("decision_rate") is not None
    ]
    churned = [o for o in done if o.payload.get("churned")]
    return {
        "done_cells": len(done),
        "churned_cells": len(churned),
        "agreement_violations": sum(
            1 for o in done if not o.payload.get("agreement", True)
        ),
        "mean_decision_rate": (
            sum(rates) / len(rates) if rates else None
        ),
        "total_rejoins": sum(
            o.payload.get("rejoins", 0) for o in done
        ),
        "total_ghost_decisions": sum(
            o.payload.get("ghost_decisions", 0) for o in done
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid for CI smoke runs")
    parser.add_argument("--db", default="churn.db",
                        help="sqlite checkpoint store (default churn.db)")
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--processes", type=int, default=None,
                        help="dispatcher pool width (0/1 = a one-worker "
                             "pool; default: one per cpu)")
    parser.add_argument("--in-process", action="store_true",
                        help="run cells serially inside this process "
                             "(the serial reference; no workers)")
    parser.add_argument("--timeout-per-cell", type=float, default=None,
                        help="per-cell wall-clock budget in seconds")
    parser.add_argument("--max-cells", type=int, default=None,
                        help="run at most this many pending cells then "
                             "exit (deterministic interruption)")
    parser.add_argument("--out", default=None,
                        help="write the bench JSON artifact here")
    parser.add_argument("--report-out", default=None,
                        help="write the campaign's canonical JSON report "
                             "here (byte-stable across interrupt/resume)")
    args = parser.parse_args()

    axes = grid_axes(args.quick)
    runner = CampaignRunner(
        churn_sweep_cell,
        db_path=args.db,
        base_seed=args.base_seed,
        processes=args.processes,
        cell_timeout=args.timeout_per_cell,
        extra_params={"sqlite_db": args.db},
        in_process=args.in_process,
    )
    total = len(runner.cells(**axes))
    already = sum(
        1 for o in runner.outcomes(**axes)
        if o.status in ("done", "timed_out")
    )
    pending = total - already
    ran = pending if args.max_cells is None else min(pending, args.max_cells)

    start = time.perf_counter()
    try:
        outcomes = runner.resume(max_cells=args.max_cells, **axes)
    finally:
        runner.close()
    elapsed = time.perf_counter() - start
    statuses = {}
    for outcome in outcomes:
        statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
    quality = agreement_stats(outcomes)
    print(f"grid: {total} cells | checkpointed before this pass: {already} "
          f"| ran now: {ran} | store now holds: {len(outcomes)}")
    print(f"statuses: {statuses}")
    print(f"agreement: {quality['agreement_violations']} violations over "
          f"{quality['done_cells']} done cells "
          f"({quality['churned_cells']} churned, "
          f"{quality['total_rejoins']} rejoins, "
          f"{quality['total_ghost_decisions']} ghost decisions)")
    print(f"elapsed: {elapsed:.2f}s "
          f"({ran / elapsed if elapsed > 0 else float('inf'):.1f} cells/s "
          "this pass)")

    if args.out:
        artifact = {
            "benchmark": "e19_churn",
            "quick": args.quick,
            "python": platform.python_version(),
            "db": os.path.abspath(args.db),
            "grid_cells": total,
            "skipped_checkpointed": already,
            "ran_this_pass": ran,
            "statuses": statuses,
            "agreement": quality,
            "elapsed_seconds": elapsed,
            "cells_per_second": (ran / elapsed) if elapsed > 0 else None,
        }
        with open(args.out, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")

    if args.report_out:
        with open(args.report_out, "w") as fh:
            fh.write(runner.report(**axes))
            fh.write("\n")
        print(f"wrote {args.report_out}")

    incomplete = len(outcomes) < total
    if incomplete:
        print(f"campaign interrupted with {total - len(outcomes)} cells "
              "pending; rerun the same command to resume")
    return 3 if incomplete else 0


if __name__ == "__main__":
    raise SystemExit(main())
