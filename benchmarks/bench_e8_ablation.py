"""E8: the majority-complete vs half-complete ablation."""

from conftest import run_and_record


def test_e8_completeness_ablation(benchmark):
    (table,) = run_and_record(benchmark, "E8")
    outcomes = table.column("outcome")
    assert any("VIOLATED" in str(o) for o in outcomes)
    assert any("agreement holds" in str(o) for o in outcomes)
