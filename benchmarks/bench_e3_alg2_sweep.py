"""E3: Algorithm 2's Θ(lg|V|) growth curve (Theorem 2)."""

from conftest import run_and_record


def test_e3_alg2_value_sweep(benchmark):
    (table,) = run_and_record(benchmark, "E3")
    rounds = table.column("rounds_after_cst")
    assert rounds == sorted(rounds)
    assert all(table.column("within_bound"))
