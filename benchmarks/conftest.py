"""Shared helpers for the benchmark suite.

Each benchmark regenerates one evaluation artifact (see DESIGN.md's
experiment index): it runs the experiment exactly once under
pytest-benchmark timing, prints the resulting tables (the "rows the paper
reports"), and archives them under ``benchmarks/results/`` so the output
survives pytest's capture.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_and_record(benchmark, exp_id: str):
    """Run experiment ``exp_id`` once, timed, and archive its tables."""
    from repro.experiments import REGISTRY

    experiment = REGISTRY.get(exp_id)
    tables = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    rendered = "\n\n".join(t.render() for t in tables)
    banner = f"[{experiment.exp_id}] {experiment.title} ({experiment.paper_ref})"
    output = f"{banner}\n\n{rendered}\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(output)
    print("\n" + output)
    return tables
