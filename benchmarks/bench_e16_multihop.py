"""E16: the multihop flooding preview (conclusion's future work)."""

from conftest import run_and_record


def test_e16_multihop_flood(benchmark):
    (table,) = run_and_record(benchmark, "E16")
    rows = {
        (r["topology"], r["strategy"], r["channel"]): r["completed"]
        for r in table.rows
    }
    # Blind flooding deadlocks on the grid under total collision...
    assert rows[("grid-4x4", "blind", "total")] is False
    # ...but backoff and the capture channel both recover.
    assert rows[("grid-4x4", "backoff", "total")] is True
    assert rows[("grid-4x4", "blind", "capture")] is True
