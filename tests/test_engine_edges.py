"""Edge-case coverage for the engine entry points and bookkeeping."""

import pytest

from repro.algorithms.alg1 import algorithm_1
from repro.contention.services import NoContentionManager
from repro.core.algorithm import Algorithm
from repro.core.environment import Environment
from repro.core.errors import ConfigurationError
from repro.core.execution import ExecutionEngine, run_algorithm, run_consensus
from repro.core.process import ScriptedProcess
from repro.detectors.detector import perfect_detector
from repro.experiments.scenarios import maj_oac_environment


def simple_env(n=2):
    return Environment(
        indices=tuple(range(n)),
        detector=perfect_detector(),
        contention=NoContentionManager(),
    )


def test_run_consensus_requires_matching_assignment():
    env = maj_oac_environment(3)
    with pytest.raises(ConfigurationError):
        run_consensus(env, algorithm_1(), {0: "a"}, max_rounds=5)
    with pytest.raises(ConfigurationError):
        run_consensus(
            env, algorithm_1(), {0: "a", 1: "b", 2: "c", 9: "d"},
            max_rounds=5,
        )


def test_round_observer_sees_every_round():
    env = simple_env()
    seen = []
    algo = Algorithm(lambda i: ScriptedProcess(["m"] * 3), anonymous=False)
    env.reset()
    engine = ExecutionEngine(env, algo.spawn_all(env.indices))
    engine.run(3, until_all_decided=False, observer=seen.append)
    assert [rec.round for rec in seen] == [1, 2, 3]


def test_result_snapshot_is_stable_across_calls():
    env = simple_env()
    algo = Algorithm(lambda i: ScriptedProcess([]), anonymous=False)
    env.reset()
    engine = ExecutionEngine(env, algo.spawn_all(env.indices))
    engine.run(2, until_all_decided=False)
    first = engine.result()
    engine.run(1, until_all_decided=False)
    second = engine.result()
    assert first.rounds == 2
    assert second.rounds == 3


def test_run_algorithm_resets_environment_components():
    """Stateful components must be reset between runs for replayability."""
    env = maj_oac_environment(3, cst=2, seed=5)
    a = run_consensus(
        env, algorithm_1(), {0: 1, 1: 2, 2: 3}, max_rounds=20
    )
    b = run_consensus(
        env, algorithm_1(), {0: 1, 1: 2, 2: 3}, max_rounds=20
    )
    assert a.decisions == b.decisions
    assert a.broadcast_count_sequence() == b.broadcast_count_sequence()


def test_zero_round_run_produces_empty_result():
    env = simple_env()
    result = run_algorithm(
        env,
        Algorithm(lambda i: ScriptedProcess([]), anonymous=False),
        max_rounds=0,
    )
    assert result.rounds == 0
    assert result.correct_indices() == (0, 1)
    assert result.broadcast_count_sequence() == ()
