"""Tests for the Section 6 consensus-property checkers."""

import pytest

from repro.core.consensus import (
    check_agreement,
    check_strong_validity,
    check_termination,
    check_uniform_validity,
    evaluate,
    require_agreement,
    require_solved,
    require_strong_validity,
    require_termination,
    require_uniform_validity,
)
from repro.core.errors import (
    AgreementViolation,
    ConfigurationError,
    TerminationViolation,
    ValidityViolation,
)
from repro.core.records import ExecutionResult


def result_with(decisions, initials, crash_rounds=None, rounds=None):
    indices = sorted(initials)
    return ExecutionResult(
        indices=indices,
        records=[],
        decisions={i: decisions.get(i) for i in indices},
        decision_rounds=rounds or {
            i: (1 if decisions.get(i) is not None else None)
            for i in indices
        },
        crash_rounds=crash_rounds or {i: None for i in indices},
        initial_values=initials,
    )


def test_agreement_holds_on_unanimous_decision():
    r = result_with({0: "v", 1: "v"}, {0: "v", 1: "w"})
    assert check_agreement(r)


def test_agreement_fails_on_split_decision():
    r = result_with({0: "v", 1: "w"}, {0: "v", 1: "w"})
    assert not check_agreement(r)
    with pytest.raises(AgreementViolation):
        require_agreement(r)


def test_agreement_binds_crashed_deciders():
    # A process that decided then crashed still counts.
    r = result_with(
        {0: "v", 1: "w"}, {0: "v", 1: "w"},
        crash_rounds={0: 2, 1: None},
    )
    assert not check_agreement(r)


def test_strong_validity_accepts_initial_values_only():
    good = result_with({0: "v"}, {0: "v", 1: "w"})
    assert check_strong_validity(good)
    bad = result_with({0: "z"}, {0: "v", 1: "w"})
    assert not check_strong_validity(bad)
    with pytest.raises(ValidityViolation):
        require_strong_validity(bad)


def test_uniform_validity_is_vacuous_for_mixed_inputs():
    r = result_with({0: "z"}, {0: "v", 1: "w"})
    assert check_uniform_validity(r)


def test_uniform_validity_binds_unanimous_inputs():
    bad = result_with({0: "z", 1: "z"}, {0: "v", 1: "v"})
    assert not check_uniform_validity(bad)
    with pytest.raises(ValidityViolation):
        require_uniform_validity(bad)


def test_strong_validity_implies_uniform_validity():
    r = result_with({0: "v", 1: "v"}, {0: "v", 1: "v"})
    assert check_strong_validity(r)
    assert check_uniform_validity(r)


def test_validity_requires_initial_values():
    r = ExecutionResult(
        indices=[0], records=[], decisions={0: "v"},
        decision_rounds={0: 1}, crash_rounds={0: None},
    )
    with pytest.raises(ConfigurationError):
        check_strong_validity(r)


def test_termination_requires_all_correct_to_decide():
    r = result_with({0: "v"}, {0: "v", 1: "v"})
    assert not check_termination(r)
    with pytest.raises(TerminationViolation):
        require_termination(r)


def test_termination_ignores_crashed_processes():
    r = result_with(
        {0: "v"}, {0: "v", 1: "v"},
        crash_rounds={0: None, 1: 3},
    )
    assert check_termination(r)


def test_termination_by_round_bound():
    r = result_with(
        {0: "v", 1: "v"}, {0: "v", 1: "v"},
        rounds={0: 2, 1: 5},
    )
    assert check_termination(r, by_round=5)
    assert not check_termination(r, by_round=4)


def test_evaluate_collects_all_problems():
    r = result_with({0: "x", 1: "y"}, {0: "v", 1: "v"})
    report = evaluate(r)
    assert not report.agreement
    assert not report.strong_validity
    assert not report.uniform_validity
    assert report.termination
    assert not report.solved
    assert not report.safe
    assert len(report.problems) == 3


def test_evaluate_solved_report():
    r = result_with({0: "v", 1: "v"}, {0: "v", 1: "w"})
    report = evaluate(r)
    assert report.solved and report.safe
    assert report.problems == ()
    assert report.decided_values == ("v",)


def test_require_solved_raises_first_violation():
    r = result_with({0: "x", 1: "y"}, {0: "v", 1: "v"})
    with pytest.raises(AgreementViolation):
        require_solved(r)
