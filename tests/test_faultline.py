"""Faultline: deterministic fault injection and the self-healing store.

The campaign stack's contract is that resume-after-anything converges
to the undisturbed report bytes.  This module attacks that contract
systematically:

* unit coverage of the :mod:`repro.testing.faultline` machinery — the
  per-``(site, key)`` clock, the seeded probability gate, rule/plan
  spec round-trips, plan resolution precedence, and the transient
  sqlite raiser;
* the sink's paired hardening — ``PRAGMA busy_timeout`` on every
  connection, seeded exponential-backoff retry absorbing injected
  transient ``OperationalError``\\ s, and a loud
  :class:`ConfigurationError` (never a raw "database is locked") once
  the retry budget is spent;
* the dispatcher's paired hardening — the stall watchdog unmasking
  SIGSTOPped workers with no ``cell_timeout`` armed, the guard that
  refuses SIGSTOP plans with no watchdog to catch them, and the
  respawn-storm breaker (streak reset on a delivered result,
  exponential backoff, explicit abort message);
* the **property matrix**: every built-in fault plan x {1, 4} workers
  x {e18, e19-quick} grids — a faulted pass plus one clean resume
  reports byte-identically to the in-process reference, and the same
  plan + seed replays the identical injection schedule;
* ``verify_campaign_store``: deliberate corruption (flipped status
  byte, torn payload, forged identity, orphaned rounds) is detected,
  detection is read-only and stable, and quarantine + resume converges
  back to the reference bytes;
* merge atomicity: an injected mid-merge failure — or SIGKILL during
  an injected mid-merge sleep — leaves no target database, and a
  ``force=True`` rerun sweeps the stray sidecar and succeeds;
* ``report(allow_partial=True)``: gaps and corrupt cells are listed
  under a ``"partial"`` footer instead of silently narrowing the grid,
  and a complete store reports identical bytes with the flag on or off.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sqlite3
import subprocess
import sys
import time

import pytest

from repro.core.errors import ConfigurationError
from repro.core.records import RoundSummary, SqliteSink
from repro.experiments.campaign import (
    CampaignRunner,
    cell_tag,
    merge_campaign_stores,
)
from repro.experiments.churn import churn_sweep_cell
from repro.experiments.dispatch import WorkerPoolError
from repro.experiments.harness import consensus_sweep_cell
from repro.experiments.verify import format_findings, verify_campaign_store
from repro.testing import faultline
from repro.testing.faultline import (
    FaultClock,
    FaultPlan,
    FaultRule,
    OPERATIONAL_FLAVORS,
    builtin_plan,
    builtin_plan_names,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def no_leaked_workers():
    """No faultline test may leak a child process, however it faulted."""
    yield
    children = multiprocessing.active_children()
    assert children == [], f"leaked worker processes: {children}"


@pytest.fixture(autouse=True)
def no_leaked_ambient_plan():
    """``faultline.install`` is process-global; never leak it."""
    yield
    faultline.install(None)


@pytest.fixture
def make_runner():
    runners = []

    def make(*args, **kwargs):
        runner = CampaignRunner(*args, **kwargs)
        runners.append(runner)
        return runner

    yield make
    for runner in runners:
        runner.close()


# The two campaign families the property matrix drives: the E18
# consensus grid (8 cells) and a quick E19 churn grid (4 cells).
E18_AXES = dict(
    n=[3, 4], detector=["0-OAC"], loss_rate=[0.1, 0.3], trial=[0, 1],
    values=[8], record_policy=["summary"],
)
E19_AXES = dict(
    n=[4], detector=["0-OAC"], loss_rate=[0.1], churn_rate=[0.0, 0.2],
    topology=["clique", "ring"], trial=[0], values=[8],
    record_policy=["summary"],
)
GRIDS = {
    "e18": (consensus_sweep_cell, E18_AXES),
    "e19": (churn_sweep_cell, E19_AXES),
}

#: Watchdog window for faulted passes: generous enough that a loaded
#: CI host cannot miss four heartbeats, small enough not to dominate
#: the matrix runtime.
STALL_TIMEOUT = 2.0


@pytest.fixture(scope="module")
def reference_report(tmp_path_factory):
    """Per-grid report bytes from one clean, in-process, plan-free run."""
    reports = {}
    for grid, (cell_fn, axes) in GRIDS.items():
        db = str(tmp_path_factory.mktemp("faultline-ref") / f"{grid}.db")
        runner = CampaignRunner(
            cell_fn, db_path=db, base_seed=3, in_process=True,
            extra_params={"sqlite_db": db},
        )
        outcomes = runner.resume(**axes)
        assert all(o.status == "done" for o in outcomes)
        reports[grid] = runner.report(**axes)
        runner.close()
    return reports


# ----------------------------------------------------------------------
# FaultClock / FaultRule / FaultPlan units
# ----------------------------------------------------------------------
def test_fault_clock_counts_independent_streams():
    clock = FaultClock()
    assert clock.tick("dispatch", "cell:0") == 1
    assert clock.tick("dispatch", "cell:0") == 2
    assert clock.tick("dispatch", "cell:1") == 1  # per-key stream
    assert clock.tick("sqlite", "cell:0") == 1    # per-site stream
    assert clock.count("dispatch", "cell:0") == 2
    assert clock.count("merge", "shard:0") == 0


def test_draw_is_a_pure_function_of_stable_identities():
    a = faultline._draw(7, "dispatch", "cell:3", 1, 0)
    assert a == faultline._draw(7, "dispatch", "cell:3", 1, 0)
    assert 0.0 <= a < 1.0
    # Every identity component perturbs the draw.
    assert a != faultline._draw(8, "dispatch", "cell:3", 1, 0)
    assert a != faultline._draw(7, "sqlite", "cell:3", 1, 0)
    assert a != faultline._draw(7, "dispatch", "cell:4", 1, 0)
    assert a != faultline._draw(7, "dispatch", "cell:3", 2, 0)
    assert a != faultline._draw(7, "dispatch", "cell:3", 1, 1)


def test_fault_rule_validation_is_loud():
    with pytest.raises(ConfigurationError, match="unknown fault site"):
        FaultRule(site="disk", action={"kind": "die"})
    with pytest.raises(ConfigurationError, match="'kind'"):
        FaultRule(site="spawn", action={"seconds": 1})
    with pytest.raises(ConfigurationError, match="probability"):
        FaultRule(site="spawn", action={"kind": "die"}, p=1.5)
    with pytest.raises(ConfigurationError, match="unknown field"):
        FaultRule.from_spec({
            "site": "spawn", "action": {"kind": "die"}, "when": "always",
        })
    with pytest.raises(ConfigurationError, match="needs 'site'"):
        FaultRule.from_spec({"action": {"kind": "die"}})


def test_rule_and_plan_specs_round_trip():
    rule = FaultRule(
        site="sqlite", action={"kind": "operational-error"},
        match="write-*", p=0.25, count_in=(1, 2), times=3,
    )
    assert FaultRule.from_spec(rule.to_spec()) == rule
    for name in builtin_plan_names():
        plan = builtin_plan(name)
        assert FaultPlan.from_spec(plan.to_spec()).to_spec() == plan.to_spec()


def test_builtin_plan_unknown_name_is_rejected():
    with pytest.raises(ConfigurationError, match="unknown built-in"):
        builtin_plan("chaos-monkey")


def test_first_matching_rule_wins():
    plan = FaultPlan([
        FaultRule(site="dispatch", action={"kind": "sigkill"},
                  match="cell:0"),
        FaultRule(site="dispatch", action={"kind": "sigstop"}),
    ])
    assert plan.fire("dispatch", "cell:0")["kind"] == "sigkill"
    assert plan.fire("dispatch", "cell:1")["kind"] == "sigstop"


def test_times_budget_is_per_key():
    plan = FaultPlan([
        FaultRule(site="sqlite", action={"kind": "operational-error"},
                  times=2),
    ])
    assert plan.fire("sqlite", "write-round") is not None
    assert plan.fire("sqlite", "write-round") is not None
    assert plan.fire("sqlite", "write-round") is None  # budget spent
    assert plan.fire("sqlite", "record-cell") is not None  # fresh key


def test_count_in_restricts_occurrences():
    plan = FaultPlan([
        FaultRule(site="spawn", action={"kind": "die"}, count_in=(2,)),
    ])
    assert plan.fire("spawn", "spawn") is None       # occurrence 1
    assert plan.fire("spawn", "spawn") is not None   # occurrence 2
    assert plan.fire("spawn", "spawn") is None       # occurrence 3


def test_probability_gate_replays_identically():
    spec = {
        "seed": 42,
        "rules": [{"site": "dispatch", "match": "cell:*", "p": 0.5,
                   "action": {"kind": "sigkill"}}],
    }

    def fired(plan):
        return [
            key for key in (f"cell:{i}" for i in range(64))
            if plan.fire("dispatch", key) is not None
        ]

    first = fired(FaultPlan.from_spec(spec))
    assert fired(FaultPlan.from_spec(spec)) == first
    assert 0 < len(first) < 64  # the gate actually discriminates


def test_fire_logs_events_in_memory_and_jsonl(tmp_path):
    log = str(tmp_path / "faults.jsonl")
    plan = FaultPlan(
        [FaultRule(site="merge", action={"kind": "error"})],
        log_path=log,
    )
    assert plan.fire("merge", "shard:0") == {"kind": "error"}
    assert plan.fire("spawn", "spawn") is None  # no rule, no event
    assert plan.log == [{
        "site": "merge", "key": "shard:0", "count": 1,
        "action": {"kind": "error"},
    }]
    with open(log) as fh:
        lines = [json.loads(line) for line in fh]
    assert lines == plan.log


def test_sqlite_check_raises_flavored_transient_errors():
    for flavor, message in OPERATIONAL_FLAVORS.items():
        plan = FaultPlan([
            FaultRule(site="sqlite",
                      action={"kind": "operational-error",
                              "flavor": flavor}),
        ])
        with pytest.raises(sqlite3.OperationalError,
                           match=r"\[injected\]") as err:
            plan.sqlite_check("write-round")
        assert message in str(err.value)
    bad = FaultPlan([
        FaultRule(site="sqlite",
                  action={"kind": "operational-error",
                          "flavor": "meteor"}),
    ])
    with pytest.raises(ConfigurationError, match="unknown sqlite fault"):
        bad.sqlite_check("write-round")
    wrong = FaultPlan([FaultRule(site="sqlite", action={"kind": "sleep"})])
    with pytest.raises(ConfigurationError, match="only honours"):
        wrong.sqlite_check("write-round")


def test_resolve_precedence_explicit_installed_env(tmp_path, monkeypatch):
    env_plan = tmp_path / "env-plan.json"
    env_plan.write_text(json.dumps(
        {"seed": 1, "rules": [], "name": "from-env"}
    ))
    monkeypatch.delenv(faultline.ENV_VAR, raising=False)
    assert faultline.resolve(None) is None
    monkeypatch.setenv(faultline.ENV_VAR, str(env_plan))
    from_env = faultline.resolve(None)
    assert from_env is not None and from_env.name == "from-env"
    assert faultline.resolve(None) is from_env  # cached per path
    ambient = FaultPlan(name="ambient")
    faultline.install(ambient)
    assert faultline.resolve(None) is ambient          # beats env
    explicit = FaultPlan(name="explicit")
    assert faultline.resolve(explicit) is explicit     # beats installed
    faultline.install(None)
    assert faultline.resolve(None) is from_env


def test_plan_from_file_rejects_garbage(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text("{not json")
    with pytest.raises(ConfigurationError, match="cannot load fault plan"):
        FaultPlan.from_file(str(path))
    with pytest.raises(ConfigurationError, match="cannot load fault plan"):
        FaultPlan.from_file(str(tmp_path / "absent.json"))


# ----------------------------------------------------------------------
# SqliteSink hardening: busy_timeout + seeded retry with backoff
# ----------------------------------------------------------------------
def _summary(r: int, bc: int = 2) -> RoundSummary:
    return RoundSummary(
        round=r, broadcast_count=bc,
        crashed_during=frozenset(), decided_during={},
    )


def test_sink_sets_busy_timeout_on_every_connection(tmp_path):
    with SqliteSink(str(tmp_path / "c.db"), cell_seed=1) as sink:
        timeout = sink._connect().execute(
            "PRAGMA busy_timeout"
        ).fetchone()[0]
        assert timeout == int(sink.busy_timeout * 1000) == 30000


def test_sink_absorbs_injected_transient_errors(tmp_path, monkeypatch):
    delays = []
    monkeypatch.setattr(time, "sleep", delays.append)
    plan = FaultPlan([
        FaultRule(site="sqlite", match="write-round",
                  action={"kind": "operational-error", "flavor": "locked"},
                  count_in=(1, 2)),
    ], seed=9)
    db = str(tmp_path / "c.db")
    with SqliteSink(db, cell_seed=11, fault_plan=plan) as sink:
        sink(_summary(1))  # two injected failures, third attempt lands
        assert [
            (e["key"], e["count"]) for e in plan.log
        ] == [("write-round", 1), ("write-round", 2)]
        # The backoff schedule is the seeded one, attempt by attempt.
        assert delays == [
            sink._backoff_delay("write-round", 1),
            sink._backoff_delay("write-round", 2),
        ]
        assert [s.round for s in sink.read_summaries()] == [1]


def test_sink_exhausted_retry_budget_raises_loudly(tmp_path, monkeypatch):
    monkeypatch.setattr(time, "sleep", lambda _s: None)
    plan = FaultPlan([
        FaultRule(site="sqlite", match="write-round",
                  action={"kind": "operational-error", "flavor": "busy"}),
    ])
    with SqliteSink(str(tmp_path / "c.db"), cell_seed=1,
                    fault_plan=plan) as sink:
        # Never a raw "database is busy": the exhausted budget names
        # the deployment mistake that causes persistent lock-outs.
        with pytest.raises(ConfigurationError,
                           match="give each run its own store path"):
            sink(_summary(1))
    assert plan.clock.count("sqlite", "write-round") \
        == SqliteSink.MAX_SQLITE_ATTEMPTS


def test_backoff_delay_is_deterministic_and_exponential(tmp_path):
    sink = SqliteSink(str(tmp_path / "c.db"))
    delays = [sink._backoff_delay("write-round", a) for a in (1, 2, 3)]
    assert delays == [
        sink._backoff_delay("write-round", a) for a in (1, 2, 3)
    ]
    base = SqliteSink.SQLITE_BACKOFF
    for attempt, delay in enumerate(delays, start=1):
        nominal = base * 2 ** (attempt - 1)
        assert nominal * 0.5 <= delay < nominal * 1.5  # jitter band
    sink.close()


# ----------------------------------------------------------------------
# Dispatcher hardening: stall watchdog + respawn-storm breaker
# ----------------------------------------------------------------------
def test_sigstop_plan_without_watchdog_is_rejected(tmp_path, make_runner):
    plan = FaultPlan([
        FaultRule(site="dispatch", action={"kind": "sigstop"},
                  match="cell:0"),
    ])
    runner = make_runner(
        consensus_sweep_cell, db_path=str(tmp_path / "c.db"),
        base_seed=3, processes=1, fault_plan=plan,
    )
    with pytest.raises(ConfigurationError, match="stall watchdog"):
        runner.resume(**E18_AXES)


def test_stall_watchdog_unmasks_a_sigstopped_worker(
    tmp_path, make_runner, reference_report
):
    plan = FaultPlan([
        FaultRule(site="dispatch", action={"kind": "sigstop"},
                  match="cell:0"),
    ])
    db = str(tmp_path / "c.db")
    faulted = make_runner(
        consensus_sweep_cell, db_path=db, base_seed=3, processes=2,
        fault_plan=plan, stall_timeout=1.5,
    )
    outcomes = faulted.resume(**E18_AXES)
    stalled = [o for o in outcomes if o.status == "failed"]
    assert [o.cell.index for o in stalled] == [0]
    assert stalled[0].error == "worker stalled: no heartbeat within 1.5s"
    faulted.close()
    clean = make_runner(
        consensus_sweep_cell, db_path=db, base_seed=3, processes=2,
    )
    assert all(o.status == "done" for o in clean.resume(**E18_AXES))
    assert clean.report(**E18_AXES) == reference_report["e18"]


def test_spawn_death_streak_resets_on_delivered_result(
    tmp_path, make_runner, reference_report
):
    db = str(tmp_path / "c.db")
    faulted = make_runner(
        consensus_sweep_cell, db_path=db, base_seed=3, processes=1,
        fault_plan=builtin_plan("spawn-flaky"),
    )
    faulted.resume(**E18_AXES)
    # Doomed spawns died, replacements delivered: the streak is clean.
    assert faulted._dispatcher._spawn_death_streak == 0
    faulted.close()
    clean = make_runner(
        consensus_sweep_cell, db_path=db, base_seed=3, processes=1,
    )
    clean.resume(**E18_AXES)
    assert clean.report(**E18_AXES) == reference_report["e18"]


def _always_dying_spawns() -> FaultPlan:
    return FaultPlan([FaultRule(site="spawn", action={"kind": "die"})])


def test_spawn_death_breaker_aborts_with_explicit_message(
    tmp_path, make_runner, monkeypatch
):
    monkeypatch.setattr(time, "sleep", lambda _s: None)
    runner = make_runner(
        consensus_sweep_cell, db_path=str(tmp_path / "c.db"),
        base_seed=3, processes=2, fault_plan=_always_dying_spawns(),
    )
    runner._dispatcher.max_spawn_deaths = 3
    with pytest.raises(WorkerPoolError,
                       match="3 freshly-spawned workers died in a row"):
        runner.resume(**E18_AXES)


def test_respawn_backoff_grows_exponentially(
    tmp_path, make_runner, monkeypatch
):
    delays = []
    monkeypatch.setattr(time, "sleep", delays.append)
    runner = make_runner(
        consensus_sweep_cell, db_path=str(tmp_path / "c.db"),
        base_seed=3, processes=1, fault_plan=_always_dying_spawns(),
    )
    runner._dispatcher.max_spawn_deaths = 4
    runner._dispatcher.respawn_backoff = 0.05
    with pytest.raises(WorkerPoolError):
        runner.resume(**E18_AXES)
    # Streaks 1..3 back off doubling from the base; streak 4 aborts.
    assert delays == pytest.approx([0.05, 0.1, 0.2])


# ----------------------------------------------------------------------
# The property matrix: every plan x pool width x campaign family
# ----------------------------------------------------------------------
@pytest.mark.parametrize("grid", sorted(GRIDS))
@pytest.mark.parametrize("processes", [1, 4])
@pytest.mark.parametrize("plan_name", builtin_plan_names())
def test_faulted_pass_plus_clean_resume_matches_reference(
    tmp_path, make_runner, reference_report, plan_name, processes, grid,
):
    """The defended invariant: resume-after-faults converges byte-for-
    byte, for every built-in plan, pool width, and campaign family."""
    cell_fn, axes = GRIDS[grid]
    db = str(tmp_path / "c.db")
    faulted = make_runner(
        cell_fn, db_path=db, base_seed=3, processes=processes,
        fault_plan=builtin_plan(plan_name), stall_timeout=STALL_TIMEOUT,
        extra_params={"sqlite_db": db},
    )
    faulted.resume(**axes)
    faulted.close()
    clean = make_runner(
        cell_fn, db_path=db, base_seed=3, processes=processes,
        extra_params={"sqlite_db": db},
    )
    final = clean.resume(**axes)
    assert all(o.status == "done" for o in final)
    assert clean.report(**axes) == reference_report[grid]


@pytest.mark.parametrize("plan_name", builtin_plan_names())
def test_same_plan_and_seed_replays_identical_schedule(
    tmp_path, make_runner, plan_name,
):
    """Two runs of one plan over one grid fire the same injections.

    Width 1 serialises the pool, so even the spawn-site stream is a
    deterministic function of the plan; ``log_path`` collects parent
    and worker firings alike, compared as sorted lines because the
    processes interleave.
    """
    logs = []
    for attempt in ("a", "b"):
        log = str(tmp_path / f"faults-{attempt}.jsonl")
        runner = make_runner(
            consensus_sweep_cell,
            db_path=str(tmp_path / f"c-{attempt}.db"), base_seed=3,
            processes=1,
            fault_plan=builtin_plan(plan_name, log_path=log),
            stall_timeout=STALL_TIMEOUT,
            extra_params={"sqlite_db": str(tmp_path / f"c-{attempt}.db")},
        )
        runner.resume(**E18_AXES)
        runner.close()
        with open(log) as fh:
            logs.append(sorted(fh.read().splitlines()))
    assert logs[0] == logs[1]
    assert logs[0], f"plan {plan_name!r} never fired on the e18 grid"


# ----------------------------------------------------------------------
# verify: detection is read-only and stable; quarantine converges
# ----------------------------------------------------------------------
def test_verify_clean_store_and_missing_store(tmp_path):
    db = str(tmp_path / "c.db")
    runner = CampaignRunner(
        consensus_sweep_cell, db_path=db, base_seed=3, in_process=True,
    )
    runner.resume(**E18_AXES)
    runner.close()
    summary = verify_campaign_store(db)
    assert summary["ok"] and summary["cells"] == 8
    assert "store is clean" in format_findings(summary)
    with pytest.raises(ConfigurationError, match="does not exist"):
        verify_campaign_store(str(tmp_path / "absent.db"))


def test_verify_rejects_a_non_database_file(tmp_path):
    path = tmp_path / "c.db"
    path.write_bytes(b"definitely not sqlite" * 100)
    summary = verify_campaign_store(str(path))
    assert not summary["ok"]
    assert summary["findings"][0]["kind"] == "integrity"
    assert "not a database" in summary["findings"][0]["detail"]


def test_verify_reports_schema_damage_without_row_checks(tmp_path):
    db = str(tmp_path / "c.db")
    conn = sqlite3.connect(db)
    conn.execute("CREATE TABLE cells (cell_tag TEXT PRIMARY KEY)")
    conn.commit()
    conn.close()
    summary = verify_campaign_store(db)
    kinds = {f["kind"] for f in summary["findings"]}
    assert kinds == {"schema"}
    details = " / ".join(f["detail"] for f in summary["findings"])
    assert "round_summaries" in details and "campaign_meta" in details


def test_verify_detects_then_quarantines_then_converges(
    tmp_path, make_runner, reference_report
):
    """The acceptance path: flip a status byte, tear a payload, forge
    an identity, orphan some rounds — verify sees all of it without
    touching the store, quarantine demotes/deletes, and resume +
    report land back on the clean reference bytes."""
    db = str(tmp_path / "c.db")
    seeded = make_runner(
        consensus_sweep_cell, db_path=db, base_seed=3, in_process=True,
    )
    outcomes = seeded.resume(**E18_AXES)
    assert all(o.status == "done" for o in outcomes)
    tags = [cell_tag(o.cell) for o in outcomes]
    conn = sqlite3.connect(db)
    conn.execute(
        "UPDATE cells SET status='dxne' WHERE cell_tag=?", (tags[0],)
    )
    conn.execute(
        "UPDATE cells SET payload='{torn' WHERE cell_tag=?", (tags[1],)
    )
    conn.execute(
        "UPDATE cells SET cell_tag='forged|tag' WHERE cell_tag=?",
        (tags[2],),
    )
    conn.execute(
        "INSERT INTO round_summaries VALUES (999999, 1, 2, '[]', '{}')"
    )
    conn.commit()
    conn.close()

    first = verify_campaign_store(db)
    assert not first["ok"] and first["quarantined"] == 0
    by_kind = {}
    for finding in first["findings"]:
        by_kind.setdefault(finding["kind"], []).append(finding)
    assert set(by_kind) >= {
        "cell-status", "cell-payload", "cell-identity", "orphan-rounds",
    }
    assert all(
        f["action"] == "report-only" for f in first["findings"]
    )
    # Detection is read-only: a second audit reports the same findings.
    assert verify_campaign_store(db)["findings"] == first["findings"]

    healed = verify_campaign_store(db, quarantine=True)
    assert healed["findings"] and healed["quarantined"] > 0
    actions = {f["kind"]: f["action"] for f in healed["findings"]}
    assert actions["cell-status"] == "demote-cell"
    assert actions["cell-payload"] == "demote-cell"
    assert actions["cell-identity"] == "delete-cell"
    assert actions["orphan-rounds"] == "delete-rounds"

    clean = make_runner(
        consensus_sweep_cell, db_path=db, base_seed=3, in_process=True,
    )
    final = clean.resume(**E18_AXES)
    assert all(o.status == "done" for o in final)
    assert clean.report(**E18_AXES) == reference_report["e18"]
    assert verify_campaign_store(db)["ok"]


def test_verify_cli_exit_codes(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    def cli(*args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "campaign", "verify", *args],
            env=env, capture_output=True, text=True, timeout=120,
        )

    db = str(tmp_path / "c.db")
    runner = CampaignRunner(
        consensus_sweep_cell, db_path=db, base_seed=3, in_process=True,
    )
    runner.resume(n=[3], detector=["0-OAC"], loss_rate=[0.1], trial=[0],
                  values=[8], record_policy=["summary"])
    runner.close()
    clean = cli("--db", db)
    assert clean.returncode == 0 and "store is clean" in clean.stdout
    conn = sqlite3.connect(db)
    conn.execute("UPDATE cells SET status='dxne'")
    conn.commit()
    conn.close()
    dirty = cli("--db", db)
    assert dirty.returncode == 1 and "cell-status" in dirty.stdout
    missing = cli("--db", str(tmp_path / "absent.db"))
    assert missing.returncode == 2
    assert "does not exist" in missing.stderr


# ----------------------------------------------------------------------
# Merge atomicity under injected failures and SIGKILL
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def e18_shards(tmp_path_factory):
    """The e18 grid split across two shard stores (read-only inputs)."""
    base = tmp_path_factory.mktemp("faultline-shards")
    paths = []
    for index in (0, 1):
        db = str(base / f"shard{index}.db")
        runner = CampaignRunner(
            consensus_sweep_cell, db_path=db, base_seed=3,
            in_process=True, shard_index=index, shard_count=2,
        )
        runner.resume(**E18_AXES)
        runner.close()
        paths.append(db)
    return paths


def test_injected_merge_failure_leaves_no_target(
    tmp_path, e18_shards, reference_report
):
    out = str(tmp_path / "merged.db")
    faultline.install(FaultPlan([
        FaultRule(site="merge", match="shard:1", action={"kind": "error"}),
    ]))
    try:
        with pytest.raises(ConfigurationError,
                           match="injected merge failure at shard 1"):
            merge_campaign_stores(out, e18_shards)
    finally:
        faultline.install(None)
    assert not os.path.exists(out)
    assert not os.path.exists(out + ".tmp")  # cleanup swept the sidecar
    summary = merge_campaign_stores(out, e18_shards)
    assert summary["cells"] == 8 and os.path.exists(out)
    merged = CampaignRunner(
        consensus_sweep_cell, db_path=out, base_seed=3, in_process=True,
    )
    assert merged.report(**E18_AXES) == reference_report["e18"]
    merged.close()


def test_sigkilled_merge_is_atomic_and_force_rerun_recovers(
    tmp_path, e18_shards, reference_report
):
    """Satellite guarantee: SIGKILL mid-merge never publishes a target,
    and a ``force=True`` rerun sweeps the stray sidecar and succeeds."""
    out = str(tmp_path / "merged.db")
    tmp_sidecar = out + ".tmp"
    plan_file = tmp_path / "merge-sleep.json"
    plan_file.write_text(json.dumps({
        "seed": 0,
        "rules": [{"site": "merge", "match": "shard:1",
                   "action": {"kind": "sleep", "seconds": 60}}],
    }))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env[faultline.ENV_VAR] = str(plan_file)
    script = (
        "import sys\n"
        "from repro.experiments.campaign import merge_campaign_stores\n"
        "merge_campaign_stores(sys.argv[1], sys.argv[2:])\n"
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", script, out, *e18_shards], env=env,
    )
    try:
        # Shard 0 folds, then the injected 60s sleep parks the merge
        # with the sidecar on disk: kill it there, mid-merge.
        deadline = time.monotonic() + 60
        while not os.path.exists(tmp_sidecar):
            assert proc.poll() is None, "merge exited before the fault"
            assert time.monotonic() < deadline, "sidecar never appeared"
            time.sleep(0.05)
        time.sleep(0.2)
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=60)
    assert not os.path.exists(out)       # nothing was published
    assert os.path.exists(tmp_sidecar)   # the corpse is the sidecar
    summary = merge_campaign_stores(out, e18_shards, force=True)
    assert summary["cells"] == 8
    for suffix in ("", "-wal", "-shm"):
        assert not os.path.exists(tmp_sidecar + suffix)
    merged = CampaignRunner(
        consensus_sweep_cell, db_path=out, base_seed=3, in_process=True,
    )
    assert merged.report(**E18_AXES) == reference_report["e18"]
    merged.close()


# ----------------------------------------------------------------------
# report(allow_partial=True): explicit gaps, identical bytes when whole
# ----------------------------------------------------------------------
def test_report_allow_partial_lists_gaps_then_matches_when_complete(
    tmp_path, make_runner, reference_report
):
    db = str(tmp_path / "c.db")
    runner = make_runner(
        consensus_sweep_cell, db_path=db, base_seed=3, in_process=True,
    )
    runner.resume(max_cells=3, **E18_AXES)
    doc = json.loads(runner.report(allow_partial=True, **E18_AXES))
    assert doc["partial"] == {"missing": [3, 4, 5, 6, 7], "corrupt": []}
    runner.resume(**E18_AXES)
    complete = runner.report(**E18_AXES)
    assert runner.report(allow_partial=True, **E18_AXES) == complete
    assert complete == reference_report["e18"]

    victim = runner.cells(**E18_AXES)[2]
    conn = sqlite3.connect(db)
    conn.execute(
        "UPDATE cells SET payload='{torn' WHERE cell_tag=?",
        (cell_tag(victim),),
    )
    conn.commit()
    conn.close()
    with pytest.raises(ConfigurationError, match="campaign verify"):
        runner.report(**E18_AXES)
    partial = json.loads(runner.report(allow_partial=True, **E18_AXES))
    assert partial["partial"] == {"missing": [], "corrupt": [2]}
    assert [e["index"] for e in partial["cells"]] == [0, 1, 3, 4, 5, 6, 7]
