"""Tests for the contention managers (Section 4)."""

import pytest

from repro.contention.backoff import BackoffContentionManager
from repro.contention.services import (
    LeaderElectionService,
    NoContentionManager,
    ScriptedContentionManager,
    WakeUpService,
    all_passive_schedule,
)
from repro.core.errors import ConfigurationError
from repro.core.types import ACTIVE, PASSIVE

INDICES = (0, 1, 2, 3)


def active_set(advice):
    return {i for i, a in advice.items() if a is ACTIVE}


def test_nocm_everyone_active_always():
    cm = NoContentionManager()
    for r in (1, 5, 100):
        assert active_set(cm.advise(r, INDICES)) == set(INDICES)


def test_wakeup_service_single_active_after_stabilization():
    cm = WakeUpService(stabilization_round=3)
    assert active_set(cm.advise(1, INDICES)) == set(INDICES)  # prelude
    for r in range(3, 12):
        assert len(active_set(cm.advise(r, INDICES))) == 1


def test_wakeup_default_chooser_rotates():
    """The default wake-up service is NOT a leader-election service."""
    cm = WakeUpService(stabilization_round=1)
    actives = {next(iter(active_set(cm.advise(r, INDICES))))
               for r in range(1, 9)}
    assert len(actives) > 1


def test_wakeup_custom_prelude():
    cm = WakeUpService(
        stabilization_round=4, pre_schedule=all_passive_schedule
    )
    assert active_set(cm.advise(2, INDICES)) == set()


def test_wakeup_rejects_bad_stabilization():
    with pytest.raises(ConfigurationError):
        WakeUpService(stabilization_round=0)


def test_wakeup_chooser_must_pick_live_index():
    cm = WakeUpService(stabilization_round=1, chooser=lambda r, idx: 99)
    with pytest.raises(ConfigurationError):
        cm.advise(1, INDICES)


def test_leader_election_same_leader_forever():
    cm = LeaderElectionService(stabilization_round=2, leader=3)
    for r in range(2, 10):
        assert active_set(cm.advise(r, INDICES)) == {3}


def test_leader_election_defaults_to_min_index():
    cm = LeaderElectionService(stabilization_round=1)
    assert active_set(cm.advise(1, INDICES)) == {0}


def test_leader_election_is_a_wakeup_service():
    """Property 3 implies Property 2: exactly one active per round."""
    cm = LeaderElectionService(stabilization_round=1)
    for r in range(1, 6):
        assert len(active_set(cm.advise(r, INDICES))) == 1


def test_leader_election_rejects_dead_leader():
    cm = LeaderElectionService(stabilization_round=1, leader=9)
    with pytest.raises(ConfigurationError):
        cm.advise(1, INDICES)


def test_scripted_manager_follows_script_then_default():
    cm = ScriptedContentionManager(
        script={1: [0, 2], 2: []}, default="leader"
    )
    assert active_set(cm.advise(1, INDICES)) == {0, 2}
    assert active_set(cm.advise(2, INDICES)) == set()
    assert active_set(cm.advise(3, INDICES)) == {0}


def test_scripted_manager_defaults():
    assert active_set(
        ScriptedContentionManager({}, default="all").advise(1, INDICES)
    ) == set(INDICES)
    assert active_set(
        ScriptedContentionManager({}, default="none").advise(1, INDICES)
    ) == set()
    with pytest.raises(ConfigurationError):
        ScriptedContentionManager({}, default="bogus")


# ----------------------------------------------------------------------
# Backoff (the practical manager)
# ----------------------------------------------------------------------
def test_backoff_eventually_stabilizes_to_one_leader():
    cm = BackoffContentionManager(seed=0)
    for r in range(1, 200):
        advice = cm.advise(r, INDICES)
        cm.observe(r, len(active_set(advice)))
        if cm.leader is not None:
            break
    assert cm.leader is not None
    # After lock-in, only the leader is active.
    advice = cm.advise(r + 1, INDICES)
    assert active_set(advice) == {cm.leader}
    assert cm.stabilized_at is not None


def test_backoff_is_deterministic_per_seed():
    def trace(seed):
        cm = BackoffContentionManager(seed=seed)
        out = []
        for r in range(1, 30):
            advice = cm.advise(r, INDICES)
            cm.observe(r, len(active_set(advice)))
            out.append(tuple(sorted(active_set(advice))))
        return out

    assert trace(5) == trace(5)


def test_backoff_reopens_after_leader_crash():
    cm = BackoffContentionManager(seed=1)
    for r in range(1, 100):
        advice = cm.advise(r, INDICES)
        cm.observe(r, len(active_set(advice)))
        if cm.leader is not None:
            break
    dead = cm.leader
    survivors = tuple(i for i in INDICES if i != dead)
    advice = cm.advise(r + 1, survivors)
    assert cm.leader != dead
    assert set(advice) == set(survivors)


def test_backoff_reset_restores_initial_state():
    cm = BackoffContentionManager(seed=2)
    cm.advise(1, INDICES)
    cm.observe(1, 4)
    cm.reset()
    assert cm.leader is None
    assert cm.stabilized_at is None


def test_backoff_makes_no_formal_promise():
    assert BackoffContentionManager().stabilization_round is None
