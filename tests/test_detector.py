"""Tests for ParametricCollisionDetector and the free-choice policies."""

import pytest

from repro.core.errors import ConfigurationError, ModelViolation
from repro.core.types import COLLISION, NULL, CollisionAdvice
from repro.detectors.detector import (
    ParametricCollisionDetector,
    no_cd_detector,
    perfect_detector,
)
from repro.detectors.policy import (
    BenignPolicy,
    CallbackPolicy,
    NoisyPolicy,
    SeededRandomPolicy,
    SilentPolicy,
    SpuriousUntilPolicy,
    TargetedSpuriousPolicy,
)
from repro.detectors.properties import AccuracyMode, Completeness


def advise(det, r, c, counts):
    return det.advise(r, c, counts)


# ----------------------------------------------------------------------
# Obligations always win over the policy
# ----------------------------------------------------------------------
def test_completeness_obligation_overrides_silent_policy():
    det = ParametricCollisionDetector(
        Completeness.FULL, AccuracyMode.NEVER, policy=SilentPolicy()
    )
    out = advise(det, 1, 2, {0: 1, 1: 2})
    assert out[0] is COLLISION   # lost one message: obliged
    assert out[1] is NULL        # received all: free, policy says null


def test_accuracy_obligation_overrides_noisy_policy():
    det = ParametricCollisionDetector(
        Completeness.ZERO, AccuracyMode.ALWAYS, policy=NoisyPolicy()
    )
    out = advise(det, 1, 2, {0: 2, 1: 1})
    assert out[0] is NULL        # received all: accuracy forces null
    assert out[1] is COLLISION   # free: noisy policy reports


def test_half_detector_may_stay_silent_at_exactly_half():
    det = ParametricCollisionDetector(
        Completeness.HALF, AccuracyMode.ALWAYS, policy=SilentPolicy()
    )
    out = advise(det, 1, 2, {0: 1})
    assert out[0] is NULL


def test_majority_detector_must_report_at_exactly_half():
    det = ParametricCollisionDetector(
        Completeness.MAJORITY, AccuracyMode.ALWAYS, policy=SilentPolicy()
    )
    out = advise(det, 1, 2, {0: 1})
    assert out[0] is COLLISION


def test_eventual_accuracy_gates_by_round():
    det = ParametricCollisionDetector(
        Completeness.ZERO, AccuracyMode.EVENTUAL, r_acc=5,
        policy=NoisyPolicy(),
    )
    # Before r_acc: free choice, the noisy policy lies.
    assert advise(det, 4, 1, {0: 1})[0] is COLLISION
    # From r_acc: accuracy obliges null on full reception.
    assert advise(det, 5, 1, {0: 1})[0] is NULL


def test_impossible_counts_raise():
    det = perfect_detector()
    with pytest.raises(ModelViolation):
        advise(det, 1, 1, {0: 2})


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
def test_eventual_requires_r_acc():
    with pytest.raises(ConfigurationError):
        ParametricCollisionDetector(
            Completeness.FULL, AccuracyMode.EVENTUAL
        )


def test_r_acc_forbidden_without_eventual():
    with pytest.raises(ConfigurationError):
        ParametricCollisionDetector(
            Completeness.FULL, AccuracyMode.ALWAYS, r_acc=3
        )


def test_repr_mentions_class_and_policy():
    det = ParametricCollisionDetector(
        Completeness.MAJORITY, AccuracyMode.EVENTUAL, r_acc=2
    )
    text = repr(det)
    assert "MAJORITY" in text and "r_acc=2" in text and "BenignPolicy" in text


# ----------------------------------------------------------------------
# Canned detectors
# ----------------------------------------------------------------------
def test_no_cd_detector_reports_everywhere():
    det = no_cd_detector()
    out = advise(det, 1, 0, {0: 0, 1: 0})
    assert all(a is COLLISION for a in out.values())
    out = advise(det, 7, 3, {0: 3, 1: 0})
    assert all(a is COLLISION for a in out.values())


def test_perfect_detector_is_truthful():
    det = perfect_detector()
    out = advise(det, 1, 2, {0: 2, 1: 1, 2: 0})
    assert out[0] is NULL
    assert out[1] is COLLISION
    assert out[2] is COLLISION


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def test_benign_policy_tracks_truth():
    p = BenignPolicy()
    assert p.free_choice(1, 0, 2, 1) is COLLISION
    assert p.free_choice(1, 0, 2, 2) is NULL


def test_spurious_until_policy():
    p = SpuriousUntilPolicy(quiet_round=3)
    assert p.free_choice(2, 0, 1, 1) is COLLISION   # lying
    assert p.free_choice(3, 0, 1, 1) is NULL        # honest now


def test_seeded_random_policy_replays():
    a = SeededRandomPolicy(p_collision=0.5, seed=42)
    seq1 = [a.free_choice(r, 0, 1, 0) for r in range(20)]
    a.reset()
    seq2 = [a.free_choice(r, 0, 1, 0) for r in range(20)]
    assert seq1 == seq2
    assert COLLISION in seq1 and NULL in seq1


def test_seeded_random_policy_validates_probability():
    with pytest.raises(ValueError):
        SeededRandomPolicy(p_collision=1.5)


def test_targeted_spurious_policy():
    p = TargetedSpuriousPolicy(
        spurious_rounds=[2], spurious_pairs=[(5, 1)]
    )
    assert p.free_choice(2, 0, 1, 1) is COLLISION
    assert p.free_choice(5, 1, 1, 1) is COLLISION
    assert p.free_choice(5, 0, 1, 1) is NULL
    assert p.free_choice(3, 0, 1, 1) is NULL


def test_callback_policy_delegates_and_resets():
    calls = []
    resets = []
    p = CallbackPolicy(
        lambda r, pid, c, t: calls.append((r, pid)) or NULL,
        on_reset=lambda: resets.append(True),
    )
    assert p.free_choice(1, 7, 0, 0) is NULL
    p.reset()
    assert calls == [(1, 7)]
    assert resets == [True]
