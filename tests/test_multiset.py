"""Tests for the Section 2 multiset preliminaries."""

import pytest
from hypothesis import given, strategies as st

from repro.core.multiset import Multiset, multiset_union


def test_empty_multiset():
    m = Multiset()
    assert len(m) == 0
    assert m.is_empty()
    assert m.support() == frozenset()
    assert list(m) == []


def test_empty_is_shared_instance():
    assert Multiset.empty() is Multiset.empty()


def test_construction_from_iterable_counts_multiplicity():
    m = Multiset(["a", "b", "a"])
    assert len(m) == 3
    assert m.count("a") == 2
    assert m.count("b") == 1
    assert m.count("c") == 0


def test_support_is_the_papers_SET():
    m = Multiset(["x", "x", "y"])
    assert m.support() == frozenset({"x", "y"})


def test_from_set_is_the_papers_MS():
    m = Multiset.from_set(["a", "a", "b"])
    assert m.count("a") == 1
    assert m.count("b") == 1


def test_from_counts_rejects_negative():
    with pytest.raises(ValueError):
        Multiset.from_counts({"a": -1})


def test_from_counts_drops_zeros():
    m = Multiset.from_counts({"a": 0, "b": 2})
    assert "a" not in m
    assert m.count("b") == 2


def test_equality_ignores_order():
    assert Multiset([1, 2, 2]) == Multiset([2, 1, 2])
    assert Multiset([1, 2]) != Multiset([1, 2, 2])


def test_hash_consistency():
    assert hash(Multiset([1, 2, 2])) == hash(Multiset([2, 2, 1]))


def test_submultiset_inclusion():
    small = Multiset(["a"])
    big = Multiset(["a", "a", "b"])
    assert small <= big
    assert not (big <= small)
    assert small < big
    assert big > small
    assert big >= small


def test_inclusion_requires_multiplicity():
    # The paper: m must not appear more times in M1 than in M2.
    assert not (Multiset(["a", "a"]) <= Multiset(["a", "b"]))


def test_union_is_additive():
    u = Multiset(["a"]) + Multiset(["a", "b"])
    assert u.count("a") == 2
    assert u.count("b") == 1


def test_difference_truncates_at_zero():
    d = Multiset(["a"]) - Multiset(["a", "a", "b"])
    assert d.is_empty()


def test_contains_and_iteration():
    m = Multiset(["v", "v", "w"])
    assert "v" in m
    assert sorted(m) == ["v", "v", "w"]


def test_multiset_union_helper():
    u = multiset_union([Multiset(["a"]), Multiset(["a", "b"]), Multiset()])
    assert u == Multiset(["a", "a", "b"])


def test_repr_is_stable():
    assert repr(Multiset(["a"])) == "Multiset({'a': 1})"


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
items = st.lists(st.integers(min_value=0, max_value=5), max_size=12)


@given(items, items)
def test_union_cardinality_is_additive(xs, ys):
    assert len(Multiset(xs) + Multiset(ys)) == len(xs) + len(ys)


@given(items, items)
def test_union_is_commutative(xs, ys):
    assert Multiset(xs) + Multiset(ys) == Multiset(ys) + Multiset(xs)


@given(items)
def test_self_inclusion_reflexive(xs):
    m = Multiset(xs)
    assert m <= m


@given(items, items)
def test_both_include_into_union(xs, ys):
    mx, my = Multiset(xs), Multiset(ys)
    assert mx <= mx + my
    assert my <= mx + my


@given(items, items, items)
def test_inclusion_transitive(xs, ys, zs):
    a = Multiset(xs)
    b = a + Multiset(ys)
    c = b + Multiset(zs)
    assert a <= b and b <= c and a <= c


@given(items)
def test_support_matches_set(xs):
    assert Multiset(xs).support() == frozenset(set(xs))


@given(items, items)
def test_difference_then_union_recovers_superset(xs, ys):
    a, b = Multiset(xs), Multiset(ys)
    assert (a - b) + b >= a
