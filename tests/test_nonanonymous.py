"""Tests for the Section 7.3 non-anonymous algorithm."""

import pytest

from repro.adversary.crash import ScheduledCrashes
from repro.algorithms.nonanonymous import (
    LeaderElectProcess,
    non_anonymous_algorithm,
    termination_bound,
)
from repro.algorithms.encoding import BinaryEncoding
from repro.core.consensus import evaluate, require_solved
from repro.core.errors import ConfigurationError
from repro.core.execution import run_consensus
from repro.experiments.scenarios import zero_oac_environment


def test_not_anonymous():
    algo = non_anonymous_algorithm(list(range(100)), list(range(4)))
    assert not algo.is_anonymous


def test_branch_selection():
    small_v = non_anonymous_algorithm(["a", "b"], list(range(8)))
    assert "alg2-on-values" in small_v.name
    big_v = non_anonymous_algorithm(list(range(100)), list(range(4)))
    assert "leader-elect" in big_v.name


def test_rejects_bad_id_space():
    with pytest.raises(ConfigurationError):
        non_anonymous_algorithm(["a"], [])
    with pytest.raises(ConfigurationError):
        non_anonymous_algorithm(["a"], [1, 1])


def test_process_requires_id_in_space():
    enc = BinaryEncoding([0, 1, 2, 3])
    with pytest.raises(ConfigurationError):
        LeaderElectProcess(9, "v", enc)


def test_small_value_space_behaves_like_alg2():
    values = ["commit", "abort"]
    ids = list(range(6))
    env = zero_oac_environment(4, cst=1, indices=ids[:4])
    assignment = {i: values[i % 2] for i in ids[:4]}
    result = run_consensus(
        env, non_anonymous_algorithm(values, ids), assignment,
        max_rounds=30,
    )
    require_solved(result, by_round=termination_bound(1, 2, 6))


@pytest.mark.parametrize("id_count", [4, 8, 32])
def test_leader_elect_branch_terminates_within_bound(id_count):
    values = list(range(4 * id_count * id_count))   # force |V| > |I|
    ids = list(range(id_count))
    n = min(4, id_count)
    cst = 2
    env = zero_oac_environment(n, cst=cst, seed=id_count, indices=ids[:n])
    assignment = {i: values[(i * 17 + 3) % len(values)] for i in ids[:n]}
    bound = termination_bound(cst, len(values), id_count)
    result = run_consensus(
        env, non_anonymous_algorithm(values, ids), assignment,
        max_rounds=bound + 30,
    )
    require_solved(result, by_round=bound)


def test_leader_elect_cost_tracks_id_space_not_value_space():
    """Doubling |V| must NOT grow the leader-elect branch's round count;
    growing |I| must."""
    def measure(value_count, id_count):
        values = list(range(value_count))
        ids = list(range(id_count))
        env = zero_oac_environment(4, cst=1, indices=ids[:4])
        assignment = {i: values[(i * 17 + 3) % value_count] for i in ids[:4]}
        result = run_consensus(
            env, non_anonymous_algorithm(values, ids), assignment,
            max_rounds=500,
        )
        return result.last_decision_round()

    small_ids = measure(4096, 4)
    same_ids_bigger_v = measure(8192, 4)
    bigger_ids = measure(8192, 64)
    assert small_ids == same_ids_bigger_v
    assert bigger_ids > same_ids_bigger_v


def test_leader_crash_before_dissemination_triggers_reelection():
    values = list(range(100))
    ids = [0, 1, 2]
    # The first elected leader is the min-ID process (0): crash it right
    # after the first election concludes, before its value spreads.
    elect_rounds = 3 * (2 + BinaryEncoding(ids).width)   # one alg2 cycle
    env = zero_oac_environment(
        3, cst=1, loss_rate=0.0, indices=ids,
        crash=ScheduledCrashes.at({elect_rounds: [0]}),
    )
    assignment = {0: 5, 1: 40, 2: 77}
    result = run_consensus(
        env, non_anonymous_algorithm(values, ids), assignment,
        max_rounds=400,
    )
    report = evaluate(result)
    assert report.agreement and report.strong_validity
    # Survivors decided one of the surviving (or the dead) initial values.
    assert result.decisions[1] is not None
    assert result.decisions[2] is not None


def test_agreement_under_lossy_prelude():
    values = list(range(64))
    ids = [0, 1, 2, 3]
    for seed in range(5):
        env = zero_oac_environment(
            4, cst=12, seed=seed, loss_rate=0.5, indices=ids
        )
        assignment = {i: values[(i * 9 + seed) % 64] for i in ids}
        result = run_consensus(
            env, non_anonymous_algorithm(values, ids), assignment,
            max_rounds=300,
        )
        report = evaluate(result)
        assert report.agreement, f"seed {seed}: {report.problems}"
        assert report.strong_validity


def test_value_locking_prevents_mixed_decisions_after_leader_crash():
    """Reproduction note 2: once any process decides v, every later leader
    re-broadcasts v, so late deciders agree with early ones."""
    values = list(range(100))
    ids = [0, 1, 2]
    # Crash the leader a few triples after dissemination starts: some
    # processes may have confirmed, others not.
    for crash_round in range(12, 30, 3):
        env = zero_oac_environment(
            3, cst=1, loss_rate=0.0, indices=ids,
            crash=ScheduledCrashes.at({crash_round: [0]}),
        )
        assignment = {0: 5, 1: 40, 2: 77}
        result = run_consensus(
            env, non_anonymous_algorithm(values, ids), assignment,
            max_rounds=400,
        )
        report = evaluate(result)
        assert report.agreement, (
            f"crash at {crash_round}: {report.problems}"
        )
