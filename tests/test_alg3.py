"""Tests for Algorithm 3 (anonymous, 0-AC + NoCM + NOCF, Theorem 3)."""

import pytest

from repro.adversary.crash import ScheduledCrashes
from repro.adversary.loss import IIDLoss, ReliableDelivery, SilenceLoss
from repro.algorithms.alg3 import (
    Alg3Process,
    algorithm_3,
    termination_bound,
)
from repro.algorithms.markers import VOTE
from repro.algorithms.valuetree import ValueTree
from repro.core.consensus import evaluate, require_solved
from repro.core.execution import run_consensus
from repro.core.multiset import Multiset
from repro.core.types import ACTIVE, COLLISION, NULL
from repro.experiments.scenarios import nocf_environment


def test_is_anonymous():
    assert algorithm_3(["a", "b"]).is_anonymous


@pytest.mark.parametrize("vc", [2, 8, 64, 256])
def test_terminates_under_total_silence(vc):
    """The headline surprise of §7.4: consensus with NO message delivery."""
    values = list(range(vc))
    env = nocf_environment(4)
    assignment = {i: values[(i * 5 + 1) % vc] for i in range(4)}
    result = run_consensus(
        env, algorithm_3(values), assignment,
        max_rounds=termination_bound(vc) + 8,
    )
    require_solved(result, by_round=termination_bound(vc))


def test_terminates_with_reliable_delivery_too():
    # The algorithm never reads message contents, only presence; it must
    # behave identically under perfect delivery.
    values = list(range(16))
    env = nocf_environment(3, loss=ReliableDelivery())
    result = run_consensus(
        env, algorithm_3(values), {0: 3, 1: 3, 2: 12},
        max_rounds=termination_bound(16) + 8,
    )
    assert evaluate(result).solved


def test_arbitrary_per_receiver_loss_is_harmless():
    # Lemma 14 needs zero completeness + accuracy, not uniform loss.
    values = list(range(32))
    for seed in range(6):
        env = nocf_environment(4, loss=IIDLoss(0.5, seed=seed))
        result = run_consensus(
            env, algorithm_3(values), {i: (i * 11) % 32 for i in range(4)},
            max_rounds=termination_bound(32) + 8,
        )
        report = evaluate(result)
        assert report.solved, f"seed {seed}: {report.problems}"


def test_all_processes_decide_same_round_same_value():
    """Lemmas 15/16: identical navigation advice => lockstep decisions."""
    values = list(range(64))
    env = nocf_environment(5)
    result = run_consensus(
        env, algorithm_3(values), {i: 40 + i for i in range(5)},
        max_rounds=termination_bound(64) + 8,
    )
    rounds = set(result.decision_rounds.values())
    decisions = set(result.decisions.values())
    assert len(rounds) == 1 and len(decisions) == 1


def test_decides_min_reachable_value_first():
    # The search descends left first, so the smallest initial value wins
    # when it lies leftmost in the common search path.
    values = list(range(8))
    env = nocf_environment(3)
    result = run_consensus(
        env, algorithm_3(values), {0: 1, 1: 6, 2: 6},
        max_rounds=termination_bound(8) + 8,
    )
    assert set(result.decisions.values()) == {1}


def test_crash_forces_reascent_but_still_terminates():
    """The paper's worst case: a small-value process drags everyone deep
    left, then dies; the survivors re-ascend and decide."""
    values = list(range(64))
    env = nocf_environment(
        3, crash=ScheduledCrashes.at({9: [0]})
    )
    # Process 0 votes left at every level (value 0); others hold value 63.
    result = run_consensus(
        env, algorithm_3(values), {0: 0, 1: 63, 2: 63},
        max_rounds=termination_bound(64, after_round=9) + 8,
    )
    report = evaluate(result)
    assert report.solved
    assert set(result.decisions[i] for i in (1, 2)) == {63}
    # Termination cost exceeded the failure-free path: re-ascent happened.
    failure_free = nocf_environment(3)
    baseline = run_consensus(
        failure_free, algorithm_3(values), {0: 63, 1: 63, 2: 63},
        max_rounds=termination_bound(64) + 8,
    )
    assert (
        result.last_decision_round() > baseline.last_decision_round()
    )


def test_validity_follows_from_accuracy():
    # Decisions must be initial values even under arbitrary loss.
    values = ["p", "q", "r", "s", "t"]
    env = nocf_environment(4, loss=IIDLoss(0.7, seed=1))
    result = run_consensus(
        env, algorithm_3(values),
        {0: "q", 1: "t", 2: "q", 3: "s"},
        max_rounds=termination_bound(5) + 20,
    )
    assert evaluate(result).strong_validity


# ----------------------------------------------------------------------
# Unit-level behaviour of the automaton
# ----------------------------------------------------------------------
def make_proc(value, values=range(8)):
    tree = ValueTree(values)
    return Alg3Process(value, tree), tree


def test_phase_cycle_order():
    p, _ = make_proc(0)
    seen = []
    for _ in range(8):
        seen.append(p.phase)
        p.message(ACTIVE)
        p.transition(Multiset([]), NULL, ACTIVE)
        p._advance_round()
    assert seen == [
        "vote-val", "vote-left", "vote-right", "recurse",
    ] * 2


def test_votes_val_at_own_node():
    tree = ValueTree(range(8))
    p = Alg3Process(tree.root.value, tree)
    assert p.message(ACTIVE) is VOTE


def test_votes_left_when_value_in_left_subtree():
    tree = ValueTree(range(8))
    p = Alg3Process(0, tree)          # 0 is left of the root
    p.message(ACTIVE); p.transition(Multiset([]), NULL, ACTIVE)
    p._advance_round()
    assert p.phase == "vote-left"
    assert p.message(ACTIVE) is VOTE
    p.transition(Multiset([VOTE]), NULL, ACTIVE)
    p._advance_round()
    assert p.message(ACTIVE) is None  # not in the right subtree
    p.transition(Multiset([]), NULL, ACTIVE)
    p._advance_round()
    p.message(ACTIVE); p.transition(Multiset([]), NULL, ACTIVE)
    p._advance_round()
    assert p.curr is tree.root.left


def test_collision_advice_counts_as_vote():
    tree = ValueTree(range(8))
    p = Alg3Process(7, tree)
    # vote-val: heard a collision => someone voted for the root value.
    p.message(ACTIVE); p.transition(Multiset([]), COLLISION, ACTIVE)
    p._advance_round()
    for _ in range(2):
        p.message(ACTIVE); p.transition(Multiset([]), NULL, ACTIVE)
        p._advance_round()
    p.message(ACTIVE); p.transition(Multiset([]), NULL, ACTIVE)
    assert p.has_decided and p.decision == tree.root.value


def test_no_votes_ascends_to_parent():
    tree = ValueTree(range(8))
    p = Alg3Process(0, tree)
    p.curr = tree.root.left           # pretend we descended already
    for _ in range(3):
        # Value 0 IS in this subtree, so silence everywhere is artificial
        # (models the voters having crashed).
        p._nav = [False, False, False]
        p._phase_index = 3
        break
    p.message(ACTIVE)
    p.transition(Multiset([]), NULL, ACTIVE)
    assert p.curr is tree.root


def test_ascend_from_root_is_noop():
    tree = ValueTree(range(8))
    p = Alg3Process(5, tree)
    p._phase_index = 3
    p._nav = [False, False, False]
    p.message(ACTIVE)
    p.transition(Multiset([]), NULL, ACTIVE)
    assert p.curr is tree.root


def test_termination_bound_formula():
    assert termination_bound(2) == 8 * 1 + 4
    assert termination_bound(2, after_round=10) == 10 + 8 + 4
    assert termination_bound(256) >= 8 * 8
