"""Tests for the Figure 1 detector-class lattice."""

import pytest

from repro.core.errors import ConfigurationError
from repro.detectors.classes import (
    AC,
    ALL_CLASSES,
    HALF_AC,
    HALF_OAC,
    MAJ_AC,
    MAJ_OAC,
    NO_ACC,
    NO_CD,
    OAC,
    ZERO_AC,
    ZERO_OAC,
    containment_pairs,
    get_class,
)
from repro.detectors.detector import ParametricCollisionDetector, no_cd_detector
from repro.detectors.policy import SilentPolicy
from repro.detectors.properties import AccuracyMode, Completeness


def test_registry_has_figure1_plus_specials():
    names = {c.name for c in ALL_CLASSES}
    assert names == {
        "AC", "OAC", "maj-AC", "maj-OAC", "half-AC", "half-OAC",
        "0-AC", "0-OAC", "NoACC", "NoCD",
    }


def test_get_class_by_name_and_unknown():
    assert get_class("maj-OAC") is MAJ_OAC
    with pytest.raises(ConfigurationError):
        get_class("perfect")


def test_completeness_chain_within_accurate_row():
    # AC ⊆ maj-AC ⊆ half-AC ⊆ 0-AC (stronger obligations => subclass).
    assert AC.is_subclass_of(MAJ_AC)
    assert MAJ_AC.is_subclass_of(HALF_AC)
    assert HALF_AC.is_subclass_of(ZERO_AC)
    assert not ZERO_AC.is_subclass_of(HALF_AC)


def test_accurate_row_inside_eventually_accurate_row():
    for strong, weak in (
        (AC, OAC), (MAJ_AC, MAJ_OAC), (HALF_AC, HALF_OAC),
        (ZERO_AC, ZERO_OAC),
    ):
        assert strong.is_subclass_of(weak)
        assert not weak.is_subclass_of(strong)


def test_everything_practical_is_inside_zero_oac():
    # Section 7.2: 0-OAC is the most general practical class.
    for cls in (AC, OAC, MAJ_AC, MAJ_OAC, HALF_AC, HALF_OAC, ZERO_AC):
        assert cls.is_subclass_of(ZERO_OAC)


def test_lemma1_nocd_inside_noacc():
    assert NO_CD.is_subclass_of(NO_ACC)
    assert not NO_ACC.is_subclass_of(NO_CD)


def test_nocd_not_inside_any_accuracy_class():
    for cls in (AC, OAC, ZERO_AC, ZERO_OAC):
        assert not NO_CD.is_subclass_of(cls)


def test_membership_accepts_stronger_detectors():
    perfect = ParametricCollisionDetector(
        Completeness.FULL, AccuracyMode.ALWAYS
    )
    for cls in (AC, OAC, MAJ_AC, MAJ_OAC, HALF_AC, HALF_OAC,
                ZERO_AC, ZERO_OAC, NO_ACC):
        assert cls.contains(perfect)


def test_membership_rejects_weaker_detectors():
    zero_only = ParametricCollisionDetector(
        Completeness.ZERO, AccuracyMode.EVENTUAL, r_acc=1
    )
    assert ZERO_OAC.contains(zero_only)
    assert not ZERO_AC.contains(zero_only)
    assert not MAJ_OAC.contains(zero_only)


def test_nocd_membership_is_structural():
    assert NO_CD.contains(no_cd_detector())
    honest = ParametricCollisionDetector(
        Completeness.FULL, AccuracyMode.NEVER
    )
    assert not NO_CD.contains(honest)


def test_make_builds_member_of_class():
    det = HALF_OAC.make(r_acc=7, policy=SilentPolicy())
    assert det.completeness is Completeness.HALF
    assert det.accuracy is AccuracyMode.EVENTUAL
    assert det.r_acc == 7
    assert HALF_OAC.contains(det)


def test_make_defaults_r_acc_to_one():
    det = MAJ_OAC.make()
    assert det.r_acc == 1


def test_make_rejects_r_acc_for_accurate_classes():
    with pytest.raises(ConfigurationError):
        ZERO_AC.make(r_acc=3)


def test_make_nocd_admits_no_options():
    det = NO_CD.make()
    assert NO_CD.contains(det)
    with pytest.raises(ConfigurationError):
        NO_CD.make(r_acc=1)


def test_containment_pairs_are_sound():
    pairs = set(containment_pairs())
    assert ("AC", "0-OAC") in pairs
    assert ("NoCD", "NoACC") in pairs
    assert ("0-OAC", "AC") not in pairs
    # Containment must be antisymmetric on distinct classes.
    for a, b in pairs:
        assert (b, a) not in pairs
