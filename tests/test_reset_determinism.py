"""The ``reset()`` determinism audit.

Every stateful component the environment carries — loss adversaries,
crash adversaries, churn adversaries, and the dual-role substrate
layers (:class:`MultihopLayer`, :class:`PhysicalLayer`) — promises that
``reset()`` restores it to its just-constructed state, so reusing one
environment object across executions (what ``run_consensus`` does via
``environment.reset()``) replays *byte-identical* executions.  A
component that leaks state across resets (an RNG not re-seeded, a
cache not cleared) silently breaks campaign reproducibility; this
suite audits every built-in against that contract, FULL-record
fingerprints included.
"""

from __future__ import annotations

import pytest

from repro.adversary.churn import (
    BurstChurn,
    InformedMinorityChurn,
    NoChurn,
    ScheduledChurn,
    SeededChurn,
)
from repro.adversary.crash import (
    NoCrashes,
    ScheduledCrashes,
    SeededRandomCrashes,
)
from repro.adversary.loss import (
    AlphaLoss,
    CaptureEffectLoss,
    ComposedLoss,
    EventualCollisionFreedom,
    IIDLoss,
    PartitionLoss,
    ReliableDelivery,
    ScriptedLoss,
    SilenceLoss,
)
from repro.algorithms.alg2 import algorithm_2
from repro.contention.services import WakeUpService
from repro.core.environment import Environment
from repro.core.execution import run_consensus
from repro.core.records import RecordPolicy
from repro.detectors.classes import ZERO_OAC
from repro.substrate.device import PhysicalLayer
from repro.substrate.multihop import MultihopLayer, MultihopNetwork

N = 5
VALUES = list(range(8))
MAX_ROUNDS = 18


def _fingerprint(result) -> tuple:
    """Everything observable about an execution, traces included."""
    return (
        dict(result.decisions),
        dict(result.decision_rounds),
        dict(result.crash_rounds),
        dict(result.leave_rounds),
        dict(result.rejoin_counts),
        tuple(result.departed_decisions),
        result.rounds,
        tuple(result.transmission_trace()),
        tuple(map(dict, result.cd_trace())),
        tuple(map(dict, result.cm_trace())),
    )


def _run_twice(environment: Environment) -> None:
    """One environment object, two executions: must replay exactly."""
    assignment = {
        i: VALUES[(i * 3) % len(VALUES)] for i in environment.indices
    }
    runs = [
        _fingerprint(run_consensus(
            environment, algorithm_2(VALUES), assignment,
            max_rounds=MAX_ROUNDS, until_all_decided=True,
            record_policy=RecordPolicy.FULL,
        ))
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


def _environment(loss=None, crash=None, churn=None) -> Environment:
    return Environment(
        indices=tuple(range(N)),
        detector=ZERO_OAC.make(),
        contention=WakeUpService(stabilization_round=2),
        loss=loss or ReliableDelivery(),
        crash=crash or NoCrashes(),
        churn=churn or NoChurn(),
    )


def _scripted(round_index, senders, receiver):
    # Odd rounds drop everything from the receiver's left neighbour.
    if round_index % 2:
        return {s for s in senders if s == (receiver - 1) % N}
    return set()


LOSS_ADVERSARIES = {
    "reliable": lambda: ReliableDelivery(),
    "silence": lambda: SilenceLoss(),
    "iid": lambda: IIDLoss(0.4, seed=7),
    "capture": lambda: CaptureEffectLoss(
        capture_limit=1, p_single_loss=0.2, seed=3
    ),
    "partition": lambda: PartitionLoss(
        [[0, 1, 2], [3, 4]], intra=IIDLoss(0.3, seed=5), until_round=4
    ),
    "alpha": lambda: AlphaLoss(),
    "scripted": lambda: ScriptedLoss(_scripted),
    "composed": lambda: ComposedLoss([IIDLoss(0.3, seed=2), AlphaLoss()]),
    "ecf": lambda: EventualCollisionFreedom(IIDLoss(0.5, seed=9), r_cf=3),
}

CRASH_ADVERSARIES = {
    "none": lambda: NoCrashes(),
    "scheduled": lambda: ScheduledCrashes.at({2: [0], 4: [3]}),
    "seeded": lambda: SeededRandomCrashes(
        0.3, max_crashes=2, deadline=4, seed=11
    ),
}

CHURN_ADVERSARIES = {
    "none": lambda: NoChurn(),
    "scheduled": lambda: ScheduledChurn.at(
        leaves={2: [1]}, joins={4: [1]}, initially_absent=[4]
    ),
    "seeded": lambda: SeededChurn(0.3, seed=13, deadline=4),
    "burst": lambda: BurstChurn(2, 0.4, seed=17, deadline=4),
    "informed-minority": lambda: InformedMinorityChurn(k=1, deadline=5),
}


@pytest.mark.parametrize(
    "make_loss", LOSS_ADVERSARIES.values(), ids=LOSS_ADVERSARIES.keys()
)
def test_loss_adversary_reset_replays_identically(make_loss):
    _run_twice(_environment(loss=make_loss()))


@pytest.mark.parametrize(
    "make_crash", CRASH_ADVERSARIES.values(), ids=CRASH_ADVERSARIES.keys()
)
def test_crash_adversary_reset_replays_identically(make_crash):
    _run_twice(_environment(
        loss=IIDLoss(0.3, seed=1), crash=make_crash()
    ))


@pytest.mark.parametrize(
    "make_churn", CHURN_ADVERSARIES.values(), ids=CHURN_ADVERSARIES.keys()
)
def test_churn_adversary_reset_replays_identically(make_churn):
    _run_twice(_environment(
        loss=IIDLoss(0.3, seed=1), churn=make_churn()
    ))


def test_multihop_layer_reset_replays_identically():
    layer = MultihopLayer(
        MultihopNetwork.ring(N, successors=1, fingers=True),
        inner=IIDLoss(0.3, seed=21),
    )
    _run_twice(Environment(
        indices=tuple(range(N)),
        detector=layer,
        contention=WakeUpService(stabilization_round=2),
        loss=layer,
    ))


def test_physical_layer_reset_replays_identically():
    layer = PhysicalLayer(tuple(range(N)), seed=23)
    _run_twice(Environment(
        indices=tuple(range(N)),
        detector=layer,
        contention=WakeUpService(stabilization_round=2),
        loss=layer,
    ))
