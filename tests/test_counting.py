"""Tests for the §4.1 extension: k-wake-up service + anonymous counting."""

import pytest

from repro.adversary.crash import ScheduledCrashes
from repro.adversary.loss import EventualCollisionFreedom, IIDLoss, ReliableDelivery
from repro.algorithms.counting import CountingProcess, counting_algorithm
from repro.contention.services import KWakeUpService, LeaderElectionService
from repro.core.environment import Environment
from repro.core.errors import ConfigurationError
from repro.core.execution import ExecutionEngine
from repro.core.types import ACTIVE
from repro.detectors.classes import ZERO_OAC
from repro.lowerbounds.counting import counting_impossibility_witness

INDICES = (0, 1, 2, 3)


def active_set(advice):
    return {i for i, a in advice.items() if a is ACTIVE}


# ----------------------------------------------------------------------
# KWakeUpService
# ----------------------------------------------------------------------
def test_kwakeup_single_active_after_stabilization():
    cm = KWakeUpService(k=2, stabilization_round=3)
    for r in range(3, 20):
        assert len(active_set(cm.advise(r, INDICES))) == 1


def test_kwakeup_blocks_have_length_k():
    cm = KWakeUpService(k=3, stabilization_round=1)
    actives = [
        next(iter(active_set(cm.advise(r, INDICES))))
        for r in range(1, 1 + 3 * len(INDICES))
    ]
    assert actives == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]


def test_kwakeup_rotates_through_everyone_forever():
    cm = KWakeUpService(k=1, stabilization_round=1)
    seen = set()
    for r in range(1, 9):
        seen |= active_set(cm.advise(r, INDICES))
    assert seen == set(INDICES)


def test_kwakeup_block_start_detection():
    cm = KWakeUpService(k=2, stabilization_round=3)
    assert cm.block_start(3) and cm.block_start(5)
    assert not cm.block_start(4)
    assert not cm.block_start(2)


def test_kwakeup_validation():
    with pytest.raises(ConfigurationError):
        KWakeUpService(k=0)
    with pytest.raises(ConfigurationError):
        KWakeUpService(k=1, stabilization_round=0)


def test_kwakeup_is_not_a_leader_election_service():
    cm = KWakeUpService(k=1, stabilization_round=1)
    leaders = {
        next(iter(active_set(cm.advise(r, INDICES)))) for r in (1, 2)
    }
    assert len(leaders) == 2


# ----------------------------------------------------------------------
# The counting protocol
# ----------------------------------------------------------------------
def run_counting(n, k, stab, rotations=4, loss=None, crash=None, seed=0):
    env = Environment(
        indices=tuple(range(n)),
        detector=ZERO_OAC.make(r_acc=stab),
        contention=KWakeUpService(k=k, stabilization_round=stab),
        loss=loss or EventualCollisionFreedom(
            IIDLoss(0.4, seed=seed), r_cf=stab
        ),
        crash=crash or __import__(
            "repro.adversary.crash", fromlist=["NoCrashes"]
        ).NoCrashes(),
    )
    env.reset()
    processes = counting_algorithm().spawn_all(env.indices)
    engine = ExecutionEngine(env, processes)
    engine.run(stab + rotations * k * n, until_all_decided=False)
    return engine.result(), processes


@pytest.mark.parametrize("n", [2, 3, 6])
@pytest.mark.parametrize("k", [1, 2, 4])
def test_counting_converges_to_population(n, k):
    result, processes = run_counting(n, k, stab=5, seed=n + k)
    for pid in result.indices:
        assert processes[pid].current_count == n, (
            f"pid {pid}: {processes[pid].counts}"
        )


def test_counting_tracks_crashes():
    result, processes = run_counting(
        5, 2, stab=4, rotations=6,
        crash=ScheduledCrashes.at({15: [4]}),
    )
    for pid in result.correct_indices():
        assert processes[pid].current_count == 4


def test_counting_with_clean_channel():
    result, processes = run_counting(4, 1, stab=1, loss=ReliableDelivery())
    assert all(
        processes[pid].current_count == 4 for pid in result.indices
    )


def test_counting_outputs_stabilize():
    """Once correct, outputs stay correct (no oscillation post-CST)."""
    _, processes = run_counting(4, 2, stab=6, rotations=6, seed=9)
    for proc in processes.values():
        tail = proc.counts[-3:]
        assert tail == [4, 4, 4]


def test_counting_process_is_anonymous():
    assert counting_algorithm().is_anonymous


# ----------------------------------------------------------------------
# The impossibility under a leader-election service
# ----------------------------------------------------------------------
def test_counting_impossible_with_leader_election():
    witness = counting_impossibility_witness(counting_algorithm())
    assert witness.leader_indistinguishable
    assert witness.followers_indistinguishable
    assert witness.counting_defeated
    # In particular the protocol's outputs cannot differ across sizes.
    assert witness.small_outputs[0] == witness.large_outputs[0]


def test_counting_witness_rejects_nonanonymous():
    from repro.core.algorithm import Algorithm
    from repro.core.process import SilentProcess

    algo = Algorithm.indexed(lambda i: SilentProcess())
    with pytest.raises(ConfigurationError):
        counting_impossibility_witness(algo)


def test_counting_witness_rejects_oversized_gap():
    with pytest.raises(ConfigurationError):
        counting_impossibility_witness(
            counting_algorithm(), small_followers=1, large_followers=3
        )


def test_counting_solvable_with_kwakeup_but_not_ls_side_by_side():
    """The §4.1 separation in one test: the same protocol counts
    correctly under k-wake-up and outputs nothing under leader election
    (its block-start trigger never fires for followers)."""
    _, processes = run_counting(3, 2, stab=3, seed=1)
    assert processes[0].current_count == 3

    env = Environment(
        indices=(0, 1, 2),
        detector=ZERO_OAC.make(r_acc=1),
        contention=LeaderElectionService(1, leader=0),
        loss=ReliableDelivery(),
    )
    env.reset()
    ls_procs = counting_algorithm().spawn_all(env.indices)
    ExecutionEngine(env, ls_procs).run(40, until_all_decided=False)
    assert ls_procs[1].current_count is None
    assert ls_procs[2].current_count is None
