"""Tests for the loss and crash adversaries."""

import pytest

from repro.adversary.crash import (
    CrashEvent,
    NoCrashes,
    ScheduledCrashes,
    SeededRandomCrashes,
)
from repro.adversary.loss import (
    AlphaLoss,
    CaptureEffectLoss,
    ComposedLoss,
    EventualCollisionFreedom,
    IIDLoss,
    PartitionLoss,
    ReliableDelivery,
    ScriptedLoss,
    SilenceLoss,
)
from repro.core.errors import ConfigurationError

SENDERS = [0, 1, 2]


# ----------------------------------------------------------------------
# Loss adversaries
# ----------------------------------------------------------------------
def test_reliable_delivery_drops_nothing():
    adv = ReliableDelivery()
    assert adv.losses(1, SENDERS, 5) == frozenset()
    assert adv.r_cf == 1


def test_silence_drops_everything():
    adv = SilenceLoss()
    assert adv.losses(1, SENDERS, 5) == frozenset(SENDERS)
    assert adv.r_cf is None


def test_iid_loss_is_seeded_and_bounded():
    adv = IIDLoss(0.5, seed=3)
    runs1 = [adv.losses(r, SENDERS, 9) for r in range(30)]
    adv.reset()
    runs2 = [adv.losses(r, SENDERS, 9) for r in range(30)]
    assert runs1 == runs2
    assert any(runs1)          # some losses at p=0.5
    assert not all(len(l) == 3 for l in runs1)


def test_iid_loss_never_drops_own_message():
    adv = IIDLoss(1.0, seed=0)
    assert 1 not in adv.losses(1, SENDERS, 1)


def test_iid_loss_validates_probability():
    with pytest.raises(ConfigurationError):
        IIDLoss(1.5)


def test_alpha_loss_single_broadcaster_delivers():
    adv = AlphaLoss()
    assert adv.losses(1, [2], 0) == frozenset()


def test_alpha_loss_contention_keeps_only_own():
    adv = AlphaLoss()
    assert adv.losses(1, SENDERS, 1) == {0, 2}
    assert adv.losses(1, SENDERS, 9) == {0, 1, 2}


def test_partition_loss_blocks_cross_group():
    adv = PartitionLoss([(0, 1), (2, 3)])
    assert adv.losses(1, [0, 2], 1) == {2}
    assert adv.losses(1, [0, 2], 3) == {0}


def test_partition_loss_until_round_then_clean():
    adv = PartitionLoss([(0, 1), (2, 3)], until_round=5)
    assert adv.losses(5, [0, 2], 3) == {0}
    assert adv.losses(6, [0, 2], 3) == frozenset()
    assert adv.r_cf == 6


def test_partition_loss_rejects_overlapping_groups():
    with pytest.raises(ConfigurationError):
        PartitionLoss([(0, 1), (1, 2)])


def test_partition_intra_adversary_composes():
    adv = PartitionLoss([(0, 1), (2,)], intra=SilenceLoss())
    # Cross-group AND in-group messages are lost (except self).
    assert adv.losses(1, [0, 1, 2], 0) == {1, 2}


def test_capture_effect_limits_decoding_under_contention():
    adv = CaptureEffectLoss(capture_limit=1, seed=0)
    losses = adv.losses(1, SENDERS, 9)
    assert len(losses) >= len(SENDERS) - 1   # at most one captured


def test_capture_effect_single_broadcast_delivers_by_default():
    adv = CaptureEffectLoss(seed=0)
    assert adv.losses(1, [0], 9) == frozenset()


def test_scripted_loss_delegates():
    adv = ScriptedLoss(lambda r, s, recv: {s[0]} if s else set(), r_cf=4)
    assert adv.losses(1, SENDERS, 9) == {0}
    assert adv.r_cf == 4


def test_composed_loss_unions_drops():
    adv = ComposedLoss([
        ScriptedLoss(lambda r, s, recv: {0}),
        ScriptedLoss(lambda r, s, recv: {2}),
    ])
    assert adv.losses(1, SENDERS, 9) == {0, 2}
    with pytest.raises(ConfigurationError):
        ComposedLoss([])


def test_ecf_wrapper_forces_single_broadcaster_delivery():
    adv = EventualCollisionFreedom(SilenceLoss(), r_cf=3)
    # Before r_cf the inner adversary rules.
    assert adv.losses(2, [0], 1) == {0}
    # From r_cf on, single-broadcaster rounds deliver...
    assert adv.losses(3, [0], 1) == frozenset()
    # ...but contention rounds still defer to the inner adversary
    # (which drops everything from the other senders).
    assert adv.losses(3, SENDERS, 1) == {0, 2}
    assert adv.r_cf == 3


def test_ecf_wrapper_validates_round():
    with pytest.raises(ConfigurationError):
        EventualCollisionFreedom(SilenceLoss(), r_cf=0)


# ----------------------------------------------------------------------
# Crash adversaries
# ----------------------------------------------------------------------
def test_no_crashes():
    assert NoCrashes().crashes(1, [0, 1]) == ()
    assert NoCrashes().last_crash_round == 0


def test_scheduled_crashes_fire_once():
    adv = ScheduledCrashes.at({2: [1]}, after_send=False)
    assert adv.crashes(1, [0, 1]) == ()
    events = adv.crashes(2, [0, 1])
    assert events == (CrashEvent(1, after_send=False),)
    # Already-crashed pids are filtered by liveness.
    assert adv.crashes(2, [0]) == ()
    assert adv.last_crash_round == 2


def test_scheduled_crashes_reject_bad_round():
    with pytest.raises(ConfigurationError):
        ScheduledCrashes({0: [CrashEvent(1)]})


def test_random_crashes_bounded_and_seeded():
    adv = SeededRandomCrashes(
        p=0.5, max_crashes=2, deadline=10, seed=0
    )
    total = []
    for r in range(1, 20):
        live = [i for i in range(5) if i not in total]
        total.extend(ev.pid for ev in adv.crashes(r, live))
    assert len(total) <= 2
    adv2 = SeededRandomCrashes(p=0.5, max_crashes=2, deadline=10, seed=0)
    replay = []
    for r in range(1, 20):
        live = [i for i in range(5) if i not in replay]
        replay.extend(ev.pid for ev in adv2.crashes(r, live))
    assert total == replay


def test_random_crashes_spare_at_least_one():
    adv = SeededRandomCrashes(p=1.0, max_crashes=10, deadline=5, seed=1)
    live = [0, 1, 2]
    for r in range(1, 6):
        events = adv.crashes(r, live)
        live = [i for i in live if i not in {e.pid for e in events}]
    assert len(live) >= 1


def test_random_crashes_stop_after_deadline():
    adv = SeededRandomCrashes(p=1.0, max_crashes=10, deadline=2, seed=0)
    assert adv.crashes(3, [0, 1, 2]) == ()
    assert adv.last_crash_round == 2


def test_random_crashes_validate_parameters():
    with pytest.raises(ConfigurationError):
        SeededRandomCrashes(p=2.0, max_crashes=1, deadline=1)
    with pytest.raises(ConfigurationError):
        SeededRandomCrashes(p=0.5, max_crashes=-1, deadline=1)
    with pytest.raises(ConfigurationError):
        SeededRandomCrashes(p=0.5, max_crashes=1, deadline=-1)
