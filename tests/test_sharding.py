"""Distributed campaign sharding: shard partition, merge identity, CLI.

Covers the sharding PR's contract end to end:

* ``shard_of`` is a pure function of the canonical cell tag — the same
  cell lands on the same shard on every host, every run;
* ``shard_cells`` partitions the grid exactly (every cell in exactly
  one shard, union == grid) and is lazy — it never materialises the
  other hosts' share;
* K merged shard stores report byte-identically to an uninterrupted
  single-host run, for K in {1, 2, 3}, including ``report_table()``;
* ``merge_campaign_stores`` rejects, loudly: mismatched base_seeds,
  mismatched shard counts, overlapping shards (duplicate index),
  missing shards, stores without identity metadata, out-of-range
  indices, and an existing merge target (unless ``force=True``);
* a shard interrupted mid-run (``max_cells``) resumes to the same
  merged bytes — resume semantics are unchanged by sharding;
* a store stamped for one shard spec refuses to run as another
  (one store is one shard), and the CLI drives the whole
  shard -> merge -> report loop.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.core.errors import ConfigurationError
from repro.core.records import SqliteSink
from repro.experiments.campaign import (
    CampaignRunner,
    cell_tag,
    merge_campaign_stores,
    shard_cells,
    shard_of,
)
from repro.experiments.harness import SweepRunner, consensus_sweep_cell


@pytest.fixture(autouse=True)
def no_leaked_workers():
    yield
    children = multiprocessing.active_children()
    assert children == [], f"leaked worker processes: {children}"


AXES = dict(
    n=[3, 4], detector=["0-OAC"], loss_rate=[0.1, 0.3], trial=[0, 1],
    values=[4], record_policy=["summary"],
)  # 8 cells


def _runner(db: str, base_seed: int = 3, **kwargs) -> CampaignRunner:
    return CampaignRunner(
        consensus_sweep_cell, db_path=db, base_seed=base_seed,
        in_process=True, extra_params={"sqlite_db": db}, **kwargs,
    )


def _run_shards(tmp_path, k: int, base_seed: int = 3):
    """Run the AXES grid as k shard stores; return their paths."""
    paths = []
    for i in range(k):
        db = str(tmp_path / f"shard{i}-of-{k}.db")
        paths.append(db)
        runner = _runner(db, base_seed=base_seed, shard_index=i, shard_count=k)
        outcomes = runner.resume(**AXES)
        assert all(o.status == "done" for o in outcomes)
    return paths


@pytest.fixture(scope="module")
def single_host(tmp_path_factory):
    """Reference bytes from one uninterrupted single-host pass."""
    db = str(tmp_path_factory.mktemp("single") / "single.db")
    runner = _runner(db)
    runner.resume(**AXES)
    return runner.report(**AXES), runner.report_table(**AXES)


# --------------------------------------------------------------------------
# shard function + partition


def test_shard_of_is_deterministic_and_in_range():
    tags = [cell_tag(c) for c in SweepRunner(
        consensus_sweep_cell, base_seed=3).cells(**AXES)]
    for k in (1, 2, 3, 5):
        for tag in tags:
            s = shard_of(tag, k)
            assert 0 <= s < k
            assert s == shard_of(tag, k)  # pure function of the tag


def test_shard_of_rejects_bad_count():
    with pytest.raises(ConfigurationError):
        shard_of("n=3", 0)
    with pytest.raises(ConfigurationError):
        shard_of("n=3", -1)


def test_shard_cells_partitions_the_grid_exactly():
    sweep = SweepRunner(consensus_sweep_cell, base_seed=3)
    grid = sweep.cells(**AXES)
    for k in (1, 2, 3):
        shards = [list(shard_cells(iter(grid), i, k)) for i in range(k)]
        tags = [cell_tag(c) for shard in shards for c in shard]
        assert sorted(tags) == sorted(cell_tag(c) for c in grid)
        assert len(tags) == len(set(tags))  # every cell in exactly one shard


def test_shard_cells_is_lazy():
    def gen():
        yield from SweepRunner(consensus_sweep_cell, base_seed=3).cells(**AXES)
        raise AssertionError("generator drained past need")

    stream = shard_cells(gen(), 0, 2)
    first = next(stream)  # pulls only until the first matching cell
    assert shard_of(cell_tag(first), 2) == 0


def test_sharded_cells_keep_full_grid_indices():
    """Shard filtering happens after enumeration: index/seed identity is
    the full grid's, so merged stores are indistinguishable from an
    unsharded run."""
    full = {cell_tag(c): (c.index, c.seed)
            for c in _runner_cells_unsharded()}
    seen = {}
    for i in range(3):
        runner = CampaignRunner(
            consensus_sweep_cell, db_path=":memory:", base_seed=3,
            in_process=True, shard_index=i, shard_count=3)
        for c in runner.cells(**AXES):
            seen[cell_tag(c)] = (c.index, c.seed)
    assert seen == full


def _runner_cells_unsharded():
    return CampaignRunner(
        consensus_sweep_cell, db_path=":memory:", base_seed=3,
        in_process=True).cells(**AXES)


# --------------------------------------------------------------------------
# merge identity


@pytest.mark.parametrize("k", [1, 2, 3])
def test_merged_report_is_byte_identical(tmp_path, k, single_host):
    ref_report, ref_table = single_host
    paths = _run_shards(tmp_path, k)
    merged = str(tmp_path / "merged.db")
    summary = merge_campaign_stores(merged, paths)
    assert summary["shards"] == k
    assert summary["cells"] == 8
    runner = _runner(merged)
    assert runner.report(**AXES) == ref_report
    assert runner.report_table(**AXES) == ref_table


def test_interrupted_shard_resumes_to_same_merged_bytes(tmp_path, single_host):
    ref_report, _ = single_host
    db0 = str(tmp_path / "s0.db")
    db1 = str(tmp_path / "s1.db")
    # interrupt shard 0 after one cell, then resume it to completion
    _runner(db0, shard_index=0, shard_count=2).resume(max_cells=1, **AXES)
    _runner(db0, shard_index=0, shard_count=2).resume(**AXES)
    _runner(db1, shard_index=1, shard_count=2).resume(**AXES)
    merged = str(tmp_path / "merged.db")
    merge_campaign_stores(merged, [db0, db1])
    assert _runner(merged).report(**AXES) == ref_report


def test_merge_order_does_not_matter(tmp_path, single_host):
    ref_report, _ = single_host
    paths = _run_shards(tmp_path, 3)
    merged = str(tmp_path / "merged.db")
    merge_campaign_stores(merged, list(reversed(paths)))
    assert _runner(merged).report(**AXES) == ref_report


# --------------------------------------------------------------------------
# merge rejections


def test_merge_rejects_base_seed_mismatch(tmp_path):
    a = str(tmp_path / "a.db")
    b = str(tmp_path / "b.db")
    _runner(a, base_seed=3, shard_index=0, shard_count=2).resume(**AXES)
    _runner(b, base_seed=4, shard_index=1, shard_count=2).resume(**AXES)
    with pytest.raises(ConfigurationError, match="base_seed"):
        merge_campaign_stores(str(tmp_path / "m.db"), [a, b])


def test_merge_rejects_overlapping_shards(tmp_path):
    paths = _run_shards(tmp_path, 2)
    with pytest.raises(ConfigurationError, match="overlapping"):
        merge_campaign_stores(
            str(tmp_path / "m.db"), [paths[0], paths[0], paths[1]])


def test_merge_rejects_missing_shard(tmp_path):
    paths = _run_shards(tmp_path, 3)
    with pytest.raises(ConfigurationError, match="missing"):
        merge_campaign_stores(str(tmp_path / "m.db"), paths[:2])


def test_merge_rejects_mixed_shard_counts(tmp_path):
    a = str(tmp_path / "a.db")
    b = str(tmp_path / "b.db")
    _runner(a, shard_index=0, shard_count=2).resume(**AXES)
    _runner(b, shard_index=0, shard_count=3).resume(**AXES)
    with pytest.raises(ConfigurationError, match="shard count"):
        merge_campaign_stores(str(tmp_path / "m.db"), [a, b])


def test_merge_rejects_store_without_identity(tmp_path):
    bare = str(tmp_path / "bare.db")
    sink = SqliteSink(bare)
    sink._connect()  # creates the schema but stamps no identity metadata
    sink.close()
    with pytest.raises(ConfigurationError, match="identity"):
        merge_campaign_stores(str(tmp_path / "m.db"), [bare])


def test_merge_rejects_missing_file(tmp_path):
    with pytest.raises(ConfigurationError, match="does not exist"):
        merge_campaign_stores(
            str(tmp_path / "m.db"), [str(tmp_path / "nope.db")])


def test_merge_refuses_existing_target_unless_forced(tmp_path, single_host):
    ref_report, _ = single_host
    paths = _run_shards(tmp_path, 2)
    merged = str(tmp_path / "merged.db")
    merge_campaign_stores(merged, paths)
    with pytest.raises(ConfigurationError, match="exists"):
        merge_campaign_stores(merged, paths)
    merge_campaign_stores(merged, paths, force=True)
    assert _runner(merged).report(**AXES) == ref_report


# --------------------------------------------------------------------------
# store identity guards on the runner itself


def test_store_refuses_other_shard_spec(tmp_path):
    db = str(tmp_path / "s.db")
    _runner(db, shard_index=0, shard_count=2).resume(max_cells=1, **AXES)
    with pytest.raises(ConfigurationError, match="shard"):
        _runner(db, shard_index=1, shard_count=2).resume(**AXES)
    with pytest.raises(ConfigurationError, match="shard"):
        _runner(db).resume(**AXES)  # unsharded run on a shard store


def test_runner_rejects_bad_shard_spec():
    with pytest.raises(ConfigurationError):
        CampaignRunner(consensus_sweep_cell, db_path=":memory:",
                       shard_index=2, shard_count=2)
    with pytest.raises(ConfigurationError):
        CampaignRunner(consensus_sweep_cell, db_path=":memory:",
                       shard_index=0, shard_count=0)


# --------------------------------------------------------------------------
# CLI


def test_cli_shard_merge_report_loop(tmp_path, monkeypatch, capsys):
    from repro.__main__ import main

    monkeypatch.chdir(tmp_path)
    for i in (0, 1):
        assert main(["campaign", "shard", "--index", str(i), "--of", "2",
                     "--quick", "--seeds", "1", "--in-process"]) == 0
    shard_dbs = [f"campaign.shard{i}-of-2.db" for i in (0, 1)]
    assert all((tmp_path / db).exists() for db in shard_dbs)

    assert main(["campaign", "merge", "--out", "merged.db"] + shard_dbs) == 0
    capsys.readouterr()

    assert main(["campaign", "--db", "merged.db", "--quick", "--seeds", "1",
                 "--in-process", "--report"]) == 0
    merged_report = capsys.readouterr().out

    assert main(["campaign", "--db", "single.db", "--quick", "--seeds", "1",
                 "--in-process"]) == 0
    capsys.readouterr()
    assert main(["campaign", "--db", "single.db", "--quick", "--seeds", "1",
                 "--in-process", "--report"]) == 0
    single_report = capsys.readouterr().out

    assert merged_report == single_report
    assert json.loads(merged_report)["cells"]  # non-empty, parseable


def test_cli_merge_rejections_exit_2(tmp_path, monkeypatch, capsys):
    from repro.__main__ import main

    monkeypatch.chdir(tmp_path)
    for i in (0, 1):
        main(["campaign", "shard", "--index", str(i), "--of", "2",
              "--quick", "--seeds", "1", "--in-process"])
    capsys.readouterr()
    # overlapping shards
    assert main(["campaign", "merge", "--out", "m.db",
                 "campaign.shard0-of-2.db", "campaign.shard0-of-2.db"]) == 2
    assert "merge rejected" in capsys.readouterr().err
    # missing shard
    assert main(["campaign", "merge", "--out", "m.db",
                 "campaign.shard0-of-2.db"]) == 2
    assert "merge rejected" in capsys.readouterr().err


def test_cli_shard_requires_index_and_of(tmp_path, monkeypatch):
    from repro.__main__ import main

    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit):
        main(["campaign", "shard", "--quick", "--in-process"])
    with pytest.raises(SystemExit):
        main(["campaign", "--index", "0", "--quick", "--in-process"])
    with pytest.raises(SystemExit):
        main(["campaign", "shard", "--index", "2", "--of", "2",
              "--quick", "--in-process"])
