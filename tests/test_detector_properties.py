"""Tests for the completeness/accuracy predicates (Properties 4-9).

The maj-vs-half boundary (exactly half received) is load-bearing for the
whole paper — Theorem 1's O(1) algorithm vs Theorem 6's Ω(lg|V|) bound —
so it gets explicit coverage.
"""

import pytest
from hypothesis import given, strategies as st

from repro.detectors.properties import (
    AccuracyMode,
    Completeness,
    accuracy_active,
    advice_legal,
    must_report_collision,
    must_report_null,
)


# ----------------------------------------------------------------------
# Completeness obligations (Properties 4-7)
# ----------------------------------------------------------------------
def test_full_completeness_reports_any_loss():
    assert must_report_collision(Completeness.FULL, 3, 2)
    assert must_report_collision(Completeness.FULL, 1, 0)
    assert not must_report_collision(Completeness.FULL, 3, 3)
    assert not must_report_collision(Completeness.FULL, 0, 0)


def test_majority_completeness_boundary():
    # Received exactly half (2 of 4): NOT a strict majority -> obliged.
    assert must_report_collision(Completeness.MAJORITY, 4, 2)
    # Received a strict majority (3 of 4): not obliged.
    assert not must_report_collision(Completeness.MAJORITY, 4, 3)
    # Odd counts: 2 of 3 is a strict majority.
    assert not must_report_collision(Completeness.MAJORITY, 3, 2)
    assert must_report_collision(Completeness.MAJORITY, 3, 1)


def test_half_completeness_boundary_differs_by_one_message():
    # Exactly half received: half-complete detectors may stay silent...
    assert not must_report_collision(Completeness.HALF, 4, 2)
    # ...but majority-complete detectors may not.  This single-message gap
    # separates Theorem 1 from Theorem 6.
    assert must_report_collision(Completeness.MAJORITY, 4, 2)
    # Less than half: both oblige.
    assert must_report_collision(Completeness.HALF, 4, 1)


def test_zero_completeness_only_on_total_loss():
    assert must_report_collision(Completeness.ZERO, 3, 0)
    assert not must_report_collision(Completeness.ZERO, 3, 1)
    assert not must_report_collision(Completeness.ZERO, 0, 0)


def test_none_never_obliges():
    for c, t in ((3, 0), (5, 2), (1, 0)):
        assert not must_report_collision(Completeness.NONE, c, t)


def test_invalid_transmission_data_rejected():
    with pytest.raises(ValueError):
        must_report_collision(Completeness.FULL, 2, 3)
    with pytest.raises(ValueError):
        must_report_collision(Completeness.FULL, -1, 0)


def test_completeness_strength_ordering():
    assert Completeness.FULL.at_least(Completeness.MAJORITY)
    assert Completeness.MAJORITY.at_least(Completeness.HALF)
    assert Completeness.HALF.at_least(Completeness.ZERO)
    assert Completeness.ZERO.at_least(Completeness.NONE)
    assert not Completeness.ZERO.at_least(Completeness.HALF)


# ----------------------------------------------------------------------
# Accuracy obligations (Properties 8-9)
# ----------------------------------------------------------------------
def test_always_accuracy_in_force_everywhere():
    assert accuracy_active(AccuracyMode.ALWAYS, 1, None)
    assert accuracy_active(AccuracyMode.ALWAYS, 10**6, None)


def test_eventual_accuracy_from_r_acc():
    assert not accuracy_active(AccuracyMode.EVENTUAL, 4, 5)
    assert accuracy_active(AccuracyMode.EVENTUAL, 5, 5)
    assert accuracy_active(AccuracyMode.EVENTUAL, 6, 5)


def test_eventual_accuracy_requires_r_acc():
    with pytest.raises(ValueError):
        accuracy_active(AccuracyMode.EVENTUAL, 1, None)


def test_never_accuracy_never_in_force():
    assert not accuracy_active(AccuracyMode.NEVER, 1, None)


def test_must_report_null_only_when_all_received():
    assert must_report_null(AccuracyMode.ALWAYS, 1, None, 3, 3)
    assert not must_report_null(AccuracyMode.ALWAYS, 1, None, 3, 2)
    assert not must_report_null(AccuracyMode.EVENTUAL, 1, 5, 3, 3)
    assert must_report_null(AccuracyMode.EVENTUAL, 5, 5, 3, 3)


def test_accuracy_mode_ordering():
    assert AccuracyMode.ALWAYS.at_least(AccuracyMode.EVENTUAL)
    assert AccuracyMode.EVENTUAL.at_least(AccuracyMode.NEVER)
    assert not AccuracyMode.NEVER.at_least(AccuracyMode.EVENTUAL)


# ----------------------------------------------------------------------
# advice_legal: joint obligation checking
# ----------------------------------------------------------------------
def test_advice_legal_enforces_completeness():
    assert not advice_legal(
        Completeness.FULL, AccuracyMode.NEVER, 1, None, 2, 1, False
    )
    assert advice_legal(
        Completeness.FULL, AccuracyMode.NEVER, 1, None, 2, 1, True
    )


def test_advice_legal_enforces_accuracy():
    assert not advice_legal(
        Completeness.ZERO, AccuracyMode.ALWAYS, 1, None, 2, 2, True
    )
    assert advice_legal(
        Completeness.ZERO, AccuracyMode.ALWAYS, 1, None, 2, 2, False
    )


def test_free_zone_allows_both_answers():
    # One of two messages lost with a zero-complete, accurate detector:
    # neither obligation fires.
    for reported in (True, False):
        assert advice_legal(
            Completeness.ZERO, AccuracyMode.ALWAYS, 1, None, 2, 1, reported
        )


# ----------------------------------------------------------------------
# Property-based checks
# ----------------------------------------------------------------------
ct_pairs = st.integers(0, 30).flatmap(
    lambda c: st.tuples(st.just(c), st.integers(0, c))
)


@given(ct_pairs)
def test_obligations_never_contradict(ct):
    """must_report_collision and must_report_null can never both fire."""
    c, t = ct
    for level in Completeness:
        obliged_collision = must_report_collision(level, c, t)
        obliged_null = must_report_null(
            AccuracyMode.ALWAYS, 1, None, c, t
        )
        assert not (obliged_collision and obliged_null)


@given(ct_pairs)
def test_stronger_completeness_obliges_superset(ct):
    c, t = ct
    order = [
        Completeness.NONE, Completeness.ZERO, Completeness.HALF,
        Completeness.MAJORITY, Completeness.FULL,
    ]
    for weak, strong in zip(order, order[1:]):
        if must_report_collision(weak, c, t):
            assert must_report_collision(strong, c, t)


@given(ct_pairs)
def test_maj_and_half_differ_only_at_exactly_half(ct):
    c, t = ct
    maj = must_report_collision(Completeness.MAJORITY, c, t)
    half = must_report_collision(Completeness.HALF, c, t)
    if maj != half:
        assert 2 * t == c and c > 0
