"""Property-based model invariants: every execution the engine produces
must satisfy Definition 11's constraints, whatever the adversaries do.

These tests drive randomized (but seeded) combinations of algorithm,
loss, crash, detector class, and contention manager, then check the
*finished execution* against the formal constraints using the trace
validators — the engine is not trusted, it is audited.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary.crash import SeededRandomCrashes
from repro.adversary.loss import (
    CaptureEffectLoss,
    EventualCollisionFreedom,
    IIDLoss,
    satisfies_ecf,
)
from repro.algorithms.alg2 import algorithm_2
from repro.algorithms.alg3 import algorithm_3
from repro.contention.services import KWakeUpService, WakeUpService
from repro.core.environment import Environment
from repro.core.execution import run_consensus
from repro.core.multiset import Multiset
from repro.detectors.classes import MAJ_OAC, ZERO_AC, ZERO_OAC
from repro.detectors.noise import check_detector_trace, check_noise_lemma
from repro.detectors.policy import SeededRandomPolicy
from repro.detectors.properties import AccuracyMode, Completeness

VALUES = list(range(8))

INVARIANT_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

params = st.fixed_dictionaries({
    "seed": st.integers(0, 10**6),
    "n": st.integers(2, 6),
    "cst": st.integers(1, 12),
    "loss_rate": st.floats(0.0, 0.9),
    "capture": st.booleans(),
    "detector": st.sampled_from(["maj-OAC", "0-OAC", "0-AC"]),
    "kwakeup": st.booleans(),
})


def build(p):
    inner = (
        CaptureEffectLoss(seed=p["seed"])
        if p["capture"]
        else IIDLoss(p["loss_rate"], seed=p["seed"])
    )
    det_cls = {"maj-OAC": MAJ_OAC, "0-OAC": ZERO_OAC, "0-AC": ZERO_AC}[
        p["detector"]
    ]
    policy = SeededRandomPolicy(0.4, seed=p["seed"] + 1)
    detector = (
        det_cls.make(r_acc=p["cst"], policy=policy)
        if det_cls.accuracy is AccuracyMode.EVENTUAL
        else det_cls.make(policy=policy)
    )
    cm = (
        KWakeUpService(k=2, stabilization_round=p["cst"])
        if p["kwakeup"]
        else WakeUpService(stabilization_round=p["cst"])
    )
    return Environment(
        indices=tuple(range(p["n"])),
        detector=detector,
        contention=cm,
        loss=EventualCollisionFreedom(inner, r_cf=p["cst"]),
        crash=SeededRandomCrashes(
            p=0.05, max_crashes=p["n"] - 1, deadline=20,
            seed=p["seed"] + 2,
        ),
    )


def run(p):
    env = build(p)
    assignment = {i: VALUES[(i + p["seed"]) % len(VALUES)]
                  for i in range(p["n"])}
    result = run_consensus(
        env, algorithm_2(VALUES), assignment, max_rounds=60
    )
    return env, result


@given(params)
@INVARIANT_SETTINGS
def test_receive_sets_always_submultisets(p):
    """Definition 11, constraint 4."""
    _, result = run(p)
    for rec in result.records:
        sent = Multiset(
            [m for m in rec.messages.values() if m is not None]
        )
        for pid in result.indices:
            assert rec.received[pid] <= sent


@given(params)
@INVARIANT_SETTINGS
def test_self_delivery_always_holds(p):
    """Definition 11, constraint 5."""
    _, result = run(p)
    for rec in result.records:
        for pid, message in rec.messages.items():
            if message is not None:
                assert message in rec.received[pid]


@given(params)
@INVARIANT_SETTINGS
def test_cd_trace_always_legal_for_the_class(p):
    """Definition 11, constraint 6: the recorded advice must be a legal
    output of a detector in the configured class."""
    env, result = run(p)
    det = env.detector
    assert check_detector_trace(
        result, det.completeness, det.accuracy, det.r_acc
    )


@given(params)
@INVARIANT_SETTINGS
def test_noise_lemma_holds_whenever_zero_complete(p):
    """Lemma 2 must hold for every zero-or-stronger detector class."""
    env, result = run(p)
    if env.detector.completeness.at_least(Completeness.ZERO):
        assert check_noise_lemma(result)


@given(params)
@INVARIANT_SETTINGS
def test_single_active_after_wakeup_stabilization(p):
    """Property 2 over the recorded CM trace (live processes only)."""
    _, result = run(p)
    for rec in result.records:
        if rec.round < p["cst"]:
            continue
        live_active = [
            pid
            for pid, advice in rec.cm_advice.items()
            if advice.value == "active"
            and (result.crash_rounds.get(pid) is None
                 or result.crash_rounds[pid] >= rec.round)
        ]
        assert len(live_active) <= 1


@given(params)
@INVARIANT_SETTINGS
def test_ecf_holds_from_r_cf(p):
    """Property 1 over the recorded transmission trace."""
    _, result = run(p)
    trace = result.transmission_trace()
    received = [entry.received for entry in trace]
    assert satisfies_ecf(trace, received, r_cf=p["cst"])


@given(params)
@INVARIANT_SETTINGS
def test_crashed_processes_stay_silent_forever(p):
    """The fail state is absorbing (Definition 1 / constraint 2)."""
    _, result = run(p)
    for pid, crash_round in result.crash_rounds.items():
        if crash_round is None:
            continue
        for rec in result.records:
            if rec.round > crash_round:
                assert rec.messages[pid] is None


@given(st.integers(0, 10**6), st.integers(2, 5))
@INVARIANT_SETTINGS
def test_alg3_runs_are_replayable(seed, n):
    """Same seeds => byte-identical executions (determinism audit)."""
    from repro.experiments.scenarios import nocf_environment

    def once():
        env = nocf_environment(n, loss=IIDLoss(0.5, seed=seed))
        assignment = {i: VALUES[(i * 3 + seed) % len(VALUES)]
                      for i in range(n)}
        return run_consensus(
            env, algorithm_3(VALUES), assignment, max_rounds=80
        )

    a, b = once(), once()
    assert a.decisions == b.decisions
    assert a.broadcast_count_sequence() == b.broadcast_count_sequence()
