"""Tests for the Conjecture 1 exploration machinery."""

import pytest

from repro.algorithms.nonanonymous import non_anonymous_algorithm
from repro.core.errors import ConfigurationError
from repro.lowerbounds.conjecture import (
    find_composable_pair,
    max_composable_prefix,
)

VALUES = list(range(64))
IDS = list(range(8))


def algo():
    return non_anonymous_algorithm(VALUES, IDS)


def test_found_pair_is_composable():
    outcome = find_composable_pair(algo(), IDS, 2, VALUES, k=2)
    assert outcome.found
    (set_a, v_a, res_a), (set_b, v_b, res_b) = outcome.pair
    assert v_a != v_b
    assert not (set(set_a) & set(set_b))
    assert res_a.broadcast_count_sequence(2) == (
        res_b.broadcast_count_sequence(2)
    )


def test_disjoint_mode_uses_the_partition():
    outcome = find_composable_pair(
        algo(), IDS, 2, VALUES, k=1, mode="disjoint"
    )
    assert outcome.found
    (set_a, _, _), (set_b, _, _) = outcome.pair
    # Partition groups are aligned blocks of size n.
    for s in (set_a, set_b):
        assert s[0] % 2 == 0 and s[1] == s[0] + 1


def test_mode_validation():
    with pytest.raises(ConfigurationError):
        find_composable_pair(algo(), IDS, 2, VALUES, k=1, mode="bogus")
    with pytest.raises(ConfigurationError):
        find_composable_pair(
            algo(), [0, 1, 2], 2, VALUES, k=1, mode="disjoint"
        )


def test_search_eventually_fails_at_long_prefixes():
    # With only two values the bit-spelling separates executions fast.
    small_values = [0, 1]
    small_algo = non_anonymous_algorithm(small_values, IDS)
    k_max = max_composable_prefix(
        small_algo, IDS, 2, small_values, mode="disjoint", k_limit=40
    )
    assert k_max < 40


def test_overlapping_universe_is_at_least_as_strong():
    k_disjoint = max_composable_prefix(
        algo(), IDS, 2, VALUES, mode="disjoint", k_limit=16
    )
    k_overlap = max_composable_prefix(
        algo(), IDS, 2, VALUES, mode="overlapping", k_limit=16
    )
    assert k_overlap >= k_disjoint >= 1


def test_pair_feeds_the_lemma23_composition():
    """The found pair must actually compose (end-to-end integration)."""
    from repro.lowerbounds.compose import compose_alpha_executions

    outcome = find_composable_pair(
        algo(), IDS, 2, VALUES, k=3, mode="overlapping"
    )
    assert outcome.found
    (set_a, v_a, res_a), (set_b, v_b, res_b) = outcome.pair
    composed = compose_alpha_executions(
        algo(), res_a, res_b, v_a, v_b, k=3
    )
    assert composed.indistinguishability_holds
