"""Tests for binary value encodings (Algorithm 2's V^{0,1})."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.algorithms.encoding import BinaryEncoding, bit_width, canonical_order
from repro.core.errors import ConfigurationError


def test_bit_width_formula():
    assert bit_width(1) == 1
    assert bit_width(2) == 1
    assert bit_width(3) == 2
    assert bit_width(4) == 2
    assert bit_width(5) == 3
    assert bit_width(1024) == 10
    assert bit_width(1025) == 11
    with pytest.raises(ConfigurationError):
        bit_width(0)


def test_canonical_order_sorts_naturally():
    assert canonical_order([3, 1, 2]) == [1, 2, 3]
    assert canonical_order(["b", "a"]) == ["a", "b"]


def test_canonical_order_falls_back_to_repr_for_mixed_types():
    out = canonical_order([1, "a"])
    assert set(out) == {1, "a"}
    assert out == sorted([1, "a"], key=repr)


def test_encoding_roundtrip_small():
    enc = BinaryEncoding(["commit", "abort"])
    assert enc.width == 1
    assert enc.decode(enc.encode("commit")) == "commit"
    assert enc.decode(enc.encode("abort")) == "abort"
    assert enc.encode("abort") != enc.encode("commit")


def test_encoding_preserves_canonical_order_lexicographically():
    """min over bit strings must agree with min over values — Algorithm 2
    relies on this when adopting the minimum estimate."""
    values = [17, 3, 250, 42, 99]
    enc = BinaryEncoding(values)
    ordered = canonical_order(values)
    encoded = [enc.encode(v) for v in ordered]
    assert encoded == sorted(encoded)


def test_encoding_bit_indexing_is_one_based_msb_first():
    enc = BinaryEncoding(list(range(4)))   # width 2
    bits = enc.encode(2)                   # rank 2 -> "10"
    assert bits == "10"
    assert enc.bit(bits, 1) == 1
    assert enc.bit(bits, 2) == 0
    with pytest.raises(ConfigurationError):
        enc.bit(bits, 0)
    with pytest.raises(ConfigurationError):
        enc.bit(bits, 3)


def test_encoding_rejects_unknown_values():
    enc = BinaryEncoding(["a"])
    with pytest.raises(ConfigurationError):
        enc.encode("b")
    with pytest.raises(ConfigurationError):
        enc.decode("1")


def test_encoding_rejects_duplicates_and_empty():
    with pytest.raises(ConfigurationError):
        BinaryEncoding(["a", "a"])
    with pytest.raises(ConfigurationError):
        BinaryEncoding([])


def test_contains_and_len():
    enc = BinaryEncoding(["x", "y"])
    assert "x" in enc and "z" not in enc
    assert len(enc) == 2


@given(st.sets(st.integers(-1000, 1000), min_size=1, max_size=200))
def test_roundtrip_property(values):
    enc = BinaryEncoding(values)
    for v in values:
        assert enc.decode(enc.encode(v)) == v


@given(st.sets(st.integers(0, 10**6), min_size=2, max_size=300))
def test_width_is_ceil_log2(values):
    enc = BinaryEncoding(values)
    assert enc.width == max(1, math.ceil(math.log2(len(values))))
    assert all(len(enc.encode(v)) == enc.width for v in values)


@given(st.sets(st.integers(0, 500), min_size=2, max_size=100))
def test_encodings_are_injective(values):
    enc = BinaryEncoding(values)
    codes = {enc.encode(v) for v in values}
    assert len(codes) == len(values)
