"""Property-based safety tests: agreement and validity must survive ANY
legal adversary.

The paper's safety/liveness separation says the algorithms' safety may
not depend on the contention manager, the channel, or detector free
choices.  Hypothesis drives randomized-but-legal combinations of all
three and asserts the safety half of each theorem unconditionally.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary.crash import SeededRandomCrashes
from repro.adversary.loss import EventualCollisionFreedom, IIDLoss
from repro.algorithms.alg1 import algorithm_1
from repro.algorithms.alg2 import algorithm_2
from repro.algorithms.alg3 import algorithm_3
from repro.contention.services import WakeUpService
from repro.core.consensus import evaluate
from repro.core.environment import Environment
from repro.core.execution import run_consensus
from repro.detectors.classes import MAJ_OAC, ZERO_OAC
from repro.detectors.policy import SeededRandomPolicy
from repro.experiments.scenarios import nocf_environment

VALUES = list(range(8))

adversary_params = st.fixed_dictionaries({
    "seed": st.integers(0, 10**6),
    "loss_rate": st.floats(0.0, 0.9),
    "cst": st.integers(1, 20),
    "n": st.integers(2, 6),
    "p_spurious": st.floats(0.0, 0.8),
    "crash_p": st.floats(0.0, 0.15),
})

SAFETY_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_env(detector_class, p):
    detector = detector_class.make(
        r_acc=p["cst"],
        policy=SeededRandomPolicy(p["p_spurious"], seed=p["seed"] + 1),
    )
    return Environment(
        indices=tuple(range(p["n"])),
        detector=detector,
        contention=WakeUpService(stabilization_round=p["cst"]),
        loss=EventualCollisionFreedom(
            IIDLoss(p["loss_rate"], seed=p["seed"]), r_cf=p["cst"]
        ),
        crash=SeededRandomCrashes(
            p=p["crash_p"], max_crashes=p["n"] - 1,
            deadline=p["cst"] + 10, seed=p["seed"] + 2,
        ),
    )


def assignment_for(n, seed):
    return {i: VALUES[(i * 3 + seed) % len(VALUES)] for i in range(n)}


@given(adversary_params)
@SAFETY_SETTINGS
def test_alg1_safety_is_unconditional(p):
    env = build_env(MAJ_OAC, p)
    result = run_consensus(
        env, algorithm_1(), assignment_for(p["n"], p["seed"]),
        max_rounds=80,
    )
    report = evaluate(result)
    assert report.agreement, report.problems
    assert report.strong_validity, report.problems


@given(adversary_params)
@SAFETY_SETTINGS
def test_alg2_safety_is_unconditional(p):
    env = build_env(ZERO_OAC, p)
    result = run_consensus(
        env, algorithm_2(VALUES), assignment_for(p["n"], p["seed"]),
        max_rounds=80,
    )
    report = evaluate(result)
    assert report.agreement, report.problems
    assert report.strong_validity, report.problems


@given(st.integers(0, 10**6), st.floats(0.0, 1.0), st.integers(2, 6))
@SAFETY_SETTINGS
def test_alg3_safety_under_arbitrary_loss(seed, loss_rate, n):
    env = nocf_environment(
        n,
        loss=IIDLoss(loss_rate, seed=seed),
        crash=SeededRandomCrashes(
            p=0.05, max_crashes=n - 1, deadline=20, seed=seed + 1
        ),
    )
    result = run_consensus(
        env, algorithm_3(VALUES), assignment_for(n, seed), max_rounds=120
    )
    report = evaluate(result)
    assert report.agreement, report.problems
    assert report.strong_validity, report.problems


@given(adversary_params)
@SAFETY_SETTINGS
def test_alg1_terminates_once_hypotheses_hold(p):
    """Liveness: with no crashes after CST, Algorithm 1 decides soon
    after stabilization (the wake-up service may first need to cycle to a
    proposal-phase-aligned live process)."""
    env = build_env(MAJ_OAC, p)
    env.crash = SeededRandomCrashes(
        p=p["crash_p"], max_crashes=p["n"] - 1,
        deadline=max(1, p["cst"] - 1), seed=p["seed"] + 2,
    )
    horizon = p["cst"] + 2 * (p["n"] + 2)
    result = run_consensus(
        env, algorithm_1(), assignment_for(p["n"], p["seed"]),
        max_rounds=horizon,
    )
    report = evaluate(result)
    assert report.termination, (
        f"no decision by round {horizon} (cst={p['cst']}): "
        f"{report.problems}"
    )
