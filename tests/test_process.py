"""Tests for process automata (Definition 1) and decision bookkeeping."""

import pytest

from repro.core.errors import ModelViolation
from repro.core.multiset import Multiset
from repro.core.process import Process, ScriptedProcess, SilentProcess
from repro.core.types import ACTIVE, NULL, PASSIVE


def step(proc, received=(), cd=NULL, cm=ACTIVE):
    proc.message(cm)
    proc.transition(Multiset(received), cd, cm)
    proc._advance_round()


def test_silent_process_never_broadcasts_or_decides():
    p = SilentProcess()
    assert p.message(ACTIVE) is None
    assert p.message(PASSIVE) is None
    step(p)
    assert not p.has_decided
    assert p.decision is None


def test_scripted_process_follows_script_then_goes_quiet():
    p = ScriptedProcess(["m1", None, "m2"])
    assert p.message(ACTIVE) == "m1"
    step(p)
    assert p.message(ACTIVE) is None
    step(p)
    assert p.message(ACTIVE) == "m2"
    step(p)
    assert p.message(ACTIVE) is None


def test_scripted_process_records_observations():
    p = ScriptedProcess([None])
    step(p, received=["x"], cd=NULL, cm=PASSIVE)
    assert p.observations == [(Multiset(["x"]), NULL, PASSIVE)]


def test_decide_latches_value_and_round():
    p = SilentProcess()
    step(p)
    p.decide("v")
    assert p.has_decided
    assert p.decision == "v"
    # decided during round 2 (one completed round + the in-flight one)
    assert p.decision_round == 2


def test_redecide_same_value_is_idempotent():
    p = SilentProcess()
    p.decide("v")
    p.decide("v")
    assert p.decision == "v"


def test_redecide_different_value_raises():
    p = SilentProcess()
    p.decide("v")
    with pytest.raises(ModelViolation):
        p.decide("w")


def test_halt_flags_process():
    p = SilentProcess()
    assert not p.halted
    p.halt()
    assert p.halted


def test_round_counter_advances():
    p = SilentProcess()
    assert p.round == 0
    step(p)
    step(p)
    assert p.round == 2


def test_custom_process_must_implement_interface():
    with pytest.raises(TypeError):
        Process()  # abstract
