"""Tier-1 docs gate: required docs exist and internal links resolve.

Runs the same checker CI uses (``tools/check_docs.py``) so a broken
link or a deleted doc fails locally before it fails in CI.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_required_docs_exist_and_links_resolve():
    checker = _load_checker()
    problems = checker.check(REPO_ROOT)
    assert problems == []


def test_checker_flags_broken_link(tmp_path):
    checker = _load_checker()
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "see [gone](docs/missing.md) and [ok](docs/campaigns.md)\n")
    (tmp_path / "docs" / "campaigns.md").write_text("hello\n")
    (tmp_path / "docs" / "architecture.md").write_text("hello\n")
    problems = checker.check(tmp_path)
    assert any("broken link" in p for p in problems)


def test_checker_skips_urls_anchors_and_code_fences(tmp_path):
    checker = _load_checker()
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "campaigns.md").write_text(
        "[web](https://example.com) [anchor](#section)\n"
        "```\n[fenced](does/not/exist.md)\n```\n")
    (tmp_path / "docs" / "architecture.md").write_text("hello\n")
    (tmp_path / "docs" / "failure-modes.md").write_text("hello\n")
    (tmp_path / "README.md").write_text("[a](docs/campaigns.md#section)\n")
    assert checker.check(tmp_path) == []
