"""Tests for execution records, traces, and indistinguishability."""

from repro.adversary.loss import PartitionLoss, ReliableDelivery
from repro.contention.services import LeaderElectionService, NoContentionManager
from repro.core.algorithm import Algorithm
from repro.core.environment import Environment
from repro.core.execution import run_algorithm
from repro.core.process import ScriptedProcess
from repro.core.records import indistinguishable
from repro.detectors.detector import no_cd_detector, perfect_detector


def run_scripted(scripts, n, loss=None, rounds=3, cm=None, detector=None):
    env = Environment(
        indices=tuple(range(n)),
        detector=detector or perfect_detector(),
        contention=cm or NoContentionManager(),
        loss=loss or ReliableDelivery(),
    )
    algo = Algorithm(
        lambda i: ScriptedProcess(scripts.get(i, [])), anonymous=False
    )
    return run_algorithm(env, algo, max_rounds=rounds, until_all_decided=False)


def test_transmission_trace_counts():
    result = run_scripted({0: ["a", None], 1: ["b", "c"]}, n=3, rounds=2)
    trace = result.transmission_trace()
    assert trace[0].broadcasters == 2
    assert trace[0].received == {0: 2, 1: 2, 2: 2}
    assert trace[1].broadcasters == 1
    assert trace[0].loss_at(2) == 0


def test_broadcast_count_sequence_buckets():
    result = run_scripted(
        {0: ["a", None, "x"], 1: ["b", None, None]}, n=2, rounds=3
    )
    assert result.broadcast_count_sequence() == ("2+", 0, 1)
    assert result.broadcast_count_sequence(2) == ("2+", 0)


def test_cd_and_cm_traces_have_full_coverage():
    result = run_scripted({0: ["a"]}, n=2, rounds=1,
                          cm=LeaderElectionService(1, leader=0))
    assert set(result.cd_trace()[0]) == {0, 1}
    assert set(result.cm_trace()[0]) == {0, 1}


def test_view_exposes_only_local_observables():
    result = run_scripted({0: ["a"], 1: ["b"]}, n=2, rounds=1)
    view = result.view(0)
    assert len(view) == 1
    message, received, cd, cm = view[0]
    assert message == "a"
    assert set(received.support()) == {"a", "b"}


def test_indistinguishability_same_execution():
    result = run_scripted({0: ["a"]}, n=2, rounds=2)
    assert indistinguishable(result, result, 0, 2)


def test_partitioned_groups_are_indistinguishable_from_solo_runs():
    """The core mechanism of Theorem 4: under a NoCD detector (always ±),
    a partitioned run looks exactly like a solo run to each group."""
    scripts = {0: ["a", "a"], 2: ["b", "b"]}
    solo_a = run_scripted(
        {0: ["a", "a"]}, n=2, rounds=2, detector=no_cd_detector()
    )
    merged = run_scripted(
        scripts, n=4,
        loss=PartitionLoss([(0, 1), (2, 3)]),
        rounds=2,
        detector=no_cd_detector(),
    )
    for pid in (0, 1):
        assert indistinguishable(merged, solo_a, pid, 2)


def test_partition_is_visible_to_a_perfect_detector():
    """With full completeness the same partition IS distinguishable —
    which is exactly why Theorem 4 needs the NoCD hypothesis."""
    solo_a = run_scripted({0: ["a", "a"]}, n=2, rounds=2)
    merged = run_scripted(
        {0: ["a", "a"], 2: ["b", "b"]}, n=4,
        loss=PartitionLoss([(0, 1), (2, 3)]),
        rounds=2,
    )
    assert not indistinguishable(merged, solo_a, 0, 2)


def test_indistinguishability_detects_different_receptions():
    clean = run_scripted({0: ["a"], 1: ["b"]}, n=2, rounds=1)
    partitioned = run_scripted(
        {0: ["a"], 1: ["b"]}, n=2,
        loss=PartitionLoss([(0,), (1,)]), rounds=1,
    )
    assert not indistinguishable(clean, partitioned, 0, 1)


def test_indistinguishability_cross_index():
    """Lemma 20-style comparison of different indices in different runs."""
    left = run_scripted({0: ["m"]}, n=2, rounds=1)
    right = run_scripted({2: ["m"]}, n=4, rounds=1)
    # Process 1 (listener) in `left` sees what process 3 (listener) sees
    # in `right`: same message, same advice.
    assert indistinguishable(left, right, 1, 1, pid_b=3)


def test_initial_values_participate_in_indistinguishability():
    from repro.core.records import ExecutionResult

    base = run_scripted({}, n=2, rounds=1)
    a = ExecutionResult(
        base.indices, base.records, base.decisions,
        base.decision_rounds, base.crash_rounds,
        initial_values={0: "x", 1: "x"},
    )
    b = ExecutionResult(
        base.indices, base.records, base.decisions,
        base.decision_rounds, base.crash_rounds,
        initial_values={0: "y", 1: "x"},
    )
    assert not indistinguishable(a, b, 0, 1)
    assert indistinguishable(a, b, 1, 1)


def test_decided_values_and_termination_queries():
    result = run_scripted({}, n=2, rounds=1)
    assert result.decided_values() == {}
    assert not result.all_correct_decided()
    assert result.last_decision_round() is None
