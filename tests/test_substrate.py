"""Tests for the physical substrate (radio, carrier sense, clocks, testbed)."""

import pytest

from repro.adversary.crash import ScheduledCrashes
from repro.algorithms.alg1 import algorithm_1
from repro.algorithms.alg2 import algorithm_2
from repro.core.consensus import evaluate
from repro.core.errors import ConfigurationError
from repro.core.types import COLLISION, NULL
from repro.substrate.carrier_sense import (
    CarrierSenseDetector,
    measure_detector_quality,
)
from repro.substrate.clock import (
    ClockModel,
    DriftingClock,
    ReferenceBroadcastSync,
)
from repro.substrate.device import PhysicalLayer, Testbed
from repro.substrate.radio import RadioChannel, RadioConfig, TransmissionOutcome


# ----------------------------------------------------------------------
# Radio channel
# ----------------------------------------------------------------------
def test_radio_config_validation():
    with pytest.raises(ConfigurationError):
        RadioConfig(tx_power=0)
    with pytest.raises(ConfigurationError):
        RadioConfig(burst_probability=2.0)


def test_single_broadcaster_is_nearly_always_decoded():
    channel = RadioChannel(seed=0)
    stats = channel.loss_statistics(n=6, broadcasters=1, rounds=300)
    assert stats["single_broadcaster_delivery"] > 0.99


def test_contention_loss_grows_with_broadcasters():
    fractions = []
    for b in (2, 3, 5):
        channel = RadioChannel(seed=1)
        fractions.append(
            channel.loss_statistics(n=8, broadcasters=b, rounds=300)[
                "loss_fraction"
            ]
        )
    assert fractions[0] < fractions[1] < fractions[2]


def test_pairwise_contention_in_papers_loss_band():
    channel = RadioChannel(seed=2)
    two = channel.loss_statistics(n=8, broadcasters=2, rounds=400)
    channel.reset()
    three = channel.loss_statistics(n=8, broadcasters=3, rounds=400)
    # 2-3 simultaneous senders bracket the paper's 20-50% band.
    assert two["loss_fraction"] < 0.5
    assert three["loss_fraction"] > 0.2


def test_receive_sets_are_non_uniform():
    """The capture-effect scenario of §1.1: two receivers of the same two
    broadcasts can decode different subsets."""
    channel = RadioChannel(seed=3)
    differs = False
    for _ in range(100):
        outcomes = channel.resolve_round([0, 1], [2, 3])
        if set(outcomes[2].decoded) != set(outcomes[3].decoded):
            differs = True
            break
    assert differs


def test_interference_burst_can_kill_single_broadcast():
    cfg = RadioConfig(burst_probability=1.0, burst_noise=50.0)
    channel = RadioChannel(cfg, seed=0)
    outcomes = channel.resolve_round([0], [1])
    assert outcomes[1].decoded == ()
    assert outcomes[1].burst


def test_channel_is_deterministic_per_seed():
    a = RadioChannel(seed=9).resolve_round([0, 1, 2], [3])
    b = RadioChannel(seed=9).resolve_round([0, 1, 2], [3])
    assert a[3].decoded == b[3].decoded


def test_loss_statistics_validates_broadcasters():
    with pytest.raises(ConfigurationError):
        RadioChannel().loss_statistics(4, 5, 10)


# ----------------------------------------------------------------------
# Carrier sensing
# ----------------------------------------------------------------------
def test_carrier_sense_flags_undecoded_energy():
    det = CarrierSenseDetector(RadioConfig())
    noisy = TransmissionOutcome(decoded=(), total_energy=3.0, burst=False)
    assert det.advise_from_outcome(noisy) is COLLISION
    clean = TransmissionOutcome(decoded=(5,), total_energy=1.0, burst=False)
    assert det.advise_from_outcome(clean) is NULL
    silent = TransmissionOutcome(decoded=(), total_energy=0.0, burst=False)
    assert det.advise_from_outcome(silent) is NULL


def test_measured_quality_reproduces_paper_shape():
    stats = measure_detector_quality(n=8, broadcasters=3, rounds=300, seed=1)
    assert stats.zero_complete_rate > 0.99       # "100% of rounds"
    assert stats.majority_complete_rate > 0.9    # "over 90%"
    assert stats.full_complete_rate <= stats.majority_complete_rate
    assert stats.observations == 8 * 300
    rows = stats.as_rows()
    assert {r["property"] for r in rows} == {
        "0-completeness", "half-completeness", "maj-completeness",
        "completeness", "accuracy",
    }


# ----------------------------------------------------------------------
# Clocks
# ----------------------------------------------------------------------
def test_drifting_clock_accumulates_skew():
    fast = DriftingClock(rate_error=100e-6)
    slow = DriftingClock(rate_error=-100e-6)
    skew = fast.local_time(1000.0) - slow.local_time(1000.0)
    assert skew == pytest.approx(0.2)


def test_resync_collapses_offset():
    clock = DriftingClock(rate_error=100e-6)
    clock.resynchronise(true_time=1000.0, jitter=0.0)
    assert clock.local_time(1000.0) == pytest.approx(1000.0)


def test_rbs_keeps_rounds_aligned():
    sync = ReferenceBroadcastSync(n=10, resync_interval=100, seed=0)
    assert sync.rounds_stay_aligned(1000)


def test_skew_grows_without_resync():
    model = ClockModel(drift_ppm=100.0)
    rare = ReferenceBroadcastSync(5, model=model, resync_interval=10**6,
                                  seed=4)
    often = ReferenceBroadcastSync(5, model=model, resync_interval=20,
                                   seed=4)
    assert rare.max_skew_between_resyncs(500) > (
        often.max_skew_between_resyncs(500)
    )


def test_clock_model_validation():
    with pytest.raises(ConfigurationError):
        ClockModel(round_length=0)
    with pytest.raises(ConfigurationError):
        ReferenceBroadcastSync(n=1)


# ----------------------------------------------------------------------
# Testbed
# ----------------------------------------------------------------------
def test_physical_layer_serves_both_interfaces_consistently():
    layer = PhysicalLayer((0, 1, 2), seed=0)
    losses = layer.losses(1, [0, 1], 2)
    advice = layer.advise(1, 2, {0: 1, 1: 1, 2: 0})
    assert set(advice) == {0, 1, 2}
    assert losses <= {0, 1}


def test_testbed_runs_alg2_to_agreement():
    # A 2-value domain decides within ~6 rounds -- before the backoff ever
    # hears a confirmed single-broadcaster round -- so use a 16-value
    # domain: the longer descent gives the channel time to confirm a
    # leader (lock-in now requires a *heard* solo broadcast, not merely
    # solo-active advice).
    testbed = Testbed(n=5, seed=7)
    values = list(range(16))
    result = testbed.run(
        algorithm_2(values),
        {i: values[i % 16] for i in range(5)},
        max_rounds=2000,
    )
    report = evaluate(result.execution)
    assert report.solved
    assert result.leader is not None
    assert result.backoff_stabilized_at is not None


def test_testbed_alg1_safe_across_seeds():
    for seed in range(5):
        testbed = Testbed(n=4, seed=seed)
        result = testbed.run(
            algorithm_1(), {i: i for i in range(4)}, max_rounds=2000
        )
        report = evaluate(result.execution)
        assert report.safe, f"seed {seed}: {report.problems}"


def test_testbed_with_crashes_keeps_safety():
    testbed = Testbed(
        n=4, seed=3, crash=ScheduledCrashes.at({5: [0]})
    )
    result = testbed.run(
        algorithm_2(list(range(4))), {i: i for i in range(4)},
        max_rounds=2000,
    )
    report = evaluate(result.execution)
    assert report.agreement and report.strong_validity
