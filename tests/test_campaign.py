"""The campaign layer: sqlite round/cell store and the resumable runner.

Covers the PR's durability contract end to end:

* ``SqliteSink`` round-trips round summaries (write, reopen, read back
  ordered by round) and survives two processes appending to one
  database (WAL mode);
* ``JsonlSink``/``SqliteSink`` open lazily, so a cell that raises
  before round 1 leaves nothing on disk (the ``consensus_sweep_cell``
  exception path);
* ``CampaignRunner.resume`` is idempotent — the parity suite interrupts
  after any prefix under every dispatcher configuration ({1, 4} workers
  x {no timeout, timeout}) and each resumed report is byte-identical to
  the in-process serial reference;
* per-cell timeouts checkpoint ``timed_out`` instead of killing the
  grid — enforced by the unified dispatcher pool at any width (overrun
  workers are replaced, SIGTERM-ignoring cells cannot hang the grid, a
  worker dying mid-cell checkpoints ``failed``, and a 4-wide pool beats
  a one-worker pool by >= 2x on sleepy grids);
* worker reuse is universal: a grid larger than the pool runs on at
  most ``processes`` distinct worker pids, with or without a timeout,
  and back-to-back resumes reuse the parked pool;
* teardown is deterministic: every test asserts no leaked child
  processes afterwards (an autouse fixture), and ``close()`` — not GC
  timing — reaps the pool;
* a killed or failed attempt leaves zero rows in ``round_summaries``;
* ``failed`` cells are retried on resume only within the
  ``max_retries`` budget (``attempts`` is migrated into pre-existing
  stores in place); a store created under a different base_seed is
  rejected loudly.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sqlite3
import time

import pytest

from repro.core.errors import ConfigurationError
from repro.core.records import JsonlSink, RecordPolicy, RoundSummary, SqliteSink
from repro.experiments.campaign import CampaignRunner, cell_tag
from repro.experiments.dispatch import CampaignDispatcher
from repro.experiments.harness import SweepRunner, consensus_sweep_cell


@pytest.fixture(autouse=True)
def no_leaked_workers():
    """Satellite invariant: no campaign test may leak a child process.

    Autouse, so it is set up before (and finalized after) the
    ``make_runner`` teardown — by the time this assertion runs, every
    runner the test created has been closed.
    """
    yield
    children = multiprocessing.active_children()
    assert children == [], f"leaked worker processes: {children}"


@pytest.fixture
def make_runner():
    """Factory for runners that are always closed at teardown."""
    runners = []

    def make(*args, **kwargs):
        runner = CampaignRunner(*args, **kwargs)
        runners.append(runner)
        return runner

    yield make
    for runner in runners:
        runner.close()


def _summary(r: int, bc: int = 2, crashed=(), decided=None) -> RoundSummary:
    return RoundSummary(
        round=r,
        broadcast_count=bc,
        crashed_during=frozenset(crashed),
        decided_during=dict(decided or {}),
    )


# ----------------------------------------------------------------------
# SqliteSink: the observer protocol and the store
# ----------------------------------------------------------------------
def test_sqlite_sink_roundtrip_ordered_by_round(tmp_path):
    db = str(tmp_path / "campaign.db")
    with SqliteSink(db, cell_seed=11) as sink:
        # Out-of-order writes must still read back ordered by round.
        for r in (3, 1, 2):
            sink(_summary(r, bc=r, crashed={r}, decided={0: r * 10}))
        assert sink.rounds_written == 3
    with SqliteSink(db) as sink:
        rows = sink.read_summaries(cell_seed=11)
    assert [s.round for s in rows] == [1, 2, 3]
    assert [s.broadcast_count for s in rows] == [1, 2, 3]
    assert rows[0].crashed_during == frozenset({1})
    assert rows[2].decided_during == {0: 30}
    # A different cell's keyspace is empty.
    with SqliteSink(db) as sink:
        assert sink.read_summaries(cell_seed=999) == []


def test_sqlite_sink_write_is_idempotent_per_round(tmp_path):
    db = str(tmp_path / "campaign.db")
    with SqliteSink(db, cell_seed=5) as sink:
        sink(_summary(1, bc=1))
        sink(_summary(1, bc=4))  # replayed round overwrites, no dup key
        assert [s.broadcast_count for s in sink.read_summaries()] == [4]


def test_sqlite_sink_streams_from_engine(tmp_path):
    db = str(tmp_path / "campaign.db")
    payload = consensus_sweep_cell(
        {"n": 3, "values": 4, "record_policy": "none", "sqlite_db": db},
        seed=77,
    )
    with SqliteSink(db) as sink:
        rows = sink.read_summaries(cell_seed=77)
    assert len(rows) == payload["rounds"]
    assert [s.round for s in rows] == list(range(1, payload["rounds"] + 1))


def test_sqlite_sink_rejects_after_close_and_without_seed(tmp_path):
    db = str(tmp_path / "campaign.db")
    sink = SqliteSink(db, cell_seed=1)
    sink.close()
    with pytest.raises(ConfigurationError):
        sink(_summary(1))
    storeless = SqliteSink(db)  # store-only: observing needs a cell_seed
    with pytest.raises(ConfigurationError):
        storeless(_summary(1))
    storeless.close()


def _append_rounds(db: str, cell_seed: int, rounds: int) -> None:
    """Two-process append worker (module-level so it forks/spawns)."""
    with SqliteSink(db, cell_seed=cell_seed) as sink:
        for r in range(1, rounds + 1):
            sink(_summary(r, bc=cell_seed))


def test_sqlite_sink_concurrent_two_process_append(tmp_path):
    db = str(tmp_path / "campaign.db")
    # Create the schema up front so both writers race only on appends —
    # and close the connection before forking (an inherited sqlite
    # descriptor can break the writers' WAL locking).
    with SqliteSink(db, cell_seed=0) as schema:
        schema._connect()
    procs = [
        multiprocessing.Process(target=_append_rounds, args=(db, seed, 40))
        for seed in (101, 202)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60)
    assert all(p.exitcode == 0 for p in procs)
    with SqliteSink(db) as sink:
        for seed in (101, 202):
            rows = sink.read_summaries(cell_seed=seed)
            assert [s.round for s in rows] == list(range(1, 41))
            assert all(s.broadcast_count == seed for s in rows)


# ----------------------------------------------------------------------
# Lazy sinks: the consensus_sweep_cell exception path
# ----------------------------------------------------------------------
def test_jsonl_sink_opens_lazily(tmp_path):
    path = tmp_path / "rounds.jsonl"
    sink = JsonlSink(str(path))
    assert not path.exists()          # nothing on disk until round 1
    sink(_summary(1))
    assert path.exists()
    sink.close()


def test_sweep_cell_failure_before_round_one_leaves_no_sink_file(
    tmp_path, monkeypatch
):
    import repro.core.execution as execution

    def boom(*args, **kwargs):
        raise RuntimeError("engine refused to start")

    monkeypatch.setattr(execution, "run_consensus", boom)
    db = str(tmp_path / "campaign.db")
    with pytest.raises(RuntimeError, match="refused to start"):
        consensus_sweep_cell(
            {"n": 3, "values": 4, "sink_dir": str(tmp_path / "sinks"),
             "sqlite_db": db},
            seed=9,
        )
    sink_dir = tmp_path / "sinks"
    assert not db_exists_with_rows(db)
    assert not sink_dir.exists() or list(sink_dir.iterdir()) == []


def db_exists_with_rows(db: str) -> bool:
    if not os.path.exists(db):
        return False
    with SqliteSink(db) as sink:
        return bool(sink.read_summaries(cell_seed=9))


# ----------------------------------------------------------------------
# CampaignRunner: resume determinism
# ----------------------------------------------------------------------
AXES = dict(
    n=[3, 4], detector=["0-OAC"], loss_rate=[0.1, 0.3], trial=[0, 1],
    values=[8], record_policy=["summary"],
)


def _serial_runner(db: str, base_seed: int = 3, **kwargs) -> CampaignRunner:
    """The in-process serial reference every other configuration must
    match byte-for-byte (``in_process=True`` spawns no workers)."""
    return CampaignRunner(
        consensus_sweep_cell, db_path=db, base_seed=base_seed,
        in_process=True, **kwargs,
    )


@pytest.fixture(scope="module")
def serial_reference_report(tmp_path_factory):
    """The AXES grid's report bytes from one clean in-process pass."""
    db = str(tmp_path_factory.mktemp("parity") / "serial.db")
    runner = _serial_runner(db)
    outcomes = runner.resume(**AXES)
    assert all(o.status == "done" for o in outcomes)
    return runner.report(**AXES)


@pytest.mark.parametrize("prefix", [1, 3, 7])
def test_resume_after_any_prefix_is_byte_identical(
    tmp_path, prefix, serial_reference_report
):
    interrupted = _serial_runner(str(tmp_path / "interrupted.db"))
    first = interrupted.resume(max_cells=prefix, **AXES)
    assert len(first) == prefix
    assert all(o.status == "done" for o in first)
    second = interrupted.resume(**AXES)
    assert len(second) == 8

    assert interrupted.report(**AXES) == serial_reference_report
    # Resuming a complete campaign is a no-op with the same bytes.
    third = interrupted.resume(**AXES)
    assert [o.status for o in third] == [o.status for o in second]
    assert interrupted.report(**AXES) == serial_reference_report


# The dispatcher parity suite: one fixed grid, every dispatcher
# configuration x every interruption point, all byte-identical to the
# serial reference.  This is the refactor's acceptance bar — pool
# width, deadlines, and interrupt/resume scheduling must be invisible
# in the report.
@pytest.mark.parametrize("prefix", [1, 3, 7])
@pytest.mark.parametrize("cell_timeout", [None, 60.0],
                         ids=["no-timeout", "timeout"])
@pytest.mark.parametrize("processes", [1, 4])
def test_unified_loop_parity_under_interrupt_and_resume(
    tmp_path, make_runner, serial_reference_report,
    processes, cell_timeout, prefix,
):
    runner = make_runner(
        consensus_sweep_cell, db_path=str(tmp_path / "c.db"),
        base_seed=3, processes=processes, cell_timeout=cell_timeout,
    )
    first = runner.resume(max_cells=prefix, **AXES)
    assert len(first) == prefix
    assert all(o.status == "done" for o in first)
    resumed = runner.resume(**AXES)
    assert len(resumed) == 8
    assert all(o.status == "done" for o in resumed)
    assert runner.report(**AXES) == serial_reference_report


def test_outcomes_payloads_survive_the_json_roundtrip(tmp_path):
    runner = _serial_runner(str(tmp_path / "campaign.db"))
    outcomes = runner.resume(**AXES)
    fresh = consensus_sweep_cell(
        outcomes[0].params, outcomes[0].cell.seed
    )
    # Stored payloads are the canonical-JSON round-trip of fresh ones.
    assert outcomes[0].payload == json.loads(
        json.dumps(fresh, sort_keys=True, default=str)
    )


def test_store_with_different_base_seed_is_rejected(tmp_path):
    db = str(tmp_path / "campaign.db")
    _serial_runner(db, base_seed=3).resume(max_cells=2, **AXES)
    with pytest.raises(ConfigurationError, match="different base_seed"):
        _serial_runner(db, base_seed=4).resume(**AXES)
    # The read-only paths reject the mismatch too — a report must never
    # attribute stored payloads to seeds they were not produced under.
    with pytest.raises(ConfigurationError, match="different base_seed"):
        _serial_runner(db, base_seed=4).report(**AXES)
    with pytest.raises(ConfigurationError, match="different base_seed"):
        _serial_runner(db, base_seed=4).outcomes(**AXES)


def test_rerun_clears_stale_rounds_from_a_dead_attempt(tmp_path):
    db = str(tmp_path / "campaign.db")
    runner = _serial_runner(db, extra_params={"sqlite_db": db})
    # Simulate a killed earlier attempt: 40 orphan rounds streamed under
    # a pending cell's seed, with no cells row checkpointed.
    victim = runner.cells(**AXES)[0]
    with SqliteSink(db, cell_seed=victim.seed) as sink:
        for r in range(1, 41):
            sink(_summary(r, bc=9))
    outcomes = runner.resume(**AXES)
    (outcome,) = [o for o in outcomes if o.cell.seed == victim.seed]
    with SqliteSink(db) as sink:
        rows = sink.read_summaries(cell_seed=victim.seed)
    # No stale rows past the real attempt's final round.
    assert len(rows) == outcome.payload["rounds"] < 40
    assert all(s.broadcast_count != 9 for s in rows)


def test_campaign_streams_round_summaries_into_the_same_db(tmp_path):
    db = str(tmp_path / "campaign.db")
    runner = _serial_runner(db, extra_params={"sqlite_db": db})
    outcomes = runner.resume(max_cells=2, **AXES)
    with SqliteSink(db) as sink:
        for outcome in outcomes:
            rows = sink.read_summaries(cell_seed=outcome.cell.seed)
            assert len(rows) == outcome.payload["rounds"]
    # extra_params stay out of cell identity: tags only hold grid coords.
    assert "sqlite_db" not in cell_tag(outcomes[0].cell)
    assert "sqlite_db" not in runner.report(**AXES)


# ----------------------------------------------------------------------
# CampaignRunner: timeouts and failure isolation
# ----------------------------------------------------------------------
def _sleepy_cell(params, seed):
    if params["trial"] == 1:
        time.sleep(60)
    return {"seed": seed, "trial": params["trial"]}


def _flaky_cell(params, seed):
    if not os.path.exists(params["flag"]):
        raise ValueError(f"flag missing for trial {params['trial']}")
    return {"seed": seed}


def test_cell_timeout_marks_timed_out_without_killing_the_grid(
    tmp_path, make_runner
):
    runner = make_runner(
        _sleepy_cell, db_path=str(tmp_path / "campaign.db"),
        base_seed=0, cell_timeout=1.0,
    )
    outcomes = runner.resume(trial=[0, 1, 2])
    assert [o.status for o in outcomes] == ["done", "timed_out", "done"]
    assert outcomes[1].payload is None
    # Resume skips the timed-out cell rather than hanging on it again.
    start = time.monotonic()
    again = runner.resume(trial=[0, 1, 2])
    assert time.monotonic() - start < 30
    assert [o.status for o in again] == ["done", "timed_out", "done"]


def test_failed_cells_are_checkpointed_and_retried_on_resume(
    tmp_path, make_runner
):
    flag = str(tmp_path / "flag")
    runner = make_runner(
        _flaky_cell, db_path=str(tmp_path / "campaign.db"),
        base_seed=0, processes=0, extra_params={"flag": flag},
    )
    outcomes = runner.resume(trial=[0, 1])
    assert [o.status for o in outcomes] == ["failed", "failed"]
    assert "flag missing" in outcomes[0].error
    open(flag, "w").close()
    outcomes = runner.resume(trial=[0, 1])
    assert [o.status for o in outcomes] == ["done", "done"]


# ----------------------------------------------------------------------
# The unified dispatcher pool: fan-out, deadlines, worker lifecycle
# ----------------------------------------------------------------------
def _stubborn_cell(params, seed):
    """Trial 1 ignores SIGTERM and sleeps far past any deadline."""
    if params["trial"] == 1:
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(120)
    return {"seed": seed, "trial": params["trial"]}


def _napping_cell(params, seed):
    """Every cell sleeps a fixed beat — wall-clock is pure dispatch."""
    time.sleep(0.4)
    return {"seed": seed, "trial": params["trial"]}


def _streaming_cell(params, seed):
    """Streams five rounds, then (by trial) returns, hangs, or raises."""
    from repro.core.records import SqliteSink

    with SqliteSink(params["db"], cell_seed=seed) as sink:
        for r in range(1, 6):
            sink(_summary(r, bc=7))
    if params["trial"] == 1:
        time.sleep(120)
    if params["trial"] == 2:
        raise RuntimeError("deterministic crash after streaming")
    return {"seed": seed, "trial": params["trial"]}


def test_deadline_pool_times_out_cells_in_parallel(tmp_path, make_runner):
    """Two sleepers on a 3-wide pool: both overrun concurrently, both
    workers are replaced, and the grid keeps moving."""
    runner = make_runner(
        _sleepy_cell, db_path=str(tmp_path / "campaign.db"),
        base_seed=0, processes=3, cell_timeout=1.0,
    )
    start = time.monotonic()
    outcomes = runner.resume(trial=[0, 1, 2])
    elapsed = time.monotonic() - start
    assert [o.status for o in outcomes] == ["done", "timed_out", "done"]
    # The sleeper burned its budget concurrently with the other cells,
    # not serially after them.
    assert elapsed < 30
    # Resume skips the timed-out cell rather than hanging on it again.
    again = runner.resume(trial=[0, 1, 2])
    assert [o.status for o in again] == ["done", "timed_out", "done"]


def test_sigterm_ignoring_cell_cannot_hang_the_pool(tmp_path, make_runner):
    """terminate→kill escalation: a cell that ignores SIGTERM is still
    evicted, its worker replaced, and every other cell completes."""
    runner = make_runner(
        _stubborn_cell, db_path=str(tmp_path / "campaign.db"),
        base_seed=0, processes=2, cell_timeout=1.0,
    )
    start = time.monotonic()
    outcomes = runner.resume(trial=[0, 1, 2, 3])
    elapsed = time.monotonic() - start
    assert [o.status for o in outcomes] == [
        "done", "timed_out", "done", "done"
    ]
    assert elapsed < 60
    # The replacement worker (not the killed one) ran the later cells.
    assert outcomes[2].payload["trial"] == 2
    assert outcomes[3].payload["trial"] == 3


def test_wide_pool_beats_one_worker_pool(tmp_path, make_runner):
    """8 napping cells: 4 pooled workers must finish the grid at least
    2x faster than the same loop at width 1."""
    trials = list(range(8))
    serial = make_runner(
        _napping_cell, db_path=str(tmp_path / "serial.db"),
        base_seed=0, processes=1, cell_timeout=30.0,
    )
    start = time.monotonic()
    serial.resume(trial=trials)
    serial_elapsed = time.monotonic() - start

    pooled = make_runner(
        _napping_cell, db_path=str(tmp_path / "pooled.db"),
        base_seed=0, processes=4, cell_timeout=30.0,
    )
    start = time.monotonic()
    pooled.resume(trial=trials)
    pooled_elapsed = time.monotonic() - start

    assert pooled.report(trial=trials) == serial.report(trial=trials)
    assert pooled_elapsed * 2 <= serial_elapsed, (
        f"pooled {pooled_elapsed:.2f}s vs serial {serial_elapsed:.2f}s"
    )


def _worker_pid_cell(params, seed):
    """Reports which pool worker process ran it."""
    return {"worker_pid": os.getpid(), "trial": params["trial"]}


def _suicidal_cell(params, seed):
    """Trial 1 hard-kills its own worker mid-cell (no reply, no EOF
    courtesy) — the OOM-kill / hard-crash stand-in."""
    if params["trial"] == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return {"seed": seed, "trial": params["trial"]}


@pytest.mark.parametrize("cell_timeout", [None, 30.0],
                         ids=["no-timeout", "timeout"])
def test_worker_reuse_is_universal(tmp_path, make_runner, cell_timeout):
    """Acceptance bar: a grid larger than the pool runs on at most
    ``processes`` distinct worker pids — with and without a timeout."""
    runner = make_runner(
        _worker_pid_cell, db_path=str(tmp_path / "c.db"),
        base_seed=2, processes=2, cell_timeout=cell_timeout,
    )
    outcomes = runner.resume(trial=list(range(8)))
    assert all(o.status == "done" for o in outcomes)
    pids = {o.payload["worker_pid"] for o in outcomes}
    assert 1 <= len(pids) <= 2
    # The runner publishes the same accounting for the benchmarks.
    stats = runner.last_dispatch_stats
    assert stats["cells"] == 8
    assert stats["distinct_worker_pids"] == len(pids)
    assert stats["in_process"] is False


@pytest.mark.parametrize("cell_timeout", [None, 30.0],
                         ids=["no-timeout", "timeout"])
def test_worker_death_mid_cell_checkpoints_failed(
    tmp_path, make_runner, cell_timeout
):
    """A worker dying mid-cell (SIGKILL — no reply ever comes) must
    checkpoint the cell ``failed`` and keep the grid moving, on both
    the timeout and no-timeout configurations (the no-timeout loop
    blocks on the pipes indefinitely, so the EOF is its only wake-up)."""
    runner = make_runner(
        _suicidal_cell, db_path=str(tmp_path / "c.db"),
        base_seed=0, processes=2, cell_timeout=cell_timeout,
        max_retries=0,
    )
    outcomes = runner.resume(trial=[0, 1, 2, 3])
    assert [o.status for o in outcomes] == [
        "done", "failed", "done", "done"
    ]
    assert "worker died without a result" in outcomes[1].error


def test_pool_workers_survive_across_resumes(tmp_path):
    """Two back-to-back resumes on one runner reuse the same pool
    workers: the second pass's cells run on the pids the first pass
    spawned, and only close() tears the pool down."""
    runner = CampaignRunner(
        _worker_pid_cell, db_path=str(tmp_path / "c.db"),
        base_seed=2, processes=2, cell_timeout=30.0,
    )
    try:
        first = runner.resume(trial=[0, 1])
        pool_pids_after_first = set(runner.dispatcher.worker_pids())
        second = runner.resume(trial=[0, 1, 2, 3])
    finally:
        procs = [w.proc for w in runner.dispatcher._workers]
        runner.close()
    first_pids = {o.payload["worker_pid"] for o in first}
    assert len(pool_pids_after_first) == 2
    assert first_pids <= pool_pids_after_first
    # The second pass ran only the two new cells — on the same workers.
    new_pids = {
        o.payload["worker_pid"]
        for o in second if o.params["trial"] in (2, 3)
    }
    assert new_pids <= pool_pids_after_first
    assert {p.pid for p in procs} == pool_pids_after_first
    # close() really shut the pool down (idempotently).
    for proc in procs:
        proc.join(5.0)
        assert not proc.is_alive()
    runner.close()
    assert runner.dispatcher.worker_pids() == []


def test_campaign_runner_context_manager_closes_pool(tmp_path):
    with CampaignRunner(
        _worker_pid_cell, db_path=str(tmp_path / "c.db"),
        base_seed=2, processes=2, cell_timeout=30.0,
    ) as runner:
        runner.resume(trial=[0, 1])
        procs = [w.proc for w in runner.dispatcher._workers]
        assert procs  # the pool outlived the pass
    for proc in procs:
        proc.join(5.0)
        assert not proc.is_alive()


def test_dispatcher_pulls_cell_source_lazily():
    """The cell source is an iterator seam: the loop pulls a cell only
    when a worker slot frees up, never more than ``width`` ahead of the
    completions (what a distributed shard feed relies on)."""
    cells = SweepRunner(_trivial_cell, base_seed=0).cells(
        trial=list(range(6))
    )
    pulled = []

    def source():
        for cell in cells:
            pulled.append(cell.index)
            yield cell

    completed = []

    def on_result(cell, result):
        assert result.status == "done"
        # At delivery time the source is never more than one pull per
        # in-flight slot ahead of the completions.
        assert len(pulled) <= len(completed) + 2
        completed.append(cell.index)

    with CampaignDispatcher(_trivial_cell, processes=2) as dispatcher:
        count = dispatcher.run(source(), on_result)
    assert count == 6
    assert sorted(completed) == list(range(6))
    assert pulled == list(range(6))  # pulled in grid order


@pytest.mark.parametrize("in_process", [True, False],
                         ids=["in-process", "pooled"])
def test_idle_hook_fires_after_every_completion(
    tmp_path, make_runner, in_process
):
    """The idle hook (the live-analytics seam) runs in the parent after
    each completed cell, in every dispatch mode."""
    ticks = []
    runner = make_runner(
        _trivial_cell, db_path=str(tmp_path / "c.db"), base_seed=0,
        processes=1, in_process=in_process,
        idle_hook=lambda: ticks.append(len(ticks)),
    )
    outcomes = runner.resume(trial=[0, 1, 2])
    assert all(o.status == "done" for o in outcomes)
    assert len(ticks) == 3


@pytest.mark.parametrize("processes", [0, 4])
def test_dead_attempts_leave_zero_round_rows(tmp_path, make_runner, processes):
    """A timed-out or failed attempt contributes nothing to
    round_summaries — its partial rows are cleared at checkpoint time
    (timed_out cells never re-run, so the pre-run sweep can't help)."""
    db = str(tmp_path / "campaign.db")
    runner = make_runner(
        _streaming_cell, db_path=db, base_seed=0, processes=processes,
        cell_timeout=1.5, extra_params={"db": db},
    )
    outcomes = runner.resume(trial=[0, 1, 2])
    assert [o.status for o in outcomes] == ["done", "timed_out", "failed"]
    with SqliteSink(db) as sink:
        done, hung, crashed = (o.cell.seed for o in outcomes)
        # The completed attempt's rounds survive ...
        assert len(sink.read_summaries(cell_seed=done)) == 5
        # ... while killed and failed attempts leave zero rows.
        assert sink.read_summaries(cell_seed=hung) == []
        assert sink.read_summaries(cell_seed=crashed) == []


# ----------------------------------------------------------------------
# Retry budgets and the attempts migration
# ----------------------------------------------------------------------
def _counting_crash_cell(params, seed):
    """Deterministically crashes, leaving one marker file per run."""
    marker_dir = params["marker_dir"]
    os.makedirs(marker_dir, exist_ok=True)
    run = len(os.listdir(marker_dir))
    open(os.path.join(marker_dir, f"run-{run}"), "w").close()
    raise RuntimeError("always fails")


def _trivial_cell(params, seed):
    return {"seed": seed, "trial": params["trial"]}


def test_retry_budget_makes_resume_converge(tmp_path, make_runner):
    marker_dir = str(tmp_path / "runs")
    runner = make_runner(
        _counting_crash_cell, db_path=str(tmp_path / "campaign.db"),
        base_seed=0, processes=0, max_retries=1,
        extra_params={"marker_dir": marker_dir},
    )
    (first,) = runner.resume(trial=[0])
    assert first.status == "failed" and first.attempts == 1
    (second,) = runner.resume(trial=[0])
    assert second.status == "failed" and second.attempts == 2
    # Budget exhausted (1 + max_retries runs): the cell stays failed
    # permanently and further resumes do no work at all.
    for _ in range(3):
        (done,) = runner.resume(trial=[0])
        assert done.status == "failed" and done.attempts == 2
    assert len(os.listdir(marker_dir)) == 2
    assert "always fails" in done.error
    # The report surfaces the attempt count.
    report = json.loads(runner.report(trial=[0]))
    assert report["cells"][0]["attempts"] == 2
    assert report["cells"][0]["status"] == "failed"


def test_attempts_within_budget_still_retry_to_success(tmp_path, make_runner):
    flag = str(tmp_path / "flag")
    runner = make_runner(
        _flaky_cell, db_path=str(tmp_path / "campaign.db"),
        base_seed=0, processes=0, max_retries=2,
        extra_params={"flag": flag},
    )
    assert [o.attempts for o in runner.resume(trial=[0])] == [1]
    open(flag, "w").close()
    (outcome,) = runner.resume(trial=[0])
    assert outcome.status == "done" and outcome.attempts == 2


_PRE_ATTEMPTS_SCHEMA = """
CREATE TABLE cells (
    cell_tag   TEXT PRIMARY KEY,
    cell_seed  INTEGER NOT NULL,
    cell_index INTEGER NOT NULL,
    params     TEXT NOT NULL,
    status     TEXT NOT NULL,
    payload    TEXT,
    error      TEXT,
    elapsed    REAL
);
CREATE TABLE round_summaries (
    cell_seed       INTEGER NOT NULL,
    round           INTEGER NOT NULL,
    broadcast_count INTEGER NOT NULL,
    crashed_during  TEXT NOT NULL,
    decided_during  TEXT NOT NULL,
    PRIMARY KEY (cell_seed, round)
);
"""


def test_pre_attempts_store_is_migrated_in_place(tmp_path, make_runner):
    """A store written by the pre-`attempts` schema is readable: the
    column is added in place and old rows backfill to attempts=1."""
    db = str(tmp_path / "old.db")
    runner = make_runner(
        _trivial_cell, db_path=db, base_seed=0, processes=0,
    )
    done_cell, pending_cell = runner.cells(trial=[0, 1])
    conn = sqlite3.connect(db)
    conn.executescript(_PRE_ATTEMPTS_SCHEMA)
    conn.execute(
        "INSERT INTO cells (cell_tag, cell_seed, cell_index, params, "
        "status, payload, error, elapsed) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        (cell_tag(done_cell), done_cell.seed, done_cell.index,
         json.dumps(done_cell.as_dict()),
         "done",
         json.dumps({"seed": done_cell.seed, "trial": 0}, sort_keys=True),
         None, 0.1),
    )
    conn.commit()
    conn.close()

    with SqliteSink(db) as store:
        rows = store.get_cells()
    assert rows[cell_tag(done_cell)]["attempts"] == 1

    # Resume reads the migrated store: the old cell is skipped, the
    # missing one runs, and both carry attempt counts.
    outcomes = runner.resume(trial=[0, 1])
    assert [o.status for o in outcomes] == ["done", "done"]
    assert [o.attempts for o in outcomes] == [1, 1]
    assert outcomes[0].payload == {"seed": done_cell.seed, "trial": 0}


# ----------------------------------------------------------------------
# Report portability across machines
# ----------------------------------------------------------------------
def test_report_is_independent_of_sink_dir(tmp_path, make_runner):
    """Two sink_dir-streaming campaigns in different directories must
    produce identical report() bytes — payloads record the sink file's
    basename, never the absolute path."""
    small = dict(n=[3], detector=["0-OAC"], loss_rate=[0.1], trial=[0, 1],
                 values=[8], record_policy=["summary"])
    reports = []
    for name in ("alpha", "beta"):
        sink_dir = str(tmp_path / f"sinks_{name}")
        runner = make_runner(
            consensus_sweep_cell, db_path=str(tmp_path / f"{name}.db"),
            base_seed=3, processes=0, extra_params={"sink_dir": sink_dir},
        )
        runner.resume(**small)
        reports.append(runner.report(**small))
        assert f"sinks_{name}" not in reports[-1]
    assert reports[0] == reports[1]
    assert '"sink_file"' in reports[0]


# ----------------------------------------------------------------------
# E18 and the CLI subcommand
# ----------------------------------------------------------------------
def test_run_campaign_matrix_resumes_from_its_db(tmp_path):
    from repro.experiments.matrix import run_campaign_matrix

    db = str(tmp_path / "campaign.db")
    kwargs = dict(
        db_path=db, ns=(3,), detectors=("0-OAC",), loss_rates=(0.1,),
        seeds=(0, 1), processes=0,
    )
    partial = run_campaign_matrix(max_cells=1, **kwargs)
    assert partial[0].column("cells") == [1]
    tables = run_campaign_matrix(**kwargs)
    (row,) = tables[0].rows
    assert row["cells"] == 2 and row["done"] == 2
    assert row["solved"] == "2/2"


def test_cli_campaign_subcommand_launches_and_reports(tmp_path, capsys):
    from repro.__main__ import main

    db = str(tmp_path / "campaign.db")
    base = ["campaign", "--db", db, "--quick", "--seeds", "1",
            "--in-process"]
    assert main(base) == 0
    out = capsys.readouterr().out
    assert "E18" in out and "campaign.db" in out
    assert main(base + ["--report"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert len(report["cells"]) == 4
    assert all(c["status"] == "done" for c in report["cells"])


def test_cli_campaign_quick_rejects_explicit_grid_flags(tmp_path, capsys):
    from repro.__main__ import main

    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", "--db", str(tmp_path / "c.db"), "--quick",
              "--n", "16"])
    assert excinfo.value.code == 2
    assert "--quick fixes the grid" in capsys.readouterr().err


def test_report_table_aggregates_rounds_per_cell(tmp_path, make_runner):
    """The table view reads per-cell round counts and mean broadcast
    counts straight out of round_summaries, in grid order, with aligned
    columns."""
    db = str(tmp_path / "campaign.db")
    runner = make_runner(
        consensus_sweep_cell, db_path=db, base_seed=3, processes=0,
        extra_params={"sqlite_db": db},
    )
    axes = dict(
        n=[3], detector=["0-OAC"], loss_rate=[0.1, 0.3], trial=[0],
        values=[8], record_policy=["summary"],
    )
    outcomes = runner.run(**axes)
    table = runner.report_table(**axes)
    lines = table.splitlines()
    header, rule, *rows = lines[:-2]
    footer_rule, footer = lines[-2:]
    assert header.split() == [
        "cell", "status", "attempts", "rounds", "mean_bcast"
    ]
    assert set(rule) <= {"-", " "}
    assert set(footer_rule) <= {"-", " "}
    assert footer == "2 cells: 2 done, 0 failed, 0 timed_out; 2 attempts"
    assert len(rows) == len(outcomes) == 2
    with SqliteSink(db) as store:
        aggregates = store.round_aggregates()
    for row, outcome in zip(rows, outcomes):
        cols = row.split()
        assert cols[0] == cell_tag(outcome.cell)
        assert cols[1] == "done"
        rounds, mean = aggregates[outcome.cell.seed]
        assert cols[3] == str(rounds)
        assert cols[4] == f"{mean:.2f}"
    # Every header starts at a consistent column (alignment).
    assert header.index("status") <= rows[0].index("done")


def test_cli_campaign_report_table_subcommand(tmp_path, capsys):
    from repro.__main__ import main

    db = str(tmp_path / "campaign.db")
    base = ["campaign", "--db", db, "--quick", "--seeds", "1",
            "--processes", "0"]
    assert main(base) == 0
    capsys.readouterr()
    assert main(["campaign", "report", "--table", "--db", db,
                 "--quick", "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.strip()]
    assert lines[0].split()[:2] == ["cell", "status"]
    # header + rule + one row per quick cell + footer rule + footer
    assert len(lines) == 2 + 4 + 2
    assert all("done" in line for line in lines[2:-2])
    assert lines[-1] == "4 cells: 4 done, 0 failed, 0 timed_out; 4 attempts"
    # --table without report mode is a usage error, not silence.
    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", "--db", db, "--quick", "--table"])
    assert excinfo.value.code == 2


# ----------------------------------------------------------------------
# The respawn-storm breaker
# ----------------------------------------------------------------------
def _exit_cell(params, seed):
    """Kills its worker outright — no result ever crosses the pipe."""
    os._exit(1)


def _exit_on_odd_trial_cell(params, seed):
    """Completes even trials, kills the worker on odd ones."""
    if params["trial"] % 2:
        os._exit(1)
    return {"trial": params["trial"]}


def test_spawn_death_storm_aborts_loudly():
    """K fresh spawns dying in a row abort the campaign with
    WorkerPoolError instead of respawning forever."""
    from repro.experiments.dispatch import WorkerPoolError

    cells = list(SweepRunner(_exit_cell, base_seed=0).cells(
        trial=list(range(10))
    ))
    delivered = []
    with CampaignDispatcher(
        _exit_cell, processes=1, max_spawn_deaths=3,
        respawn_backoff=0.001,
    ) as dispatcher:
        with pytest.raises(WorkerPoolError, match="3 freshly-spawned"):
            dispatcher.run(
                iter(cells), lambda cell, res: delivered.append(res)
            )
    # Each doomed spawn still checkpointed its cell as failed before
    # the breaker tripped.
    assert len(delivered) == 3
    assert all(r.status == "failed" for r in delivered)


def test_established_worker_death_does_not_trip_breaker():
    """A worker that already delivered results dying mid-cell is an
    isolated casualty: the cell fails, a replacement spawns, and the
    breaker (even at its tightest setting) never fires."""
    cells = list(SweepRunner(
        _exit_on_odd_trial_cell, base_seed=0
    ).cells(trial=[0, 1, 2, 3, 4]))
    results = {}
    with CampaignDispatcher(
        _exit_on_odd_trial_cell, processes=1, max_spawn_deaths=1,
        respawn_backoff=0.0,
    ) as dispatcher:
        count = dispatcher.run(
            iter(cells),
            lambda cell, res: results.__setitem__(
                cell.as_dict()["trial"], res.status
            ),
        )
    assert count == 5
    assert results == {
        0: "done", 1: "failed", 2: "done", 3: "failed", 4: "done",
    }


def test_delivered_result_resets_spawn_death_streak():
    """The streak counts *consecutive* fresh-spawn deaths: any
    delivered result resets it, so sporadic deaths below the threshold
    never accumulate into an abort."""
    # Worker 1 dies fresh (streak 1); worker 2 completes trial 1
    # (streak 0) then dies on trial 2 as an established worker (no
    # count); worker 3 completes the rest.  max_spawn_deaths=2 would
    # trip on two consecutive fresh deaths — which never happen here.
    def statuses():
        return [results[t] for t in sorted(results)]

    cells = list(SweepRunner(
        _exit_on_odd_trial_cell, base_seed=0
    ).cells(trial=[1, 0, 3, 2]))
    results = {}
    with CampaignDispatcher(
        _exit_on_odd_trial_cell, processes=1, max_spawn_deaths=2,
        respawn_backoff=0.0,
    ) as dispatcher:
        count = dispatcher.run(
            iter(cells),
            lambda cell, res: results.__setitem__(
                cell.as_dict()["trial"], res.status
            ),
        )
    assert count == 4
    assert statuses() == ["done", "failed", "done", "failed"]
