"""Equivalence suite for the array round kernel.

The pure-python engine path is the reference; every vectorised branch
must be observationally invisible.  Covered here:

* byte-identical vectorised-vs-fallback executions for every built-in
  detector class (the full Figure 1 lattice plus the phased detectors)
  x {reliable, iid, capture, partition} x {FULL, SUMMARY, NONE},
  including runs with crashes, halting, decisions, and a seeded-RNG
  detector policy (whose stream order the array path must preserve);
* a third-party detector without ``advise_array`` rides the dict
  fallback under the kernel and sees the exact same calls either way;
* a subclass overriding ``advise`` on a built-in detector is never
  silently bypassed by the vectorised override (same for policies
  overriding ``free_choice`` without ``free_choice_array``);
* detector-level ``advise_array`` == ``advise`` elementwise for every
  lattice class, and policy-level ``free_choice_array`` ==
  ``free_choice`` for every built-in policy;
* :class:`ArrayRoundLosses` keeps its counts and its lazily
  materialised sets consistent, behaves as a Mapping, and the engine
  rejects array resolutions that breach the drop-count budget;
* the reworked ``CaptureEffectLoss`` block draw is deterministic per
  ``(seed, round)`` and samples the documented capture law;
* ``use_array_kernel=True`` without numpy fails loudly instead of
  silently running the slow path;
* the paper's real algorithms (Algorithms 1-3 and anonymous counting)
  run byte-identically kernel-on vs kernel-off under {reliable, iid,
  capture} x every record policy — their proposal rounds carry several
  distinct payloads at once, so they drive the interned multi-message
  path and (for counting) the trusted ``transition_array`` batch;
* the physical and multihop substrate layers resolve rounds as
  :class:`ArrayRoundLosses` and ride the kernel end to end, with the
  scalar path as the byte-identical reference, and
  ``MultihopLayer.advise_array`` == dict ``advise`` elementwise for
  every completeness level (overflow validation included).

On the no-numpy CI leg the kernel-on and kernel-off runs collapse onto
the same reference path, so the equivalence assertions hold trivially
there and substantively on the numpy leg — both backends run this file.
"""

import pytest

import repro.core.execution as execution_mod
from repro.adversary.crash import NoCrashes, ScheduledCrashes
from repro.adversary.loss import (
    ArrayRoundLosses,
    CaptureEffectLoss,
    IIDLoss,
    LossAdversary,
    PartitionLoss,
    ReliableDelivery,
    ResolvedRoundLosses,
)
from repro.algorithms.alg1 import algorithm_1
from repro.algorithms.alg2 import algorithm_2
from repro.algorithms.alg3 import algorithm_3
from repro.algorithms.counting import counting_algorithm
from repro.contention.services import (
    KWakeUpService,
    NoContentionManager,
    WakeUpService,
)
from repro.core.algorithm import Algorithm
from repro.core.environment import Environment, array_kernel_module
from repro.core.errors import ConfigurationError, ModelViolation
from repro.core.execution import ExecutionEngine, run_algorithm
from repro.core.multiset import Multiset
from repro.core.process import ScriptedProcess
from repro.core.records import RecordPolicy
from repro.core.types import CollisionAdvice
from repro.detectors.classes import ALL_CLASSES, MAJ_OAC, ZERO_AC, ZERO_OAC
from repro.detectors.detector import (
    CollisionDetector,
    ParametricCollisionDetector,
)
from repro.detectors.eventual import PhasedCompletenessDetector
from repro.detectors.policy import (
    BenignPolicy,
    DetectorPolicy,
    NoisyPolicy,
    SeededRandomPolicy,
    SilentPolicy,
    SpuriousUntilPolicy,
)
from repro.detectors.properties import AccuracyMode, Completeness
from repro.substrate.device import PhysicalLayer
from repro.substrate.multihop import MultihopLayer, MultihopNetwork
from repro.substrate.radio import RadioConfig

_np = array_kernel_module()
needs_numpy = pytest.mark.skipif(
    _np is None, reason="array kernel requires numpy"
)

N = 6
ROUNDS = 14


class DecideThenHalt(ScriptedProcess):
    """Scripted broadcasts plus a decision/halt at a fixed round, so
    executions exercise ``decided_during`` and halted-but-live rounds."""

    def __init__(self, script, decide_after: int, value) -> None:
        super().__init__(script)
        self._decide_after = decide_after
        self._value = value

    def transition(self, received, cd_advice, cm_advice) -> None:
        super().transition(received, cd_advice, cm_advice)
        if len(self.observations) == self._decide_after:
            self.decide(self._value)
            self.halt()


def mixed_algorithm(n: int = N, rounds: int = ROUNDS) -> Algorithm:
    """Distinct and shared messages, silent rounds, staggered halts."""

    def spawn(i):
        script = []
        for r in range(rounds):
            if (r + i) % 4 == 3:
                script.append(None)
            elif r % 3 == 0:
                script.append("m")
            else:
                script.append(f"m{i % 3}")
        return DecideThenHalt(script, decide_after=rounds - 2 - (i % 2),
                              value=i % 2)

    return Algorithm(spawn, anonymous=False)


def detector_matrix():
    """Every built-in detector class as a concrete instance factory."""
    matrix = {}
    for cls in ALL_CLASSES:
        if cls.special:
            matrix[cls.name] = lambda c=cls: c.make()
        elif cls.accuracy is AccuracyMode.EVENTUAL:
            matrix[cls.name] = lambda c=cls: c.make(r_acc=4)
        else:
            matrix[cls.name] = lambda c=cls: c.make()
    # Policy variety on top of the lattice: seeded RNG free choices
    # (stream-order sensitive), spurious noise, and minimal silence.
    matrix["AC+seeded"] = lambda: ParametricCollisionDetector(
        Completeness.ZERO, AccuracyMode.ALWAYS,
        policy=SeededRandomPolicy(p_collision=0.4, seed=13),
    )
    matrix["half-AC+silent"] = lambda: ParametricCollisionDetector(
        Completeness.HALF, AccuracyMode.ALWAYS, policy=SilentPolicy(),
    )
    matrix["0-OAC+spurious"] = lambda: ParametricCollisionDetector(
        Completeness.ZERO, AccuracyMode.EVENTUAL, r_acc=5,
        policy=SpuriousUntilPolicy(quiet_round=5),
    )
    matrix["phased"] = lambda: PhasedCompletenessDetector(
        Completeness.ZERO, Completeness.FULL, r_comp=4,
    )
    matrix["phased+seeded"] = lambda: PhasedCompletenessDetector(
        Completeness.ZERO, Completeness.FULL, r_comp=4,
        policy=SeededRandomPolicy(p_collision=0.3, seed=7),
    )
    return matrix


LOSSES = {
    "reliable": lambda: ReliableDelivery(),
    "iid": lambda: IIDLoss(0.35, seed=5),
    "capture": lambda: CaptureEffectLoss(capture_limit=1, seed=2),
    "partition": lambda: PartitionLoss([(0, 1, 2), (3, 4, 5)]),
}

POLICIES = (RecordPolicy.FULL, RecordPolicy.SUMMARY, RecordPolicy.NONE)


def run_once(detector_factory, loss_factory, record_policy,
             use_array_kernel, crash=None, algorithm=None):
    env = Environment(
        indices=tuple(range(N)),
        detector=detector_factory(),
        contention=NoContentionManager(),
        loss=loss_factory(),
        crash=crash() if crash else NoCrashes(),
    )
    return run_algorithm(
        env, algorithm or mixed_algorithm(), max_rounds=ROUNDS,
        until_all_decided=False, record_policy=record_policy,
        use_array_kernel=use_array_kernel,
    )


def assert_identical(vec, ref, record_policy):
    assert vec.decisions == ref.decisions
    assert vec.decision_rounds == ref.decision_rounds
    assert vec.crash_rounds == ref.crash_rounds
    assert vec.rounds == ref.rounds
    if record_policy is RecordPolicy.FULL:
        assert vec.records == ref.records  # full per-round equality
    elif record_policy is RecordPolicy.SUMMARY:
        assert vec.summaries == ref.summaries


# ----------------------------------------------------------------------
# The headline matrix: every built-in detector x loss x record policy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("detector_name", sorted(detector_matrix()))
@pytest.mark.parametrize("loss_name", sorted(LOSSES))
def test_kernel_and_fallback_executions_are_identical(
    detector_name, loss_name
):
    detector_factory = detector_matrix()[detector_name]
    loss_factory = LOSSES[loss_name]
    for record_policy in POLICIES:
        vec = run_once(detector_factory, loss_factory, record_policy, None)
        ref = run_once(detector_factory, loss_factory, record_policy, False)
        assert_identical(vec, ref, record_policy)


@pytest.mark.parametrize("loss_name", sorted(LOSSES))
@pytest.mark.parametrize("record_policy", POLICIES)
def test_kernel_equivalence_under_crashes(loss_name, record_policy):
    crash = lambda: ScheduledCrashes.at(
        {3: [1], 5: [4]}, after_send=True
    )
    vec = run_once(
        detector_matrix()["AC"], LOSSES[loss_name], record_policy, None,
        crash=crash,
    )
    ref = run_once(
        detector_matrix()["AC"], LOSSES[loss_name], record_policy, False,
        crash=crash,
    )
    assert_identical(vec, ref, record_policy)
    assert vec.crash_rounds[1] == 3 and vec.crash_rounds[4] == 5


# ----------------------------------------------------------------------
# Third-party detectors and subclass overrides
# ----------------------------------------------------------------------
class RecordingThirdPartyDetector(CollisionDetector):
    """A mapping-interface-only detector; no ``advise_array`` override."""

    def __init__(self):
        self.calls = []

    def advise(self, round_index, broadcasters, received_counts):
        self.calls.append(
            (round_index, broadcasters, dict(received_counts))
        )
        return {
            pid: (
                CollisionAdvice.COLLISION
                if t < broadcasters and (round_index + pid) % 2
                else CollisionAdvice.NULL
            )
            for pid, t in received_counts.items()
        }


@pytest.mark.parametrize("loss_name", sorted(LOSSES))
def test_third_party_detector_rides_the_dict_fallback(loss_name):
    runs = {}
    for kernel in (None, False):
        detector = RecordingThirdPartyDetector()
        runs[kernel] = (
            run_once(lambda: detector, LOSSES[loss_name],
                     RecordPolicy.FULL, kernel),
            detector.calls,
        )
    vec, vec_calls = runs[None]
    ref, ref_calls = runs[False]
    assert_identical(vec, ref, RecordPolicy.FULL)
    # The fallback hook reconstructs the exact dict calls: same rounds,
    # same counts, same iteration order.
    assert vec_calls == ref_calls
    assert len(vec_calls) == ROUNDS


def test_detector_subclass_override_is_not_bypassed():
    seen = []

    class SpyDetector(ParametricCollisionDetector):
        def advise(self, round_index, broadcasters, received_counts):
            seen.append(round_index)
            return super().advise(
                round_index, broadcasters, received_counts
            )

    run_once(
        lambda: SpyDetector(Completeness.FULL, AccuracyMode.ALWAYS),
        LOSSES["iid"], RecordPolicy.NONE, None,
    )
    assert seen == list(range(1, ROUNDS + 1))


def test_policy_free_choice_override_is_not_bypassed():
    class ContraryBenign(BenignPolicy):
        """Overrides free_choice only — the inherited free_choice_array
        must NOT answer for it."""

        def free_choice(self, round_index, pid, c, t):
            choice = super().free_choice(round_index, pid, c, t)
            return (
                CollisionAdvice.NULL
                if choice is CollisionAdvice.COLLISION
                else CollisionAdvice.COLLISION
            )

    factory = lambda: ParametricCollisionDetector(
        Completeness.ZERO, AccuracyMode.ALWAYS, policy=ContraryBenign()
    )
    vec = run_once(factory, LOSSES["iid"], RecordPolicy.FULL, None)
    ref = run_once(factory, LOSSES["iid"], RecordPolicy.FULL, False)
    assert_identical(vec, ref, RecordPolicy.FULL)


# ----------------------------------------------------------------------
# Detector- and policy-level elementwise equivalence
# ----------------------------------------------------------------------
@needs_numpy
@pytest.mark.parametrize("detector_name", sorted(detector_matrix()))
def test_advise_array_matches_dict_advise_elementwise(detector_name):
    indices = tuple(range(8))
    for c, counts in (
        (8, [8, 7, 0, 3, 8, 5, 1, 8]),
        (5, [5, 5, 5, 5, 5, 5, 5, 5]),
        (4, [0, 0, 0, 0, 2, 2, 4, 4]),
        (0, [0, 0, 0, 0, 0, 0, 0, 0]),
        (1, [1, 0, 1, 0, 1, 0, 1, 0]),
    ):
        for round_index in (1, 4, 6):
            dict_detector = detector_matrix()[detector_name]()
            array_detector = detector_matrix()[detector_name]()
            expected = dict_detector.advise(
                round_index, c, dict(zip(indices, counts))
            )
            got = array_detector.advise_array(
                round_index, c,
                _np.asarray(counts, dtype=_np.int64), indices,
            )
            assert got == [expected[pid] for pid in indices], (
                detector_name, round_index, c, counts,
            )


@needs_numpy
@pytest.mark.parametrize("policy_factory", [
    BenignPolicy, SilentPolicy, NoisyPolicy,
    lambda: SpuriousUntilPolicy(quiet_round=3),
])
def test_free_choice_array_matches_free_choice(policy_factory):
    policy = policy_factory()
    for c in (0, 1, 4, 9):
        counts = _np.arange(c + 1, dtype=_np.int64)
        for round_index in (1, 3, 5):
            arr = policy.free_choice_array(round_index, c, counts)
            assert arr is not None
            for t in range(c + 1):
                scalar = policy.free_choice(round_index, 0, c, t)
                assert bool(arr[t]) == (
                    scalar is CollisionAdvice.COLLISION
                ), (type(policy).__name__, round_index, c, t)


def test_default_free_choice_array_opts_out():
    class CustomPolicy(DetectorPolicy):
        def free_choice(self, round_index, pid, c, t):
            return CollisionAdvice.NULL

    assert CustomPolicy().free_choice_array(1, 3, None) is None


# ----------------------------------------------------------------------
# ArrayRoundLosses: counts/sets consistency and Mapping behaviour
# ----------------------------------------------------------------------
@needs_numpy
@pytest.mark.parametrize("adversary_factory, senders", [
    (lambda: IIDLoss(0.4, seed=9), list(range(6))),
    (lambda: CaptureEffectLoss(capture_limit=2, seed=9), list(range(6))),
    (lambda: CaptureEffectLoss(p_single_loss=0.5, seed=9), [3]),
    (lambda: IIDLoss(0.4, seed=9), [1, 4]),  # partial sender set
])
def test_array_losses_counts_match_materialised_sets(
    adversary_factory, senders
):
    adversary = adversary_factory()
    receivers = tuple(range(6))
    for r in (1, 2, 7):
        lost_map = adversary.losses_for_round(r, senders, receivers)
        assert isinstance(lost_map, ArrayRoundLosses)
        counts = lost_map.drop_counts.tolist()
        assert len(lost_map) == len(receivers)
        assert list(lost_map) == list(receivers)
        for k, pid in enumerate(receivers):
            lost = lost_map[pid]
            assert len(lost) == counts[k]
            assert pid not in lost
            assert set(lost) <= set(senders)
        assert lost_map.get("nope", "default") == "default"


@needs_numpy
def test_array_losses_mapping_interface():
    lost_map = IIDLoss(0.5, seed=3).losses_for_round(
        1, list(range(5)), tuple(range(5))
    )
    assert isinstance(lost_map, ArrayRoundLosses)
    as_dict = dict(lost_map)
    assert lost_map == as_dict
    assert set(lost_map.keys()) == set(range(5))
    assert 0 in lost_map and "x" not in lost_map
    assert len(list(lost_map.items())) == 5


@needs_numpy
def test_engine_rejects_breaching_array_resolution():
    class BreachingArrayLoss(LossAdversary):
        def __init__(self, mode):
            self.mode = mode

        def losses(self, round_index, senders, receiver):
            return frozenset()  # pragma: no cover

        def losses_for_round(self, round_index, senders, receivers):
            receivers = tuple(receivers)
            if self.mode == "overdrop":
                drops = _np.full(len(receivers), len(senders) + 1,
                                 dtype=_np.int64)
            elif self.mode == "negative":
                drops = _np.full(len(receivers), -1, dtype=_np.int64)
            else:  # omit a receiver
                receivers = receivers[:-1]
                drops = _np.zeros(len(receivers), dtype=_np.int64)
            return ArrayRoundLosses(
                receivers, drops,
                lambda: {pid: frozenset() for pid in receivers},
            )

    for mode, match in (
        ("overdrop", "droppable budget"),
        ("negative", "droppable budget"),
        ("omit", "omitted receiver"),
    ):
        env = Environment(
            indices=tuple(range(4)),
            detector=detector_matrix()["AC"](),
            contention=NoContentionManager(),
            loss=BreachingArrayLoss(mode),
        )
        env.reset()
        engine = ExecutionEngine(
            env,
            Algorithm(
                lambda i: ScriptedProcess(["a"]), anonymous=False
            ).spawn_all(env.indices),
            record_policy=RecordPolicy.NONE,
        )
        with pytest.raises(ModelViolation, match=match):
            engine.step()


# ----------------------------------------------------------------------
# CaptureEffectLoss: block-substream determinism and law
# ----------------------------------------------------------------------
@needs_numpy
def test_capture_block_draw_is_deterministic_per_seed_and_round():
    senders = list(range(5))
    receivers = tuple(range(5))
    a = CaptureEffectLoss(capture_limit=1, seed=21)
    b = CaptureEffectLoss(capture_limit=1, seed=21)
    for r in (1, 2, 9):
        left = a.losses_for_round(r, senders, receivers)
        right = b.losses_for_round(r, senders, receivers)
        assert left.drop_counts.tolist() == right.drop_counts.tolist()
        assert dict(left) == dict(right)
    # Different rounds (and different seeds) draw different blocks.
    patterns = {
        tuple(CaptureEffectLoss(capture_limit=1, seed=21)
              .losses_for_round(r, senders, receivers)
              .drop_counts.tolist())
        for r in range(1, 30)
    }
    assert len(patterns) > 1


@needs_numpy
def test_capture_blocks_are_independent_across_same_round_calls():
    """Group-delegating wrappers (PartitionLoss intra, multihop
    neighbourhoods) resolve each group with its own call in the same
    round; those calls must draw independent blocks, not replay one."""
    adv = CaptureEffectLoss(capture_limit=1, seed=7)
    group_a = [0, 1, 2]
    group_b = [3, 4, 5]
    identical = 0
    rounds = 120
    for r in range(1, rounds + 1):
        left = adv.losses_for_round(r, group_a, tuple(group_a))
        right = adv.losses_for_round(r, group_b, tuple(group_b))
        identical += (
            left.drop_counts.tolist() == right.drop_counts.tolist()
        )
    # Two independent 3-vectors over {1, 2} collide sometimes (1/8 by
    # chance), but nowhere near always.
    assert identical < rounds // 2, identical
    # And through PartitionLoss itself the per-group delegation holds.
    partition = PartitionLoss(
        [tuple(group_a), tuple(group_b)],
        intra=CaptureEffectLoss(capture_limit=1, seed=7),
    )
    lost_map = partition.losses_for_round(
        2, group_a + group_b, tuple(range(6))
    )
    for pid in range(6):
        assert set(lost_map[pid]) >= {
            s for s in range(6)
            if (s < 3) != (pid < 3)
        }  # cross-group is always lost; intra handled by capture


@needs_numpy
def test_capture_block_draw_counts_are_lazy_but_committed():
    """Counts read before and after set materialisation agree — the set
    draw is reserved tail randomness, never a re-draw."""
    adv = CaptureEffectLoss(capture_limit=2, seed=4)
    senders = list(range(6))
    untouched = adv.losses_for_round(3, senders, tuple(range(6)))
    counts_before = untouched.drop_counts.tolist()
    materialised = adv.losses_for_round(3, senders, tuple(range(6)))
    sets = {pid: set(materialised[pid]) for pid in range(6)}
    assert materialised.drop_counts.tolist() == counts_before
    assert untouched.drop_counts.tolist() == counts_before
    assert {pid: len(s) for pid, s in sets.items()} == {
        pid: counts_before[k] for k, pid in enumerate(range(6))
    }


@needs_numpy
def test_capture_block_draw_samples_the_capture_law():
    # capture_limit=1 under full contention: every receiver keeps at
    # most one competitor, so drop counts are m or m-1 (m = n-1 here).
    adv = CaptureEffectLoss(capture_limit=1, seed=11)
    senders = list(range(8))
    kept_any = 0
    rounds = 300
    for r in range(1, rounds + 1):
        lost_map = adv.losses_for_round(r, senders, tuple(range(8)))
        for k, drop in enumerate(lost_map.drop_counts.tolist()):
            assert drop in (6, 7)
            kept_any += drop == 6
    # Capture counts are uniform on {0, 1}: about half the
    # (round, receiver) pairs decode one competitor.
    share = kept_any / (rounds * 8)
    assert 0.42 < share < 0.58


@needs_numpy
def test_capture_single_sender_ambient_loss_law():
    adv = CaptureEffectLoss(p_single_loss=0.3, seed=8)
    receivers = tuple(range(10))
    losses = 0
    rounds = 200
    for r in range(1, rounds + 1):
        lost_map = adv.losses_for_round(r, [0], receivers)
        drops = lost_map.drop_counts.tolist()
        assert drops[0] == 0  # the sender always keeps its own message
        losses += sum(drops[1:])
    rate = losses / (rounds * 9)
    assert abs(rate - 0.3) < 0.05
    # And the sets agree with the flags.
    lost_map = adv.losses_for_round(1, [0], receivers)
    for pid in receivers[1:]:
        assert (lost_map[pid] == frozenset({0})) == bool(
            lost_map.drop_counts[pid]
        )


def test_capture_pure_python_batched_path_unchanged(monkeypatch):
    import repro.adversary.loss as loss_mod

    monkeypatch.setattr(loss_mod, "_np", None)
    adv = CaptureEffectLoss(capture_limit=2, seed=11)
    senders = [0, 1, 2, 3]
    batched = adv.losses_for_round(7, senders, [0, 1, 2, 3, 4])
    assert isinstance(batched, ResolvedRoundLosses)
    for pid in [0, 1, 2, 3, 4]:
        assert set(batched[pid]) == set(adv.losses(7, senders, pid))


# ----------------------------------------------------------------------
# Gating and supporting pieces
# ----------------------------------------------------------------------
def test_forcing_the_kernel_without_numpy_fails_loudly(monkeypatch):
    monkeypatch.setattr(
        execution_mod, "array_kernel_module", lambda: None
    )
    env = Environment(
        indices=(0, 1),
        detector=detector_matrix()["AC"](),
        contention=NoContentionManager(),
    )
    with pytest.raises(ConfigurationError, match="requires numpy"):
        ExecutionEngine(
            env,
            Algorithm(
                lambda i: ScriptedProcess(["a"]), anonymous=False
            ).spawn_all(env.indices),
            use_array_kernel=True,
        )
    # use_array_kernel=None degrades gracefully to the reference path.
    engine = ExecutionEngine(
        env,
        Algorithm(
            lambda i: ScriptedProcess(["a"]), anonymous=False
        ).spawn_all(env.indices),
        use_array_kernel=None,
    )
    assert engine._np is None


def test_multiset_singleton_buckets():
    buckets = Multiset.singleton_buckets("m", {0, 2, 5})
    assert set(buckets) == {0, 2, 5}
    assert buckets[0] == Multiset()
    assert buckets[2] == Multiset(["m", "m"])
    assert len(buckets[5]) == 5 and buckets[5].count("m") == 5


# ----------------------------------------------------------------------
# The paper's algorithms: multi-message rounds through the interned path
# ----------------------------------------------------------------------
# Before the wake-up service stabilizes, every process is active and
# broadcasts its own estimate, so proposal rounds carry several distinct
# payloads at once — exactly the rounds the interned counts-matrix path
# exists for (the old kernel fell back to the scalar loop on them).
ALG_SUITE = {
    "alg1": lambda: (
        algorithm_1(),
        lambda: MAJ_OAC.make(r_acc=4),
        lambda: WakeUpService(stabilization_round=5),
    ),
    "alg2": lambda: (
        algorithm_2([0, 1, 2]),
        lambda: ZERO_OAC.make(r_acc=4),
        lambda: WakeUpService(stabilization_round=5),
    ),
    "alg3": lambda: (
        algorithm_3([0, 1, 2]),
        lambda: ZERO_AC.make(),
        lambda: WakeUpService(stabilization_round=5),
    ),
}

#: The ISSUE's algorithm-suite loss trio (partition stays covered by the
#: headline matrix above).
ALG_LOSSES = ("capture", "iid", "reliable")


def run_real_algorithm(alg_name, loss_name, record_policy,
                       use_array_kernel):
    algorithm, detector_factory, cm_factory = ALG_SUITE[alg_name]()
    env = Environment(
        indices=tuple(range(N)),
        detector=detector_factory(),
        contention=cm_factory(),
        loss=LOSSES[loss_name](),
    )
    env.reset()
    initials = {i: i % 3 for i in range(N)}
    engine = ExecutionEngine(
        env, algorithm.instantiate(initials), initials,
        record_policy=record_policy, use_array_kernel=use_array_kernel,
    )
    result = engine.run(ROUNDS, until_all_decided=False)
    return result, engine.kernel_rounds


@pytest.mark.parametrize("alg_name", sorted(ALG_SUITE))
@pytest.mark.parametrize("loss_name", ALG_LOSSES)
def test_real_algorithm_kernel_identity(alg_name, loss_name):
    expected_kernel = None
    for record_policy in POLICIES:
        vec, vec_kernel = run_real_algorithm(
            alg_name, loss_name, record_policy, None
        )
        ref, ref_kernel = run_real_algorithm(
            alg_name, loss_name, record_policy, False
        )
        assert_identical(vec, ref, record_policy)
        assert ref_kernel == 0
        if record_policy is RecordPolicy.FULL:
            # Pre-stabilization everyone proposes its own estimate, so
            # the value-carrying algorithms genuinely produce
            # multi-payload rounds (Algorithm 3 votes with one fixed
            # marker — its rounds stay single-payload by design).
            if alg_name in ("alg1", "alg2"):
                assert any(
                    len({
                        m for m in rec.messages.values() if m is not None
                    }) > 1
                    for rec in vec.records
                )
            # Seeded adversaries resolve every round with at least one
            # broadcaster as arrays; silent rounds legitimately take the
            # scalar path (there is nothing to vectorise).
            if _np is not None and loss_name != "reliable":
                expected_kernel = sum(
                    1 for rec in vec.records if rec.broadcast_count > 0
                )
                assert vec_kernel == expected_kernel > 0
        elif expected_kernel is not None:
            # Same execution under every record policy — the kernel
            # accounting must not depend on what is retained.
            assert vec_kernel == expected_kernel


@pytest.mark.parametrize("loss_name", ALG_LOSSES)
def test_counting_kernel_identity(loss_name):
    """Anonymous counting exercises the trusted ``transition_array``
    batch (CountingProcess overrides it) on top of the interned path."""

    def run(record_policy, use_array_kernel):
        env = Environment(
            indices=tuple(range(N)),
            detector=detector_matrix()["AC"](),
            contention=KWakeUpService(k=2, stabilization_round=4),
            loss=LOSSES[loss_name](),
        )
        env.reset()
        engine = ExecutionEngine(
            env, counting_algorithm().spawn_all(env.indices),
            record_policy=record_policy,
            use_array_kernel=use_array_kernel,
        )
        result = engine.run(ROUNDS, until_all_decided=False)
        return result, engine.kernel_rounds

    for record_policy in POLICIES:
        vec, vec_kernel = run(record_policy, None)
        ref, ref_kernel = run(record_policy, False)
        assert_identical(vec, ref, record_policy)
        assert ref_kernel == 0
        if _np is not None and loss_name != "reliable":
            assert vec_kernel > 0
            if record_policy is RecordPolicy.SUMMARY:
                assert vec_kernel == sum(
                    1 for s in ref.summaries if s.broadcast_count > 0
                )


# ----------------------------------------------------------------------
# PhysicalLayer: radio arbitration resolved as arrays
# ----------------------------------------------------------------------
RADIO_CONFIGS = {
    "default": lambda: None,
    "bursty": lambda: RadioConfig(
        burst_probability=0.3, capture_threshold=0.7
    ),
}


def run_physical(record_policy, use_array_kernel, config=None, seed=3):
    layer = PhysicalLayer(tuple(range(N)), config, seed=seed)
    env = Environment(
        indices=tuple(range(N)),
        detector=layer,
        contention=NoContentionManager(),
        loss=layer,
    )
    env.reset()
    engine = ExecutionEngine(
        env, mixed_algorithm().spawn_all(env.indices),
        record_policy=record_policy, use_array_kernel=use_array_kernel,
    )
    result = engine.run(ROUNDS, until_all_decided=False)
    return result, engine.kernel_rounds


@pytest.mark.parametrize("config_name", sorted(RADIO_CONFIGS))
@pytest.mark.parametrize("record_policy", POLICIES)
def test_physical_layer_kernel_identity(config_name, record_policy):
    config = RADIO_CONFIGS[config_name]
    vec, vec_kernel = run_physical(record_policy, None, config=config())
    ref, ref_kernel = run_physical(record_policy, False, config=config())
    assert_identical(vec, ref, record_policy)
    assert ref_kernel == 0
    if _np is not None:
        assert vec_kernel == vec.rounds


@needs_numpy
def test_physical_layer_losses_are_arrays_and_consistent():
    layer = PhysicalLayer(tuple(range(N)), seed=9)
    senders = [0, 2, 3, 5]
    lost_map = layer.losses_for_round(4, senders, tuple(range(N)))
    assert isinstance(lost_map, ArrayRoundLosses)
    counts = lost_map.drop_counts.tolist()
    for k, pid in enumerate(range(N)):
        lost = lost_map[pid]
        assert len(lost) == counts[k]
        assert pid not in lost
        assert set(lost) <= set(senders)
        # The per-receiver interface reads the same memoised arbitration.
        assert set(lost) == set(layer.losses(4, senders, pid))
    rows, cols = lost_map.drop_pairs()
    assert len(rows) == sum(counts)


# ----------------------------------------------------------------------
# MultihopLayer: per-neighbourhood delegation resolved as arrays
# ----------------------------------------------------------------------
MULTIHOP_TOPOLOGIES = {
    "line": lambda: MultihopNetwork.line(N),
    "ring": lambda: MultihopNetwork.ring(N),
    "grid": lambda: MultihopNetwork.grid(3, 2),
}

MULTIHOP_INNERS = {
    "none": lambda: None,
    "iid": lambda: IIDLoss(0.4, seed=11),
    "capture": lambda: CaptureEffectLoss(capture_limit=1, seed=6),
}


def run_multihop(topology_name, inner_name, record_policy,
                 use_array_kernel, **layer_kwargs):
    net = MULTIHOP_TOPOLOGIES[topology_name]()
    layer = MultihopLayer(
        net, inner=MULTIHOP_INNERS[inner_name](), **layer_kwargs
    )
    env = Environment(
        indices=tuple(net.indices),
        detector=layer,
        contention=NoContentionManager(),
        loss=layer,
    )
    env.reset()
    engine = ExecutionEngine(
        env, mixed_algorithm().spawn_all(env.indices),
        record_policy=record_policy, use_array_kernel=use_array_kernel,
    )
    result = engine.run(ROUNDS, until_all_decided=False)
    return result, engine.kernel_rounds


@pytest.mark.parametrize("topology_name", sorted(MULTIHOP_TOPOLOGIES))
@pytest.mark.parametrize("inner_name", sorted(MULTIHOP_INNERS))
def test_multihop_layer_kernel_identity(topology_name, inner_name):
    kwargs = dict(
        completeness=Completeness.MAJORITY,
        accuracy=AccuracyMode.EVENTUAL, r_acc=4,
    )
    for record_policy in POLICIES:
        vec, vec_kernel = run_multihop(
            topology_name, inner_name, record_policy, None, **kwargs
        )
        ref, ref_kernel = run_multihop(
            topology_name, inner_name, record_policy, False, **kwargs
        )
        assert_identical(vec, ref, record_policy)
        assert ref_kernel == 0
        if _np is not None:
            assert vec_kernel == vec.rounds


def test_multihop_seeded_policy_stream_identity():
    """Free choices drawn per process in index order on the array path
    — a seeded policy's stream must come out identical either way."""
    kwargs = dict(
        completeness=Completeness.ZERO,
        accuracy=AccuracyMode.EVENTUAL, r_acc=6,
    )
    vec, _ = run_multihop(
        "grid", "iid", RecordPolicy.FULL, None,
        policy=SeededRandomPolicy(p_collision=0.4, seed=17), **kwargs
    )
    ref, _ = run_multihop(
        "grid", "iid", RecordPolicy.FULL, False,
        policy=SeededRandomPolicy(p_collision=0.4, seed=17), **kwargs
    )
    assert_identical(vec, ref, RecordPolicy.FULL)


@needs_numpy
@pytest.mark.parametrize("completeness", list(Completeness))
def test_multihop_advise_array_matches_dict_advise(completeness):
    for accuracy, r_acc in (
        (AccuracyMode.ALWAYS, None),
        (AccuracyMode.EVENTUAL, 3),
    ):
        net = MultihopNetwork.grid(3, 2)
        dict_layer = MultihopLayer(
            net, completeness=completeness, accuracy=accuracy, r_acc=r_acc
        )
        array_layer = MultihopLayer(
            net, completeness=completeness, accuracy=accuracy, r_acc=r_acc
        )
        indices = tuple(net.indices)
        senders = [0, 2, 3]
        for round_index in (1, 2, 5):
            lost_d = dict_layer.losses_for_round(
                round_index, senders, indices
            )
            lost_a = array_layer.losses_for_round(
                round_index, senders, indices
            )
            # t_i = c - |lost_i|: own message always arrives, the rest
            # is whatever the topology lets through (no inner loss here,
            # so both layers see the same deterministic counts).
            counts = {
                pid: len(senders) - len(lost_d[pid]) for pid in indices
            }
            assert counts == {
                pid: len(senders) - len(lost_a[pid]) for pid in indices
            }
            expected = dict_layer.advise(
                round_index, len(senders), counts
            )
            got = array_layer.advise_array(
                round_index, len(senders),
                _np.asarray(
                    [counts[pid] for pid in indices], dtype=_np.int64
                ),
                indices,
            )
            assert got == [expected[pid] for pid in indices], (
                completeness, accuracy, round_index,
            )


@needs_numpy
def test_multihop_advise_array_validates_counts():
    """``t > c_local`` fails loudly on both paths with the same message
    (a grid node cannot hear all three senders from one corner)."""
    net = MultihopNetwork.grid(3, 2)
    layer = MultihopLayer(net, completeness=Completeness.FULL)
    indices = tuple(net.indices)
    senders = [0, 2, 3]
    layer.losses_for_round(1, senders, indices)
    over = {pid: len(senders) for pid in indices}
    with pytest.raises(ValueError, match="invalid transmission data"):
        layer.advise(1, len(senders), over)
    with pytest.raises(ValueError, match="invalid transmission data"):
        layer.advise_array(
            1, len(senders),
            _np.asarray(
                [over[pid] for pid in indices], dtype=_np.int64
            ),
            indices,
        )
