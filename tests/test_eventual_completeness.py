"""Tests for phased-completeness detectors and their consequences."""

import pytest

from repro.algorithms.alg1 import algorithm_1
from repro.algorithms.alg2 import algorithm_2
from repro.algorithms.baselines import naive_min_consensus
from repro.core.errors import ConfigurationError
from repro.core.types import COLLISION, NULL
from repro.detectors.eventual import (
    PhasedCompletenessDetector,
    eventually_complete_detector,
    usually_perfect_detector,
)
from repro.detectors.policy import NoisyPolicy, SilentPolicy
from repro.detectors.properties import AccuracyMode, Completeness
from repro.lowerbounds.alpha import alpha_execution
from repro.lowerbounds.compose import compose_alpha_executions
from repro.lowerbounds.theorems import eventual_completeness_witness


# ----------------------------------------------------------------------
# The detector itself
# ----------------------------------------------------------------------
def test_phase_boundary_switches_obligations():
    det = PhasedCompletenessDetector(
        Completeness.NONE, Completeness.FULL, r_comp=5,
        policy=SilentPolicy(),
    )
    # Round 4: total loss, no obligation, policy stays silent.
    assert det.advise(4, 2, {0: 0})[0] is NULL
    # Round 5: full completeness obliges the report.
    assert det.advise(5, 2, {0: 0})[0] is COLLISION


def test_accuracy_still_enforced_in_weak_phase():
    det = PhasedCompletenessDetector(
        Completeness.NONE, Completeness.FULL, r_comp=10,
        policy=NoisyPolicy(),
    )
    # Clean reception: accuracy forces null despite the noisy policy.
    assert det.advise(1, 2, {0: 2})[0] is NULL
    # Loss: free in the weak phase, the noisy policy reports.
    assert det.advise(1, 2, {0: 1})[0] is COLLISION


def test_usually_perfect_keeps_zero_completeness_always():
    det = usually_perfect_detector(r_comp=100, policy=SilentPolicy())
    # Total loss before r_comp: zero completeness still obliges.
    assert det.advise(1, 3, {0: 0})[0] is COLLISION
    # Partial loss before r_comp: free (the silent policy hides it).
    assert det.advise(1, 3, {0: 1})[0] is NULL
    # After r_comp: any loss is reported.
    assert det.advise(100, 3, {0: 1})[0] is COLLISION


def test_validation():
    with pytest.raises(ConfigurationError):
        PhasedCompletenessDetector(
            Completeness.FULL, Completeness.ZERO, r_comp=1
        )
    with pytest.raises(ConfigurationError):
        PhasedCompletenessDetector(
            Completeness.ZERO, Completeness.FULL, r_comp=0
        )
    with pytest.raises(ConfigurationError):
        PhasedCompletenessDetector(
            Completeness.ZERO, Completeness.FULL, r_comp=1,
            accuracy=AccuracyMode.EVENTUAL,
        )


def test_repr():
    det = eventually_complete_detector(7)
    assert "NONE->FULL@r7" in repr(det)


# ----------------------------------------------------------------------
# Consequences
# ----------------------------------------------------------------------
def test_eventual_completeness_defeats_everything():
    """Impossibility: both a naive decider AND Algorithm 1 split."""
    for algo in (naive_min_consensus(2), algorithm_1()):
        outcome = eventual_completeness_witness(algo, "a", "b", n=3)
        assert outcome.violation == "agreement", outcome.detail
        assert outcome.indistinguishability_ok


def test_usually_perfect_breaks_algorithm1_before_r_comp():
    alpha_a = alpha_execution(algorithm_1(), (0, 1), "a", 4)
    alpha_b = alpha_execution(algorithm_1(), (2, 3), "b", 4)
    composed = compose_alpha_executions(
        algorithm_1(), alpha_a, alpha_b, "a", "b", k=4,
        completeness=Completeness.ZERO,
    )
    assert composed.indistinguishability_holds
    decided = set(composed.gamma.decided_values().values())
    assert decided == {"a", "b"}


def test_usually_perfect_cannot_break_algorithm2():
    """Algorithm 2 needs only the weak phase's zero completeness: the
    same composition leaves it safe."""
    values = ["a", "b", "c", "d"]
    algo = algorithm_2(values)
    alpha_a = alpha_execution(algo, (0, 1), "a", 2)
    alpha_b = alpha_execution(algo, (2, 3), "b", 2)
    composed = compose_alpha_executions(
        algo, alpha_a, alpha_b, "a", "b", k=2,
        completeness=Completeness.ZERO, extra_rounds=60,
    )
    from repro.core.consensus import evaluate

    report = evaluate(composed.gamma)
    assert report.agreement and report.strong_validity
