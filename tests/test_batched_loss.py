"""The batched loss contract: ``losses_for_round`` across the stack.

Covers the PR-level guarantees:

* deterministic adversaries produce byte-identical executions whether the
  engine resolves losses through their batched overrides or through the
  per-receiver fallback;
* batched ``IIDLoss`` is seed-deterministic and matches the Bernoulli(p)
  per-pair marginal (both the vectorised and the pure-python geometric
  paths);
* ``CaptureEffectLoss`` is independent of receiver enumeration order;
* ``ModelViolation`` still fires on self-delivery breaches (and other
  normalized-contract breaches) through the batched path;
* ``JsonlSink`` streams round summaries without retaining them;
* the lower-bound searches accept ``SUMMARY`` results wherever they only
  consult broadcast-count sequences.
"""

import json

import pytest

import repro.adversary.loss as loss_mod
from repro.adversary.crash import NoCrashes, ScheduledCrashes
from repro.adversary.loss import (
    AlphaLoss,
    CaptureEffectLoss,
    ComposedLoss,
    EventualCollisionFreedom,
    IIDLoss,
    LossAdversary,
    PartitionLoss,
    ReliableDelivery,
    ResolvedRoundLosses,
    ScriptedLoss,
    SilenceLoss,
)
from repro.algorithms.alg2 import algorithm_2
from repro.contention.services import NoContentionManager, WakeUpService
from repro.core.environment import Environment
from repro.core.errors import ConfigurationError, ModelViolation
from repro.core.execution import ExecutionEngine, run_algorithm, run_consensus
from repro.core.algorithm import Algorithm
from repro.core.process import ScriptedProcess
from repro.core.records import JsonlSink, RecordPolicy
from repro.detectors.detector import perfect_detector
from repro.lowerbounds.compose import compose_alpha_executions
from repro.lowerbounds.pigeonhole import lemma21_find_pair, theorem9_find_pair
from repro.lowerbounds.conjecture import max_composable_prefix


class PerReceiverOnly(LossAdversary):
    """Wrapper hiding an adversary's batched override from the engine."""

    def __init__(self, inner):
        self.inner = inner

    def losses(self, round_index, senders, receiver):
        return self.inner.losses(round_index, senders, receiver)

    def reset(self):
        self.inner.reset()

    @property
    def r_cf(self):
        return self.inner.r_cf


def varied_algorithm(n, rounds):
    """Scripted processes with distinct messages and silent rounds, so
    executions exercise both the single- and multi-message engine paths
    and rounds with partial sender sets."""

    def spawn(i):
        script = []
        for r in range(rounds):
            if (r + i) % 4 == 3:
                script.append(None)  # silent round for this index
            elif r % 3 == 0:
                script.append("m")  # single shared message round
            else:
                script.append(f"m{i % 3}")
            # (None entries vary the sender set per round)
        return ScriptedProcess(script)

    return Algorithm(spawn, anonymous=False)


def run_pair(loss_factory, n=6, rounds=12, crash=None):
    """One execution through the batched path, one through the fallback."""
    results = []
    for wrap in (lambda a: a, PerReceiverOnly):
        env = Environment(
            indices=tuple(range(n)),
            detector=perfect_detector(),
            contention=NoContentionManager(),
            loss=wrap(loss_factory()),
            crash=crash or NoCrashes(),
        )
        results.append(
            run_algorithm(
                env, varied_algorithm(n, rounds), max_rounds=rounds,
                until_all_decided=False,
            )
        )
    return results


DETERMINISTIC_ADVERSARIES = {
    "reliable": lambda: ReliableDelivery(),
    "silence": lambda: SilenceLoss(),
    "alpha": lambda: AlphaLoss(),
    "partition": lambda: PartitionLoss([(0, 1, 2), (3, 4, 5)]),
    "partition_silence_intra": lambda: PartitionLoss(
        [(0, 1, 2), (3, 4, 5)], intra=SilenceLoss(), until_round=8
    ),
    "scripted": lambda: ScriptedLoss(
        lambda r, s, recv: {x for x in s if (x + r) % 3 == 0}
    ),
    "composed": lambda: ComposedLoss([
        PartitionLoss([(0, 1, 2), (3, 4, 5)]),
        ScriptedLoss(lambda r, s, recv: {s[0]} if s and r % 2 else set()),
    ]),
    "ecf_silence": lambda: EventualCollisionFreedom(SilenceLoss(), r_cf=5),
    "capture": lambda: CaptureEffectLoss(capture_limit=2, seed=3),
}


@pytest.mark.parametrize("name", sorted(DETERMINISTIC_ADVERSARIES))
def test_batched_and_fallback_executions_are_identical(name, monkeypatch):
    if name == "capture":
        # Capture's numpy leg draws one substream block per round (same
        # law, different pattern than the per-receiver substreams), so
        # batched-equals-per-receiver holds on the pure backend only;
        # the numpy-leg guarantees (kernel-on vs kernel-off equality,
        # law, determinism) live in tests/test_array_kernel.py.
        monkeypatch.setattr(loss_mod, "_np", None)
    batched, legacy = run_pair(DETERMINISTIC_ADVERSARIES[name])
    assert batched.decisions == legacy.decisions
    assert batched.decision_rounds == legacy.decision_rounds
    assert batched.rounds == legacy.rounds
    assert batched.records == legacy.records  # full per-round equality


def test_batched_and_fallback_identical_under_crashes():
    batched, legacy = run_pair(
        DETERMINISTIC_ADVERSARIES["partition_silence_intra"],
        crash=ScheduledCrashes.at({3: [1], 5: [4]}, after_send=True),
    )
    assert batched.records == legacy.records


# ----------------------------------------------------------------------
# IIDLoss: batched law and determinism
# ----------------------------------------------------------------------
def _loss_rate_over_rounds(adv, n, rounds):
    senders = list(range(n))
    pairs = 0
    losses = 0
    for r in range(1, rounds + 1):
        lost_map = adv.losses_for_round(r, senders, senders)
        for pid in senders:
            pairs += n - 1
            losses += len(lost_map[pid])
    return pairs, losses


@pytest.mark.parametrize("backend", ["numpy", "python"])
def test_iid_batched_matches_bernoulli_marginal(backend, monkeypatch):
    if backend == "python":
        monkeypatch.setattr(loss_mod, "_np", None)
    p = 0.3
    adv = IIDLoss(p, seed=42)
    # 40 x 40 grid over 10 rounds: 15600 non-self pairs, std ~ 0.004.
    pairs, losses = _loss_rate_over_rounds(adv, 40, 10)
    assert pairs >= 10_000
    rate = losses / pairs
    assert abs(rate - p) < 0.02


@pytest.mark.parametrize("backend", ["numpy", "python"])
def test_iid_batched_is_seed_deterministic(backend, monkeypatch):
    if backend == "python":
        monkeypatch.setattr(loss_mod, "_np", None)
    senders = list(range(10))
    a = IIDLoss(0.4, seed=7)
    b = IIDLoss(0.4, seed=7)
    maps_a = [dict(a.losses_for_round(r, senders, senders)) for r in range(5)]
    maps_b = [dict(b.losses_for_round(r, senders, senders)) for r in range(5)]
    assert maps_a == maps_b
    a.reset()
    maps_again = [
        dict(a.losses_for_round(r, senders, senders)) for r in range(5)
    ]
    assert maps_again == maps_a


@pytest.mark.parametrize("backend", ["numpy", "python"])
@pytest.mark.parametrize("p", [0.0, 1e-300, 1.0])
def test_iid_batched_edge_probabilities(backend, p, monkeypatch):
    if backend == "python":
        monkeypatch.setattr(loss_mod, "_np", None)
    senders = list(range(8))
    lost_map = IIDLoss(p, seed=0).losses_for_round(1, senders, senders)
    if p >= 1.0:
        for pid in senders:
            assert set(lost_map[pid]) >= set(senders) - {pid}
    else:
        assert all(not lost_map[pid] for pid in senders)


@pytest.mark.parametrize("backend", ["numpy", "python"])
def test_iid_batched_handles_empty_receivers(backend, monkeypatch):
    if backend == "python":
        monkeypatch.setattr(loss_mod, "_np", None)
    assert IIDLoss(0.3, seed=0).losses_for_round(1, [0, 1, 2], []) == {}


@pytest.mark.parametrize("backend", ["numpy", "python"])
def test_iid_batched_stream_is_isolated_from_legacy_stream(
    backend, monkeypatch
):
    if backend == "python":
        monkeypatch.setattr(loss_mod, "_np", None)
    senders = list(range(10))
    fresh = IIDLoss(0.5, seed=7)
    expected = fresh.losses(1, senders, 3)
    mixed = IIDLoss(0.5, seed=7)
    mixed.losses_for_round(1, senders, senders)  # must not shift _rng
    assert mixed.losses(1, senders, 3) == expected


def test_composed_component_omission_surfaces_as_model_violation():
    class Omitting(LossAdversary):
        def losses(self, round_index, senders, receiver):  # pragma: no cover
            return frozenset()

        def losses_for_round(self, round_index, senders, receivers):
            return {pid: frozenset() for pid in list(receivers)[:-1]}

    env = Environment(
        indices=(0, 1, 2),
        detector=perfect_detector(),
        contention=NoContentionManager(),
        loss=ComposedLoss([Omitting(), ReliableDelivery()]),
        crash=NoCrashes(),
    )
    env.reset()
    engine = ExecutionEngine(
        env,
        Algorithm(
            lambda i: ScriptedProcess(["a"]), anonymous=False
        ).spawn_all(env.indices),
    )
    with pytest.raises(ModelViolation, match="omitted receiver"):
        engine.step()


def test_iid_batched_never_drops_self():
    senders = list(range(30))
    lost_map = IIDLoss(0.9, seed=5).losses_for_round(1, senders, senders)
    # Normalized either way: plain ResolvedRoundLosses on the pure
    # backend, the array-backed sibling on the numpy leg.
    assert isinstance(
        lost_map, (ResolvedRoundLosses, loss_mod.ArrayRoundLosses)
    )
    for pid in senders:
        assert pid not in lost_map[pid]


# ----------------------------------------------------------------------
# CaptureEffectLoss: enumeration-order independence
# ----------------------------------------------------------------------
def test_capture_effect_is_receiver_order_independent():
    senders = [0, 1, 2, 3]
    fwd = CaptureEffectLoss(capture_limit=1, seed=9)
    rev = CaptureEffectLoss(capture_limit=1, seed=9)
    forward = {
        pid: set(fwd.losses(1, senders, pid)) for pid in [0, 1, 2, 3, 4]
    }
    backward = {
        pid: set(rev.losses(1, senders, pid)) for pid in [4, 3, 2, 1, 0]
    }
    assert forward == backward


def test_capture_effect_batched_equals_per_receiver(monkeypatch):
    # Pure backend: the batched resolution *is* the per-receiver one.
    # (The numpy leg draws a per-round substream block instead — same
    # law, different pattern; covered by tests/test_array_kernel.py.)
    monkeypatch.setattr(loss_mod, "_np", None)
    senders = [0, 1, 2, 3]
    receivers = [0, 1, 2, 3, 4, 5]
    adv = CaptureEffectLoss(capture_limit=2, seed=11)
    batched = adv.losses_for_round(7, senders, receivers)
    for pid in receivers:
        assert set(batched[pid]) == set(adv.losses(7, senders, pid))


# ----------------------------------------------------------------------
# ModelViolation through the batched path
# ----------------------------------------------------------------------
class BreachingAdversary(LossAdversary):
    """Claims normalization but breaks the promise on demand."""

    def __init__(self, breach):
        self.breach = breach  # "self" | "non_sender" | "omit"

    def losses(self, round_index, senders, receiver):  # pragma: no cover
        return frozenset()

    def losses_for_round(self, round_index, senders, receivers):
        out = ResolvedRoundLosses()
        for pid in receivers:
            out[pid] = frozenset()
        if self.breach == "self":
            # Drop a broadcaster's own message at itself.
            out[senders[0]] = frozenset({senders[0]})
        elif self.breach == "non_sender":
            non_senders = [r for r in receivers if r not in set(senders)]
            out[receivers[0]] = frozenset(non_senders[:1])
        elif self.breach == "omit":
            del out[receivers[-1]]
        return out


def breach_engine(breach, scripts):
    env = Environment(
        indices=(0, 1, 2),
        detector=perfect_detector(),
        contention=NoContentionManager(),
        loss=BreachingAdversary(breach),
        crash=NoCrashes(),
    )
    env.reset()
    algo = Algorithm(
        lambda i: ScriptedProcess(scripts.get(i, [])), anonymous=False
    )
    return ExecutionEngine(env, algo.spawn_all(env.indices))


def test_self_delivery_breach_raises_through_batched_path():
    engine = breach_engine("self", {0: ["a"], 1: ["b"]})
    with pytest.raises(ModelViolation):
        engine.step()


def test_non_sender_in_normalized_drop_set_raises():
    # Two distinct messages force the multi-message decrement path.
    engine = breach_engine("non_sender", {0: ["a"], 1: ["b"]})
    with pytest.raises(ModelViolation):
        engine.step()


def test_omitted_receiver_raises_through_batched_path():
    engine = breach_engine("omit", {0: ["a"], 1: ["b"]})
    with pytest.raises(ModelViolation):
        engine.step()


def test_scripted_round_fn_constructor_validation():
    with pytest.raises(ConfigurationError):
        ScriptedLoss()
    with pytest.raises(ConfigurationError):
        ScriptedLoss(
            lambda r, s, recv: set(),
            round_fn=lambda r, s, recvs: {},
        )


def test_scripted_round_fn_drives_whole_round():
    def round_fn(r, senders, receivers):
        shared = frozenset(s for s in senders if s != 0)
        return {pid: (shared if pid == 0 else frozenset()) for pid in receivers}

    adv = ScriptedLoss(round_fn=round_fn)
    env = Environment(
        indices=(0, 1, 2),
        detector=perfect_detector(),
        contention=NoContentionManager(),
        loss=adv,
        crash=NoCrashes(),
    )
    result = run_algorithm(
        env,
        Algorithm(lambda i: ScriptedProcess(["x"]), anonymous=False),
        max_rounds=1, until_all_decided=False,
    )
    rec = result.records[0]
    assert len(rec.received[0]) == 1  # only its own message
    assert len(rec.received[1]) == 3
    # Per-receiver view of the same script agrees.
    assert adv.losses(1, [0, 1, 2], 0) == {1, 2}


# ----------------------------------------------------------------------
# JsonlSink streaming
# ----------------------------------------------------------------------
def test_jsonl_sink_streams_summaries(tmp_path):
    path = tmp_path / "rounds.jsonl"
    env = Environment(
        indices=(0, 1, 2),
        detector=perfect_detector(),
        contention=NoContentionManager(),
        loss=ReliableDelivery(),
        crash=ScheduledCrashes.at({2: [1]}, after_send=False),
    )
    with JsonlSink(str(path)) as sink:
        result = run_algorithm(
            env,
            Algorithm(lambda i: ScriptedProcess(["a"] * 4), anonymous=False),
            max_rounds=4, until_all_decided=False,
            record_policy=RecordPolicy.NONE,
            observer=sink,
        )
        assert sink.rounds_written == result.rounds == 4
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert [l["round"] for l in lines] == [1, 2, 3, 4]
    assert lines[0]["broadcast_count"] == 3
    assert lines[1]["crashed_during"] == [1]
    assert lines[2]["broadcast_count"] == 2
    # Streaming retained nothing in the result itself.
    with pytest.raises(ConfigurationError):
        result.records


def test_jsonl_sink_rejects_writes_after_close(tmp_path):
    sink = JsonlSink(str(tmp_path / "s.jsonl"))
    sink.close()
    with pytest.raises(ConfigurationError):
        sink(None)


def test_sweep_cell_streams_to_sink_dir(tmp_path):
    from repro.experiments.harness import consensus_sweep_cell

    payload = consensus_sweep_cell(
        {"n": 3, "values": 4, "record_policy": "none",
         "sink_dir": str(tmp_path)},
        seed=123,
    )
    # The payload records the basename only — never the absolute path —
    # so campaign reports stay byte-identical across machines.
    assert payload["sink_file"].startswith("cell-123-")
    assert payload["sink_file"].endswith(".jsonl")
    assert str(tmp_path) not in json.dumps(payload, default=str)
    lines = (tmp_path / payload["sink_file"]).read_text().splitlines()
    assert len(lines) == payload["rounds"]
    # Cells sharing an explicit seed but differing in coordinates must
    # stream to distinct files (parallel workers never clobber).
    other = consensus_sweep_cell(
        {"n": 4, "values": 4, "record_policy": "none",
         "sink_dir": str(tmp_path)},
        seed=123,
    )
    assert other["sink_file"] != payload["sink_file"]


# ----------------------------------------------------------------------
# Lower bounds under SUMMARY retention
# ----------------------------------------------------------------------
def test_lemma21_search_accepts_summary_results():
    values = list(range(8))
    full = lemma21_find_pair(algorithm_2(values), (0, 1), values)
    summary = lemma21_find_pair(
        algorithm_2(values), (0, 1), values,
        record_policy=RecordPolicy.SUMMARY,
    )
    assert full is not None and summary is not None
    assert (full[0], full[1]) == (summary[0], summary[1])
    assert summary[2].record_policy is RecordPolicy.SUMMARY


def test_theorem9_search_accepts_summary_results():
    from repro.algorithms.alg3 import algorithm_3

    values = list(range(8))
    full = theorem9_find_pair(algorithm_3(values), (0, 1), values)
    summary = theorem9_find_pair(
        algorithm_3(values), (0, 1), values,
        record_policy=RecordPolicy.SUMMARY,
    )
    assert full is not None and summary is not None
    assert (full[0], full[1]) == (summary[0], summary[1])


def test_composition_rejects_summary_alphas_loudly():
    values = list(range(8))
    pair = lemma21_find_pair(
        algorithm_2(values), (0, 1), values,
        record_policy=RecordPolicy.SUMMARY,
    )
    assert pair is not None
    v_a, v_b, alpha_a, alpha_b = pair
    with pytest.raises(ConfigurationError, match="FULL"):
        compose_alpha_executions(
            algorithm_2(values), alpha_a, alpha_b, v_a, v_b, k=1
        )


def test_max_composable_prefix_defaults_to_summary_retention():
    from repro.algorithms.nonanonymous import non_anonymous_algorithm

    values = [0, 1]
    ids = list(range(4))
    algo = non_anonymous_algorithm(values, ids)
    k_summary = max_composable_prefix(
        algo, ids, 2, values, mode="disjoint", k_limit=4
    )
    k_full = max_composable_prefix(
        algo, ids, 2, values, mode="disjoint", k_limit=4,
        record_policy=RecordPolicy.FULL,
    )
    assert k_summary == k_full
