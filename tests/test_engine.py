"""Tests for the execution engine (Definition 11's seven constraints)."""

import pytest

from repro.adversary.crash import CrashEvent, NoCrashes, ScheduledCrashes
from repro.adversary.loss import (
    IIDLoss,
    ReliableDelivery,
    ScriptedLoss,
    SilenceLoss,
)
from repro.contention.services import (
    LeaderElectionService,
    NoContentionManager,
    WakeUpService,
)
from repro.core.algorithm import Algorithm
from repro.core.environment import Environment
from repro.core.errors import ConfigurationError, ModelViolation
from repro.core.execution import ExecutionEngine, run_algorithm
from repro.core.multiset import Multiset
from repro.core.process import ScriptedProcess
from repro.core.types import ACTIVE, COLLISION, NULL, PASSIVE
from repro.detectors.detector import ParametricCollisionDetector, perfect_detector
from repro.detectors.properties import AccuracyMode, Completeness


def make_env(n=3, detector=None, cm=None, loss=None, crash=None):
    return Environment(
        indices=tuple(range(n)),
        detector=detector or perfect_detector(),
        contention=cm or NoContentionManager(),
        loss=loss or ReliableDelivery(),
        crash=crash or NoCrashes(),
    )


def scripted_algorithm(scripts):
    """Algorithm running per-index message scripts."""
    return Algorithm(
        lambda i: ScriptedProcess(scripts.get(i, [])), anonymous=False
    )


def test_reliable_delivery_all_receive_all():
    env = make_env(3)
    result = run_algorithm(
        env, scripted_algorithm({0: ["a"], 1: ["b"]}), max_rounds=1,
        until_all_decided=False,
    )
    rec = result.records[0]
    for pid in range(3):
        assert rec.received[pid] == Multiset(["a", "b"])


def test_broadcaster_always_receives_own_message():
    # Even under total silence, constraint 5 holds.
    env = make_env(3, loss=SilenceLoss())
    result = run_algorithm(
        env, scripted_algorithm({0: ["a"], 1: ["b"]}), max_rounds=1,
        until_all_decided=False,
    )
    rec = result.records[0]
    assert rec.received[0] == Multiset(["a"])
    assert rec.received[1] == Multiset(["b"])
    assert rec.received[2] == Multiset([])


def test_receive_sets_are_submultisets_of_broadcasts():
    env = make_env(4, loss=IIDLoss(0.5, seed=7))
    result = run_algorithm(
        env,
        scripted_algorithm({i: ["m", "m"] for i in range(4)}),
        max_rounds=2,
        until_all_decided=False,
    )
    for rec in result.records:
        sent = Multiset(
            [m for m in rec.messages.values() if m is not None]
        )
        for pid in range(4):
            assert rec.received[pid] <= sent


def test_perfect_detector_reports_exactly_on_loss():
    env = make_env(3, loss=SilenceLoss())
    result = run_algorithm(
        env, scripted_algorithm({0: ["a"]}), max_rounds=1,
        until_all_decided=False,
    )
    rec = result.records[0]
    assert rec.cd_advice[0] is NULL        # received everything (its own)
    assert rec.cd_advice[1] is COLLISION   # lost the only message
    assert rec.cd_advice[2] is COLLISION


def test_silent_round_gives_null_advice_with_accuracy():
    env = make_env(3)
    result = run_algorithm(
        env, scripted_algorithm({}), max_rounds=1, until_all_decided=False
    )
    rec = result.records[0]
    assert all(adv is NULL for adv in rec.cd_advice.values())
    assert rec.broadcast_count == 0


def test_crash_after_send_broadcasts_then_dies():
    env = make_env(
        3,
        crash=ScheduledCrashes({1: [CrashEvent(0, after_send=True)]}),
    )
    result = run_algorithm(
        env, scripted_algorithm({0: ["last-words", "never"]}),
        max_rounds=2, until_all_decided=False,
    )
    assert result.records[0].messages[0] == "last-words"
    assert 0 in result.records[0].crashed_during
    assert result.records[1].messages[0] is None
    assert result.crash_rounds[0] == 1


def test_crash_before_send_is_silent_in_crash_round():
    env = make_env(
        3,
        crash=ScheduledCrashes({1: [CrashEvent(0, after_send=False)]}),
    )
    result = run_algorithm(
        env, scripted_algorithm({0: ["never"]}),
        max_rounds=1, until_all_decided=False,
    )
    assert result.records[0].messages[0] is None
    assert result.crash_rounds[0] == 1


def test_crashed_process_never_steps_again():
    env = make_env(
        2, crash=ScheduledCrashes.at({1: [0]})
    )
    processes = {0: ScriptedProcess(["a", "b", "c"]),
                 1: ScriptedProcess([])}
    engine = ExecutionEngine(env, processes)
    engine.run(3, until_all_decided=False)
    # Only the crash round observed by process 0; its round counter froze.
    assert processes[0].round == 0
    assert processes[1].round == 3


def test_correct_indices_excludes_crashed(tmp_path=None):
    env = make_env(3, crash=ScheduledCrashes.at({2: [1]}))
    result = run_algorithm(
        env, scripted_algorithm({}), max_rounds=3, until_all_decided=False
    )
    assert result.correct_indices() == (0, 2)
    assert result.crashed_indices() == (1,)


def test_cm_advice_recorded_for_everyone():
    env = make_env(3, cm=LeaderElectionService(1, leader=2))
    result = run_algorithm(
        env, scripted_algorithm({}), max_rounds=1, until_all_decided=False
    )
    rec = result.records[0]
    assert rec.cm_advice[2] is ACTIVE
    assert rec.cm_advice[0] is PASSIVE
    assert rec.cm_advice[1] is PASSIVE


def test_engine_requires_matching_process_map():
    env = make_env(3)
    with pytest.raises(ConfigurationError):
        ExecutionEngine(env, {0: ScriptedProcess([])})


def test_negative_max_rounds_rejected():
    env = make_env(2)
    engine = ExecutionEngine(
        env, {0: ScriptedProcess([]), 1: ScriptedProcess([])}
    )
    with pytest.raises(ConfigurationError):
        engine.run(-1)


def test_run_can_be_resumed():
    env = make_env(2)
    engine = ExecutionEngine(
        env, {0: ScriptedProcess(["a"] * 5), 1: ScriptedProcess([])}
    )
    engine.run(2, until_all_decided=False)
    assert engine.round == 2
    engine.run(3, until_all_decided=False)
    assert engine.round == 5
    assert engine.result().rounds == 5


def test_halted_process_is_silent_but_not_crashed():
    class HaltEarly(ScriptedProcess):
        def transition(self, received, cd, cm):
            super().transition(received, cd, cm)
            self.halt()

    env = make_env(2)
    processes = {0: HaltEarly(["x", "y"]), 1: ScriptedProcess([])}
    engine = ExecutionEngine(env, processes)
    result = engine.run(2, until_all_decided=False)
    assert result.records[0].messages[0] == "x"
    assert result.records[1].messages[0] is None   # halted, not crashed
    assert result.crash_rounds[0] is None


def test_detector_sees_only_counts():
    """The engine passes only (c, T) to the detector (Definition 6)."""
    seen = []

    class SpyDetector(ParametricCollisionDetector):
        def advise(self, round_index, broadcasters, received_counts):
            seen.append((round_index, broadcasters, dict(received_counts)))
            return super().advise(round_index, broadcasters, received_counts)

    env = make_env(
        2,
        detector=SpyDetector(Completeness.FULL, AccuracyMode.ALWAYS),
    )
    run_algorithm(
        env, scripted_algorithm({0: ["secret"]}), max_rounds=1,
        until_all_decided=False,
    )
    assert seen == [(1, 1, {0: 1, 1: 1})]


def test_malformed_loss_adversary_is_caught():
    """An adversary claiming a receiver got more than was sent trips the
    model validator inside the detector path."""

    def bad_rule(round_index, senders, receiver):
        return frozenset()

    env = make_env(2, loss=ScriptedLoss(bad_rule))

    class LyingDetector(ParametricCollisionDetector):
        def advise(self, round_index, broadcasters, received_counts):
            return super().advise(
                round_index, broadcasters + 10, received_counts
            )

    # Direct detector check: t > c raises.
    det = ParametricCollisionDetector(
        Completeness.FULL, AccuracyMode.ALWAYS
    )
    with pytest.raises(ModelViolation):
        det.advise(1, 0, {0: 5})


def test_until_all_decided_stops_early():
    class DecideImmediately(ScriptedProcess):
        def transition(self, received, cd, cm):
            self.decide("v")
            self.halt()

    env = make_env(2)
    engine = ExecutionEngine(
        env, {0: DecideImmediately([]), 1: DecideImmediately([])}
    )
    result = engine.run(100, until_all_decided=True)
    assert result.rounds == 1
    assert result.all_correct_decided()
