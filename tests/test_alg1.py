"""Tests for Algorithm 1 (anonymous, maj-OAC + WS + ECF, Theorem 1)."""

import pytest

from repro.adversary.crash import ScheduledCrashes
from repro.adversary.loss import EventualCollisionFreedom, IIDLoss
from repro.algorithms.alg1 import Alg1Process, algorithm_1, termination_bound
from repro.contention.services import LeaderElectionService, WakeUpService
from repro.core.consensus import evaluate, require_solved
from repro.core.execution import run_consensus
from repro.core.multiset import Multiset
from repro.core.types import ACTIVE, COLLISION, NULL, PASSIVE
from repro.detectors.classes import MAJ_AC, MAJ_OAC
from repro.detectors.policy import SpuriousUntilPolicy, TargetedSpuriousPolicy
from repro.experiments.scenarios import maj_oac_environment
from repro.lowerbounds.alpha import alpha_execution


def test_is_anonymous():
    assert algorithm_1().is_anonymous


def test_decides_by_cst_plus_2_clean_environment():
    env = maj_oac_environment(5, cst=1)
    result = run_consensus(
        env, algorithm_1(), {i: i + 10 for i in range(5)}, max_rounds=20
    )
    require_solved(result, by_round=termination_bound(1))


@pytest.mark.parametrize("cst", [1, 2, 5, 9])
@pytest.mark.parametrize("n", [2, 3, 8])
def test_termination_bound_across_cst_and_n(cst, n):
    env = maj_oac_environment(n, cst=cst, seed=cst * 100 + n)
    result = run_consensus(
        env, algorithm_1(), {i: i % 3 for i in range(n)},
        max_rounds=termination_bound(cst) + 5,
    )
    require_solved(result, by_round=termination_bound(cst))


def test_decision_is_some_initial_value():
    env = maj_oac_environment(4, cst=3, seed=7)
    initials = {0: "w", 1: "q", 2: "m", 3: "c"}
    result = run_consensus(env, algorithm_1(), initials, max_rounds=30)
    decided = set(result.decided_values().values())
    assert len(decided) == 1
    assert decided <= set(initials.values())


def test_unanimous_input_decides_that_value():
    env = maj_oac_environment(4, cst=1)
    result = run_consensus(
        env, algorithm_1(), {i: "only" for i in range(4)}, max_rounds=10
    )
    assert set(result.decided_values().values()) == {"only"}


def test_tolerates_crashes_of_everyone_but_one():
    env = maj_oac_environment(
        4, cst=6,
        crash=ScheduledCrashes.at({1: [1], 3: [2], 5: [3]}),
    )
    result = run_consensus(
        env, algorithm_1(), {i: i for i in range(4)}, max_rounds=30
    )
    report = evaluate(result)
    assert report.agreement and report.strong_validity
    assert result.decisions[0] is not None


def test_leader_crash_delays_but_preserves_safety():
    # The wake-up service keeps rotating, so another process eventually
    # gets a clean round even after the first post-CST leader crashes.
    env = maj_oac_environment(
        3, cst=2, crash=ScheduledCrashes.at({3: [0]})
    )
    result = run_consensus(
        env, algorithm_1(), {0: "a", 1: "b", 2: "c"}, max_rounds=40
    )
    report = evaluate(result)
    assert report.safe
    assert report.termination


def test_spurious_collisions_delay_but_never_break_agreement():
    env = maj_oac_environment(
        4, cst=12,
        detector_policy=SpuriousUntilPolicy(12),
        seed=5,
    )
    result = run_consensus(
        env, algorithm_1(), {i: i for i in range(4)},
        max_rounds=termination_bound(12) + 5,
    )
    require_solved(result, by_round=termination_bound(12))


def test_targeted_false_positive_blocks_decision_that_round():
    """A spurious ± in a veto round must postpone every decision: the
    processes cannot tell it from a lost veto.  The spurious round must
    precede r_acc (after it, accuracy forbids the false positive)."""
    env = maj_oac_environment(
        3, cst=3, loss_rate=0.0,
        detector_policy=TargetedSpuriousPolicy(spurious_rounds=[2]),
    )
    result = run_consensus(
        env, algorithm_1(), {i: "v" for i in range(3)}, max_rounds=10
    )
    assert all(r > 2 for r in result.decision_rounds.values())
    assert evaluate(result).solved


def test_works_with_always_accurate_detector_too():
    # maj-AC ⊆ maj-OAC, so Algorithm 1 must also run under maj-AC.
    env = maj_oac_environment(3, cst=1)
    env.detector = MAJ_AC.make()
    result = run_consensus(
        env, algorithm_1(), {0: 1, 1: 2, 2: 3}, max_rounds=10
    )
    assert evaluate(result).solved


def test_lossy_prelude_never_decides_two_values():
    for seed in range(10):
        env = maj_oac_environment(5, cst=10, seed=seed, loss_rate=0.6)
        result = run_consensus(
            env, algorithm_1(), {i: i % 4 for i in range(5)},
            max_rounds=40,
        )
        report = evaluate(result)
        assert report.agreement, f"seed {seed}: {report.problems}"
        assert report.strong_validity


# ----------------------------------------------------------------------
# Unit-level behaviour of the process automaton
# ----------------------------------------------------------------------
def test_proposal_adopts_minimum_on_clean_reception():
    p = Alg1Process(9)
    p.message(PASSIVE)
    p.transition(Multiset([4, 7]), NULL, PASSIVE)
    assert p.estimate == 4


def test_proposal_keeps_estimate_on_collision():
    p = Alg1Process(9)
    p.message(PASSIVE)
    p.transition(Multiset([4]), COLLISION, PASSIVE)
    assert p.estimate == 9


def test_veto_sent_after_collision_or_multiple_values():
    p = Alg1Process(9)
    p.message(ACTIVE)
    p.transition(Multiset([1, 2]), NULL, ACTIVE)   # two distinct values
    assert p.message(PASSIVE) is not None          # vetoes despite passive

    q = Alg1Process(9)
    q.message(ACTIVE)
    q.transition(Multiset([1]), COLLISION, ACTIVE)
    assert q.message(PASSIVE) is not None


def test_no_veto_after_single_clean_value():
    p = Alg1Process(9)
    p.message(ACTIVE)
    p.transition(Multiset([3, 3]), NULL, ACTIVE)   # one unique value
    assert p.message(ACTIVE) is None


def test_decides_after_quiet_veto_round():
    p = Alg1Process(9)
    p.message(ACTIVE)
    p.transition(Multiset([3]), NULL, ACTIVE)
    p.message(ACTIVE)
    p.transition(Multiset([]), NULL, ACTIVE)
    assert p.has_decided and p.decision == 3 and p.halted


def test_does_not_decide_on_noisy_veto_round():
    p = Alg1Process(9)
    p.message(ACTIVE)
    p.transition(Multiset([3]), NULL, ACTIVE)
    p.message(ACTIVE)
    p.transition(Multiset([]), COLLISION, ACTIVE)
    assert not p.has_decided


def test_alpha_execution_of_alg1_decides_quickly():
    """In the canonical alpha execution Algorithm 1 decides in 2 rounds."""
    result = alpha_execution(algorithm_1(), (0, 1, 2), "v", rounds=4)
    assert all(r == 2 for r in result.decision_rounds.values())
