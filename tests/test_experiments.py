"""Tests for the experiment harness and every registered experiment.

Each experiment must (a) run, (b) produce the table schema DESIGN.md
promises, and (c) satisfy the headline invariant it exists to check —
"within bound" columns all true, violation columns as expected, and the
calibration numbers inside the paper's bands.
"""

import pytest

from repro.experiments.harness import Experiment, ExperimentRegistry, Table
from repro.experiments.registry import REGISTRY, run_experiment


# ----------------------------------------------------------------------
# Harness mechanics
# ----------------------------------------------------------------------
def test_table_rendering_alignment_and_floats():
    t = Table(title="T", columns=["a", "bee"], note="hello")
    t.add(a=1, bee=0.5)
    t.add(a="xx")
    text = t.render()
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "0.500" in text
    assert "note: hello" in text
    assert t.column("a") == [1, "xx"]
    assert t.column("bee") == [0.5, None]


def test_registry_rejects_duplicates():
    reg = ExperimentRegistry()
    exp = Experiment("X1", "t", "ref", lambda: [])
    reg.register(exp)
    with pytest.raises(ValueError):
        reg.register(exp)
    assert reg.ids() == ["X1"]
    assert reg.get("X1") is exp


def test_registry_contains_all_design_md_experiments():
    assert set(REGISTRY.ids()) == {
        "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
        "E9a", "E9b", "E9c", "E10", "E12", "E13", "E14", "E15", "E16",
        "E17", "E18", "E19",
    }


# ----------------------------------------------------------------------
# Individual experiments (invariants, not exact numbers)
# ----------------------------------------------------------------------
def test_e1_matrix_rows_cover_all_regimes():
    (table,) = run_experiment("E1")
    classes = table.column("class")
    assert {"maj-OAC", "0-OAC", "half-AC", "NoCD", "NoACC", "OAC",
            "0-AC"} <= set(classes)
    measured = " ".join(str(m) for m in table.column("measured"))
    assert "FAILED" not in measured
    assert "UNEXPECTED" not in measured


def test_e2_all_runs_within_theorem1_bound():
    (table,) = run_experiment("E2")
    assert table.rows
    assert all(table.column("within_bound"))
    assert all(table.column("agreement"))


def test_e3_rounds_grow_logarithmically_and_within_bound():
    (table,) = run_experiment("E3")
    rounds = table.column("rounds_after_cst")
    assert rounds == sorted(rounds)
    assert all(table.column("within_bound"))
    assert all(table.column("solved"))
    # Shape: doubling |V| adds ~2 rounds, not a multiplicative factor.
    assert rounds[-1] <= rounds[0] + 2 * 10


def test_e4_crossover_branch_flips():
    (table,) = run_experiment("E4")
    branches = table.column("branch")
    assert "leader-elect" in branches and "alg2-on-values" in branches
    assert all(table.column("within_bound"))


def test_e5_crash_rows_cost_more_and_stay_within_bound():
    (table,) = run_experiment("E5")
    assert all(table.column("within_bound"))
    assert all(table.column("solved"))
    by_vc = {}
    for row in table.rows:
        by_vc.setdefault(row["|V|"], {})[row["crashes"]] = row[
            "decided_round"
        ]
    for vc, entry in by_vc.items():
        if 1 in entry:
            assert entry[1] > entry[0], f"|V|={vc}"


def test_e6_and_e7_all_as_expected():
    for exp_id in ("E6", "E7"):
        (table,) = run_experiment(exp_id)
        assert table.rows
        assert all(table.column("as_expected")), exp_id


def test_e8_ablation_shows_the_gap():
    (table,) = run_experiment("E8")
    outcomes = dict(zip(
        [(r["algorithm"], r["detector"]) for r in table.rows],
        table.column("outcome"),
    ))
    assert "agreement + termination" in outcomes[
        ("Algorithm 1", "maj-OAC")
    ]
    assert "VIOLATED" in outcomes[("Algorithm 1", "half-AC (adversarial)")]
    assert outcomes[("Algorithm 2", "half-AC (adversarial)")] == (
        "agreement holds"
    )


def test_e9a_loss_band():
    (table,) = run_experiment("E9a")
    by_b = dict(zip(table.column("broadcasters"),
                    table.column("loss_fraction")))
    assert by_b[1] < 0.05
    assert by_b[2] < by_b[3] < by_b[5]
    # Low contention brackets the paper's 20-50% band.
    assert by_b[2] < 0.5 and by_b[3] > 0.2


def test_e9b_detector_shape():
    (table,) = run_experiment("E9b")
    for row in table.rows:
        assert row["zero"] > 0.99
        assert row["majority"] > 0.9
        assert row["full"] <= row["majority"] + 1e-9


def test_e9c_clocks_stay_aligned():
    (table,) = run_experiment("E9c")
    assert all(table.column("aligned"))
    skews = table.column("max_skew")
    assert skews == sorted(skews)   # less frequent resync => more skew


def test_e10_zero_safety_violations():
    tables = run_experiment("E10")
    main = tables[0]
    assert all(v == 0 for v in main.column("agreement_violations"))
    assert all(v == 0 for v in main.column("validity_violations"))
    testbed = tables[1]
    assert all(
        s == t for s, t in zip(
            testbed.column("safe"), testbed.column("trials")
        )
    )


def test_e12_counting_tables():
    convergence, impossibility = run_experiment("E12")
    assert all(convergence.column("converged"))
    assert all(impossibility.column("leader_indist"))
    assert all(impossibility.column("counting_defeated"))


def test_e13_eventual_completeness_rows():
    (table,) = run_experiment("E13")
    outcomes = [str(o).lower() for o in table.column("outcome")]
    assert sum("violat" in o for o in outcomes) >= 3
    assert not any("failed" in o for o in outcomes)


def test_experiment_render_includes_banner():
    text = REGISTRY.get("E9c").render()
    assert "[E9c]" in text and "RBS" in text
