"""Tests for the noise lemma validators (§5.5) and Environment/CST."""

import pytest

from repro.adversary.loss import (
    EventualCollisionFreedom,
    IIDLoss,
    ReliableDelivery,
    SilenceLoss,
    satisfies_ecf,
)
from repro.contention.services import NoContentionManager, WakeUpService
from repro.core.algorithm import Algorithm
from repro.core.environment import Environment
from repro.core.errors import ConfigurationError
from repro.core.execution import run_algorithm
from repro.core.process import ScriptedProcess
from repro.detectors.classes import ZERO_AC, ZERO_OAC
from repro.detectors.detector import no_cd_detector, perfect_detector
from repro.detectors.noise import (
    check_detector_trace,
    check_noise_lemma,
    detector_trace_violations,
    noise_lemma_violations,
    silence_implies_no_broadcast,
)
from repro.detectors.policy import SilentPolicy
from repro.detectors.properties import AccuracyMode, Completeness


def run_with(detector, scripts, n=3, loss=None, rounds=2):
    env = Environment(
        indices=tuple(range(n)),
        detector=detector,
        contention=NoContentionManager(),
        loss=loss or SilenceLoss(),
    )
    algo = Algorithm(
        lambda i: ScriptedProcess(scripts.get(i, [])), anonymous=False
    )
    return run_algorithm(env, algo, max_rounds=rounds, until_all_decided=False)


# ----------------------------------------------------------------------
# Noise lemma (Lemma 2) and Corollary 1
# ----------------------------------------------------------------------
def test_noise_lemma_holds_for_zero_complete_detector():
    result = run_with(ZERO_AC.make(), {0: ["m", "m"]})
    assert check_noise_lemma(result)
    assert silence_implies_no_broadcast(result)


def test_noise_lemma_flags_silent_loss():
    # A detector with no completeness can stay silent while messages die.
    det = ZERO_AC.make()
    det.completeness = Completeness.NONE
    det.policy = SilentPolicy()
    result = run_with(det, {0: ["m"]})
    violations = noise_lemma_violations(result)
    assert (1, 1) in violations and (1, 2) in violations
    assert not check_noise_lemma(result)
    assert not silence_implies_no_broadcast(result)


def test_detector_trace_validation_accepts_legal_runs():
    result = run_with(perfect_detector(), {0: ["m"], 1: ["x"]})
    assert check_detector_trace(
        result, Completeness.FULL, AccuracyMode.ALWAYS
    )
    # A FULL-legal trace is legal for every weaker completeness too.
    assert check_detector_trace(
        result, Completeness.ZERO, AccuracyMode.ALWAYS
    )


def test_detector_trace_validation_catches_missing_reports():
    det = ZERO_AC.make()
    det.completeness = Completeness.NONE
    det.policy = SilentPolicy()
    result = run_with(det, {0: ["m"]})
    violations = detector_trace_violations(
        result, Completeness.ZERO, AccuracyMode.ALWAYS
    )
    assert violations
    assert all(reason == "missing obligatory collision report"
               for _, _, reason in violations)


def test_detector_trace_validation_catches_false_positives():
    result = run_with(no_cd_detector(), {0: ["m"]}, loss=ReliableDelivery())
    violations = detector_trace_violations(
        result, Completeness.FULL, AccuracyMode.ALWAYS
    )
    assert violations
    assert any(reason == "collision report violates accuracy"
               for _, _, reason in violations)


def test_eventual_accuracy_trace_validation_ignores_prefix():
    result = run_with(no_cd_detector(), {0: ["m"]}, loss=ReliableDelivery(),
                      rounds=2)
    # With r_acc=3 the two noisy rounds are legal for OAC-style classes.
    assert check_detector_trace(
        result, Completeness.FULL, AccuracyMode.EVENTUAL, r_acc=3
    )


# ----------------------------------------------------------------------
# Environment and CST
# ----------------------------------------------------------------------
def test_environment_validates_indices():
    with pytest.raises(ConfigurationError):
        Environment(
            indices=(),
            detector=perfect_detector(),
            contention=NoContentionManager(),
        )
    with pytest.raises(ConfigurationError):
        Environment(
            indices=(1, 1),
            detector=perfect_detector(),
            contention=NoContentionManager(),
        )


def test_environment_sorts_indices():
    env = Environment(
        indices=(3, 1, 2),
        detector=perfect_detector(),
        contention=NoContentionManager(),
    )
    assert env.indices == (1, 2, 3)
    assert env.n == 3


def test_cst_is_max_of_stabilization_rounds():
    env = Environment(
        indices=(0, 1),
        detector=ZERO_OAC.make(r_acc=7),
        contention=WakeUpService(stabilization_round=3),
        loss=EventualCollisionFreedom(IIDLoss(0.5), r_cf=5),
    )
    assert env.communication_stabilization_time() == 7


def test_cst_uses_one_for_always_accurate():
    env = Environment(
        indices=(0, 1),
        detector=ZERO_AC.make(),
        contention=WakeUpService(stabilization_round=4),
        loss=ReliableDelivery(),
    )
    assert env.communication_stabilization_time() == 4


def test_cst_none_when_component_promises_nothing():
    env = Environment(
        indices=(0, 1),
        detector=ZERO_AC.make(),
        contention=NoContentionManager(),   # no promise
        loss=ReliableDelivery(),
    )
    assert env.communication_stabilization_time() is None
    env2 = Environment(
        indices=(0, 1),
        detector=no_cd_detector(),          # never accurate
        contention=WakeUpService(1),
        loss=ReliableDelivery(),
    )
    assert env2.communication_stabilization_time() is None


# ----------------------------------------------------------------------
# ECF trace checking
# ----------------------------------------------------------------------
def test_satisfies_ecf_over_execution_traces():
    env = Environment(
        indices=(0, 1, 2),
        detector=perfect_detector(),
        contention=NoContentionManager(),
        loss=EventualCollisionFreedom(SilenceLoss(), r_cf=2),
    )
    algo = Algorithm(
        lambda i: ScriptedProcess(["m", "m"] if i == 0 else []),
        anonymous=False,
    )
    result = run_algorithm(env, algo, max_rounds=2, until_all_decided=False)
    trace = result.transmission_trace()
    received = [entry.received for entry in trace]
    assert satisfies_ecf(trace, received, r_cf=2)
    assert not satisfies_ecf(trace, received, r_cf=1)
