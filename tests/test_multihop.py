"""Tests for the multihop extension (topologies, layer, flooding)."""

import pytest

import networkx as nx

from repro.adversary.loss import IIDLoss
from repro.algorithms.alg2 import algorithm_2
from repro.contention.services import WakeUpService
from repro.core.consensus import evaluate
from repro.core.environment import Environment
from repro.core.errors import ConfigurationError
from repro.core.execution import run_consensus
from repro.core.types import COLLISION, NULL
from repro.detectors.properties import AccuracyMode, Completeness
from repro.substrate.multihop import (
    MultihopLayer,
    MultihopNetwork,
    flood,
)


# ----------------------------------------------------------------------
# Topologies
# ----------------------------------------------------------------------
def test_line_topology():
    net = MultihopNetwork.line(5)
    assert net.n == 5
    assert net.diameter == 4
    assert net.neighbors(0) == {1}
    assert net.neighbors(2) == {1, 3}


def test_grid_topology():
    net = MultihopNetwork.grid(3, 3)
    assert net.n == 9
    assert net.diameter == 4


def test_clique_chain_topology():
    net = MultihopNetwork.clique_chain(3, 4)
    # Bridges shared between consecutive cliques: 3*4 - 2 nodes.
    assert net.n == 10
    # Inside a clique everyone is adjacent.
    assert net.neighbors(0) >= {1, 2, 3}


def test_random_geometric_is_connected():
    net = MultihopNetwork.random_geometric(20, 0.4, seed=1)
    assert nx.is_connected(net.graph)


def test_disconnected_graph_rejected():
    graph = nx.Graph()
    graph.add_edge(0, 1)
    graph.add_node(2)
    with pytest.raises(ConfigurationError):
        MultihopNetwork(graph)


# ----------------------------------------------------------------------
# The multihop layer
# ----------------------------------------------------------------------
def test_layer_drops_non_neighbor_messages():
    net = MultihopNetwork.line(4)
    layer = MultihopLayer(net)
    # Node 3 hears only node 2.
    assert layer.losses(1, [0, 1, 2], 3) == {0, 1}
    assert layer.losses(1, [0, 1, 2], 1) == set()


def test_layer_detector_uses_neighborhood_counts():
    net = MultihopNetwork.line(4)
    layer = MultihopLayer(net)
    layer.losses(1, [0, 3], 1)   # record the round's senders
    # Node 1 has one broadcasting neighbour (0); it received it: null.
    # Node 2 has one broadcasting neighbour (3); received count 0: ±.
    advice = layer.advise(1, 2, {0: 1, 1: 1, 2: 0, 3: 1})
    assert advice[1] is NULL
    assert advice[2] is COLLISION
    # Node 0 broadcast and received itself only — everything its
    # neighbourhood sent that it could hear: c_local counts 0 itself.
    assert advice[0] is NULL


def test_layer_inner_adversary_composes():
    net = MultihopNetwork.line(3)
    layer = MultihopLayer(net, inner=IIDLoss(1.0, seed=0))
    # Neighbour messages now die in the inner adversary too.
    assert layer.losses(1, [1], 0) == {1}


def test_consensus_inside_one_clique_of_a_multihop_network():
    """A clique of the chain runs Algorithm 2 over the multihop layer
    while the rest of the network stays silent."""
    net = MultihopNetwork.clique_chain(2, 4)   # nodes 0-3 and 3-6
    clique = (0, 1, 2, 3)
    layer = MultihopLayer(
        net, completeness=Completeness.ZERO,
        accuracy=AccuracyMode.ALWAYS,
    )
    env = Environment(
        indices=clique,
        detector=layer,
        contention=WakeUpService(stabilization_round=1),
        loss=layer,
    )
    values = ["a", "b", "c"]
    result = run_consensus(
        env, algorithm_2(values),
        {0: "a", 1: "b", 2: "c", 3: "a"},
        max_rounds=40,
    )
    assert evaluate(result).solved


# ----------------------------------------------------------------------
# Flooding
# ----------------------------------------------------------------------
def test_blind_flood_on_line_tracks_diameter():
    net = MultihopNetwork.line(10)
    result = flood(net, 0, strategy="blind", channel="total")
    assert result.completed
    assert result.completed_round == net.diameter


def test_blind_flood_deadlocks_on_grid_under_total_collision():
    net = MultihopNetwork.grid(4, 4)
    result = flood(net, 0, strategy="blind", channel="total",
                   max_rounds=200)
    assert not result.completed
    # Coverage stalls strictly below n.
    assert result.covered_by_round[-1] < net.n


def test_backoff_flood_completes_under_total_collision():
    net = MultihopNetwork.grid(4, 4)
    result = flood(net, 0, strategy="backoff", channel="total",
                   max_rounds=400, seed=3)
    assert result.completed


def test_capture_channel_forgives_blind_flooding():
    net = MultihopNetwork.grid(4, 4)
    result = flood(net, 0, strategy="blind", channel="capture")
    assert result.completed
    assert result.completed_round <= 2 * net.diameter


def test_coverage_is_monotone():
    net = MultihopNetwork.grid(3, 3)
    result = flood(net, 0, strategy="backoff", channel="capture", seed=5)
    assert result.covered_by_round == sorted(result.covered_by_round)


def test_flood_validation():
    net = MultihopNetwork.line(3)
    with pytest.raises(ConfigurationError):
        flood(net, 0, strategy="bogus")
    with pytest.raises(ConfigurationError):
        flood(net, 0, channel="bogus")
    with pytest.raises(ConfigurationError):
        flood(net, 99)
