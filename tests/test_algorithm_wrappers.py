"""Tests for the Algorithm / ConsensusAlgorithm factories (Defs 2-3)."""

import pytest

from repro.core.algorithm import Algorithm, ConsensusAlgorithm
from repro.core.errors import ConfigurationError
from repro.core.process import SilentProcess


def test_anonymous_algorithm_spawns_equal_automata():
    algo = Algorithm.anonymous(SilentProcess)
    assert algo.is_anonymous
    procs = algo.spawn_all([3, 7])
    assert set(procs) == {3, 7}
    assert type(procs[3]) is type(procs[7])


def test_indexed_algorithm_sees_index():
    seen = []

    def factory(i):
        seen.append(i)
        return SilentProcess()

    algo = Algorithm.indexed(factory)
    assert not algo.is_anonymous
    algo.spawn(42)
    assert seen == [42]


def test_consensus_algorithm_threads_values():
    captured = []

    def factory(value):
        captured.append(value)
        return SilentProcess()

    algo = ConsensusAlgorithm.anonymous(factory)
    procs = algo.instantiate({0: "x", 1: "y"})
    assert set(procs) == {0, 1}
    assert sorted(captured) == ["x", "y"]


def test_consensus_algorithm_rejects_empty_assignment():
    algo = ConsensusAlgorithm.anonymous(lambda v: SilentProcess())
    with pytest.raises(ConfigurationError):
        algo.instantiate({})


def test_with_fixed_values_bakes_assignment():
    algo = ConsensusAlgorithm.indexed(lambda i, v: SilentProcess())
    fixed = algo.with_fixed_values({0: "a"})
    assert fixed.spawn(0) is not None
    with pytest.raises(ConfigurationError):
        fixed.spawn(5)


def test_indexed_consensus_factory_sees_both():
    pairs = []
    algo = ConsensusAlgorithm.indexed(
        lambda i, v: pairs.append((i, v)) or SilentProcess()
    )
    algo.spawn(9, "z")
    assert pairs == [(9, "z")]
