"""Tests for the Section 1.4 applications."""

import random

import pytest

from repro.applications.aggregation import (
    AggregationTree,
    MaxConsensusProcess,
    aggregate_naive,
    aggregate_with_consensus,
    max_consensus,
)
from repro.applications.clustering import ClusteredNetwork, cluster_vote
from repro.core.consensus import evaluate
from repro.core.errors import ConfigurationError
from repro.core.execution import run_consensus
from repro.experiments.scenarios import zero_oac_environment

DOMAIN = list(range(32))


# ----------------------------------------------------------------------
# Max-consensus (the aggregation building block)
# ----------------------------------------------------------------------
def test_max_consensus_decides_the_group_maximum():
    env = zero_oac_environment(4, cst=3, loss_rate=0.2, seed=1)
    result = run_consensus(
        env, max_consensus(DOMAIN), {0: 7, 1: 19, 2: 3, 3: 11},
        max_rounds=300,
    )
    report = evaluate(result)
    assert report.solved
    assert set(result.decided_values().values()) == {19}


@pytest.mark.parametrize("seed", range(5))
def test_max_consensus_always_maximum_across_seeds(seed):
    rng = random.Random(seed)
    proposals = {i: rng.randrange(32) for i in range(5)}
    env = zero_oac_environment(5, cst=4, loss_rate=0.3, seed=seed)
    result = run_consensus(
        env, max_consensus(DOMAIN), proposals, max_rounds=400
    )
    report = evaluate(result)
    assert report.solved, report.problems
    assert set(result.decided_values().values()) == {
        max(proposals.values())
    }


def test_max_consensus_is_safe_like_alg2():
    """Max-merge must not weaken Algorithm 2's safety."""
    env = zero_oac_environment(4, cst=20, loss_rate=0.6, seed=2)
    result = run_consensus(
        env, max_consensus(DOMAIN), {0: 1, 1: 2, 2: 3, 3: 4},
        max_rounds=60,
    )
    report = evaluate(result)
    assert report.agreement and report.strong_validity


# ----------------------------------------------------------------------
# Aggregation pipelines
# ----------------------------------------------------------------------
def test_tree_levels_and_groups():
    tree = AggregationTree(leaf_count=10, branching=3)
    assert tree.levels() == [10, 4, 2, 1]
    assert tree.groups_at(10) == [
        (0, 1, 2), (3, 4, 5), (6, 7, 8), (9,),
    ]
    with pytest.raises(ConfigurationError):
        AggregationTree(0)
    with pytest.raises(ConfigurationError):
        AggregationTree(4, branching=1)


def test_naive_aggregation_exact_without_loss():
    readings = [5, 30, 11, 2, 8, 30, 1, 19]
    outcome = aggregate_naive(readings, loss_rate=0.0)
    assert outcome.exact and outcome.result == 30


def test_naive_aggregation_loses_values_silently():
    readings = list(range(16))
    wrong = sum(
        not aggregate_naive(readings, loss_rate=0.5, seed=s).exact
        for s in range(20)
    )
    assert wrong > 0


def test_consensus_aggregation_is_exact_under_loss():
    readings = [3, 28, 14, 9, 31, 6, 22, 17]
    outcome = aggregate_with_consensus(
        readings, DOMAIN, loss_rate=0.4, seed=5
    )
    assert outcome.exact
    assert outcome.result == 31
    assert outcome.safety_ok
    assert outcome.consensus_groups > 0


def test_consensus_aggregation_rejects_out_of_domain():
    with pytest.raises(ConfigurationError):
        aggregate_with_consensus([99], DOMAIN, 0.1)


# ----------------------------------------------------------------------
# Cluster voting
# ----------------------------------------------------------------------
def test_cluster_partition_covers_everyone():
    net = ClusteredNetwork(n=10, cluster_size=4)
    members = [i for cluster in net.clusters() for i in cluster]
    assert members == list(range(10))


def test_cluster_vote_agreement_everywhere():
    net = ClusteredNetwork(n=12, cluster_size=4)
    readings = {i: (i * 7) % 32 for i in range(12)}
    reports = cluster_vote(net, readings, DOMAIN, seed=1)
    assert len(reports) == 3
    for report in reports:
        assert report.agreement_ok
        assert report.every_member_voted
        assert report.decision in set(report.proposals.values())


def test_cluster_vote_requires_full_readings():
    net = ClusteredNetwork(n=4, cluster_size=2)
    with pytest.raises(ConfigurationError):
        cluster_vote(net, {0: 1}, DOMAIN)


def test_clustering_saves_transport_for_far_sources():
    net_far = ClusteredNetwork(n=16, cluster_size=4, base_distance=40)
    readings = {i: (i * 3) % 32 for i in range(16)}
    reports = cluster_vote(net_far, readings, DOMAIN, seed=2)
    assert net_far.clustered_transport_cost(reports) < (
        net_far.naive_transport_cost()
    )


def test_singleton_cluster_short_circuits():
    net = ClusteredNetwork(n=5, cluster_size=4)
    readings = {i: i for i in range(5)}
    reports = cluster_vote(net, readings, DOMAIN, seed=3)
    assert reports[-1].members == (4,)
    assert reports[-1].decision == 4
    assert reports[-1].local_messages == 0
