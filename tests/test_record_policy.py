"""Tests for record policies, the fast-path engine, and the sweep runner.

Covers this PR's contract:

* ``FULL`` vs ``SUMMARY`` vs ``NONE`` produce identical decisions,
  decision rounds, and crash rounds on the same seeds (the policy changes
  what is retained, never what happens);
* summary mode retains per-round aggregates and refuses full-trace
  queries; NONE retains nothing per round;
* an all-crashed run is flagged, not reported as vacuous success;
* the backoff manager only locks a leader the channel confirmed;
* ``Multiset.from_counts`` validates integer multiplicities;
* ``SweepRunner`` grids are deterministic and worker-placement-independent.
"""

import pytest

from repro.adversary.crash import ScheduledCrashes
from repro.adversary.loss import IIDLoss
from repro.algorithms.alg2 import algorithm_2
from repro.algorithms.alg2 import termination_bound as alg2_bound
from repro.contention.backoff import BackoffContentionManager
from repro.contention.services import NoContentionManager
from repro.core.algorithm import Algorithm
from repro.core.consensus import evaluate
from repro.core.environment import Environment
from repro.core.errors import ConfigurationError
from repro.core.execution import ExecutionEngine, run_consensus
from repro.core.multiset import Multiset
from repro.core.process import ScriptedProcess
from repro.core.records import RecordPolicy, RoundRecord, RoundSummary
from repro.core.types import ACTIVE
from repro.detectors.detector import perfect_detector
from repro.experiments.harness import (
    SweepRunner,
    cell_seed,
    consensus_sweep_cell,
    sweep_grid,
)
from repro.experiments.scenarios import zero_oac_environment


def _alg2_run(policy, n=5, seed=3, vc=16, crash=None):
    values = list(range(vc))
    env = zero_oac_environment(n, cst=3, seed=seed, crash=crash)
    assignment = {i: values[(i * 7) % vc] for i in range(n)}
    bound = alg2_bound(3, vc)
    return run_consensus(
        env, algorithm_2(values), assignment, max_rounds=bound + 20,
        record_policy=policy,
    )


# ----------------------------------------------------------------------
# FULL vs SUMMARY vs NONE equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 7])
@pytest.mark.parametrize("n", [3, 5, 8])
def test_policies_produce_identical_outcomes(seed, n):
    full = _alg2_run(RecordPolicy.FULL, n=n, seed=seed)
    summary = _alg2_run(RecordPolicy.SUMMARY, n=n, seed=seed)
    none = _alg2_run(RecordPolicy.NONE, n=n, seed=seed)
    for other in (summary, none):
        assert other.decisions == full.decisions
        assert other.decision_rounds == full.decision_rounds
        assert other.crash_rounds == full.crash_rounds
        assert other.rounds == full.rounds


def test_policies_identical_under_crashes():
    crash = ScheduledCrashes.at({2: [0], 4: [1]}, after_send=False)
    full = _alg2_run(RecordPolicy.FULL, crash=crash)
    crash = ScheduledCrashes.at({2: [0], 4: [1]}, after_send=False)
    summary = _alg2_run(RecordPolicy.SUMMARY, crash=crash)
    assert summary.decisions == full.decisions
    assert summary.decision_rounds == full.decision_rounds
    assert summary.crash_rounds == full.crash_rounds


def test_summary_mode_streams_aggregates():
    full = _alg2_run(RecordPolicy.FULL)
    summary = _alg2_run(RecordPolicy.SUMMARY)
    assert len(summary.summaries) == summary.rounds
    assert (
        summary.broadcast_count_sequence()
        == full.broadcast_count_sequence()
    )
    for rec, agg in zip(full.records, summary.summaries):
        assert agg.round == rec.round
        assert agg.broadcast_count == rec.broadcast_count
        assert agg.crashed_during == rec.crashed_during
        assert dict(agg.decided_during) == dict(rec.decided_during)


def test_non_full_results_refuse_trace_queries():
    summary = _alg2_run(RecordPolicy.SUMMARY)
    none = _alg2_run(RecordPolicy.NONE)
    for result in (summary, none):
        with pytest.raises(ConfigurationError):
            result.records
        with pytest.raises(ConfigurationError):
            result.transmission_trace()
        with pytest.raises(ConfigurationError):
            result.cd_trace()
        with pytest.raises(ConfigurationError):
            result.cm_trace()
        with pytest.raises(ConfigurationError):
            result.view(0)
    assert not none.summaries
    with pytest.raises(ConfigurationError):
        none.broadcast_count_sequence()


def test_step_returns_policy_matched_artifacts():
    def make_engine(policy):
        env = Environment(
            indices=(0, 1),
            detector=perfect_detector(),
            contention=NoContentionManager(),
            loss=IIDLoss(0.2, seed=0),
        )
        env.reset()
        algo = Algorithm(lambda i: ScriptedProcess(["m"]), anonymous=False)
        return ExecutionEngine(
            env, algo.spawn_all(env.indices), record_policy=policy
        )

    assert isinstance(make_engine(RecordPolicy.FULL).step(), RoundRecord)
    assert isinstance(make_engine(RecordPolicy.SUMMARY).step(), RoundSummary)
    assert isinstance(make_engine(RecordPolicy.NONE).step(), RoundSummary)


def test_observer_sees_summaries_in_streaming_mode():
    seen = []
    env = zero_oac_environment(3, cst=2, seed=1)
    env.reset()
    values = list(range(4))
    processes = algorithm_2(values).instantiate({i: values[i] for i in range(3)})
    engine = ExecutionEngine(
        env, processes, record_policy=RecordPolicy.NONE
    )
    engine.run(30, observer=seen.append)
    assert seen
    assert all(isinstance(s, RoundSummary) for s in seen)


# ----------------------------------------------------------------------
# All-crashed runs are flagged, not vacuous successes
# ----------------------------------------------------------------------
def test_all_crashed_run_is_not_vacuous_success():
    env = Environment(
        indices=(0, 1, 2),
        detector=perfect_detector(),
        contention=NoContentionManager(),
        crash=ScheduledCrashes.at({1: [0, 1, 2]}, after_send=False),
    )
    env.reset()
    algo = Algorithm(lambda i: ScriptedProcess(["m"] * 10), anonymous=False)
    engine = ExecutionEngine(
        env, algo.spawn_all(env.indices),
        initial_values={0: "a", 1: "b", 2: "a"},
    )
    result = engine.run(10, until_all_decided=True)
    assert result.no_correct_processes
    assert not result.all_correct_decided()
    assert result.correct_indices() == ()
    # The consensus checker must not call this terminated/solved either.
    report = evaluate(result)
    assert not report.termination
    assert not report.solved
    assert any("no correct processes" in p for p in report.problems)


def test_partial_crash_still_reports_success():
    env = zero_oac_environment(
        4, cst=2, seed=0,
        crash=ScheduledCrashes.at({2: [0]}, after_send=False),
    )
    values = list(range(4))
    result = run_consensus(
        env, algorithm_2(values), {i: values[i] for i in range(4)},
        max_rounds=60,
    )
    assert not result.no_correct_processes
    assert result.all_correct_decided()


# ----------------------------------------------------------------------
# Backoff lock-in is channel-confirmed
# ----------------------------------------------------------------------
def _advance_to_single_active(cm, indices, max_rounds=500):
    """Drive the manager until a round advises exactly one active."""
    for r in range(1, max_rounds):
        advice = cm.advise(r, indices)
        active = [i for i, a in advice.items() if a is ACTIVE]
        if len(active) == 1:
            return r, active[0]
        cm.observe(r, len(active))
    raise AssertionError("never reached a single-active round")


def test_backoff_no_lock_in_when_candidate_crashes_before_send():
    cm = BackoffContentionManager(seed=0)
    indices = (0, 1, 2, 3)
    r, candidate = _advance_to_single_active(cm, indices)
    # The sole active process crashes before send: the channel is silent.
    cm.observe(r, 0)
    assert cm.leader is None
    assert cm.stabilized_at is None
    # Contention stays open; the dead candidate can be excluded later.
    survivors = tuple(i for i in indices if i != candidate)
    advice = cm.advise(r + 1, survivors)
    assert set(advice) == set(survivors)


def test_backoff_locks_in_only_on_confirmed_solo_broadcast():
    cm = BackoffContentionManager(seed=0)
    indices = (0, 1, 2, 3)
    r, candidate = _advance_to_single_active(cm, indices)
    cm.observe(r, 1)   # the solo broadcast was heard
    assert cm.leader == candidate
    assert cm.stabilized_at == r
    advice = cm.advise(r + 1, indices)
    assert [i for i, a in advice.items() if a is ACTIVE] == [candidate]


def test_backoff_no_lock_in_when_single_broadcast_ambiguous():
    cm = BackoffContentionManager(seed=1)
    indices = (0, 1, 2)
    advice = cm.advise(1, indices)
    active = [i for i, a in advice.items() if a is ACTIVE]
    if len(active) < 2:
        pytest.skip("seed did not open with multiple actives")
    # Two advised active but only one heard (the other crashed before
    # send): the manager cannot tell who broadcast, so nobody locks.
    cm.observe(1, 1)
    assert cm.leader is None


# ----------------------------------------------------------------------
# Multiset.from_counts validation
# ----------------------------------------------------------------------
def test_from_counts_rejects_float_multiplicities():
    with pytest.raises(TypeError):
        Multiset.from_counts({"a": 2.0})


def test_from_counts_rejects_bool_and_str_multiplicities():
    with pytest.raises(TypeError):
        Multiset.from_counts({"a": True})
    with pytest.raises(TypeError):
        Multiset.from_counts({"a": "2"})


def test_from_counts_still_accepts_ints_and_drops_zeros():
    m = Multiset.from_counts({"a": 0, "b": 2, "c": 1})
    assert len(m) == 3
    assert "a" not in m
    assert m == Multiset(["b", "b", "c"])
    assert hash(m) == hash(Multiset(["c", "b", "b"]))


def test_operator_results_stay_canonical():
    a = Multiset(["x", "x", "y"])
    b = Multiset(["x", "y"])
    assert (a - b) == Multiset(["x"])
    assert (a + b) == Multiset(["x", "x", "x", "y", "y"])
    assert len(a + b) == 5
    assert hash(a - b) == hash(Multiset(["x"]))


# ----------------------------------------------------------------------
# SweepRunner
# ----------------------------------------------------------------------
def test_sweep_grid_is_row_major_product():
    grid = sweep_grid(a=[1, 2], b=["x", "y"])
    assert grid == [
        {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
        {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
    ]


def test_cell_seed_is_deterministic_and_coordinate_sensitive():
    s1 = cell_seed(0, n=4, detector="0-OAC")
    s2 = cell_seed(0, detector="0-OAC", n=4)   # order-insensitive
    s3 = cell_seed(0, n=8, detector="0-OAC")
    s4 = cell_seed(1, n=4, detector="0-OAC")
    assert s1 == s2
    assert len({s1, s3, s4}) == 3


def test_cell_seed_rejects_address_based_reprs():
    class Opaque:
        pass

    with pytest.raises(TypeError):
        cell_seed(0, detector=Opaque())


def _exploding_cell(params, seed):
    raise RuntimeError(f"cell bug at {params}")


def _attribute_bug_cell(params, seed):
    return params.missing_attribute   # dicts have no attributes


def test_sweep_cell_exceptions_propagate():
    runner = SweepRunner(_exploding_cell, processes=2)
    with pytest.raises(RuntimeError, match="cell bug"):
        runner.run_grid(n=[1, 2])
    # An AttributeError raised *by a cell* must propagate too — never be
    # mistaken for a pickling failure and silently re-run serially.
    runner = SweepRunner(_attribute_bug_cell, processes=2)
    with pytest.raises(AttributeError):
        runner.run_grid(n=[1, 2])


def test_sweep_unpicklable_cell_fn_falls_back_serially():
    def local_cell(params, seed):
        return {"n": params["n"]}

    import warnings
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        outcomes = SweepRunner(local_cell, processes=2).run_grid(n=[1, 2])
    assert [o.payload["n"] for o in outcomes] == [1, 2]
    assert any("not picklable" in str(w.message) for w in caught)


def test_sweep_serial_and_parallel_agree():
    axes = dict(n=[3, 4], trial=[0, 1])
    serial = SweepRunner(consensus_sweep_cell, processes=1).run_grid(**axes)
    parallel = SweepRunner(consensus_sweep_cell, processes=2).run_grid(**axes)
    assert [o.params for o in serial] == [o.params for o in parallel]
    assert [o.payload for o in serial] == [o.payload for o in parallel]
    assert all(o.payload["agreement"] for o in serial)


def test_consensus_sweep_cell_policies_agree():
    params = {"n": 4, "values": 8, "cst": 2}
    summary = consensus_sweep_cell(dict(params, record_policy="summary"), 11)
    full = consensus_sweep_cell(dict(params, record_policy="full"), 11)
    assert summary["decisions"] == full["decisions"]
    assert summary["decision_rounds"] == full["decision_rounds"]
    assert summary["rounds"] == full["rounds"]
    assert summary["solved"]
