"""The churn engine: adversaries, dynamic membership, and E19.

Covers the dynamic-membership extension end to end:

* churn adversary semantics — scripted schedules filter wrong-state
  events, seeded churn is a deterministic function of its seed and
  spares ``min_live``, burst churn fires on period multiples, and the
  informed-minority schedule targets exactly the decided minority;
* engine semantics — departures drop a process from the sender and
  receiver sets, rejoins re-enter with *fresh state* (decisions
  forgotten, ghost decisions recorded), initially-absent pids join
  late, a same-round crash beats a leave, and an execution with an
  empty live set but pending rejoiners keeps running;
* determinism — same seed and schedule replay byte-identical
  executions, and churned executions are byte-identical with the array
  kernel on and off (the fallback gate: churn-free prefixes still run
  the kernel, churned rounds take the scalar reference path);
* the ring overlay — successor/finger neighbourhood shapes, diameter,
  validation, and the flood helpers' hops/stabilization metrics;
* E19 — the churn sweep cell's payload and the campaign's
  interrupt/resume byte-equality over a miniature grid.
"""

from __future__ import annotations

import pytest

from repro.adversary.churn import (
    BurstChurn,
    ChurnEvent,
    InformedMinorityChurn,
    NoChurn,
    ScheduledChurn,
    SeededChurn,
)
from repro.adversary.crash import ScheduledCrashes
from repro.adversary.loss import IIDLoss, ReliableDelivery
from repro.algorithms.alg2 import algorithm_2
from repro.contention.services import NoContentionManager, WakeUpService
from repro.core.algorithm import Algorithm
from repro.core.environment import Environment, array_kernel_module
from repro.core.errors import ConfigurationError
from repro.core.execution import ExecutionEngine, run_algorithm, run_consensus
from repro.core.process import ScriptedProcess
from repro.core.records import RecordPolicy
from repro.detectors.classes import ZERO_OAC
from repro.experiments.campaign import CampaignRunner
from repro.experiments.churn import churn_sweep_cell
from repro.substrate.multihop import MultihopNetwork, flood

_np = array_kernel_module()
needs_numpy = pytest.mark.skipif(
    _np is None, reason="array kernel requires numpy"
)

N = 6
ROUNDS = 14


# ----------------------------------------------------------------------
# Adversary unit tests
# ----------------------------------------------------------------------
def test_churn_event_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        ChurnEvent(0, kind="teleport")


def test_scheduled_churn_filters_wrong_state_events():
    churn = ScheduledChurn.at(leaves={2: [0, 3]}, joins={2: [1, 4]})
    live = [0, 1, 2]
    departed = {4: 1}
    # pid 3 is not live (leave filtered); pid 1 is not departed (join
    # filtered); pid 0's leave and pid 4's rejoin survive.
    events = churn.events(2, live, departed, frozenset())
    assert [(e.pid, e.kind) for e in events] == [(0, "leave"), (4, "rejoin")]
    assert churn.events(3, live, departed, frozenset()) == ()
    assert churn.last_churn_round == 2


def test_scheduled_churn_rejects_zero_round():
    with pytest.raises(ConfigurationError):
        ScheduledChurn({0: [ChurnEvent(0)]})


def test_seeded_churn_is_a_function_of_its_seed():
    def trace(churn):
        out = []
        live, departed = list(range(N)), {}
        for r in range(1, 8):
            events = churn.events(r, live, departed, frozenset())
            out.append(tuple((e.pid, e.kind) for e in events))
            for e in events:
                if e.kind == "leave":
                    live.remove(e.pid)
                    departed[e.pid] = r
                else:
                    live.append(e.pid)
                    del departed[e.pid]
        return out

    a = trace(SeededChurn(0.4, seed=9, deadline=6))
    churn = SeededChurn(0.4, seed=9, deadline=6)
    first = trace(churn)
    churn.reset()
    assert a == first == trace(churn)
    assert trace(SeededChurn(0.4, seed=10, deadline=6)) != a


def test_seeded_churn_spares_min_live_and_respects_deadline():
    churn = SeededChurn(1.0, join_rate=0.0, seed=0, deadline=3, min_live=2)
    live = list(range(N))
    events = churn.events(1, live, {}, frozenset())
    assert all(e.kind == "leave" for e in events)
    assert len(events) == N - 2  # min_live spared even at rate 1.0
    assert churn.events(4, live, {}, frozenset()) == ()  # past deadline
    assert churn.last_churn_round == 3


def test_seeded_churn_labels_first_joins_and_rejoins():
    churn = SeededChurn(0.0, join_rate=1.0, seed=0, deadline=2,
                        initially_absent=[5])
    events = churn.events(1, [0, 1, 2, 3], {4: 1, 5: 0}, frozenset())
    assert {(e.pid, e.kind) for e in events} == {(4, "rejoin"), (5, "join")}


def test_burst_churn_fires_on_period_multiples():
    churn = BurstChurn(period=3, fraction=0.5, seed=1, deadline=6,
                       min_live=2)
    live = list(range(N))
    assert churn.events(1, live, {}, frozenset()) == ()
    assert churn.events(2, live, {}, frozenset()) == ()
    burst = churn.events(3, live, {}, frozenset())
    assert sum(1 for e in burst if e.kind == "leave") == N // 2
    # A departed pid rejoins before the next burst's departures sample.
    burst6 = churn.events(6, [0, 1, 2], {3: 3, 4: 3, 5: 3}, frozenset())
    rejoins = [e.pid for e in burst6 if e.kind != "leave"]
    assert rejoins == [3, 4, 5]
    assert churn.events(9, live, {}, frozenset()) == ()  # past deadline


def test_informed_minority_churn_evicts_decided_minority():
    churn = InformedMinorityChurn(k=1, deadline=5, rejoin_delay=2)
    live = list(range(N))
    # Nobody decided: nothing to evict.
    assert churn.events(1, live, {}, frozenset()) == ()
    # A decided minority loses its lowest pid.
    events = churn.events(2, live, {}, frozenset({2, 4}))
    assert [(e.pid, e.kind) for e in events] == [(2, "leave")]
    # A decided majority is safe (evicting it can't stall progress).
    assert churn.events(3, live, {}, frozenset({0, 1, 2, 4})) == ()
    # Evictees rejoin after the delay, even past the deadline.
    events = churn.events(6, live[1:], {2: 4}, frozenset())
    assert [(e.pid, e.kind) for e in events] == [(2, "rejoin")]
    assert churn.last_churn_round == 7


# ----------------------------------------------------------------------
# Engine semantics under churn
# ----------------------------------------------------------------------
def _counting_algorithm(rounds: int = ROUNDS) -> Algorithm:
    """Each process broadcasts its round-within-incarnation counter."""

    def spawn(i):
        return ScriptedProcess([f"p{i}r{r}" for r in range(rounds)])

    return Algorithm(spawn, anonymous=False)


def _senders(result):
    """Per-round sets of broadcast message strings (FULL records)."""
    return [
        {str(m) for m in record.messages.values() if m is not None}
        for record in result.records
    ]


def _run_with_churn(churn, *, algorithm=None, loss=None, crash=None,
                    max_rounds=ROUNDS, policy=RecordPolicy.FULL,
                    use_array_kernel=None):
    env = Environment(
        indices=tuple(range(N)),
        detector=ZERO_OAC.make(),
        contention=NoContentionManager(),
        loss=loss or ReliableDelivery(),
        crash=crash or ScheduledCrashes({}),
        churn=churn,
    )
    return run_algorithm(
        env, algorithm or _counting_algorithm(), max_rounds=max_rounds,
        until_all_decided=False, record_policy=policy,
        use_array_kernel=use_array_kernel,
    )


def test_departed_process_leaves_sender_and_receiver_sets():
    churn = ScheduledChurn.at(leaves={3: [2]}, joins={6: [2]})
    result = _run_with_churn(churn, max_rounds=8)
    # after_send=True: the round-3 broadcast goes out, rounds 4-5 are
    # silent, and the fresh incarnation broadcasts again from round 6 —
    # restarting its script from the top (fresh state).
    senders = _senders(result)
    assert "p2r2" in senders[2]
    assert all("p2" not in m for m in senders[3])
    assert all("p2" not in m for m in senders[4])
    assert "p2r0" in senders[5]
    assert result.rejoin_counts == {2: 1}
    assert result.leave_rounds == {}  # rejoined: no longer departed
    assert result.present_indices() == tuple(range(N))


def test_before_send_leave_silences_the_final_round():
    churn = ScheduledChurn({2: [ChurnEvent(1, "leave", after_send=False)]})
    result = _run_with_churn(churn, max_rounds=4)
    senders = _senders(result)
    assert "p1r0" in senders[0]
    assert all("p1" not in m for m in senders[1])  # silenced in round 2
    assert result.leave_rounds == {1: 2}


def test_initially_absent_pid_joins_with_its_initial_state():
    churn = ScheduledChurn.at(joins={4: [5]}, initially_absent=[5])
    result = _run_with_churn(churn, max_rounds=6)
    senders = _senders(result)
    for r in range(3):
        assert all("p5" not in m for m in senders[r])
    assert "p5r0" in senders[3]  # joined at round 4, script from the top
    # A first join counts as a (re-)entry but needs no factory: the
    # initial instance never stepped, so it already is fresh state.
    assert result.rejoin_counts == {5: 1}
    assert result.leave_rounds == {}


def test_initially_absent_pid_never_joining_is_reported():
    churn = ScheduledChurn({}, initially_absent=[0])
    result = _run_with_churn(churn, max_rounds=3)
    assert result.leave_rounds == {0: 0}
    assert result.present_indices() == (1, 2, 3, 4, 5)
    assert result.churned


def test_initially_absent_must_be_subset_of_indices():
    churn = ScheduledChurn({}, initially_absent=[99])
    with pytest.raises(ConfigurationError):
        _run_with_churn(churn, max_rounds=2)


def test_crash_beats_same_round_leave_and_is_absorbing():
    churn = ScheduledChurn.at(leaves={3: [1]}, joins={5: [1]})
    crash = ScheduledCrashes.at({3: [1]})
    result = _run_with_churn(churn, crash=crash, max_rounds=6)
    # The crash wins: pid 1 is crashed, not departed, and the scheduled
    # rejoin is a no-op (crashes are permanent even under churn).
    assert result.crash_rounds[1] == 3
    assert all(
        result.crash_rounds[i] is None for i in range(N) if i != 1
    )
    assert result.leave_rounds == {}
    assert result.rejoin_counts == {}
    senders = _senders(result)
    assert all("p1" not in m for m in senders[4])


class _DecideOnce(ScriptedProcess):
    """Decides a fixed value after its second transition."""

    def __init__(self, script, value) -> None:
        super().__init__(script)
        self._value = value

    def transition(self, received, cd_advice, cm_advice) -> None:
        super().transition(received, cd_advice, cm_advice)
        if len(self.observations) == 2:
            self.decide(self._value)


def test_ghost_decisions_surface_system_level_disagreement():
    # pid 0 decides "a" by round 2, departs at 3, rejoins at 5 with
    # fresh state and decides "b" — the *current* decisions agree, but
    # the execution as a whole violated agreement.
    def spawn(i):
        value = "a" if len(spawned) == 0 and i == 0 else "b"
        spawned.append(i)
        return _DecideOnce([f"m{i}"] * ROUNDS, value if i == 0 else "b")

    spawned = []
    churn = ScheduledChurn.at(leaves={3: [0]}, joins={5: [0]})
    result = _run_with_churn(
        churn, algorithm=Algorithm(spawn, anonymous=False), max_rounds=8
    )
    assert result.departed_decisions == ((0, "a", 3),)
    assert result.decisions[0] == "b"
    assert set(result.all_decided_values()) == {"a", "b"}
    assert result.churned


def test_execution_survives_an_empty_live_set_until_rejoin():
    churn = ScheduledChurn.at(
        leaves={1: list(range(N))}, joins={3: list(range(N))}
    )
    result = _run_with_churn(churn, max_rounds=5)
    # Round 2 is fully silent, everyone rejoins at 3 and broadcasts.
    senders = _senders(result)
    assert senders[1] == set()
    assert len(senders[2]) == N
    assert result.present_indices() == tuple(range(N))
    assert all(count == 1 for count in result.rejoin_counts.values())


# ----------------------------------------------------------------------
# Determinism and the kernel fallback gate
# ----------------------------------------------------------------------
def _consensus_under_churn(use_array_kernel=None, seed=5,
                           policy=RecordPolicy.FULL):
    values = list(range(8))
    env = Environment(
        indices=tuple(range(N)),
        detector=ZERO_OAC.make(),
        contention=WakeUpService(stabilization_round=2),
        loss=IIDLoss(0.3, seed=seed),
        churn=SeededChurn(0.25, seed=seed + 101, deadline=5),
    )
    assignment = {i: values[(i * 3) % len(values)] for i in env.indices}
    return run_consensus(
        env, algorithm_2(values), assignment, max_rounds=30,
        record_policy=policy, use_array_kernel=use_array_kernel,
    )


def _identical(a, b, policy=RecordPolicy.FULL):
    assert a.decisions == b.decisions
    assert a.decision_rounds == b.decision_rounds
    assert a.crash_rounds == b.crash_rounds
    assert a.leave_rounds == b.leave_rounds
    assert a.rejoin_counts == b.rejoin_counts
    assert a.departed_decisions == b.departed_decisions
    assert a.rounds == b.rounds
    if policy is RecordPolicy.FULL:
        assert a.records == b.records
    elif policy is RecordPolicy.SUMMARY:
        assert a.summaries == b.summaries


def test_same_seed_and_schedule_replay_byte_identical_executions():
    _identical(_consensus_under_churn(), _consensus_under_churn())


@pytest.mark.parametrize(
    "policy", (RecordPolicy.FULL, RecordPolicy.SUMMARY, RecordPolicy.NONE)
)
def test_churned_executions_identical_kernel_on_and_off(policy):
    vec = _consensus_under_churn(None, policy=policy)
    ref = _consensus_under_churn(False, policy=policy)
    _identical(vec, ref, policy)
    assert vec.churned and ref.churned


@needs_numpy
def test_kernel_runs_on_churn_free_prefix_only():
    """The fallback gate: only rounds with a pending membership event
    (a leave or join firing) take the scalar reference path; rounds
    where pids are merely absent after an earlier leave ride the
    kernel — the loss adversary is consulted over the full index set
    on both paths, so absence never shifts its randomness."""

    def engine_for(churn):
        env = Environment(
            indices=tuple(range(N)),
            detector=ZERO_OAC.make(),
            contention=NoContentionManager(),
            loss=IIDLoss(0.3, seed=4),
            churn=churn,
        )
        env.reset()
        algorithm = _counting_algorithm()
        return ExecutionEngine(
            env, algorithm.spawn_all(env.indices),
            record_policy=RecordPolicy.NONE,
            process_factory=algorithm.spawn,
        )

    # Static membership: every round runs the kernel.
    engine = engine_for(NoChurn())
    engine.run(8, until_all_decided=False)
    assert engine.kernel_rounds == 8

    # A departure at round 4 (never rejoined): only the event round
    # falls back — rounds with the pid absent still vectorise.
    engine = engine_for(ScheduledChurn.at(leaves={4: [0]}))
    engine.run(8, until_all_decided=False)
    assert engine.kernel_rounds == 7  # all but round 4

    # Leave then rejoin: both event rounds fall back, the absent-pid
    # round in between rides the kernel.
    engine = engine_for(
        ScheduledChurn.at(leaves={3: [0]}, joins={5: [0]})
    )
    engine.run(8, until_all_decided=False)
    assert engine.kernel_rounds == 2 + 1 + 3  # rounds 1-2, 4, and 6-8


# ----------------------------------------------------------------------
# The ring overlay and flood metrics
# ----------------------------------------------------------------------
def test_plain_ring_shape():
    ring = MultihopNetwork.ring(8, successors=1, fingers=False)
    assert ring.n == 8
    assert ring.diameter == 4
    assert ring.neighbors(0) == {1, 7}
    assert ring.neighbors(3) == {2, 4}


def test_successor_list_widens_the_neighbourhood():
    ring = MultihopNetwork.ring(8, successors=2, fingers=False)
    assert ring.neighbors(0) == {1, 2, 6, 7}
    assert ring.diameter == 2


def test_finger_tables_shrink_the_diameter():
    plain = MultihopNetwork.ring(32, successors=1, fingers=False)
    chord = MultihopNetwork.ring(32, successors=1, fingers=True)
    assert plain.diameter == 16
    assert chord.diameter <= 5  # O(log n) routing
    # Fingers at powers of two (undirected, so mirrored too).
    assert {1, 2, 4, 8, 16} <= chord.neighbors(0)


def test_ring_validation():
    with pytest.raises(ConfigurationError):
        MultihopNetwork.ring(1)
    with pytest.raises(ConfigurationError):
        MultihopNetwork.ring(4, successors=0)
    with pytest.raises(ConfigurationError):
        MultihopNetwork.ring(4, successors=4)


def test_flood_reports_hops_and_stabilization():
    ring = MultihopNetwork.ring(16, successors=1, fingers=False)
    result = flood(ring, 0, strategy="blind", channel="capture", seed=1)
    assert result.completed
    assert result.informed_round[0] == 0
    assert set(result.informed_round) == set(ring.indices)
    assert result.max_hops == result.completed_round
    assert result.mean_hops is not None and result.mean_hops > 0
    assert result.stabilization == result.completed_round / ring.diameter
    assert result.stabilization >= 1.0  # one hop per round is optimal


def test_partial_flood_has_no_completion_metrics():
    line = MultihopNetwork.line(6)
    result = flood(line, 0, strategy="blind", max_rounds=2, seed=0)
    assert not result.completed
    assert result.max_hops is None
    assert result.stabilization is None
    assert 0 < len(result.informed_round) < 6


# ----------------------------------------------------------------------
# E19: the churn sweep cell and campaign resume byte-equality
# ----------------------------------------------------------------------
def test_churn_sweep_cell_payload_shape():
    params = dict(n=4, detector="0-OAC", loss_rate=0.1, churn_rate=0.25,
                  topology="ring", trial=0, values=8,
                  record_policy="summary")
    payload = churn_sweep_cell(params, 42)
    assert set(payload) == {
        "present", "decided", "decision_rate", "agreement",
        "distinct_values", "termination_round", "rounds", "churned",
        "rejoins", "ghost_decisions",
    }
    assert payload["churned"]
    assert payload["present"] >= 2
    # Byte-determinism: the cell is a pure function of (params, seed).
    assert payload == churn_sweep_cell(dict(params), 42)


def test_churn_sweep_cell_rejects_unknown_topology():
    with pytest.raises(ConfigurationError):
        churn_sweep_cell({"topology": "torus"}, 0)


def test_static_churn_cell_matches_paper_model():
    payload = churn_sweep_cell(
        dict(n=4, churn_rate=0.0, topology="clique", values=8), 3
    )
    assert not payload["churned"]
    assert payload["rejoins"] == 0
    assert payload["decision_rate"] == 1.0
    assert payload["agreement"]


def test_e19_interrupted_campaign_resumes_byte_identically(tmp_path):
    axes = dict(
        n=[4], detector=["0-OAC"], loss_rate=[0.1],
        churn_rate=[0.0, 0.25], topology=["clique", "ring"],
        trial=[0], values=[8], record_policy=["summary"],
    )

    def make(db):
        return CampaignRunner(
            churn_sweep_cell, db_path=db, base_seed=0,
            extra_params={"sqlite_db": db}, in_process=True,
        )

    interrupted_db = str(tmp_path / "interrupted.db")
    with make(interrupted_db) as runner:
        assert len(runner.resume(max_cells=2, **axes)) == 2  # interrupt
    with make(interrupted_db) as runner:
        outcomes = runner.resume(**axes)  # resume to completion
        assert len(outcomes) == 4
        resumed_report = runner.report(**axes)

    clean_db = str(tmp_path / "clean.db")
    with make(clean_db) as runner:
        runner.resume(**axes)
        clean_report = runner.report(**axes)

    assert resumed_report == clean_report
