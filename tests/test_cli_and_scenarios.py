"""Tests for the CLI entry point and the canned scenario builders."""

import subprocess
import sys

import pytest

from repro.__main__ import main as cli_main
from repro.detectors.classes import HALF_OAC, MAJ_OAC, ZERO_AC, ZERO_OAC
from repro.detectors.properties import AccuracyMode, Completeness
from repro.experiments.scenarios import (
    ecf_environment,
    maj_oac_environment,
    nocf_environment,
    zero_oac_environment,
)


# ----------------------------------------------------------------------
# Scenario builders
# ----------------------------------------------------------------------
def test_ecf_environment_aligns_all_stabilization_rounds():
    env = ecf_environment(4, ZERO_OAC, cst=7)
    assert env.communication_stabilization_time() == 7
    assert env.n == 4


def test_ecf_environment_with_accurate_class():
    env = ecf_environment(3, ZERO_AC, cst=5)
    assert env.detector.accuracy is AccuracyMode.ALWAYS
    assert env.communication_stabilization_time() == 5


def test_ecf_environment_custom_indices():
    env = ecf_environment(3, HALF_OAC, indices=(7, 9, 11))
    assert env.indices == (7, 9, 11)


def test_maj_and_zero_builders_pick_the_right_class():
    assert maj_oac_environment(2).detector.completeness is (
        Completeness.MAJORITY
    )
    assert zero_oac_environment(2).detector.completeness is (
        Completeness.ZERO
    )


def test_nocf_environment_shape():
    env = nocf_environment(3)
    assert env.detector.completeness is Completeness.ZERO
    assert env.detector.accuracy is AccuracyMode.ALWAYS
    assert env.contention.stabilization_round is None
    # Total silence by default.
    assert env.loss.losses(1, [0, 1], 2) == {0, 1}


def test_ecf_spurious_prelude_only_before_cst():
    env = ecf_environment(2, MAJ_OAC, cst=5)
    # The default policy lies before CST and is honest afterwards.
    from repro.detectors.policy import SpuriousUntilPolicy

    assert isinstance(env.detector.policy, SpuriousUntilPolicy)
    assert env.detector.policy.quiet_round == 5


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_lists_experiments(capsys):
    assert cli_main([]) == 0
    out = capsys.readouterr().out
    assert "E1" in out and "E15" in out


def test_cli_runs_selected_experiment(capsys):
    assert cli_main(["E9c"]) == 0
    out = capsys.readouterr().out
    assert "Clock skew" in out


def test_cli_rejects_unknown_ids(capsys):
    assert cli_main(["E99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_cli_subprocess_entry():
    proc = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0
    assert "Available experiments" in proc.stdout
