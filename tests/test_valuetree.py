"""Tests for Algorithm 3's balanced value tree."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.algorithms.valuetree import ValueTree
from repro.core.errors import ConfigurationError


def test_single_value_tree():
    t = ValueTree(["only"])
    assert t.root.value == "only"
    assert t.root.left is None and t.root.right is None
    assert t.height == 0
    assert t.root.parent is t.root


def test_bst_invariant():
    t = ValueTree(range(10))

    def check(node):
        if node is None:
            return
        for v in node.left_values:
            assert v < node.value
        for v in node.right_values:
            assert v > node.value
        check(node.left)
        check(node.right)

    check(t.root)


def test_all_values_present_exactly_once():
    values = list(range(13))
    t = ValueTree(values)
    assert sorted(n.value for n in t.nodes()) == values


def test_height_is_logarithmic():
    for size in (2, 7, 16, 100, 1000):
        t = ValueTree(range(size))
        assert t.height <= math.ceil(math.log2(size)) if size > 1 else 0


def test_find_locates_every_value():
    t = ValueTree(range(31))
    for v in range(31):
        assert t.find(v).value == v
    with pytest.raises(ConfigurationError):
        t.find(99)


def test_parent_pointers_consistent():
    t = ValueTree(range(15))
    for node in t.nodes():
        if node.left is not None:
            assert node.left.parent is node
        if node.right is not None:
            assert node.right.parent is node
    assert t.root.parent is t.root


def test_construction_is_canonical():
    """Two anonymous processes building from the same V get the same tree."""
    a = ValueTree([5, 3, 9, 1])
    b = ValueTree([9, 1, 5, 3])
    assert [n.value for n in a.nodes()] == [n.value for n in b.nodes()]
    assert a.root.value == b.root.value


def test_rejects_empty_and_duplicates():
    with pytest.raises(ConfigurationError):
        ValueTree([])
    with pytest.raises(ConfigurationError):
        ValueTree([1, 1])


@given(st.sets(st.integers(-500, 500), min_size=1, max_size=200))
def test_inorder_is_sorted(values):
    t = ValueTree(values)
    inorder = [n.value for n in t.nodes()]
    assert inorder == sorted(values)


@given(st.sets(st.integers(0, 10**4), min_size=2, max_size=256))
def test_height_bound_property(values):
    t = ValueTree(values)
    assert t.height <= math.ceil(math.log2(len(values)))


@given(st.sets(st.integers(0, 1000), min_size=1, max_size=100))
def test_left_right_partition_is_exact(values):
    t = ValueTree(values)
    for node in t.nodes():
        covered = (
            set(node.left_values) | set(node.right_values) | {node.value}
        )
        subtree = {n.value for n in _subtree_nodes(node)}
        assert covered == subtree


def _subtree_nodes(node):
    out = [node]
    if node.left is not None:
        out.extend(_subtree_nodes(node.left))
    if node.right is not None:
        out.extend(_subtree_nodes(node.right))
    return out
