"""Tests for the top-level package API and the quickstart path."""

import repro
from repro import evaluate, quick_consensus


def test_version_exposed():
    assert repro.__version__


def test_quick_consensus_defaults_solve():
    result = quick_consensus(values=["commit", "abort"], n=5)
    report = evaluate(result)
    assert report.solved
    assert set(result.decisions.values()) <= {"commit", "abort"}
    assert len(set(result.decisions.values())) == 1


def test_quick_consensus_custom_assignment():
    result = quick_consensus(
        values=["a", "b", "c"],
        n=3,
        assignment={0: "c", 1: "c", 2: "c"},
    )
    assert set(result.decisions.values()) == {"c"}


def test_quick_consensus_is_seed_deterministic():
    a = quick_consensus(values=[1, 2, 3], n=4, seed=5)
    b = quick_consensus(values=[1, 2, 3], n=4, seed=5)
    assert a.decisions == b.decisions
    assert a.rounds == b.rounds


def test_public_surface_importable():
    # The documented import points must exist.
    from repro.algorithms import (           # noqa: F401
        algorithm_1, algorithm_2, algorithm_3, non_anonymous_algorithm,
    )
    from repro.core import Environment, run_consensus     # noqa: F401
    from repro.detectors import ALL_CLASSES, get_class    # noqa: F401
    from repro.contention import WakeUpService            # noqa: F401
    from repro.adversary import EventualCollisionFreedom  # noqa: F401
    from repro.lowerbounds import theorem6_witness        # noqa: F401
    from repro.substrate import Testbed                   # noqa: F401
    from repro.experiments import REGISTRY                # noqa: F401
