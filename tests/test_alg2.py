"""Tests for Algorithm 2 (anonymous, 0-OAC + WS + ECF, Theorem 2)."""

import pytest

from repro.adversary.crash import ScheduledCrashes
from repro.algorithms.alg2 import (
    Alg2Process,
    algorithm_2,
    cycle_length,
    termination_bound,
)
from repro.algorithms.encoding import BinaryEncoding
from repro.algorithms.markers import VETO, VOTE
from repro.core.consensus import evaluate, require_solved
from repro.core.execution import run_consensus
from repro.core.multiset import Multiset
from repro.core.types import ACTIVE, COLLISION, NULL, PASSIVE
from repro.detectors.classes import AC, HALF_OAC, ZERO_AC
from repro.detectors.policy import SpuriousUntilPolicy
from repro.experiments.scenarios import zero_oac_environment
from repro.lowerbounds.compose import compose_alpha_executions
from repro.lowerbounds.alpha import alpha_execution


def test_is_anonymous():
    assert algorithm_2(["a", "b"]).is_anonymous


def test_cycle_length_formula():
    assert cycle_length(2) == 3      # 1 bit + prepare + accept
    assert cycle_length(4) == 4
    assert cycle_length(1024) == 12


@pytest.mark.parametrize("vc", [2, 4, 16, 64])
def test_terminates_within_theorem2_bound(vc):
    values = list(range(vc))
    cst = 3
    env = zero_oac_environment(4, cst=cst, seed=vc)
    assignment = {i: values[(i * 7) % vc] for i in range(4)}
    result = run_consensus(
        env, algorithm_2(values), assignment,
        max_rounds=termination_bound(cst, vc) + 10,
    )
    require_solved(result, by_round=termination_bound(cst, vc))


def test_round_complexity_scales_logarithmically():
    """The measured decision round grows with lg|V| — the E3 curve."""
    measured = []
    for vc in (2, 16, 256):
        env = zero_oac_environment(3, cst=1, seed=0)
        values = list(range(vc))
        result = run_consensus(
            env, algorithm_2(values),
            {0: values[0], 1: values[-1], 2: values[vc // 2]},
            max_rounds=termination_bound(1, vc) + 10,
        )
        measured.append(result.last_decision_round())
    assert measured[0] < measured[1] < measured[2]


def test_decision_is_some_initial_value():
    values = ["w", "x", "y", "z"]
    env = zero_oac_environment(4, cst=2, seed=9)
    initials = dict(zip(range(4), values))
    result = run_consensus(
        env, algorithm_2(values), initials, max_rounds=40
    )
    decided = set(result.decided_values().values())
    assert len(decided) == 1 and decided <= set(values)


def test_runs_under_any_stronger_detector_class():
    # AC, half-OAC, 0-AC are all inside 0-OAC: Algorithm 2 must work.
    for cls in (AC, HALF_OAC, ZERO_AC):
        env = zero_oac_environment(3, cst=1)
        env.detector = cls.make(r_acc=1) if "O" in cls.name else cls.make()
        result = run_consensus(
            env, algorithm_2(["a", "b"]), {0: "a", 1: "b", 2: "a"},
            max_rounds=20,
        )
        assert evaluate(result).solved, cls.name


def test_crash_tolerance():
    values = list(range(8))
    env = zero_oac_environment(
        5, cst=4,
        crash=ScheduledCrashes.at({2: [0], 5: [1]}),
    )
    result = run_consensus(
        env, algorithm_2(values), {i: values[i] for i in range(5)},
        max_rounds=60,
    )
    report = evaluate(result)
    assert report.safe and report.termination


def test_spurious_detector_noise_only_delays():
    cst = 15
    values = list(range(16))
    env = zero_oac_environment(
        4, cst=cst, detector_policy=SpuriousUntilPolicy(cst), seed=2
    )
    result = run_consensus(
        env, algorithm_2(values), {i: values[i * 3] for i in range(4)},
        max_rounds=termination_bound(cst, 16) + 10,
    )
    require_solved(result, by_round=termination_bound(cst, 16))


def test_safety_under_half_ac_composition():
    """Algorithm 2 stays safe inside the Lemma 23 half-AC composition —
    the setting where Algorithm 1 loses agreement (see the E8 ablation)."""
    values = ["a", "b", "c", "d"]
    algo = algorithm_2(values)
    alpha_a = alpha_execution(algo, (0, 1), "a", 2)
    alpha_b = alpha_execution(algo, (2, 3), "b", 2)
    composed = compose_alpha_executions(
        algo, alpha_a, alpha_b, "a", "b", k=2, extra_rounds=60
    )
    assert composed.indistinguishability_holds
    report = evaluate(composed.gamma)
    assert report.agreement and report.strong_validity


# ----------------------------------------------------------------------
# Unit-level behaviour
# ----------------------------------------------------------------------
def enc4():
    return BinaryEncoding(["a", "b", "c", "d"])


def test_prepare_broadcasts_only_when_active():
    p = Alg2Process("c", enc4())
    assert p.message(PASSIVE) is None
    assert p.message(ACTIVE) == enc4().encode("c")


def test_prepare_adopts_minimum_estimate():
    p = Alg2Process("d", enc4())
    p.message(PASSIVE)
    p.transition(Multiset([enc4().encode("b"), enc4().encode("c")]),
                 NULL, PASSIVE)
    assert p.estimate == enc4().encode("b")
    assert p.decide_flag is True and p.bit == 1


def test_propose_broadcasts_on_one_bits():
    p = Alg2Process("d", enc4())     # "d" encodes to "11"
    p.message(PASSIVE)
    p.transition(Multiset([]), COLLISION, PASSIVE)  # stay on own estimate
    assert p.phase == "propose"
    assert p.message(PASSIVE) is VOTE               # bit 1 of "11"
    p.transition(Multiset([VOTE]), NULL, PASSIVE)
    assert p.message(PASSIVE) is VOTE               # bit 2 of "11"


def test_zero_bit_listener_objects_on_noise():
    p = Alg2Process("a", enc4())     # "a" encodes to "00"
    p.message(PASSIVE)
    p.transition(Multiset([]), NULL, PASSIVE)
    assert p.message(PASSIVE) is None               # bit 1 of "00": silent
    p.transition(Multiset([VOTE]), NULL, PASSIVE)   # heard someone: differ!
    assert p.decide_flag is False


def test_zero_bit_listener_objects_on_collision_advice():
    p = Alg2Process("a", enc4())
    p.message(PASSIVE)
    p.transition(Multiset([]), NULL, PASSIVE)
    p.message(PASSIVE)
    p.transition(Multiset([]), COLLISION, PASSIVE)
    assert p.decide_flag is False


def test_accept_vetoes_when_flag_cleared():
    p = Alg2Process("a", enc4())
    p.message(PASSIVE)
    p.transition(Multiset([]), NULL, PASSIVE)
    p.message(PASSIVE)
    p.transition(Multiset([VOTE]), NULL, PASSIVE)   # objection in bit 1
    p.message(PASSIVE)
    p.transition(Multiset([]), NULL, PASSIVE)       # bit 2 quiet
    assert p.phase == "accept"
    assert p.message(PASSIVE) is VETO


def test_quiet_accept_round_decides_and_halts():
    p = Alg2Process("a", enc4())
    p.message(PASSIVE)
    p.transition(Multiset([]), NULL, PASSIVE)       # prepare (keep "00")
    for _ in range(2):                               # two quiet bit rounds
        p.message(PASSIVE)
        p.transition(Multiset([]), NULL, PASSIVE)
    p.message(PASSIVE)
    p.transition(Multiset([]), NULL, PASSIVE)       # quiet accept
    assert p.has_decided and p.decision == "a" and p.halted


def test_noisy_accept_round_recycles():
    p = Alg2Process("a", enc4())
    p.message(PASSIVE)
    p.transition(Multiset([]), NULL, PASSIVE)
    for _ in range(2):
        p.message(PASSIVE)
        p.transition(Multiset([]), NULL, PASSIVE)
    p.message(PASSIVE)
    p.transition(Multiset([VETO]), NULL, PASSIVE)   # heard a veto
    assert not p.has_decided
    assert p.phase == "prepare"
