"""Tests for the Section 8 lower-bound machinery (alpha executions,
pigeonhole searches, Lemma 23 compositions, and the theorem witnesses)."""

import pytest

from repro.algorithms.alg1 import algorithm_1
from repro.algorithms.alg2 import algorithm_2
from repro.algorithms.alg3 import algorithm_3
from repro.algorithms.baselines import eager_decider, naive_min_consensus
from repro.algorithms.nonanonymous import non_anonymous_algorithm
from repro.core.consensus import evaluate
from repro.core.errors import ConfigurationError
from repro.core.records import indistinguishable
from repro.core.types import COLLISION, NULL
from repro.detectors.noise import check_detector_trace
from repro.detectors.properties import AccuracyMode, Completeness
from repro.lowerbounds.alpha import (
    alpha_execution,
    beta_execution,
    binary_broadcast_sequence,
)
from repro.lowerbounds.compose import compose_alpha_executions
from repro.lowerbounds.pigeonhole import (
    lemma21_bound,
    lemma21_find_pair,
    lemma22_bound,
    lemma22_find_pair,
    theorem9_bound,
    theorem9_find_pair,
)
from repro.lowerbounds.theorems import (
    theorem4_witness,
    theorem5_witness,
    theorem6_witness,
    theorem7_witness,
    theorem8_witness,
    theorem9_witness,
)

VALUES = list(range(64))


# ----------------------------------------------------------------------
# Alpha / beta executions
# ----------------------------------------------------------------------
def test_alpha_execution_is_deterministic():
    a = alpha_execution(algorithm_2(VALUES), (0, 1), 7, 10)
    b = alpha_execution(algorithm_2(VALUES), (0, 1), 7, 10)
    assert a.broadcast_count_sequence() == b.broadcast_count_sequence()
    for pid in (0, 1):
        assert indistinguishable(a, b, pid, 10)


def test_alpha_single_broadcaster_delivers_to_all():
    result = alpha_execution(algorithm_2(VALUES), (0, 1, 2), 7, 1)
    rec = result.records[0]
    assert rec.broadcast_count == 1          # only the leader (min index)
    assert all(len(rec.received[i]) == 1 for i in (0, 1, 2))
    assert all(adv is NULL for adv in rec.cd_advice.values())


def test_alpha_contention_keeps_only_own_message():
    # Algorithm 3 makes every process vote in some rounds: check the
    # multi-broadcaster delivery rule.
    result = alpha_execution(algorithm_3(VALUES), (0, 1, 2), 7, 4)
    contended = [r for r in result.records if r.broadcast_count >= 2]
    assert contended
    rec = contended[0]
    for pid in (0, 1, 2):
        if rec.messages[pid] is not None:
            assert len(rec.received[pid]) == 1
        else:
            assert len(rec.received[pid]) == 0
        assert rec.cd_advice[pid] is COLLISION


def test_alpha_requires_nonempty_indices():
    with pytest.raises(ConfigurationError):
        alpha_execution(algorithm_1(), (), "v", 1)


def test_beta_execution_is_symmetric():
    result = beta_execution(algorithm_3(VALUES), (0, 1, 2), 9, 12)
    for rec in result.records:
        # Anonymous + identical inputs + total loss: all or nothing.
        assert rec.broadcast_count in (0, 3)


def test_binary_broadcast_sequence():
    result = beta_execution(algorithm_3(VALUES), (0, 1), 9, 8)
    seq = binary_broadcast_sequence(result, 8)
    assert len(seq) == 8 and set(seq) <= {0, 1}


# ----------------------------------------------------------------------
# Pigeonhole searches
# ----------------------------------------------------------------------
def test_lemma21_bound_values():
    assert lemma21_bound(64) == 2       # floor(6/2) - 1
    assert lemma21_bound(2) == 1        # floored
    with pytest.raises(ConfigurationError):
        lemma21_bound(1)


def test_lemma21_finds_collision_at_bound():
    pair = lemma21_find_pair(algorithm_2(VALUES), (0, 1), VALUES)
    assert pair is not None
    v, w, ra, rb = pair
    assert v != w
    k = lemma21_bound(len(VALUES))
    assert ra.broadcast_count_sequence(k) == rb.broadcast_count_sequence(k)


def test_lemma21_no_collision_for_tiny_value_set_at_large_k():
    # With 2 values and a long prefix, Algorithm 2's bit-spelling makes
    # the sequences differ: the search correctly returns None.
    pair = lemma21_find_pair(algorithm_2([0, 1]), (0, 1), [0, 1], k=8)
    assert pair is None


def test_lemma22_bound_validation():
    with pytest.raises(ConfigurationError):
        lemma22_bound(64, 7, 2)     # |I| not a multiple of n
    with pytest.raises(ConfigurationError):
        lemma22_bound(64, 2, 2)     # |I| < 2n
    assert lemma22_bound(64, 8, 2) >= 1


def test_lemma22_finds_disjoint_pair():
    ids = list(range(8))
    algo = non_anonymous_algorithm(VALUES, ids)
    found = lemma22_find_pair(algo, ids, 2, VALUES)
    assert found is not None
    group_a, v, group_b, w, ra, rb = found
    assert set(group_a).isdisjoint(group_b)
    assert v != w


def test_theorem9_bound_and_pair():
    assert theorem9_bound(64) == 5
    pair = theorem9_find_pair(algorithm_3(VALUES), (0, 1), VALUES)
    assert pair is not None
    v, w, ra, rb = pair
    assert v != w
    k = theorem9_bound(len(VALUES))
    assert binary_broadcast_sequence(ra, k) == binary_broadcast_sequence(
        rb, k
    )


# ----------------------------------------------------------------------
# Lemma 23 composition
# ----------------------------------------------------------------------
def test_composition_indistinguishability_and_legality():
    algo = algorithm_2(VALUES)
    pair = lemma21_find_pair(algo, (0, 1), VALUES)
    v, w, alpha_a, _ = pair
    k = lemma21_bound(len(VALUES))
    alpha_b = alpha_execution(algo, (2, 3), w, k)
    composed = compose_alpha_executions(
        algo, alpha_a, alpha_b, v, w, k, extra_rounds=0
    )
    assert composed.indistinguishability_holds
    # The gamma CD trace must be legal for half-AC — the crux of Lemma 23.
    assert check_detector_trace(
        composed.gamma, Completeness.HALF, AccuracyMode.ALWAYS
    )
    # ...and must NOT be legal for majority completeness: the composition
    # exploits exactly the half/majority gap.
    assert not check_detector_trace(
        composed.gamma, Completeness.MAJORITY, AccuracyMode.ALWAYS
    )


def test_composition_rejects_overlapping_groups():
    algo = algorithm_2(VALUES)
    a = alpha_execution(algo, (0, 1), 1, 2)
    b = alpha_execution(algo, (1, 2), 2, 2)
    with pytest.raises(ConfigurationError):
        compose_alpha_executions(algo, a, b, 1, 2, 2)


def test_composition_rejects_mismatched_sequences():
    algo = algorithm_2([0, 1])
    a = alpha_execution(algo, (0, 1), 0, 6)
    b = alpha_execution(algo, (2, 3), 1, 6)
    with pytest.raises(ConfigurationError):
        compose_alpha_executions(algo, a, b, 0, 1, 6)


def test_composition_recovers_after_partition_for_correct_algorithm():
    """After round k the gamma environment is clean, so Algorithm 2 must
    go on to solve consensus in the composed world."""
    algo = algorithm_2(VALUES)
    alpha_a = alpha_execution(algo, (0, 1), 5, 2)
    alpha_b = alpha_execution(algo, (2, 3), 9, 2)
    composed = compose_alpha_executions(
        algo, alpha_a, alpha_b, 5, 9, 2, extra_rounds=100
    )
    report = evaluate(composed.gamma)
    assert report.solved


# ----------------------------------------------------------------------
# Theorem witnesses: correct algorithms respect, baselines violate
# ----------------------------------------------------------------------
def test_theorem4_defeats_naive_and_spares_alg1():
    naive = theorem4_witness(naive_min_consensus(2), "a", "b", n=3)
    assert naive.violation == "agreement"
    assert naive.indistinguishability_ok
    correct = theorem4_witness(algorithm_1(), "a", "b", n=3, horizon=40)
    assert correct.violation is None and not correct.decided


def test_theorem4_rejects_equal_values():
    with pytest.raises(ConfigurationError):
        theorem4_witness(algorithm_1(), "a", "a")


def test_theorem5_matches_theorem4():
    naive = theorem5_witness(naive_min_consensus(2), "a", "b", n=3)
    assert naive.violation == "agreement"
    correct = theorem5_witness(
        algorithm_2(["a", "b"]), "a", "b", n=3, horizon=40
    )
    assert correct.violation is None and not correct.decided


def test_theorem6_defeats_eager_and_spares_alg2():
    fast = theorem6_witness(eager_decider(1), VALUES, n=2)
    assert fast.violation == "agreement"
    assert fast.indistinguishability_ok
    slow = theorem6_witness(algorithm_2(VALUES), VALUES, n=2)
    assert slow.violation is None and not slow.decided
    assert slow.indistinguishability_ok


def test_theorem6_requires_anonymity():
    with pytest.raises(ConfigurationError):
        theorem6_witness(
            non_anonymous_algorithm(VALUES, [0, 1, 2, 3]), VALUES
        )


def test_theorem7_defeats_eager_and_spares_nonanon():
    ids = list(range(8))
    fast = theorem7_witness(eager_decider(1), VALUES, ids, n=2)
    assert fast.violation == "agreement"
    slow = theorem7_witness(
        non_anonymous_algorithm(VALUES, ids), VALUES, ids, n=2
    )
    assert slow.violation is None and not slow.decided


def test_theorem8_defeats_naive_and_spares_alg1():
    naive = theorem8_witness(naive_min_consensus(2), "a", "b", n=3)
    assert naive.violation in ("agreement", "uniform-validity")
    correct = theorem8_witness(algorithm_1(), "a", "b", n=3, horizon=60)
    assert correct.violation is None and not correct.decided


def test_theorem8_uniform_validity_peeling():
    """An algorithm that decides a single value under the permanent
    partition gets peeled into a uniform-validity violation."""
    # naive-min with a large quiet target decides the min of its own
    # group's values; both groups decide their own value -> agreement
    # breaks inside gamma already.  A decider locked to its first estimate
    # produces the single-value case:
    outcome = theorem8_witness(eager_decider(3), "a", "b", n=2)
    assert outcome.violation in ("agreement", "uniform-validity")
    if outcome.violation == "uniform-validity":
        assert outcome.indistinguishability_ok


def test_theorem9_defeats_eager_and_spares_alg3():
    fast = theorem9_witness(eager_decider(1), VALUES, n=2)
    assert fast.violation == "agreement"
    assert fast.indistinguishability_ok
    slow = theorem9_witness(algorithm_3(VALUES), VALUES, n=2)
    assert slow.violation is None and not slow.decided
    assert slow.indistinguishability_ok


def test_witness_outcome_str():
    outcome = theorem9_witness(eager_decider(1), VALUES, n=2)
    text = str(outcome)
    assert "theorem-9" in text and "VIOLATION" in text
