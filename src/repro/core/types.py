"""Shared value types for the formal model (Section 3).

The paper's model exchanges three kinds of per-round advice between the
environment and the processes:

* **collision-detector advice** — ``±`` (collision) or ``null``;
* **contention-manager advice** — ``active`` or ``passive``;
* **messages** — elements of a fixed alphabet ``M`` or ``null`` (no message).

We model process indices as plain integers drawn from the index universe
``I`` and messages as arbitrary hashable Python values (``None`` plays the
role of ``null``).
"""

from __future__ import annotations

import enum
from typing import Any, Hashable

#: A process index (an element of the paper's index universe ``I``).
ProcessId = int

#: A message payload.  ``None`` denotes the paper's ``null`` (no message).
Message = Hashable

#: A consensus value (an element of the value set ``V``).
Value = Any


class CollisionAdvice(enum.Enum):
    """Binary collision-detector output (Section 1.3 / Definition 5).

    ``COLLISION`` is the paper's ``±`` — a rough indication that the
    receiver lost at least one message this round.  ``NULL`` indicates the
    detector observed nothing suspicious.
    """

    NULL = "null"
    COLLISION = "collision"

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self is CollisionAdvice.COLLISION

    def __repr__(self) -> str:
        return "±" if self is CollisionAdvice.COLLISION else "null"


class ContentionAdvice(enum.Enum):
    """Contention-manager output (Section 4): broadcast hint per round."""

    ACTIVE = "active"
    PASSIVE = "passive"

    def __repr__(self) -> str:
        return self.value


#: Convenience aliases matching the paper's notation.
COLLISION = CollisionAdvice.COLLISION
NULL = CollisionAdvice.NULL
ACTIVE = ContentionAdvice.ACTIVE
PASSIVE = ContentionAdvice.PASSIVE
