"""Execution records and the paper's trace types (Definitions 4, 5, 7, 11).

An execution in the formal model is the infinite sequence
``C0, M1, N1, D1, W1, C1, ...``.  The engine produces a finite prefix of this
sequence as a list of :class:`RoundRecord` objects, each holding the round's
message assignment (``M_r``), message-set assignment (``N_r``), collision
advice (``D_r``), contention advice (``W_r``), and the set of processes that
crashed during the round.

From a finished :class:`ExecutionResult` we can extract the three trace
types used throughout the paper:

* the **transmission trace** ``(c_r, T_r)`` — how many processes broadcast
  and how many messages each process received (Definition 4);
* the **CD trace** — collision advice per process per round (Definition 5);
* the **CM trace** — contention advice per process per round (Definition 7);

plus the **basic broadcast count sequence** (Definition 22) used by the
lower bounds, and observable *indistinguishability* between two executions
(Definition 12).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from .multiset import Multiset
from .types import CollisionAdvice, ContentionAdvice, Message, ProcessId, Value


@dataclasses.dataclass(frozen=True)
class TransmissionEntry:
    """One entry ``(c, T)`` of a P-transmission trace (Definition 4).

    ``broadcasters`` is the paper's ``c`` (number of processes that sent a
    non-null message this round); ``received`` maps each process index to
    ``T(i)`` (the number of messages, with multiplicity, it received).
    """

    broadcasters: int
    received: Mapping[ProcessId, int]

    def loss_at(self, pid: ProcessId) -> int:
        """Number of messages process ``pid`` lost this round."""
        return self.broadcasters - self.received[pid]


@dataclasses.dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one synchronous round (1-based)."""

    round: int
    cm_advice: Mapping[ProcessId, ContentionAdvice]
    messages: Mapping[ProcessId, Optional[Message]]
    received: Mapping[ProcessId, Multiset]
    cd_advice: Mapping[ProcessId, CollisionAdvice]
    crashed_during: FrozenSet[ProcessId]
    decided_during: Mapping[ProcessId, Value]

    @property
    def broadcasters(self) -> Tuple[ProcessId, ...]:
        """Indices that broadcast a non-null message this round."""
        return tuple(
            sorted(i for i, m in self.messages.items() if m is not None)
        )

    @property
    def broadcast_count(self) -> int:
        """The paper's ``c`` for this round."""
        return sum(1 for m in self.messages.values() if m is not None)

    def transmission_entry(self) -> TransmissionEntry:
        """This round's ``(c, T)`` transmission-trace entry."""
        return TransmissionEntry(
            broadcasters=self.broadcast_count,
            received={i: len(ms) for i, ms in self.received.items()},
        )


class ExecutionResult:
    """A finite execution prefix plus final per-process outcomes.

    The result is the primary object consumed by the consensus checker, the
    trace validators, the lower-bound machinery, and the experiment
    harness.
    """

    def __init__(
        self,
        indices: Sequence[ProcessId],
        records: List[RoundRecord],
        decisions: Mapping[ProcessId, Optional[Value]],
        decision_rounds: Mapping[ProcessId, Optional[int]],
        crash_rounds: Mapping[ProcessId, Optional[int]],
        initial_values: Optional[Mapping[ProcessId, Value]] = None,
        cst: Optional[int] = None,
    ) -> None:
        self.indices: Tuple[ProcessId, ...] = tuple(sorted(indices))
        self.records = records
        self.decisions = dict(decisions)
        self.decision_rounds = dict(decision_rounds)
        self.crash_rounds = dict(crash_rounds)
        self.initial_values = dict(initial_values) if initial_values else None
        self.cst = cst

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Number of simulated rounds."""
        return len(self.records)

    def correct_indices(self) -> Tuple[ProcessId, ...]:
        """Indices of processes that never crashed (Definition 13)."""
        return tuple(
            i for i in self.indices if self.crash_rounds.get(i) is None
        )

    def crashed_indices(self) -> Tuple[ProcessId, ...]:
        """Indices of processes that crashed at some round."""
        return tuple(
            i for i in self.indices if self.crash_rounds.get(i) is not None
        )

    def decided_values(self) -> Dict[ProcessId, Value]:
        """Map of process index to decided value, decided processes only."""
        return {i: v for i, v in self.decisions.items() if v is not None}

    def all_correct_decided(self) -> bool:
        """True when every correct process has decided."""
        return all(
            self.decisions.get(i) is not None for i in self.correct_indices()
        )

    def last_decision_round(self) -> Optional[int]:
        """Latest decision round among correct processes, if all decided."""
        if not self.all_correct_decided():
            return None
        rounds = [self.decision_rounds[i] for i in self.correct_indices()]
        return max(rounds) if rounds else None

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def transmission_trace(self) -> List[TransmissionEntry]:
        """The execution's transmission trace (Definition 4 prefix)."""
        return [rec.transmission_entry() for rec in self.records]

    def cd_trace(self) -> List[Mapping[ProcessId, CollisionAdvice]]:
        """The execution's CD trace (Definition 5 prefix)."""
        return [rec.cd_advice for rec in self.records]

    def cm_trace(self) -> List[Mapping[ProcessId, ContentionAdvice]]:
        """The execution's CM trace (Definition 7 prefix)."""
        return [rec.cm_advice for rec in self.records]

    def broadcast_count_sequence(self, through_round: Optional[int] = None):
        """Basic broadcast count sequence (Definition 22).

        Each round maps to ``0``, ``1``, or ``'2+'`` according to how many
        processes broadcast.
        """
        upto = self.rounds if through_round is None else min(
            through_round, self.rounds
        )
        sequence = []
        for rec in self.records[:upto]:
            c = rec.broadcast_count
            sequence.append(c if c < 2 else "2+")
        return tuple(sequence)

    # ------------------------------------------------------------------
    # Per-process views
    # ------------------------------------------------------------------
    def view(
        self, pid: ProcessId, through_round: Optional[int] = None
    ) -> List[Tuple[Optional[Message], Multiset, CollisionAdvice, ContentionAdvice]]:
        """Process ``pid``'s observable history ``(M, N, D, W)`` per round.

        This is the observable part of Definition 12's indistinguishability:
        for a deterministic automaton with a fixed start state, equal views
        imply equal state sequences.
        """
        upto = self.rounds if through_round is None else min(
            through_round, self.rounds
        )
        history = []
        for rec in self.records[:upto]:
            history.append(
                (
                    rec.messages[pid],
                    rec.received[pid],
                    rec.cd_advice[pid],
                    rec.cm_advice[pid],
                )
            )
        return history


def indistinguishable(
    a: ExecutionResult,
    b: ExecutionResult,
    pid: ProcessId,
    through_round: int,
    pid_b: Optional[ProcessId] = None,
) -> bool:
    """Definition 12: is ``a`` indistinguishable from ``b`` w.r.t. ``pid``?

    Compares the observable view (messages sent, messages received,
    collision advice, contention advice) through ``through_round``.  Pass
    ``pid_b`` to compare process ``pid`` in ``a`` against a *different*
    index in ``b`` (used by the anonymous symmetry arguments of Lemma 20).
    """
    other = pid if pid_b is None else pid_b
    if a.initial_values is not None and b.initial_values is not None:
        if a.initial_values.get(pid) != b.initial_values.get(other):
            return False
    return a.view(pid, through_round) == b.view(other, through_round)
