"""Execution records and the paper's trace types (Definitions 4, 5, 7, 11).

An execution in the formal model is the infinite sequence
``C0, M1, N1, D1, W1, C1, ...``.  The engine produces a finite prefix of this
sequence as a list of :class:`RoundRecord` objects, each holding the round's
message assignment (``M_r``), message-set assignment (``N_r``), collision
advice (``D_r``), contention advice (``W_r``), and the set of processes that
crashed during the round.

From a finished :class:`ExecutionResult` we can extract the three trace
types used throughout the paper:

* the **transmission trace** ``(c_r, T_r)`` — how many processes broadcast
  and how many messages each process received (Definition 4);
* the **CD trace** — collision advice per process per round (Definition 5);
* the **CM trace** — contention advice per process per round (Definition 7);

plus the **basic broadcast count sequence** (Definition 22) used by the
lower bounds, and observable *indistinguishability* between two executions
(Definition 12).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import sqlite3
import time
from typing import (
    Any,
    Dict,
    FrozenSet,
    IO,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .errors import ConfigurationError
from .multiset import Multiset
from .types import CollisionAdvice, ContentionAdvice, Message, ProcessId, Value


class RecordPolicy(enum.Enum):
    """How much per-round state an execution retains.

    * ``FULL``    — keep every :class:`RoundRecord` (multisets, advice maps);
      required by the trace validators, lower-bound replays, and
      ``indistinguishable``.  Memory is O(rounds × n).
    * ``SUMMARY`` — keep one small :class:`RoundSummary` per round
      (broadcast count, decisions, crashes); enough for consensus checking
      and the broadcast-count sequence.  Memory is O(rounds).
    * ``NONE``    — keep nothing per round; only the final per-process
      outcomes survive.  The fastest mode, for high-volume sweeps.

    Decisions, decision rounds, and crash rounds are identical across
    policies for the same seeded execution — the policy changes what is
    *retained*, never what *happens*.
    """

    FULL = "full"
    SUMMARY = "summary"
    NONE = "none"


@dataclasses.dataclass(frozen=True)
class RoundSummary:
    """Streaming per-round aggregate kept under ``RecordPolicy.SUMMARY``."""

    round: int
    broadcast_count: int
    crashed_during: FrozenSet[ProcessId]
    decided_during: Mapping[ProcessId, Value]


class JsonlSink:
    """A round observer that streams summaries to a JSON Lines file.

    Pass an instance as the ``observer`` of
    :meth:`~repro.core.execution.ExecutionEngine.run` (or the
    ``run_algorithm``/``run_consensus`` helpers): each round's artifact
    is serialised to one JSON object per line and written out
    immediately, so million-round campaigns keep O(1) memory even when
    callers also want a durable per-round trail.  Both
    :class:`RoundSummary` and :class:`RoundRecord` artifacts are
    accepted; a record is reduced to its summary fields (the full
    multisets stay in the execution result under ``FULL``).

    The sink is also a context manager; values that are not JSON types
    are serialised via ``str`` so arbitrary message/value payloads never
    abort a campaign mid-run.

    The file is opened *lazily*, on the first artifact: an execution
    that raises before completing round 1 (a misconfigured environment,
    a model violation in the opening round) leaves no empty ``.jsonl``
    behind on disk.  Note the flip side: laziness never touches the
    path, so if an *earlier* run already wrote the same file, a retry
    failing before round 1 leaves that stale file in place (the first
    artifact of a successful retry truncates it, mode ``"w"``).
    """

    def __init__(self, path: str, mode: str = "w") -> None:
        self.path = path
        self._mode = mode
        self._fh: Optional[IO[str]] = None
        self._closed = False
        self.rounds_written = 0

    def __call__(self, artifact: Union["RoundRecord", "RoundSummary"]) -> None:
        if self._closed:
            raise ConfigurationError(
                f"JsonlSink({self.path!r}) is closed; cannot stream rounds"
            )
        if self._fh is None:
            self._fh = open(self.path, self._mode)
        payload = {
            "round": artifact.round,
            # RoundSummary stores the count; RoundRecord derives it.
            "broadcast_count": artifact.broadcast_count,
            "crashed_during": sorted(artifact.crashed_during, key=repr),
            "decided_during": {
                repr(pid): value
                for pid, value in artifact.decided_during.items()
            },
        }
        self._fh.write(json.dumps(payload, default=str) + "\n")
        self.rounds_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._closed = True

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# The sqlite campaign store
# ----------------------------------------------------------------------
_CAMPAIGN_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    cell_tag   TEXT PRIMARY KEY,
    cell_seed  INTEGER NOT NULL,
    cell_index INTEGER NOT NULL,
    params     TEXT NOT NULL,
    status     TEXT NOT NULL,
    payload    TEXT,
    error      TEXT,
    elapsed    REAL,
    attempts   INTEGER NOT NULL DEFAULT 1
);
CREATE TABLE IF NOT EXISTS round_summaries (
    cell_seed       INTEGER NOT NULL,
    round           INTEGER NOT NULL,
    broadcast_count INTEGER NOT NULL,
    crashed_during  TEXT NOT NULL,
    decided_during  TEXT NOT NULL,
    PRIMARY KEY (cell_seed, round)
);
CREATE TABLE IF NOT EXISTS campaign_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def _pid_from_key(key: str) -> Any:
    """Best-effort inverse of the JSON string-keying of process ids."""
    try:
        return int(key)
    except (TypeError, ValueError):
        return key


#: Substrings marking an ``sqlite3.OperationalError`` as transient —
#: another writer holds the lock or the disk hiccuped — and therefore
#: worth a seeded-backoff retry rather than an immediate abort.
_TRANSIENT_SQLITE_MARKERS = ("locked", "busy", "disk is full")


def _is_transient_sqlite(exc: sqlite3.OperationalError) -> bool:
    text = str(exc).lower()
    return any(marker in text for marker in _TRANSIENT_SQLITE_MARKERS)


class SqliteSink:
    """A round observer backed by one sqlite ``campaign.db``.

    The same observer protocol as :class:`JsonlSink` — pass an instance
    as the ``observer`` of an engine run and each round's artifact
    becomes one row of the ``round_summaries`` table, keyed on
    ``(cell_seed, round)`` — plus the campaign checkpoint layer the
    :class:`~repro.experiments.campaign.CampaignRunner` resumes from:
    a ``cells`` table with one row per finished sweep cell (its canonical
    coordinate tag, derived seed, grid index, status, and
    canonically-serialised payload), and a ``campaign_meta`` key/value
    table holding store-level identity (``base_seed``, the shard spec)
    that the campaign layer validates before mixing data from two runs.

    Concurrency: the database is opened in WAL journal mode with a busy
    timeout (both the connect-time handler and an explicit
    ``PRAGMA busy_timeout``), so parallel campaign workers (each holding
    its *own* sink — sqlite connections must never cross process
    boundaries) can append round summaries to one shared ``campaign.db``
    while the parent checkpoints cell rows.  Each write commits
    immediately: a killed campaign loses at most the in-flight row.

    Resilience: every store write runs inside a guarded retry loop —
    a *transient* ``OperationalError`` (``database is locked``/``busy``,
    ``disk is full``) is retried with seeded exponential backoff and
    jitter, and only after the budget is exhausted does the sink raise
    a :class:`~repro.core.errors.ConfigurationError` explaining the
    likely cause (two hosts pointed at one store path) instead of a raw
    sqlite traceback.  The retry delays are derived from
    ``SHA-256(path | operation | attempt)``, so a replayed campaign
    backs off identically.  When a
    :class:`~repro.testing.faultline.FaultPlan` is active (``fault_plan=``
    kwarg, the process-installed plan, or ``REPRO_FAULTLINE``) its
    ``sqlite`` site fires inside the retried closure, so injected
    transient errors exercise exactly the production retry machinery.

    Like :class:`JsonlSink`, the connection opens lazily on first use,
    and the sink is a context manager.  Writing rounds requires a
    ``cell_seed`` (the key rounds are filed under); store-only callers
    (the campaign runner, report generators) may omit it.
    """

    #: Attempts per guarded store write, first try included.
    MAX_SQLITE_ATTEMPTS: int = 5

    #: Base of the exponential backoff between retries (seconds).
    SQLITE_BACKOFF: float = 0.02

    def __init__(
        self,
        path: str,
        cell_seed: Optional[int] = None,
        busy_timeout: float = 30.0,
        fault_plan: Optional[Any] = None,
    ) -> None:
        self.path = path
        self.cell_seed = None if cell_seed is None else int(cell_seed)
        self.busy_timeout = busy_timeout
        self._conn: Optional[sqlite3.Connection] = None
        self._closed = False
        self.rounds_written = 0
        self._fault_plan = fault_plan
        self._plan_cache: Optional[Any] = None
        self._plan_resolved = False

    # -- fault injection and transient-error retry ---------------------
    def _plan(self) -> Optional[Any]:
        """Resolve the active fault plan once, lazily.

        Imported lazily — :mod:`repro.testing` is a leaf consumer of
        :mod:`repro.core`, and the common no-plan case must not load it
        on the hot write path more than once per sink.
        """
        if not self._plan_resolved:
            from ..testing import faultline

            self._plan_cache = faultline.resolve(self._fault_plan)
            self._plan_resolved = True
        return self._plan_cache

    def _backoff_delay(self, op: str, attempt: int) -> float:
        """Seeded exponential backoff with jitter for retry ``attempt``.

        Deterministic per (store path, operation, attempt) so a
        replayed campaign sleeps the same schedule; the jitter factor
        in ``[0.5, 1.5)`` still de-synchronises distinct writers.
        """
        digest = hashlib.sha256(
            f"{self.path}|{op}|{attempt}".encode()
        ).digest()
        jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2 ** 64
        return min(self.SQLITE_BACKOFF * (2 ** (attempt - 1)), 1.0) * jitter

    def _guarded(self, op: str, fn: Any) -> Any:
        """Run one store operation under the transient-error retry loop.

        ``fn`` must be a closure over the *whole* operation (connect
        included — a lock can bite the opening PRAGMAs too).  A
        non-transient ``OperationalError`` propagates untouched; a
        transient one is retried ``MAX_SQLITE_ATTEMPTS`` times and then
        converted to a :class:`ConfigurationError` naming the usual
        suspect, because a lock that outlives the whole backoff budget
        is a deployment problem, not a hiccup.
        """
        plan = self._plan()
        last_exc: Optional[sqlite3.OperationalError] = None
        for attempt in range(1, self.MAX_SQLITE_ATTEMPTS + 1):
            try:
                if plan is not None:
                    plan.sqlite_check(op)
                return fn()
            except sqlite3.OperationalError as exc:
                if not _is_transient_sqlite(exc):
                    raise
                last_exc = exc
                if attempt < self.MAX_SQLITE_ATTEMPTS:
                    time.sleep(self._backoff_delay(op, attempt))
        raise ConfigurationError(
            f"sqlite store {self.path!r} still failing after "
            f"{self.MAX_SQLITE_ATTEMPTS} attempts ({last_exc}) — another "
            "process or host is holding this database (two campaigns or "
            "two shard hosts pointed at one path, or a shared/NFS mount); "
            "give each run its own store path"
        ) from last_exc

    # -- connection lifecycle ------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        if self._closed:
            raise ConfigurationError(
                f"SqliteSink({self.path!r}) is closed; cannot touch the store"
            )
        if self._conn is None:
            conn = sqlite3.connect(self.path, timeout=self.busy_timeout)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            # The connect-time ``timeout`` installs a busy handler for
            # this Python wrapper; the PRAGMA makes the same budget
            # explicit at the engine level so *every* statement —
            # including ones issued by ATTACH-ed merge work — waits for
            # a lock instead of failing instantly.
            conn.execute(
                f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}"
            )
            conn.executescript(_CAMPAIGN_SCHEMA)
            # Migrate pre-`attempts` stores in place: every checkpointed
            # cell in an old store ran exactly once as far as the retry
            # budget is concerned, so the column backfills to 1.
            cols = {
                row[1] for row in conn.execute("PRAGMA table_info(cells)")
            }
            if "attempts" not in cols:
                conn.execute(
                    "ALTER TABLE cells ADD COLUMN attempts "
                    "INTEGER NOT NULL DEFAULT 1"
                )
            conn.commit()
            self._conn = conn
        return self._conn

    def disconnect(self) -> None:
        """Drop the underlying connection; the sink reopens lazily.

        Call this before forking worker processes: an sqlite connection
        must never cross a fork — the child's inherited descriptor can
        release the parent's POSIX locks and corrupt WAL recovery.  The
        campaign runner disconnects its store before every fan-out.
        """
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def close(self) -> None:
        self.disconnect()
        self._closed = True

    def __enter__(self) -> "SqliteSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the observer protocol -----------------------------------------
    def __call__(self, artifact: Union["RoundRecord", "RoundSummary"]) -> None:
        if self.cell_seed is None:
            raise ConfigurationError(
                "SqliteSink needs a cell_seed to file round summaries "
                "under; construct it as SqliteSink(path, cell_seed=...)"
            )
        row = (
            self.cell_seed,
            artifact.round,
            artifact.broadcast_count,
            json.dumps(
                sorted(artifact.crashed_during, key=repr), default=str
            ),
            json.dumps(
                {
                    str(pid): value
                    for pid, value in artifact.decided_during.items()
                },
                sort_keys=True,
                default=str,
            ),
        )

        def write() -> None:
            conn = self._connect()
            conn.execute(
                "INSERT OR REPLACE INTO round_summaries "
                "(cell_seed, round, broadcast_count, crashed_during, "
                "decided_during) VALUES (?, ?, ?, ?, ?)",
                row,
            )
            conn.commit()

        self._guarded("write-round", write)
        self.rounds_written += 1

    def clear_rounds(self, cell_seed: int) -> None:
        """Drop every round summary filed under ``cell_seed``.

        The campaign runner calls this before (re-)running a cell, so
        rounds streamed by a killed or failed earlier attempt can never
        linger past the new attempt's final round.
        """
        def write() -> None:
            conn = self._connect()
            conn.execute(
                "DELETE FROM round_summaries WHERE cell_seed = ?",
                (int(cell_seed),),
            )
            conn.commit()

        self._guarded("clear-rounds", write)

    def read_summaries(
        self, cell_seed: Optional[int] = None
    ) -> List[RoundSummary]:
        """Round summaries for one cell, ordered by round.

        Values round-trip through JSON, so non-JSON message/value
        payloads come back as their ``str`` forms (the same reduction
        :class:`JsonlSink` applies on the way out).
        """
        key = self.cell_seed if cell_seed is None else int(cell_seed)
        if key is None:
            raise ConfigurationError(
                "read_summaries needs a cell_seed (none bound to this sink)"
            )
        rows = self._connect().execute(
            "SELECT round, broadcast_count, crashed_during, decided_during "
            "FROM round_summaries WHERE cell_seed = ? ORDER BY round",
            (key,),
        ).fetchall()
        return [
            RoundSummary(
                round=r,
                broadcast_count=bc,
                crashed_during=frozenset(
                    _pid_from_key(p) for p in json.loads(crashed)
                ),
                decided_during={
                    _pid_from_key(p): v
                    for p, v in json.loads(decided).items()
                },
            )
            for r, bc, crashed, decided in rows
        ]

    def round_aggregates(self) -> Dict[int, Tuple[int, float]]:
        """Per-cell aggregates over ``round_summaries`` in one query.

        Returns ``cell_seed -> (rounds, mean broadcast count)`` for every
        cell that streamed at least one round into the store — the
        backbone of the campaign's table report, computed inside sqlite
        so a million-round store never materialises its rows in Python.
        """
        rows = self._connect().execute(
            "SELECT cell_seed, COUNT(*), AVG(broadcast_count) "
            "FROM round_summaries GROUP BY cell_seed"
        ).fetchall()
        return {seed: (count, mean) for seed, count, mean in rows}

    # -- campaign cell checkpoints -------------------------------------
    def record_cell(
        self,
        tag: str,
        seed: int,
        index: int,
        params_text: str,
        status: str,
        payload_text: Optional[str] = None,
        error: Optional[str] = None,
        elapsed: Optional[float] = None,
        attempts: int = 1,
    ) -> None:
        """Checkpoint one finished cell (idempotent upsert, keyed on tag).

        ``attempts`` counts how many times the cell has run in total
        (first run included); the campaign's retry budget reads it back
        to decide whether a ``failed`` cell gets another pass.
        """
        def write() -> None:
            conn = self._connect()
            conn.execute(
                "INSERT OR REPLACE INTO cells "
                "(cell_tag, cell_seed, cell_index, params, status, payload, "
                "error, elapsed, attempts) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (tag, int(seed), int(index), params_text, status,
                 payload_text, error, elapsed, int(attempts)),
            )
            conn.commit()

        self._guarded("record-cell", write)

    def get_cells(self) -> Dict[str, Dict[str, Any]]:
        """All checkpointed cells as ``tag -> row`` (elapsed excluded —
        wall-clock noise never leaks into resume decisions or reports)."""
        rows = self._connect().execute(
            "SELECT cell_tag, cell_seed, cell_index, params, status, "
            "payload, error, attempts FROM cells"
        ).fetchall()
        return {
            tag: {
                "cell_seed": seed,
                "cell_index": index,
                "params": params,
                "status": status,
                "payload": payload,
                "error": error,
                "attempts": attempts,
            }
            for tag, seed, index, params, status, payload, error, attempts
            in rows
        }

    def cell_count(self) -> int:
        """Number of checkpointed cells (one ``COUNT(*)``, no row fetch)."""
        return self._connect().execute(
            "SELECT COUNT(*) FROM cells"
        ).fetchone()[0]

    # -- store-level metadata ------------------------------------------
    def set_meta(self, key: str, value: Any) -> None:
        """Record one store-level fact (JSON-serialised, upsert).

        The campaign layer stamps every store with its ``base_seed`` and
        shard spec on first use and validates them on every reopen, so
        two campaigns (or two shards of one campaign) can never silently
        mix their rows in one database.
        """
        def write() -> None:
            conn = self._connect()
            conn.execute(
                "INSERT OR REPLACE INTO campaign_meta (key, value) "
                "VALUES (?, ?)",
                (key, json.dumps(value, sort_keys=True)),
            )
            conn.commit()

        self._guarded("set-meta", write)

    def get_meta(self, key: str, default: Any = None) -> Any:
        """Read one store-level fact back (``default`` when unset)."""
        row = self._connect().execute(
            "SELECT value FROM campaign_meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else json.loads(row[0])

    def fold_wal(self) -> None:
        """Checkpoint the WAL into the main file and leave WAL mode.

        After this returns, the database is one self-contained file —
        no ``-wal``/``-shm`` sidecars carry live data — which is what
        lets :func:`~repro.experiments.campaign.merge_campaign_stores`
        publish a merged store with a single atomic ``os.replace``.
        """
        conn = self._connect()
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        conn.execute("PRAGMA journal_mode=DELETE")
        conn.commit()

    # -- shard merging -------------------------------------------------
    def merge_from(self, source_path: str) -> int:
        """Fold another store's ``cells`` and ``round_summaries`` into
        this one (the campaign shard-merge primitive).

        Uses sqlite ``ATTACH`` so the copy happens entirely inside the
        database engine, and plain ``INSERT`` (never ``OR REPLACE``) so
        a cell tag or ``(cell_seed, round)`` key present in both stores
        aborts loudly with :class:`~repro.core.errors.ConfigurationError`
        instead of silently clobbering a row — overlapping shards are a
        configuration error, not a tiebreak.  Returns the number of
        cells copied.  Caller-level validation (matching ``base_seed``,
        a complete non-overlapping shard set) lives in
        :func:`repro.experiments.campaign.merge_campaign_stores`;
        ``campaign_meta`` rows are deliberately *not* copied — the
        merged store's identity is stamped by the caller.
        """
        conn = self._connect()
        conn.execute("ATTACH DATABASE ? AS shard_src", (source_path,))
        try:
            try:
                cur = conn.execute(
                    "INSERT INTO cells (cell_tag, cell_seed, cell_index, "
                    "params, status, payload, error, elapsed, attempts) "
                    "SELECT cell_tag, cell_seed, cell_index, params, "
                    "status, payload, error, elapsed, attempts "
                    "FROM shard_src.cells"
                )
                copied = cur.rowcount
                conn.execute(
                    "INSERT INTO round_summaries (cell_seed, round, "
                    "broadcast_count, crashed_during, decided_during) "
                    "SELECT cell_seed, round, broadcast_count, "
                    "crashed_during, decided_during "
                    "FROM shard_src.round_summaries"
                )
            except sqlite3.IntegrityError as exc:
                conn.rollback()
                raise ConfigurationError(
                    f"merging {source_path!r} into {self.path!r} hit a "
                    f"duplicate key ({exc}) — the stores hold overlapping "
                    "cells, so they are not disjoint shards of one grid"
                ) from exc
            conn.commit()
        finally:
            conn.execute("DETACH DATABASE shard_src")
        return copied


@dataclasses.dataclass(frozen=True)
class TransmissionEntry:
    """One entry ``(c, T)`` of a P-transmission trace (Definition 4).

    ``broadcasters`` is the paper's ``c`` (number of processes that sent a
    non-null message this round); ``received`` maps each process index to
    ``T(i)`` (the number of messages, with multiplicity, it received).
    """

    broadcasters: int
    received: Mapping[ProcessId, int]

    def loss_at(self, pid: ProcessId) -> int:
        """Number of messages process ``pid`` lost this round."""
        return self.broadcasters - self.received[pid]


@dataclasses.dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one synchronous round (1-based)."""

    round: int
    cm_advice: Mapping[ProcessId, ContentionAdvice]
    messages: Mapping[ProcessId, Optional[Message]]
    received: Mapping[ProcessId, Multiset]
    cd_advice: Mapping[ProcessId, CollisionAdvice]
    crashed_during: FrozenSet[ProcessId]
    decided_during: Mapping[ProcessId, Value]

    @property
    def broadcasters(self) -> Tuple[ProcessId, ...]:
        """Indices that broadcast a non-null message this round."""
        return tuple(
            sorted(i for i, m in self.messages.items() if m is not None)
        )

    @property
    def broadcast_count(self) -> int:
        """The paper's ``c`` for this round."""
        return sum(1 for m in self.messages.values() if m is not None)

    def transmission_entry(self) -> TransmissionEntry:
        """This round's ``(c, T)`` transmission-trace entry."""
        return TransmissionEntry(
            broadcasters=self.broadcast_count,
            received={i: len(ms) for i, ms in self.received.items()},
        )


class ExecutionResult:
    """A finite execution prefix plus final per-process outcomes.

    The result is the primary object consumed by the consensus checker, the
    trace validators, the lower-bound machinery, and the experiment
    harness.

    Under ``RecordPolicy.SUMMARY`` or ``NONE`` no per-round records are
    retained: final outcomes (decisions, decision rounds, crash rounds)
    are always present, but ``records`` itself and the trace accessors
    (``transmission_trace``, ``cd_trace``, ``cm_trace``, ``view``)
    require ``FULL`` and raise
    :class:`~repro.core.errors.ConfigurationError` otherwise — a trace
    validator handed a streaming result must fail loudly, never pass
    vacuously over zero rounds.
    """

    def __init__(
        self,
        indices: Sequence[ProcessId],
        records: List[RoundRecord],
        decisions: Mapping[ProcessId, Optional[Value]],
        decision_rounds: Mapping[ProcessId, Optional[int]],
        crash_rounds: Mapping[ProcessId, Optional[int]],
        initial_values: Optional[Mapping[ProcessId, Value]] = None,
        cst: Optional[int] = None,
        record_policy: RecordPolicy = RecordPolicy.FULL,
        summaries: Optional[List[RoundSummary]] = None,
        rounds: Optional[int] = None,
        leave_rounds: Optional[Mapping[ProcessId, Optional[int]]] = None,
        rejoin_counts: Optional[Mapping[ProcessId, int]] = None,
        departed_decisions: Sequence[Tuple[ProcessId, Value, int]] = (),
    ) -> None:
        self.indices: Tuple[ProcessId, ...] = tuple(sorted(indices))
        self._records = records
        self.decisions = dict(decisions)
        self.decision_rounds = dict(decision_rounds)
        self.crash_rounds = dict(crash_rounds)
        self.initial_values = dict(initial_values) if initial_values else None
        self.cst = cst
        self.record_policy = record_policy
        self.summaries: List[RoundSummary] = summaries or []
        self._rounds = len(records) if rounds is None else rounds
        #: pid -> round of its still-standing departure (``0`` for
        #: initially-absent pids that never joined); ``None``/missing for
        #: pids present at the end.  Empty for churn-free executions.
        self.leave_rounds: Dict[ProcessId, Optional[int]] = {
            pid: r
            for pid, r in dict(leave_rounds or {}).items()
            if r is not None
        }
        #: pid -> number of (re)joins it performed (fresh-state entries
        #: beyond its initial spawn).  Empty for churn-free executions.
        self.rejoin_counts: Dict[ProcessId, int] = {
            pid: c for pid, c in dict(rejoin_counts or {}).items() if c
        }
        #: Decisions by process incarnations that later churned out:
        #: ``(pid, value, leave_round)`` in departure order.  The current
        #: incarnation's decision lives in ``decisions``; agreement over
        #: the whole execution must consider both (a rejoined process has
        #: forgotten — and may contradict — its ghost decision).
        self.departed_decisions: Tuple[Tuple[ProcessId, Value, int], ...] = (
            tuple(departed_decisions)
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Number of simulated rounds."""
        return self._rounds

    @property
    def records(self) -> List[RoundRecord]:
        """The retained :class:`RoundRecord` list (``FULL`` policy only).

        Raises under ``SUMMARY``/``NONE`` rather than returning an empty
        list, so code iterating records can never silently conclude
        "nothing happened" about an execution that simply wasn't
        recorded.
        """
        self._require_full("records")
        return self._records

    def _require_full(self, what: str) -> None:
        if self.record_policy is not RecordPolicy.FULL:
            raise ConfigurationError(
                f"{what} requires RecordPolicy.FULL; this execution ran "
                f"with RecordPolicy.{self.record_policy.name}"
            )

    def correct_indices(self) -> Tuple[ProcessId, ...]:
        """Indices of processes that never crashed (Definition 13)."""
        return tuple(
            i for i in self.indices if self.crash_rounds.get(i) is None
        )

    def crashed_indices(self) -> Tuple[ProcessId, ...]:
        """Indices of processes that crashed at some round."""
        return tuple(
            i for i in self.indices if self.crash_rounds.get(i) is not None
        )

    @property
    def churned(self) -> bool:
        """True when membership ever changed under a churn adversary."""
        return bool(self.leave_rounds) or bool(self.rejoin_counts)

    def present_indices(self) -> Tuple[ProcessId, ...]:
        """Indices present at the end: neither crashed nor departed.

        The dynamic-membership analogue of :meth:`correct_indices` —
        agreement-quality metrics (decision rate, termination) are taken
        over the processes actually in the system when the run stopped.
        Identical to ``correct_indices()`` for churn-free executions.
        """
        return tuple(
            i for i in self.indices
            if self.crash_rounds.get(i) is None
            and self.leave_rounds.get(i) is None
        )

    def all_decided_values(self) -> Tuple[Value, ...]:
        """Every value ever decided, ghost (departed) incarnations included.

        Sorted by repr for determinism.  More than one distinct value
        here is a system-level agreement violation even if the *current*
        decisions agree — a rejoined process may have contradicted the
        decision its departed incarnation made.
        """
        values = {v for v in self.decisions.values() if v is not None}
        values.update(v for _, v, _ in self.departed_decisions)
        return tuple(sorted(values, key=repr))

    def decided_values(self) -> Dict[ProcessId, Value]:
        """Map of process index to decided value, decided processes only."""
        return {i: v for i, v in self.decisions.items() if v is not None}

    @property
    def no_correct_processes(self) -> bool:
        """True when every process crashed — the degenerate outcome in
        which the consensus properties hold only vacuously."""
        return not self.correct_indices()

    def all_correct_decided(self) -> bool:
        """True when every correct process has decided.

        Deliberately **not** vacuous: when every process crashed this
        returns False (check :attr:`no_correct_processes` to distinguish
        the all-crashed outcome from a genuine termination failure).
        """
        correct = self.correct_indices()
        return bool(correct) and all(
            self.decisions.get(i) is not None for i in correct
        )

    def last_decision_round(self) -> Optional[int]:
        """Latest decision round among correct processes, if all decided."""
        if not self.all_correct_decided():
            return None
        rounds = [self.decision_rounds[i] for i in self.correct_indices()]
        return max(rounds) if rounds else None

    def last_present_decision_round(self) -> Optional[int]:
        """Latest decision round among *present* processes, if all decided.

        The churn-aware termination metric: :meth:`last_decision_round`
        counts permanently-departed pids as correct-but-undecided (they
        never crashed) and so reports ``None`` for any execution that
        ends with someone churned out.  Identical to it when membership
        is static.
        """
        present = self.present_indices()
        if not present or any(
            self.decisions.get(i) is None for i in present
        ):
            return None
        return max(self.decision_rounds[i] for i in present)

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def transmission_trace(self) -> List[TransmissionEntry]:
        """The execution's transmission trace (Definition 4 prefix)."""
        self._require_full("transmission_trace")
        return [rec.transmission_entry() for rec in self.records]

    def cd_trace(self) -> List[Mapping[ProcessId, CollisionAdvice]]:
        """The execution's CD trace (Definition 5 prefix)."""
        self._require_full("cd_trace")
        return [rec.cd_advice for rec in self.records]

    def cm_trace(self) -> List[Mapping[ProcessId, ContentionAdvice]]:
        """The execution's CM trace (Definition 7 prefix)."""
        self._require_full("cm_trace")
        return [rec.cm_advice for rec in self.records]

    def broadcast_count_sequence(self, through_round: Optional[int] = None):
        """Basic broadcast count sequence (Definition 22).

        Each round maps to ``0``, ``1``, or ``'2+'`` according to how many
        processes broadcast.  Available under ``FULL`` and ``SUMMARY``
        record policies (the summary retains broadcast counts).
        """
        upto = self.rounds if through_round is None else min(
            through_round, self.rounds
        )
        if self.record_policy is RecordPolicy.FULL:
            counts = (rec.broadcast_count for rec in self.records[:upto])
        elif self.record_policy is RecordPolicy.SUMMARY:
            counts = (s.broadcast_count for s in self.summaries[:upto])
        else:
            raise ConfigurationError(
                "broadcast_count_sequence requires RecordPolicy.FULL or "
                "SUMMARY; this execution ran with RecordPolicy.NONE"
            )
        return tuple(c if c < 2 else "2+" for c in counts)

    # ------------------------------------------------------------------
    # Per-process views
    # ------------------------------------------------------------------
    def view(
        self, pid: ProcessId, through_round: Optional[int] = None
    ) -> List[Tuple[Optional[Message], Multiset, CollisionAdvice, ContentionAdvice]]:
        """Process ``pid``'s observable history ``(M, N, D, W)`` per round.

        This is the observable part of Definition 12's indistinguishability:
        for a deterministic automaton with a fixed start state, equal views
        imply equal state sequences.
        """
        self._require_full("view")
        upto = self.rounds if through_round is None else min(
            through_round, self.rounds
        )
        history = []
        for rec in self.records[:upto]:
            history.append(
                (
                    rec.messages[pid],
                    rec.received[pid],
                    rec.cd_advice[pid],
                    rec.cm_advice[pid],
                )
            )
        return history


def indistinguishable(
    a: ExecutionResult,
    b: ExecutionResult,
    pid: ProcessId,
    through_round: int,
    pid_b: Optional[ProcessId] = None,
) -> bool:
    """Definition 12: is ``a`` indistinguishable from ``b`` w.r.t. ``pid``?

    Compares the observable view (messages sent, messages received,
    collision advice, contention advice) through ``through_round``.  Pass
    ``pid_b`` to compare process ``pid`` in ``a`` against a *different*
    index in ``b`` (used by the anonymous symmetry arguments of Lemma 20).
    """
    other = pid if pid_b is None else pid_b
    if a.initial_values is not None and b.initial_values is not None:
        if a.initial_values.get(pid) != b.initial_values.get(other):
            return False
    return a.view(pid, through_round) == b.view(other, through_round)
