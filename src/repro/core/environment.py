"""Environments and systems (Definitions 9-10) plus CST bookkeeping.

An *environment* bundles a process index set ``P``, a collision detector,
and a contention manager; a *system* pairs an environment with an
algorithm.  Operationally the environment also carries the two adversaries
(message loss and crashes) that resolve the model's remaining
nondeterminism — formally these are properties of a specific execution,
but fixing them up front is how every proof in the paper proceeds.

The *communication stabilization time* ``CST = max(r_cf, r_acc, r_wake)``
(Definition 20) is computed here from the components' declared
stabilization rounds; all round-complexity bounds in the paper are stated
relative to it.

This module also hosts the *array-kernel capability probe*
(:func:`array_kernel_module`): the single place the execution engine
asks whether the vectorised round kernel may run.  The probe delegates
to :mod:`repro.core.arrays` — numpy importable and ``REPRO_PURE_PYTHON``
unset — so the engine, the batched loss adversaries, and the array
detector advice all gate on one answer and an execution can never mix
backends mid-run.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from ..adversary.churn import ChurnAdversary, NoChurn
from ..adversary.crash import CrashAdversary, NoCrashes
from ..adversary.loss import LossAdversary, ReliableDelivery
from ..contention.manager import ContentionManager
from ..detectors.detector import CollisionDetector, ParametricCollisionDetector
from .arrays import numpy_or_none
from .errors import ConfigurationError
from .types import ProcessId


def array_kernel_module():
    """The numpy module the array round kernel runs on, or ``None``.

    ``None`` means the engine must take its pure-python reference path:
    numpy is not importable, or the operator forced the pure backend by
    exporting ``REPRO_PURE_PYTHON=1`` before the interpreter started.
    The two paths produce indistinguishable executions (asserted by the
    equivalence suite in ``tests/test_array_kernel.py``); only the
    throughput differs.
    """
    return numpy_or_none()


@dataclasses.dataclass
class Environment:
    """Definition 9: ``(P, CD, CM)`` plus this execution's adversaries."""

    indices: Tuple[ProcessId, ...]
    detector: CollisionDetector
    contention: ContentionManager
    loss: LossAdversary = dataclasses.field(default_factory=ReliableDelivery)
    crash: CrashAdversary = dataclasses.field(default_factory=NoCrashes)
    churn: ChurnAdversary = dataclasses.field(default_factory=NoChurn)

    def __post_init__(self) -> None:
        if not self.indices:
            raise ConfigurationError("an environment needs a non-empty P")
        if len(set(self.indices)) != len(self.indices):
            raise ConfigurationError("process indices must be distinct")
        self.indices = tuple(sorted(self.indices))

    @property
    def n(self) -> int:
        """``|P|`` — unknown to the processes, known to the experimenter."""
        return len(self.indices)

    def communication_stabilization_time(self) -> Optional[int]:
        """Definition 20: ``max(r_cf, r_acc, r_wake)`` when all are known.

        Returns ``None`` when any component makes no stabilization promise
        (e.g. NoCM-style managers promise nothing; always-accurate
        detectors count as ``r_acc = 1``).
        """
        r_cf = self.loss.r_cf
        r_wake = self.contention.stabilization_round
        r_acc = _detector_r_acc(self.detector)
        if r_cf is None or r_wake is None or r_acc is None:
            return None
        return max(r_cf, r_acc, r_wake)

    def reset(self) -> None:
        """Reset all stateful components for a fresh execution."""
        self.detector.reset()
        self.contention.reset()
        self.loss.reset()
        self.crash.reset()
        self.churn.reset()


def _detector_r_acc(detector: CollisionDetector) -> Optional[int]:
    """The round from which the detector is accurate, if it ever is."""
    if isinstance(detector, ParametricCollisionDetector):
        from ..detectors.properties import AccuracyMode

        if detector.accuracy is AccuracyMode.ALWAYS:
            return 1
        if detector.accuracy is AccuracyMode.EVENTUAL:
            return detector.r_acc
        return None
    r_acc = getattr(detector, "r_acc", None)
    return r_acc
