"""Consensus-property checking (Section 6).

Given a finished :class:`~repro.core.records.ExecutionResult` with initial
values attached, this module decides whether the execution *solved
consensus*:

* **agreement** — no two processes decided different values;
* **validity** — *strong*: every decision is some process's initial value;
  *uniform*: if all initial values coincide, only that value may be
  decided.  Lower bounds use uniform (weaker), upper bounds strong,
  mirroring the paper's "strongest possible results" convention;
* **termination** — every correct process decided (within the simulated
  horizon, optionally by a specific round bound).

Checks come in two flavours: predicates returning a structured
:class:`ConsensusReport`, and ``require_*`` helpers raising the precise
:class:`~repro.core.errors.ConsensusViolation` subclass, which tests use
to pinpoint what broke.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from .errors import (
    AgreementViolation,
    ConfigurationError,
    TerminationViolation,
    ValidityViolation,
)
from .records import ExecutionResult


@dataclasses.dataclass(frozen=True)
class ConsensusReport:
    """Outcome of checking one execution against Section 6's properties."""

    agreement: bool
    strong_validity: bool
    uniform_validity: bool
    termination: bool
    decided_values: Tuple
    decision_round: Optional[int]
    problems: Tuple[str, ...]

    @property
    def solved(self) -> bool:
        """Agreement + strong validity + termination, the paper's bar for
        upper bounds."""
        return self.agreement and self.strong_validity and self.termination

    @property
    def safe(self) -> bool:
        """Agreement + strong validity only — the properties that must hold
        under *any* adversary, even when liveness hypotheses fail."""
        return self.agreement and self.strong_validity


def check_agreement(result: ExecutionResult) -> bool:
    """No two processes decided different values (crashed ones included —
    a process that decided before crashing still binds the others)."""
    decided = set(result.decided_values().values())
    return len(decided) <= 1


def check_strong_validity(result: ExecutionResult) -> bool:
    """Every decided value is the initial value of some process."""
    if result.initial_values is None:
        raise ConfigurationError(
            "validity checking needs initial values on the result"
        )
    initials = set(result.initial_values.values())
    return all(v in initials for v in result.decided_values().values())


def check_uniform_validity(result: ExecutionResult) -> bool:
    """If all processes started with the same value ``v``, only ``v`` may
    be decided.  Vacuously true for mixed initial assignments."""
    if result.initial_values is None:
        raise ConfigurationError(
            "validity checking needs initial values on the result"
        )
    initials = set(result.initial_values.values())
    if len(initials) != 1:
        return True
    (only,) = initials
    return all(v == only for v in result.decided_values().values())


def check_termination(
    result: ExecutionResult, by_round: Optional[int] = None
) -> bool:
    """Every correct process decided; with ``by_round``, no later than it.

    Deliberately **not** vacuous: when every process crashed this returns
    False rather than declaring a run with zero correct processes
    terminated (mirroring ``ExecutionResult.all_correct_decided``; check
    ``result.no_correct_processes`` to distinguish the outcomes).
    """
    correct = result.correct_indices()
    if not correct:
        return False
    for pid in correct:
        decided_at = result.decision_rounds.get(pid)
        if decided_at is None:
            return False
        if by_round is not None and decided_at > by_round:
            return False
    return True


def evaluate(
    result: ExecutionResult, by_round: Optional[int] = None
) -> ConsensusReport:
    """Run all checks and collect a structured report."""
    problems: List[str] = []
    agreement = check_agreement(result)
    if not agreement:
        problems.append(
            f"agreement violated: decided {sorted(map(repr, set(result.decided_values().values())))}"
        )
    strong = check_strong_validity(result)
    if not strong:
        problems.append("strong validity violated: decided a non-initial value")
    uniform = check_uniform_validity(result)
    if not uniform:
        problems.append(
            "uniform validity violated: unanimous start, different decision"
        )
    termination = check_termination(result, by_round)
    if not termination:
        undecided = [
            pid
            for pid in result.correct_indices()
            if result.decision_rounds.get(pid) is None
        ]
        if result.no_correct_processes:
            problems.append(
                "termination violated: no correct processes (all crashed)"
            )
        elif undecided:
            problems.append(f"termination violated: {undecided} never decided")
        else:
            problems.append(
                f"termination bound {by_round} exceeded "
                f"(last decision at {result.last_decision_round()})"
            )
    return ConsensusReport(
        agreement=agreement,
        strong_validity=strong,
        uniform_validity=uniform,
        termination=termination,
        decided_values=tuple(sorted(
            set(result.decided_values().values()), key=repr
        )),
        decision_round=result.last_decision_round(),
        problems=tuple(problems),
    )


def require_agreement(result: ExecutionResult) -> None:
    """Raise :class:`AgreementViolation` unless agreement holds."""
    if not check_agreement(result):
        decided = {
            pid: v for pid, v in result.decided_values().items()
        }
        raise AgreementViolation(f"processes decided differently: {decided}")


def require_strong_validity(result: ExecutionResult) -> None:
    """Raise :class:`ValidityViolation` unless strong validity holds."""
    if not check_strong_validity(result):
        raise ValidityViolation(
            f"decision outside initial values: decided="
            f"{sorted(map(repr, set(result.decided_values().values())))}, "
            f"initials={sorted(map(repr, set(result.initial_values.values())))}"
        )


def require_uniform_validity(result: ExecutionResult) -> None:
    """Raise :class:`ValidityViolation` unless uniform validity holds."""
    if not check_uniform_validity(result):
        raise ValidityViolation(
            "unanimous initial value but a different value was decided"
        )


def require_termination(
    result: ExecutionResult, by_round: Optional[int] = None
) -> None:
    """Raise :class:`TerminationViolation` unless termination holds."""
    if not check_termination(result, by_round):
        raise TerminationViolation(
            f"termination failed within {result.rounds} rounds"
            + (f" (bound {by_round})" if by_round is not None else "")
        )


def require_solved(
    result: ExecutionResult, by_round: Optional[int] = None
) -> None:
    """Raise the first violated property, or return silently when solved."""
    require_agreement(result)
    require_strong_validity(result)
    require_termination(result, by_round)
