"""The formal model, executable (Sections 2-3 and 6 of the paper).

* :mod:`repro.core.multiset` — finite multisets (Section 2).
* :mod:`repro.core.types` — advice enums and aliases.
* :mod:`repro.core.process` / :mod:`repro.core.algorithm` — Definitions 1-3.
* :mod:`repro.core.environment` — Definitions 9-10 and CST (Definition 20).
* :mod:`repro.core.execution` — the round engine (Definition 11).
* :mod:`repro.core.records` — traces and indistinguishability (Defs 4-7, 12).
* :mod:`repro.core.consensus` — the consensus properties (Section 6).
"""

from .algorithm import Algorithm, ConsensusAlgorithm
from .consensus import (
    ConsensusReport,
    check_agreement,
    check_strong_validity,
    check_termination,
    check_uniform_validity,
    evaluate,
    require_agreement,
    require_solved,
    require_strong_validity,
    require_termination,
    require_uniform_validity,
)
from .environment import Environment
from .errors import (
    AgreementViolation,
    ConfigurationError,
    ConsensusViolation,
    ModelViolation,
    ReproError,
    TerminationViolation,
    ValidityViolation,
)
from .execution import ExecutionEngine, run_algorithm, run_consensus
from .multiset import Multiset, multiset_union
from .process import Process, ScriptedProcess, SilentProcess
from .records import (
    ExecutionResult,
    JsonlSink,
    RecordPolicy,
    RoundRecord,
    RoundSummary,
    SqliteSink,
    TransmissionEntry,
    indistinguishable,
)
from .types import (
    ACTIVE,
    COLLISION,
    NULL,
    PASSIVE,
    CollisionAdvice,
    ContentionAdvice,
    Message,
    ProcessId,
    Value,
)

__all__ = [
    "Multiset", "multiset_union",
    "ProcessId", "Message", "Value",
    "CollisionAdvice", "ContentionAdvice",
    "COLLISION", "NULL", "ACTIVE", "PASSIVE",
    "Process", "SilentProcess", "ScriptedProcess",
    "Algorithm", "ConsensusAlgorithm",
    "Environment",
    "ExecutionEngine", "run_algorithm", "run_consensus",
    "ExecutionResult", "RecordPolicy", "RoundRecord", "RoundSummary",
    "JsonlSink", "SqliteSink", "TransmissionEntry", "indistinguishable",
    "ConsensusReport", "evaluate",
    "check_agreement", "check_strong_validity", "check_uniform_validity",
    "check_termination",
    "require_agreement", "require_strong_validity",
    "require_uniform_validity", "require_termination", "require_solved",
    "ReproError", "ConfigurationError", "ModelViolation",
    "ConsensusViolation", "AgreementViolation", "ValidityViolation",
    "TerminationViolation",
]
