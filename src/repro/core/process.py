"""Process automata (Definition 1).

A process in the paper is an automaton with a message-generation function
``msg(state, cm_advice)`` and a transition function
``trans(state, received_multiset, cd_advice, cm_advice)``, plus a single
absorbing *fail* state used to model crash failures.

We express the automaton in object form: subclasses keep their state in
instance attributes and implement :meth:`Process.message` and
:meth:`Process.transition`.  The execution engine owns the fail state — a
crashed process is simply never stepped again — which is observationally
identical to the paper's ``fail_A`` (no messages, no state change, forever).

Decision bookkeeping (``decide(v)`` / ``halt()``) follows the paper's
convention of dedicated decide states: once :meth:`Process.decide` is called
the decision is latched and cannot change; a *halted* process broadcasts
nothing and ignores further input, but is still "correct" (halting is not a
crash).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

from .errors import ModelViolation
from .multiset import Multiset
from .types import CollisionAdvice, ContentionAdvice, Message, Value

_UNDECIDED = object()

#: process class -> may its ``transition_array`` stand in for per-process
#: ``transition`` calls?  See :func:`_trusted_transition_array`.
_TTA_TRUSTED: Dict[type, bool] = {}


def _trusted_transition_array(process_cls: type) -> bool:
    """May ``process_cls.transition_array`` answer for ``transition``?

    The same MRO-guard contract as the detector layer's
    ``_trusted_free_choice_array``: walking the MRO, the first class that
    defines either ``transition`` or ``transition_array`` decides, and it
    is trusted exactly when it defines the array form itself — so a
    subclass that overrides ``transition`` while inheriting an ancestor's
    ``transition_array`` is never silently bypassed.  A class that
    overrides ``_advance_round`` is untrusted too: the batch
    implementations advance the round counter inline.
    """
    cached = _TTA_TRUSTED.get(process_cls)
    if cached is None:
        cached = False
        for klass in process_cls.__mro__:
            owns_array = "transition_array" in klass.__dict__
            if owns_array or "transition" in klass.__dict__:
                cached = owns_array
                break
        if cached and (
            process_cls._advance_round is not Process._advance_round
        ):
            cached = False
        _TTA_TRUSTED[process_cls] = cached
    return cached


class Process(abc.ABC):
    """Base class for deterministic process automata.

    Subclasses must implement :meth:`message` and :meth:`transition` and
    must be deterministic: the model (Section 3.1) considers deterministic
    protocols only, and the lower-bound machinery replays executions under
    the assumption that identical advice sequences yield identical behavior.
    """

    def __init__(self) -> None:
        self._decision: object = _UNDECIDED
        self._decision_round: Optional[int] = None
        self._halted = False
        self._round = 0

    # ------------------------------------------------------------------
    # The automaton interface (msg_A and trans_A)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def message(self, cm_advice: ContentionAdvice) -> Optional[Message]:
        """Return the message to broadcast this round, or ``None``.

        This is the paper's ``msg_A(state, advice)``.  The contention
        manager's advice is a *hint*; the process is free to ignore it
        (and Algorithm 3 does).
        """

    @abc.abstractmethod
    def transition(
        self,
        received: Multiset,
        cd_advice: CollisionAdvice,
        cm_advice: ContentionAdvice,
    ) -> None:
        """Evolve local state at the end of a round.

        This is the paper's ``trans_A(state, received, cd, cm)``.
        ``received`` always contains the process's own message when it
        broadcast (Definition 11, constraint 5).
        """

    @classmethod
    def transition_array(
        cls,
        processes: Sequence["Process"],
        received: Sequence[Multiset],
        cd_advice: Sequence[CollisionAdvice],
        cm_advice: Sequence[ContentionAdvice],
    ) -> Optional[List[int]]:
        """Batched ``trans_A`` over position-aligned sequences.

        The engine's array round kernel calls this once per round — on
        the class every active process shares, and only when
        :func:`_trusted_transition_array` vouches for that class —
        instead of one :meth:`transition` plus one round advance per
        process.  All four arguments are aligned: ``processes[i]``
        transitions on ``(received[i], cd_advice[i], cm_advice[i])``.
        Implementations must also advance each process's round counter
        (the engine will not call ``_advance_round`` again) and return
        the positions of processes that *newly* decided during the call,
        in ascending order — or ``None`` when none did, so the common
        undecided round costs no list allocation.

        This default round-trips through per-process :meth:`transition`
        in sequence order — exactly the calls the scalar engine loop
        would make — so a process class opts *in* to vectorisation by
        overriding it; third-party classes keep working call-for-call.
        """
        decided: Optional[List[int]] = None
        for i, proc in enumerate(processes):
            already = proc._decision is not _UNDECIDED
            proc.transition(received[i], cd_advice[i], cm_advice[i])
            proc._advance_round()
            if not already and proc._decision is not _UNDECIDED:
                if decided is None:
                    decided = [i]
                else:
                    decided.append(i)
        return decided

    # ------------------------------------------------------------------
    # Decision bookkeeping
    # ------------------------------------------------------------------
    def decide(self, value: Value) -> None:
        """Latch a decision value (enter a decide state for ``value``).

        Deciding twice with different values is a programming error in an
        algorithm implementation and raises :class:`ModelViolation` so tests
        catch it immediately.
        """
        if self._decision is not _UNDECIDED and self._decision != value:
            raise ModelViolation(
                f"process attempted to re-decide: {self._decision!r} -> {value!r}"
            )
        if self._decision is _UNDECIDED:
            self._decision = value
            # decide() is called from within a round's transition, before
            # the engine advances the round counter, so the current round
            # is one past the completed count.
            self._decision_round = self._round + 1

    def halt(self) -> None:
        """Stop participating (no further broadcasts or transitions)."""
        self._halted = True

    # ------------------------------------------------------------------
    # Introspection used by the engine and by consensus checking
    # ------------------------------------------------------------------
    @property
    def decision(self) -> Optional[Value]:
        """The decided value, or ``None`` when undecided."""
        return None if self._decision is _UNDECIDED else self._decision

    @property
    def has_decided(self) -> bool:
        """True once :meth:`decide` has been called."""
        return self._decision is not _UNDECIDED

    @property
    def decision_round(self) -> Optional[int]:
        """1-based round in which the decision was made, or ``None``."""
        return self._decision_round

    @property
    def halted(self) -> bool:
        """True once :meth:`halt` has been called."""
        return self._halted

    @property
    def round(self) -> int:
        """The number of completed rounds for this process."""
        return self._round

    # ------------------------------------------------------------------
    # Engine hooks (internal)
    # ------------------------------------------------------------------
    def _advance_round(self) -> None:
        self._round += 1


class SilentProcess(Process):
    """A process that never broadcasts and never decides.

    Useful as a passive observer in tests and as a degenerate baseline.
    """

    def message(self, cm_advice: ContentionAdvice) -> Optional[Message]:
        return None

    def transition(
        self,
        received: Multiset,
        cd_advice: CollisionAdvice,
        cm_advice: ContentionAdvice,
    ) -> None:
        return None

    @classmethod
    def transition_array(
        cls, processes, received, cd_advice, cm_advice
    ) -> Optional[List[int]]:
        # Silent processes ignore their input entirely; a batch round is
        # just the round advances.
        for proc in processes:
            proc._round += 1
        return None


class ScriptedProcess(Process):
    """A process that broadcasts a fixed script of messages.

    Entry ``script[r-1]`` is broadcast in round ``r`` (``None`` = silent).
    After the script is exhausted the process stays silent.  Used heavily by
    engine and detector unit tests, where full algorithms would obscure the
    behaviour under test.
    """

    def __init__(self, script) -> None:
        super().__init__()
        self._script = list(script)
        self.observations = []

    def message(self, cm_advice: ContentionAdvice) -> Optional[Message]:
        if self._round < len(self._script):
            return self._script[self._round]
        return None

    def transition(
        self,
        received: Multiset,
        cd_advice: CollisionAdvice,
        cm_advice: ContentionAdvice,
    ) -> None:
        self.observations.append((received, cd_advice, cm_advice))

    @classmethod
    def transition_array(
        cls, processes, received, cd_advice, cm_advice
    ) -> Optional[List[int]]:
        # One zip loop instead of 2n method calls: scripted processes
        # only record what they saw and never decide.
        for proc, ms, cd, cm in zip(processes, received, cd_advice, cm_advice):
            proc.observations.append((ms, cd, cm))
            proc._round += 1
        return None
