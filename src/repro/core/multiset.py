"""Finite multisets (Section 2, Preliminaries).

The paper's communication model is stated in terms of finite multisets of
messages: a process's receive set for a round is a *sub-multiset* of the
multiset union of all messages broadcast in the round.  This module provides
a small, immutable multiset type with exactly the operations the paper uses:

* sub-multiset inclusion  (``M1 <= M2``),
* multiset union          (``M1 + M2``),
* cardinality             (``len(M)`` — the paper's ``|M|``),
* ``SET(M)``              (:meth:`Multiset.support`),
* ``MS(S)``               (:meth:`Multiset.from_set`).

The type is hashable and comparable so it can be used inside trace records
and test assertions.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, FrozenSet, Iterable, Iterator, Optional, Tuple


class Multiset:
    """An immutable finite multiset over hashable values.

    Instances are value objects: equality, hashing, and ordering of the
    underlying items follow the (value, multiplicity) pairs, independent of
    insertion order.
    """

    __slots__ = ("_counts", "_size", "_hash")

    def __init__(self, items: Iterable[Any] = ()) -> None:
        counts = Counter(items)
        # Normalise away zero counts so equality is canonical.
        self._counts: Dict[Any, int] = {v: n for v, n in counts.items() if n > 0}
        self._size = sum(self._counts.values())
        # Hashing is deferred: the engine's hot path builds one multiset
        # per (process, round) and most are never used as dict keys.
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_counts(cls, counts: Dict[Any, int]) -> "Multiset":
        """Build a multiset from a ``{value: multiplicity}`` mapping.

        Multiplicities must be non-negative ``int``s; zero counts are
        dropped, anything else (floats, bools, strings) is rejected.
        """
        clean: Dict[Any, int] = {}
        size = 0
        for value, n in counts.items():
            if isinstance(n, bool) or not isinstance(n, int):
                raise TypeError(
                    f"multiplicity for {value!r} must be an int, "
                    f"got {type(n).__name__}"
                )
            if n < 0:
                raise ValueError(f"negative multiplicity for {value!r}: {n}")
            if n:
                clean[value] = n
                size += n
        return cls._from_counts_unchecked(clean, size)

    @classmethod
    def _from_counts_unchecked(
        cls, counts: Dict[Any, int], size: int
    ) -> "Multiset":
        """Adopt ``counts`` without copying or validating.

        Internal fast constructor: callers guarantee strictly positive int
        multiplicities summing to ``size`` and relinquish ownership of the
        dict.  Used by the engine's hot path and the operator methods,
        where the invariants hold by construction.
        """
        ms = cls.__new__(cls)
        ms._counts = counts
        ms._size = size
        ms._hash = None
        return ms

    @classmethod
    def singleton_buckets(
        cls, value: Any, sizes: Iterable[int]
    ) -> Dict[int, "Multiset"]:
        """One ``{value: k}`` multiset per distinct ``k`` in ``sizes``.

        The engine's array round kernel resolves a single-message round
        into an int array of per-receiver keep counts; this builds the
        receive multisets for all of its distinct buckets in one pass
        (``k = 0`` maps to the empty multiset), so n receivers share at
        most ``|distinct counts|`` multiset constructions.  Callers
        guarantee non-negative int sizes — this is the bulk companion of
        :meth:`_from_counts_unchecked`, not a validating constructor.
        """
        return {
            k: cls._from_counts_unchecked({value: k} if k else {}, k)
            for k in sizes
        }

    @classmethod
    def from_code_row(
        cls, payloads: Iterable[Any], row: Iterable[int], size: int
    ) -> "Multiset":
        """One multiset from a row of per-code multiplicities.

        ``row[c]`` is the multiplicity of ``payloads[c]`` (an interned
        message table — see
        :class:`~repro.core.arrays.MessageInterner`); zero entries are
        skipped, so the multiset's counts dict holds only the payloads
        actually present.  ``size`` must equal ``sum(row)``.  The
        multi-message companion of :meth:`singleton_buckets`: the array
        kernel derives one kept-count row per receiver and builds each
        *distinct* row's multiset exactly once through this constructor.
        Like ``_from_counts_unchecked``, callers guarantee the
        invariants — this is a hot-path adoption constructor, not a
        validating one.
        """
        counts = {}
        for payload, n in zip(payloads, row):
            if n:
                counts[payload] = n
        return cls._from_counts_unchecked(counts, size)

    @classmethod
    def from_set(cls, values: Iterable[Any]) -> "Multiset":
        """The paper's ``MS(S)``: one instance of each element of ``S``."""
        return cls(set(values))

    @classmethod
    def empty(cls) -> "Multiset":
        """The empty multiset."""
        return _EMPTY

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def count(self, value: Any) -> int:
        """Multiplicity of ``value`` in this multiset (0 if absent)."""
        return self._counts.get(value, 0)

    def support(self) -> FrozenSet[Any]:
        """The paper's ``SET(M)``: the set of distinct values in ``M``."""
        return frozenset(self._counts)

    def counts(self) -> Dict[Any, int]:
        """A copy of the underlying ``{value: multiplicity}`` mapping."""
        return dict(self._counts)

    def items(self) -> Iterator[Tuple[Any, int]]:
        """Iterate over ``(value, multiplicity)`` pairs."""
        return iter(self._counts.items())

    def is_empty(self) -> bool:
        """True when ``|M| == 0``."""
        return self._size == 0

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Any]:
        for value, n in self._counts.items():
            for _ in range(n):
                yield value

    def __contains__(self, value: Any) -> bool:
        return value in self._counts

    def __le__(self, other: "Multiset") -> bool:
        """Sub-multiset inclusion: ``M1 ⊑ M2`` from Section 2."""
        if not isinstance(other, Multiset):
            return NotImplemented
        return all(n <= other.count(v) for v, n in self._counts.items())

    def __lt__(self, other: "Multiset") -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self <= other and self != other

    def __ge__(self, other: "Multiset") -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return other <= self

    def __gt__(self, other: "Multiset") -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return other < self

    def __add__(self, other: "Multiset") -> "Multiset":
        """Multiset union (the paper's ``M1 ∪ M2``, additive on counts)."""
        if not isinstance(other, Multiset):
            return NotImplemented
        merged = Counter(self._counts)
        merged.update(other._counts)
        return Multiset._from_counts_unchecked(
            dict(merged), self._size + other._size
        )

    def __sub__(self, other: "Multiset") -> "Multiset":
        """Multiset difference, truncating at zero."""
        if not isinstance(other, Multiset):
            return NotImplemented
        result = Counter(self._counts)
        result.subtract(other._counts)
        clean = {v: n for v, n in result.items() if n > 0}
        return Multiset._from_counts_unchecked(clean, sum(clean.values()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash(frozenset(self._counts.items()))
        return h

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{value!r}: {n}" for value, n in sorted(
                self._counts.items(), key=lambda kv: repr(kv[0])
            )
        )
        return f"Multiset({{{inner}}})"


_EMPTY = Multiset()


def multiset_union(multisets: Iterable[Multiset]) -> Multiset:
    """Union (additive) of an iterable of multisets."""
    merged: Counter = Counter()
    size = 0
    for ms in multisets:
        merged.update(ms._counts)
        size += ms._size
    return Multiset._from_counts_unchecked(dict(merged), size)
