"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Model-constraint violations (an execution or trace
that breaks one of the formal definitions from the paper) raise
:class:`ModelViolation`; consensus-property failures raise
:class:`ConsensusViolation` subclasses so tests and experiments can tell
*which* property broke.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An environment, adversary, or algorithm was mis-configured."""


class ModelViolation(ReproError):
    """An execution or trace violates a constraint of the formal model.

    Examples: a receive multiset that is not a sub-multiset of the broadcast
    multiset (Definition 11, constraint 4), a broadcaster that did not
    receive its own message (constraint 5), or collision-detector advice that
    violates the obligations of the detector's class (constraint 6).
    """


class ConsensusViolation(ReproError):
    """Base class for violations of the consensus properties (Section 6)."""


class AgreementViolation(ConsensusViolation):
    """Two processes decided different values."""


class ValidityViolation(ConsensusViolation):
    """A process decided a value that validity does not permit."""


class TerminationViolation(ConsensusViolation):
    """A correct process failed to decide within the required bound."""
