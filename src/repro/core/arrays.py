"""The gated-numpy capability probe shared by every vectorised fast path.

The reproduction runs everywhere Python runs: numpy is an *optional*
accelerator, never a dependency.  Every vectorised branch in the code
base — ``IIDLoss``/``CaptureEffectLoss`` whole-round resolution, the
engine's array round kernel, array detector advice — gates on the same
probe defined here, so "is the fast path active?" has exactly one
answer per process:

* numpy importable and ``REPRO_PURE_PYTHON`` unset (or ``0``/``false``)
  → the probe returns the numpy module and every fast path is eligible;
* numpy missing, or ``REPRO_PURE_PYTHON`` set to a truthy value in the
  environment *before the interpreter starts* → the probe returns
  ``None`` and every consumer runs its pure-python reference path.

The environment variable exists so the pure-python reference paths can
be exercised on machines that *do* have numpy installed (CI runs a
dedicated no-numpy leg, but a local ``REPRO_PURE_PYTHON=1 pytest`` run
reproduces it without a second virtualenv).  It is read once, at import
time, because half-switched processes are worse than either mode:
adversary streams seeded under one backend must never continue under
the other mid-execution.

Tests that need to flip backends at runtime monkeypatch the consumer's
module-level ``_np`` binding instead (the convention established by
``repro.adversary.loss``), which scopes the flip to one consumer and
one test.
"""

from __future__ import annotations

import os

try:  # Optional acceleration; the pure-python paths are the reference.
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy is present in dev/CI
    _numpy = None

#: Truthy spellings accepted for ``REPRO_PURE_PYTHON``.
_TRUTHY = ("1", "true", "yes", "on")

_FORCED_PURE = os.environ.get("REPRO_PURE_PYTHON", "").strip().lower() in _TRUTHY


def numpy_or_none():
    """The numpy module every fast path should use, or ``None``.

    ``None`` means "run the pure-python reference path": either numpy is
    not importable, or the operator exported ``REPRO_PURE_PYTHON=1``
    before starting the process.
    """
    if _FORCED_PURE:
        return None
    return _numpy
