"""The gated-numpy capability probe shared by every vectorised fast path.

The reproduction runs everywhere Python runs: numpy is an *optional*
accelerator, never a dependency.  Every vectorised branch in the code
base — ``IIDLoss``/``CaptureEffectLoss`` whole-round resolution, the
engine's array round kernel, array detector advice — gates on the same
probe defined here, so "is the fast path active?" has exactly one
answer per process:

* numpy importable and ``REPRO_PURE_PYTHON`` unset (or ``0``/``false``)
  → the probe returns the numpy module and every fast path is eligible;
* numpy missing, or ``REPRO_PURE_PYTHON`` set to a truthy value in the
  environment *before the interpreter starts* → the probe returns
  ``None`` and every consumer runs its pure-python reference path.

The environment variable exists so the pure-python reference paths can
be exercised on machines that *do* have numpy installed (CI runs a
dedicated no-numpy leg, but a local ``REPRO_PURE_PYTHON=1 pytest`` run
reproduces it without a second virtualenv).  It is read once, at import
time, because half-switched processes are worse than either mode:
adversary streams seeded under one backend must never continue under
the other mid-execution.

Tests that need to flip backends at runtime monkeypatch the consumer's
module-level ``_np`` binding instead (the convention established by
``repro.adversary.loss``), which scopes the flip to one consumer and
one test.
"""

from __future__ import annotations

import os

try:  # Optional acceleration; the pure-python paths are the reference.
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy is present in dev/CI
    _numpy = None

#: Truthy spellings accepted for ``REPRO_PURE_PYTHON``.
_TRUTHY = ("1", "true", "yes", "on")

_FORCED_PURE = os.environ.get("REPRO_PURE_PYTHON", "").strip().lower() in _TRUTHY


def numpy_or_none():
    """The numpy module every fast path should use, or ``None``.

    ``None`` means "run the pure-python reference path": either numpy is
    not importable, or the operator exported ``REPRO_PURE_PYTHON=1``
    before starting the process.
    """
    if _FORCED_PURE:
        return None
    return _numpy


class MessageInterner:
    """Per-execution payload -> small int code table.

    The array round kernel cannot put arbitrary hashable message
    payloads into int arrays, so it interns them: the first time a
    payload is seen it is assigned the next code, and the code stays
    stable for the rest of the execution.  ``payloads[code]`` recovers
    the payload.  Codes are dense (0..size-1), so a round's message
    histogram is one ``bincount`` over the senders' code array and a
    receiver's surviving multiset is one row of a (receivers x codes)
    count matrix.

    Payloads must be hashable — the same requirement :class:`Multiset`
    already imposes — and the table is append-only: an execution never
    un-interns, so codes from earlier rounds remain valid.
    """

    __slots__ = ("_codes", "payloads")

    def __init__(self) -> None:
        self._codes: dict = {}
        #: Code -> payload, in interning order (``payloads[c]`` is the
        #: payload assigned code ``c``).
        self.payloads: list = []

    def __len__(self) -> int:
        return len(self.payloads)

    def code(self, payload) -> int:
        """The (stable) code for ``payload``, interning it if new."""
        c = self._codes.get(payload)
        if c is None:
            c = self._codes[payload] = len(self.payloads)
            self.payloads.append(payload)
        return c

    def codes(self, payloads) -> list:
        """Bulk :meth:`code`: one int per element of ``payloads``."""
        get = self._codes.get
        table = self._codes
        pool = self.payloads
        out = []
        append = out.append
        for p in payloads:
            c = get(p)
            if c is None:
                c = table[p] = len(pool)
                pool.append(p)
            append(c)
        return out
