"""Algorithms: mappings from process indices to processes (Definitions 2-3).

An *algorithm* assigns an automaton to every index in the universe ``I``.
An algorithm is *anonymous* when every index maps to the same automaton —
i.e. the process code cannot depend on the index at all.

For consensus we also need to thread an *initial value* into each process
(the paper models this as one start state per value).  A
:class:`ConsensusAlgorithm` therefore wraps a factory
``(index, initial_value) -> Process``; anonymous consensus algorithms ignore
the index argument.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence

from .errors import ConfigurationError
from .process import Process
from .types import ProcessId, Value


class Algorithm:
    """A plain algorithm: ``index -> Process`` factory (Definition 2)."""

    def __init__(
        self,
        factory: Callable[[ProcessId], Process],
        anonymous: bool,
        name: str = "algorithm",
    ) -> None:
        self._factory = factory
        self._anonymous = anonymous
        self.name = name

    @classmethod
    def anonymous(
        cls, factory: Callable[[], Process], name: str = "anonymous"
    ) -> "Algorithm":
        """Build an anonymous algorithm from an index-free factory."""
        return cls(lambda _i: factory(), anonymous=True, name=name)

    @classmethod
    def indexed(
        cls, factory: Callable[[ProcessId], Process], name: str = "indexed"
    ) -> "Algorithm":
        """Build a (potentially) non-anonymous algorithm."""
        return cls(factory, anonymous=False, name=name)

    @property
    def is_anonymous(self) -> bool:
        """Definition 3: the same automaton at every index."""
        return self._anonymous

    def spawn(self, index: ProcessId) -> Process:
        """Instantiate the automaton for ``index``."""
        return self._factory(index)

    def spawn_all(self, indices: Sequence[ProcessId]) -> Dict[ProcessId, Process]:
        """Instantiate one process per index."""
        return {i: self.spawn(i) for i in indices}


class ConsensusAlgorithm:
    """A consensus algorithm parameterised by initial values (V-start).

    The factory receives ``(index, initial_value)`` and must return a fresh
    :class:`Process`.  Anonymous factories must not inspect the index; we
    cannot verify that statically, but the lower-bound machinery in
    :mod:`repro.lowerbounds` exercises it dynamically (Lemma 20's symmetry
    argument fails loudly for a purportedly anonymous algorithm that peeks).
    """

    def __init__(
        self,
        factory: Callable[[ProcessId, Value], Process],
        anonymous: bool,
        name: str = "consensus",
    ) -> None:
        self._factory = factory
        self._anonymous = anonymous
        self.name = name

    @classmethod
    def anonymous(
        cls, factory: Callable[[Value], Process], name: str = "anonymous-consensus"
    ) -> "ConsensusAlgorithm":
        """Anonymous consensus algorithm: factory sees only the value."""
        return cls(lambda _i, v: factory(v), anonymous=True, name=name)

    @classmethod
    def indexed(
        cls,
        factory: Callable[[ProcessId, Value], Process],
        name: str = "non-anonymous-consensus",
    ) -> "ConsensusAlgorithm":
        """Non-anonymous consensus algorithm: factory sees index and value."""
        return cls(factory, anonymous=False, name=name)

    @property
    def is_anonymous(self) -> bool:
        return self._anonymous

    def spawn(self, index: ProcessId, initial_value: Value) -> Process:
        """Instantiate the automaton for ``index`` with ``initial_value``."""
        return self._factory(index, initial_value)

    def instantiate(
        self, assignment: Mapping[ProcessId, Value]
    ) -> Dict[ProcessId, Process]:
        """Instantiate processes for a full initial-value assignment."""
        if not assignment:
            raise ConfigurationError("initial-value assignment must be non-empty")
        return {i: self.spawn(i, v) for i, v in assignment.items()}

    def with_fixed_values(
        self, assignment: Mapping[ProcessId, Value]
    ) -> Algorithm:
        """View this consensus algorithm as a plain :class:`Algorithm`.

        The returned algorithm bakes in the given initial-value assignment,
        which is how the paper treats "the collection of initial states"
        (Section 6, footnote on input values).
        """
        frozen = dict(assignment)

        def factory(index: ProcessId) -> Process:
            if index not in frozen:
                raise ConfigurationError(
                    f"no initial value assigned for process index {index}"
                )
            return self.spawn(index, frozen[index])

        return Algorithm(factory, anonymous=False, name=f"{self.name}[fixed]")
