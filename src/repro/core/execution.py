"""The synchronous round engine (Definition 11, executable).

One engine round performs, in order:

0. the churn adversary's membership events apply (joins re-enter the
   live set with fresh state immediately; leaves commit at the end of
   the round) — static-membership runs skip this entirely;
1. the crash adversary picks this round's crash events;
2. the contention manager issues ``active``/``passive`` advice for every
   index (crashed processes get advice too — the CM trace is defined over
   all of ``P`` — they just never act on it);
3. every live, non-halted process produces its message via ``msg_A``
   (processes crashing *after send* still broadcast; *before send* they
   are silent — both timings are legal resolutions of constraint 2);
4. the loss adversary resolves the whole round's losses in one batched
   ``losses_for_round`` call (receiver -> dropped senders; the base class
   falls back to per-receiver ``losses`` for third-party adversaries);
   self-delivery is unconditional (constraint 5).  Receivers aliased to
   the same drop-set object share one surviving-multiset computation,
   and normalized (``ResolvedRoundLosses``) mappings skip per-element
   sender/self filtering — see :mod:`repro.adversary.loss` for the
   batched contract;
5. the collision detector, seeing only the counts ``(c, T)`` exactly as
   Definition 6 prescribes, issues per-process advice;
6. surviving processes transition on ``(N_r[i], D_r[i], W_r[i])``;
7. the round is recorded according to the engine's
   :class:`~repro.core.records.RecordPolicy`.

The engine validates constraints 4 and 5 as it goes and raises
:class:`~repro.core.errors.ModelViolation` on any breach, so a buggy
adversary cannot silently produce an illegal execution.

The array round kernel
----------------------

Steps (4)-(6) have a vectorised fast path, gated on
:func:`~repro.core.environment.array_kernel_module` (numpy present,
``REPRO_PURE_PYTHON`` unset) and the engine's ``use_array_kernel``
knob.  When a batched adversary resolves the round as an
:class:`~repro.adversary.loss.ArrayRoundLosses` — per-receiver drop
counts as an int array, drop sets lazy — the kernel derives every
receive count with one array subtraction, validates drop budgets
against a sender-membership array, and hands the detector the counts
*array* through the ``advise_array`` hook (whose default round-trips
through dict ``advise``, so third-party detectors keep working).

Receive multisets are shared, never rebuilt per receiver: a
single-message round shares one multiset per distinct keep count
(never touching the drop sets at all), and a *multi-message* round —
distinct payloads in flight — goes through the message interning
table (:class:`~repro.core.arrays.MessageInterner` maps payloads to
small int codes per execution): the adversary's dropped (receiver,
sender) position pairs (``ArrayRoundLosses.drop_pairs``) turn into a
(receivers x codes) kept-count matrix via ``bincount``, and each
*distinct* row materialises exactly one multiset
(:meth:`~repro.core.multiset.Multiset.from_code_row`).  Adversaries
that provide counts but no pairs fall back to per-receiver decrement
loops over their materialised drop sets.

Transitions batch too: when every active process shares one class
whose ``transition_array`` is trusted (the same MRO-guard +
dict-fallback contract as ``advise_array`` — see
:func:`~repro.core.process._trusted_transition_array`), the round's
transitions are one batched call over position-aligned lists instead
of per-process ``transition``/``_advance_round`` call pairs.
Heterogeneous fleets and third-party process classes keep the
per-process loop, call-for-call.

The pure-python path remains the reference: both paths produce
indistinguishable executions under every record policy, including
crash and halting rounds (``tests/test_array_kernel.py``).  Rounds
with a pending churn *event* (a leave or join firing this round) take
the scalar reference path (the *fallback gate*): the scalar loop
treats ``ArrayRoundLosses`` as a normalized mapping, so no adversary
randomness is disturbed and kernel-on vs kernel-off byte-identity
extends to churned executions.  Event-free rounds — including rounds
where pids are merely *absent* after an earlier leave — ride the
kernel: the loss adversary is consulted over the full index set on
both paths, so absence only gates the per-process bookkeeping, not the
randomness (``tests/test_churn.py`` asserts the gate via the engine's
``kernel_rounds`` counter).

Record policies
---------------

The engine runs the *same* execution under every policy — seeded
adversaries consume randomness identically, so decisions and decision
rounds match round for round — but retains different amounts of it:

* ``RecordPolicy.FULL`` (default) keeps every :class:`RoundRecord`; this
  is what the trace validators and lower-bound replays need.
* ``RecordPolicy.SUMMARY`` keeps one :class:`RoundSummary` per round and
  skips building receive multisets for processes that will not transition
  (crashed or halted ones), cutting both memory and time.
* ``RecordPolicy.NONE`` retains nothing per round — the fastest mode,
  built for the high-volume sweeps the experiment harness fans out.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..adversary.churn import NoChurn
from ..adversary.loss import ArrayRoundLosses, ResolvedRoundLosses
from ..core.errors import ConfigurationError, ModelViolation
from .algorithm import Algorithm, ConsensusAlgorithm
from .arrays import MessageInterner
from .environment import Environment, array_kernel_module
from .multiset import Multiset
from .process import Process, _UNDECIDED, _trusted_transition_array
from .records import ExecutionResult, RecordPolicy, RoundRecord, RoundSummary
from .types import CollisionAdvice, ContentionAdvice, Message, ProcessId, Value

#: What one ``step()`` returns: a full record, or a summary in the
#: streaming modes.
RoundArtifact = Union[RoundRecord, RoundSummary]

#: Optional per-round observer, called after each round with that round's
#: artifact (a ``RoundRecord`` under FULL, a ``RoundSummary`` otherwise).
RoundObserver = Callable[[RoundArtifact], None]

#: Shared empty leave set for churn-free rounds (never mutated).
_NO_LEAVES: frozenset = frozenset()


class ExecutionEngine:
    """Runs one execution of a system, producing an :class:`ExecutionResult`.

    The engine owns the fail state: a crashed process is never stepped
    again, which is observationally identical to the paper's absorbing
    ``fail_A``.

    ``record_policy`` selects how much per-round state is retained; see
    the module docstring.  The executed rounds are identical across
    policies for the same seeded environment.

    ``use_array_kernel`` gates the vectorised round kernel (steps 4-5 on
    int arrays, array detector advice): ``None`` (default) enables it
    exactly when :func:`~repro.core.environment.array_kernel_module`
    finds numpy; ``False`` forces the pure-python reference path;
    ``True`` insists on the kernel and raises
    :class:`~repro.core.errors.ConfigurationError` when numpy is
    unavailable rather than silently running the slow path.  The two
    paths produce indistinguishable executions under every record
    policy (the ``tests/test_array_kernel.py`` equivalence suite).
    """

    def __init__(
        self,
        environment: Environment,
        processes: Mapping[ProcessId, Process],
        initial_values: Optional[Mapping[ProcessId, Value]] = None,
        record_policy: RecordPolicy = RecordPolicy.FULL,
        use_array_kernel: Optional[bool] = None,
        process_factory: Optional[Callable[[ProcessId], Process]] = None,
    ) -> None:
        if set(processes) != set(environment.indices):
            raise ConfigurationError(
                "process map must cover exactly the environment's indices"
            )
        self.environment = environment
        self.processes = dict(processes)
        self.initial_values = dict(initial_values) if initial_values else None
        self.record_policy = record_policy
        self._records: List[RoundRecord] = []
        self._summaries: List[RoundSummary] = []
        self._crashed: Dict[ProcessId, int] = {}
        self._round = 0
        # Cached live-index list and set, updated only when crashes
        # commit; the hot path must not rebuild them every round.  The
        # set backs C-speed keys-view completeness checks on advice maps.
        self._live: List[ProcessId] = list(environment.indices)
        self._live_set: frozenset = frozenset(environment.indices)
        self._indices_set: frozenset = frozenset(environment.indices)
        np_mod = array_kernel_module()
        if use_array_kernel is None:
            self._np = np_mod
        elif use_array_kernel:
            if np_mod is None:
                raise ConfigurationError(
                    "use_array_kernel=True requires numpy (and "
                    "REPRO_PURE_PYTHON unset); install numpy or pass "
                    "use_array_kernel=None for automatic gating"
                )
            self._np = np_mod
        else:
            self._np = None
        # pid -> position in the index tuple; the array kernel's advice
        # list and counts array are aligned to this ordering.
        self._pid_pos: Dict[ProcessId, int] = {
            pid: k for k, pid in enumerate(environment.indices)
        }
        # Message interning table for multi-message kernel rounds
        # (payload -> small int code, stable per execution); created on
        # first use so single-message workloads never pay for it.
        self._interner: Optional[MessageInterner] = None
        # Singleton-round multiset buckets, shared across rounds:
        # message payload -> {keep count -> Multiset}.  Multisets are
        # immutable, so an execution-wide cache is safe and the common
        # single-payload round reuses every previously built bucket.
        self._ms_buckets: Dict[Optional[Message], Dict[int, Multiset]] = {}
        # Contention-advice list cache for batched transitions, keyed by
        # the advice dict's identity: managers that return a stable,
        # unmutated dict (NoContentionManager) pay the index-aligned
        # list build once instead of every round.
        self._cm_list_key: Optional[dict] = None
        self._cm_list: Optional[list] = None
        # Batched-transition cache: the index-aligned process list and
        # the one class every process shares when its
        # ``transition_array`` is trusted (else None -> per-pid loop).
        # Invalidated whenever a process instance is replaced (churn
        # rejoin) and rebuilt lazily on the next kernel round.
        self._procs_list: Optional[List[Process]] = None
        self._batch_cls: Optional[type] = None
        # -- dynamic membership (the churn extension) -------------------
        # ``_departed`` maps pid -> round it left (0 = absent from round
        # 1); rejoining clears the entry and, for pids that already
        # participated, replaces the process instance via
        # ``process_factory`` so re-entry is with fresh state.  All of
        # it stays empty under NoChurn, which the hot path checks once.
        self._process_factory = process_factory
        churn = getattr(environment, "churn", None)
        self._has_churn = churn is not None and type(churn) is not NoChurn
        self._departed: Dict[ProcessId, int] = {}
        self._rejoins: Dict[ProcessId, int] = {}
        self._departed_decisions: List[Tuple[ProcessId, Value, int]] = []
        #: Rounds this execution resolved through the array kernel.  The
        #: churn fallback gate is asserted against this: only rounds
        #: with a pending membership *event* (a leave or join firing)
        #: take the scalar reference path; event-free rounds — absent
        #: pids included — ride the kernel.
        self.kernel_rounds: int = 0
        if self._has_churn:
            absent = frozenset(churn.initially_absent(environment.indices))
            if not absent <= self._indices_set:
                unknown = sorted(absent - self._indices_set, key=repr)
                raise ConfigurationError(
                    f"initially_absent names pids outside the "
                    f"environment's indices: {unknown}"
                )
            if absent:
                for pid in absent:
                    self._departed[pid] = 0
                self._live = [i for i in self._live if i not in absent]
                self._live_set = self._live_set - absent

    # ------------------------------------------------------------------
    @property
    def round(self) -> int:
        """Number of completed rounds."""
        return self._round

    def live_indices(self) -> List[ProcessId]:
        """Indices currently in the system: not crashed, not departed.

        Under a churn adversary this is a *dynamic* set — it shrinks on
        leaves and grows again on (re)joins, always in index order.
        """
        return list(self._live)

    # ------------------------------------------------------------------
    def step(self) -> RoundArtifact:
        """Execute one synchronous round and return its artifact."""
        env = self.environment
        indices = env.indices
        crashed = self._crashed
        self._round += 1
        r = self._round
        full = self.record_policy is RecordPolicy.FULL

        # (0) Churn: membership events apply before crashes and loss
        # resolution.  Joins take effect at the start of the round (the
        # pid re-enters ``live`` with fresh state before the contention
        # manager or crash adversary look at it); leaves are collected
        # now and committed at the end of the round, with ``after_send``
        # deciding whether the final broadcast goes out — the same two
        # legal timings as crashes.  Only rounds with a *pending event*
        # (a leave or join firing now) take the scalar reference path
        # below; rounds where pids are merely absent after an earlier
        # leave ride the kernel — the loss adversary sees the full index
        # set on both paths, so absence never shifts its randomness.
        leave_after_send: frozenset = _NO_LEAVES
        leave_before_send: frozenset = _NO_LEAVES
        event_round = False
        if self._has_churn:
            leave_after_send, leave_before_send, event_round = (
                self._apply_churn(r)
            )
        departed = self._departed

        # (1) Crashes for this round.
        live_before = self._live
        events = env.crash.crashes(r, live_before)
        crash_after_send = set()
        crash_before_send = set()
        for ev in events:
            if ev.pid in crashed:
                continue
            if ev.after_send:
                crash_after_send.add(ev.pid)
            else:
                crash_before_send.add(ev.pid)

        # (2) Contention advice.  The formal CM trace covers all of P, but
        # a practical manager schedules among nodes it can still hear, so
        # the engine consults it over the live set and pads crashed
        # processes with PASSIVE (their advice is never acted on).
        cm_advice = env.contention.advise(r, live_before)
        if full or crashed or departed:
            # Copy before padding: FULL mode retains the map in the round
            # record, and crashed/departed processes need PASSIVE filler
            # — never mutate the manager's own dict.  The streaming
            # no-crash path uses the manager's map as-is.
            cm_advice = dict(cm_advice)
        if not self._live_set <= cm_advice.keys():
            missing = self._live_set - cm_advice.keys()
            raise ModelViolation(
                f"contention manager omitted advice for {sorted(missing)}"
            )
        for pid in crashed:
            if pid not in cm_advice:
                cm_advice[pid] = ContentionAdvice.PASSIVE
        for pid in departed:
            if pid not in cm_advice:
                cm_advice[pid] = ContentionAdvice.PASSIVE

        # (3) Message generation.  ``inactive`` collects every process that
        # will not transition this round (already crashed, crashing now,
        # or halted) so the receive loop can decide multiset need with a
        # single membership test.
        processes = self.processes
        messages: Dict[ProcessId, Optional[Message]] = {}
        senders: List[ProcessId] = []
        base_counts: Dict[Message, int] = {}
        base_get = base_counts.get
        inactive = set(crash_after_send)
        if leave_after_send:
            # Broadcast-then-depart: the message goes out but the
            # process never transitions this round.
            inactive |= leave_after_send
        halted_live: List[ProcessId] = []
        if (not crashed and not crash_before_send and not crash_after_send
                and not departed and not event_round):
            # Crash- and churn-free round (the overwhelmingly common
            # case): no per-index membership tests.
            for pid in indices:
                proc = processes[pid]
                if proc._halted:
                    messages[pid] = None
                    inactive.add(pid)
                    halted_live.append(pid)
                    continue
                m = proc.message(cm_advice[pid])
                messages[pid] = m
                if m is not None:
                    senders.append(pid)
                    base_counts[m] = base_get(m, 0) + 1
        else:
            for pid in indices:
                if (pid in crashed or pid in crash_before_send
                        or pid in departed or pid in leave_before_send):
                    messages[pid] = None
                    inactive.add(pid)
                    continue
                proc = processes[pid]
                if proc._halted:
                    messages[pid] = None
                    inactive.add(pid)
                    if (pid not in crash_after_send
                            and pid not in leave_after_send):
                        halted_live.append(pid)
                    continue
                m = proc.message(cm_advice[pid])
                messages[pid] = m
                if m is not None:
                    senders.append(pid)
                    base_counts[m] = base_get(m, 0) + 1

        # (4) Loss resolution and receive multisets.  One batched
        # ``losses_for_round`` call resolves the whole round (the base
        # class falls back to per-receiver ``losses`` for third-party
        # adversaries).  The round's full broadcast multiset is built
        # once; loss-free receivers share it outright (Multiset is
        # immutable, so sharing is safe).  Receivers mapped to the *same*
        # drop-set object (shared-set aliasing, e.g. SilenceLoss) have
        # their surviving multiset computed once and reused, with
        # self-delivery restored per receiver.  Normalized mappings
        # (``ResolvedRoundLosses``: drop sets already exclude the
        # receiver and contain only senders) skip per-element filtering
        # entirely — ``len(lost)`` is the loss count — and any breach of
        # that promise (a receiver dropping its own message, a non-sender
        # in a drop set) raises ModelViolation.  The fast path skips
        # multiset construction for processes that will not transition —
        # the detector only ever needs the counts (Definition 6).
        lost_map = env.loss.losses_for_round(r, senders, indices)
        np_mod = self._np
        lm_type = type(lost_map)
        normalized = (
            lm_type is ResolvedRoundLosses or lm_type is ArrayRoundLosses
        )
        counts: Dict[ProcessId, int] = {}
        received: Dict[ProcessId, Multiset] = {}
        total = len(senders)
        full_round_ms = Multiset._from_counts_unchecked(base_counts, total)
        single = len(base_counts) == 1
        if single:
            (only_message,) = base_counts
        always_multiset = full or not inactive
        counts_arr = None
        received_list: Optional[list] = None
        if (np_mod is not None and lm_type is ArrayRoundLosses
                and not event_round):
            # Array fast path (never on churn *event* rounds: a firing
            # leave or join takes the scalar reference path below, which
            # already treats ``ArrayRoundLosses`` as a normalized
            # mapping, so the adversary's RNG stream — and the
            # execution — stay byte-identical across the gate): the
            # adversary delivered per-receiver drop
            # counts as an int array, so receive counts are one
            # vectorised subtraction and the drop *sets* are only
            # materialised when distinct message payloads force
            # per-receiver multiset decrements — and even then only for
            # adversaries that provide no dropped-pair arrays.
            # Validation stays whole-
            # array too: every count must fit inside the receiver's
            # droppable budget (the sender membership array realises the
            # self-delivery exemption of constraint 5).
            receivers_t = lost_map.receivers
            if receivers_t is not indices and tuple(receivers_t) != indices:
                missing = sorted(
                    set(indices) - set(receivers_t), key=repr
                )
                raise ModelViolation(
                    f"loss adversary omitted receiver "
                    f"{missing[0] if missing else receivers_t!r} from its "
                    "round resolution"
                )
            drop = lost_map.drop_counts
            if total == len(indices):
                # Everyone broadcast, so every budget is ``total - 1``
                # and the sender-membership array is a constant — skip
                # building it.
                own = None
                bad = (drop < 0) | (drop > total - 1)
            else:
                own = np_mod.zeros(len(indices), dtype=bool)
                if senders:
                    pid_pos = self._pid_pos
                    own[[pid_pos[s] for s in senders]] = True
                bad = (drop < 0) | (drop > (total - own))
            if bad.any():
                k = int(bad.argmax())
                budget = total - (1 if own is None else int(own[k]))
                raise ModelViolation(
                    f"array loss resolution claims {int(drop[k])} drops "
                    f"at {indices[k]}, outside its droppable budget of "
                    f"{budget}"
                )
            counts_arr = total - drop
            counts_list = counts_arr.tolist()
            # Receive multisets live in a list aligned with the index
            # tuple (the ``received`` dict is only materialised for FULL
            # records).  Single-message rounds share one multiset per
            # distinct keep count; the lossless bucket shares the
            # round's full multiset outright.
            if single or total == 0:
                # The buckets persist across rounds (multisets are
                # immutable, so sharing is safe execution-wide): in the
                # steady state every keep count has been seen before and
                # the round is one C-level map over the cache.
                key = only_message if total else None
                buckets = self._ms_buckets.get(key)
                if buckets is None:
                    buckets = self._ms_buckets[key] = {}
                try:
                    received_list = list(
                        map(buckets.__getitem__, counts_list)
                    )
                except KeyError:
                    buckets.update(Multiset.singleton_buckets(
                        key, set(counts_list) - buckets.keys()
                    ))
                    buckets[total] = full_round_ms
                    received_list = list(
                        map(buckets.__getitem__, counts_list)
                    )
            else:
                # Multi-message round.  With dropped (receiver, sender)
                # position pairs available, interned message codes turn
                # the whole round into one (receivers x codes)
                # kept-count matrix — one bincount for the drops, one
                # subtraction — and each *distinct* row builds exactly
                # one multiset.  Sharing rows is exact because multiset
                # equality is counts-based, insertion-order-free.
                pairs = lost_map.drop_pairs()
                if pairs is not None:
                    interner = self._interner
                    if interner is None:
                        interner = self._interner = MessageInterner()
                    codes = interner.codes(messages[s] for s in senders)
                    width = len(interner.payloads)
                    codes_arr = np_mod.asarray(codes, dtype=np_mod.int64)
                    rows, cols = pairs
                    drop2d = np_mod.bincount(
                        rows * width + codes_arr[cols],
                        minlength=len(indices) * width,
                    ).reshape(len(indices), width)
                    kept2d = np_mod.bincount(
                        codes_arr, minlength=width
                    ) - drop2d
                    if not np_mod.array_equal(
                        kept2d.sum(axis=1), counts_arr
                    ):
                        raise ModelViolation(
                            "array loss resolution's drop pairs disagree "
                            "with its drop counts"
                        )
                    payloads = interner.payloads
                    rows_list = kept2d.tolist()
                    row_cache: Dict[tuple, Multiset] = {}
                    received_list = []
                    for k, pid in enumerate(indices):
                        if not always_multiset and pid in inactive:
                            received_list.append(None)
                            continue
                        kept = counts_list[k]
                        if kept == total:
                            received_list.append(full_round_ms)
                            continue
                        row = rows_list[k]
                        key = tuple(row)
                        ms = row_cache.get(key)
                        if ms is None:
                            ms = row_cache[key] = Multiset.from_code_row(
                                payloads, row, kept
                            )
                        received_list.append(ms)
                else:
                    # No pairs representation (a third-party
                    # ArrayRoundLosses): decrement per receiver from the
                    # materialised drop sets — still counts-gated, so
                    # loss-free receivers share the round multiset.
                    received_list = []
                    for k, pid in enumerate(indices):
                        if not always_multiset and pid in inactive:
                            received_list.append(None)
                            continue
                        kept = counts_list[k]
                        if kept == total:
                            received_list.append(full_round_ms)
                            continue
                        cnt = dict(base_counts)
                        for s in lost_map[pid]:
                            m = messages[s]
                            left = cnt[m] - 1
                            if left:
                                cnt[m] = left
                            else:
                                del cnt[m]
                        received_list.append(
                            Multiset._from_counts_unchecked(cnt, kept)
                        )
            if full:
                received = dict(zip(indices, received_list))
            counts = None  # type: ignore[assignment]
            self.kernel_rounds += 1
        if counts is not None:
            self._resolve_losses_scalar(
                lost_map, normalized, counts, received, base_counts,
                senders, messages, inactive, total, full_round_ms,
                single, only_message if single else None, always_multiset,
            )

        # (5) Collision-detector advice from counts only.  Kernel rounds
        # hand the detector the counts *array* through the
        # ``advise_array`` hook (whose default round-trips through dict
        # ``advise``, so third-party detectors keep working); rounds
        # that resolved through the scalar loop keep the dict path — its
        # per-distinct-t memoisation already beats an array detour for
        # the shared-drop-set adversaries that take it.  The defensive
        # copy is only needed when the map outlives the round (FULL
        # retains it in the record).
        if counts_arr is not None:
            advice_list = env.detector.advise_array(
                r, total, counts_arr, indices
            )
            cd_advice = dict(zip(indices, advice_list)) if full else None
        else:
            advice_list = None
            cd_advice = env.detector.advise(r, total, counts)
            if full:
                cd_advice = dict(cd_advice)
            if not self._indices_set <= cd_advice.keys():
                missing = self._indices_set - cd_advice.keys()
                raise ModelViolation(
                    f"collision detector omitted advice for {sorted(missing)}"
                )

        # (6) Transitions for surviving processes.  Halted-but-live
        # processes only advance their round counter; ``inactive`` holds
        # exactly the halted and the (newly or previously) crashed.
        decided_during: Dict[ProcessId, Value] = {}
        for pid in halted_live:
            processes[pid]._advance_round()
        if advice_list is not None:
            # Kernel rounds only: advice and multisets live in lists
            # aligned with the index tuple, so transitions never pay
            # per-pid dict lookups (``received_list`` is always set on
            # the path that set ``advice_list``).  When every active
            # process shares one trusted class, the whole round is one
            # ``transition_array`` call; otherwise the per-pid loop is
            # the byte-identical fallback.
            procs_list = self._procs_list
            if procs_list is None:
                procs_list = self._refresh_batch_cache()
            batch_cls = self._batch_cls
            if batch_cls is not None:
                if inactive:
                    ks = [
                        k for k, pid in enumerate(indices)
                        if pid not in inactive
                    ]
                    newly = batch_cls.transition_array(
                        [procs_list[k] for k in ks],
                        [received_list[k] for k in ks],
                        [advice_list[k] for k in ks],
                        [cm_advice[indices[k]] for k in ks],
                    )
                    if newly:
                        for i in newly:
                            pid = indices[ks[i]]
                            decided_during[pid] = processes[pid]._decision
                else:
                    if self._cm_list_key is cm_advice:
                        cm_list = self._cm_list
                    else:
                        cm_list = list(
                            map(cm_advice.__getitem__, indices)
                        )
                        self._cm_list_key = cm_advice
                        self._cm_list = cm_list
                    newly = batch_cls.transition_array(
                        procs_list, received_list, advice_list, cm_list,
                    )
                    if newly:
                        for i in newly:
                            pid = indices[i]
                            decided_during[pid] = processes[pid]._decision
            else:
                for k, pid in enumerate(indices):
                    if inactive and pid in inactive:
                        continue
                    proc = processes[pid]
                    already_decided = proc._decision is not _UNDECIDED
                    proc.transition(
                        received_list[k], advice_list[k], cm_advice[pid]
                    )
                    proc._advance_round()
                    if (not already_decided
                            and proc._decision is not _UNDECIDED):
                        decided_during[pid] = proc._decision
        else:
            active_pids = (
                indices if not inactive
                else [pid for pid in indices if pid not in inactive]
            )
            for pid in active_pids:
                proc = processes[pid]
                # Direct slot reads instead of the has_decided/decision
                # properties: this loop runs once per live process per
                # round.
                already_decided = proc._decision is not _UNDECIDED
                proc.transition(received[pid], cd_advice[pid], cm_advice[pid])
                proc._advance_round()
                if not already_decided and proc._decision is not _UNDECIDED:
                    decided_during[pid] = proc._decision

        # Commit crashes and refresh the cached live list/set.
        newly_crashed: frozenset = _NO_LEAVES
        if crash_before_send or crash_after_send:
            newly_crashed = crash_before_send | crash_after_send
            for pid in newly_crashed:
                crashed[pid] = r
            self._live = [i for i in self._live if i not in newly_crashed]
            self._live_set = self._live_set - newly_crashed
        # Commit departures (a pid both crashing and leaving this round
        # stays crashed — crashes are absorbing even under churn).  A
        # departing incarnation's decision is remembered as a ghost:
        # system-level agreement must hold against it even after the pid
        # rejoins with fresh state.
        if leave_after_send or leave_before_send:
            newly_departed = {
                pid for pid in leave_after_send | leave_before_send
                if pid not in crashed
            }
            if newly_departed:
                for pid in sorted(newly_departed, key=self._pid_pos.get):
                    departed[pid] = r
                    proc = processes[pid]
                    if proc._decision is not _UNDECIDED:
                        self._departed_decisions.append(
                            (pid, proc._decision, r)
                        )
                self._live = [
                    i for i in self._live if i not in newly_departed
                ]
                self._live_set = self._live_set - newly_departed

        # (7) Channel feedback and bookkeeping.
        env.contention.observe(r, len(senders))
        if full:
            record = RoundRecord(
                round=r,
                cm_advice=cm_advice,
                messages=messages,
                received=received,
                cd_advice=cd_advice,
                crashed_during=frozenset(newly_crashed),
                decided_during=decided_during,
            )
            self._records.append(record)
            return record
        summary = RoundSummary(
            round=r,
            broadcast_count=len(senders),
            crashed_during=frozenset(newly_crashed),
            decided_during=decided_during,
        )
        if self.record_policy is RecordPolicy.SUMMARY:
            self._summaries.append(summary)
        return summary

    def _refresh_batch_cache(self) -> List[Process]:
        """Rebuild the index-aligned process list and the batch class.

        ``_batch_cls`` is the one class every process shares when its
        ``transition_array`` may stand in for per-process ``transition``
        calls (:func:`~repro.core.process._trusted_transition_array`);
        ``None`` routes kernel rounds through the per-pid reference
        loop.  Crashed processes stay in the list — the ``inactive``
        filter excludes them per round — so the cache only invalidates
        when an instance is *replaced* (churn rejoin).
        """
        processes = self.processes
        procs = [processes[pid] for pid in self.environment.indices]
        self._procs_list = procs
        cls: Optional[type] = type(procs[0]) if procs else None
        if cls is not None:
            for p in procs:
                if type(p) is not cls:
                    cls = None
                    break
        if cls is not None and not _trusted_transition_array(cls):
            cls = None
        self._batch_cls = cls
        return procs

    def _apply_churn(self, r: int):
        """Apply round ``r``'s membership events.

        Joins happen immediately: the pid re-enters the cached live
        list/set (rebuilt in index order — the ``live_indices``
        invalidation) with a fresh process instance when it had already
        participated.  Leaves are only *collected* here; ``step``
        commits them after transitions.  Returns
        ``(leave_after_send, leave_before_send, any_events)``.
        """
        env = self.environment
        processes = self.processes
        departed = self._departed
        decided = frozenset(
            pid for pid in self._live
            if processes[pid]._decision is not _UNDECIDED
        )
        events = env.churn.events(r, self._live, departed, decided)
        if not events:
            return _NO_LEAVES, _NO_LEAVES, False
        leave_after: set = set()
        leave_before: set = set()
        joined: List[ProcessId] = []
        for ev in events:
            pid = ev.pid
            if ev.kind == "leave":
                # Ignore leaves of absent/crashed pids (a no-op, like
                # crashing the crashed); duplicates keep the first
                # event's send timing.
                if (pid in self._live_set and pid not in leave_after
                        and pid not in leave_before):
                    (leave_after if ev.after_send else leave_before).add(pid)
            elif ev.kind in ("join", "rejoin"):
                left_round = departed.get(pid)
                if left_round is None:
                    continue  # already present (or crashed): a no-op
                if left_round > 0:
                    # Re-entry after participation is with *fresh state*:
                    # a brand-new process instance, no memory of its
                    # pre-leave rounds (decisions included).
                    if self._process_factory is None:
                        raise ConfigurationError(
                            f"churn rejoin of {pid!r} requires a process "
                            "factory (run via run_algorithm/run_consensus,"
                            " or pass process_factory=... to "
                            "ExecutionEngine)"
                        )
                    processes[pid] = self._process_factory(pid)
                    # The batched-transition cache holds the old
                    # instance; rebuild it on the next kernel round.
                    self._procs_list = None
                # left_round == 0: the initial instance never stepped, so
                # it already is fresh state — no factory needed.
                del departed[pid]
                self._rejoins[pid] = self._rejoins.get(pid, 0) + 1
                joined.append(pid)
            else:  # pragma: no cover - ChurnEvent validates its kind
                raise ConfigurationError(
                    f"unknown churn event kind {ev.kind!r}"
                )
        if joined:
            self._live_set = self._live_set | frozenset(joined)
            self._live = [
                i for i in env.indices if i in self._live_set
            ]
        return leave_after, leave_before, True

    def _resolve_losses_scalar(
        self,
        lost_map,
        normalized: bool,
        counts: Dict[ProcessId, int],
        received: Dict[ProcessId, Multiset],
        base_counts: Dict[Message, int],
        senders: List[ProcessId],
        messages: Dict[ProcessId, Optional[Message]],
        inactive: set,
        total: int,
        full_round_ms: Multiset,
        single: bool,
        only_message: Optional[Message],
        always_multiset: bool,
    ) -> None:
        """The reference per-receiver loss resolution (pure-python path).

        Fills ``counts`` and ``received`` in index order; byte-for-byte
        the behaviour the array kernel must reproduce.
        """
        indices = self.environment.indices
        sender_set = set(senders)
        # Per-round memo tables for shared work.  ``shared_cache`` maps
        # id(drop set) -> (set, kept, counts-dict, lazily built multiset)
        # computed *without* any self exemption; ``plus_cache`` and
        # ``single_cache`` memoise the small per-receiver adjustments
        # (restoring one own message / one kept-count bucket).  Keying by
        # id() is safe because ``lost_map`` keeps every set alive for the
        # duration of the loop.
        shared_cache: Dict[int, list] = {}
        plus_cache: Dict[Tuple[int, Message], Multiset] = {}
        single_cache: Dict[int, Multiset] = {}
        for pid in indices:
            lost = lost_map.get(pid)
            if lost is None:
                raise ModelViolation(
                    f"loss adversary omitted receiver {pid} from its "
                    "round resolution"
                )
            needs_multiset = always_multiset or pid not in inactive
            if not lost:
                counts[pid] = total
                if needs_multiset:
                    received[pid] = full_round_ms
                continue
            if normalized:
                # Trusted shape: lost is a subset of senders excluding
                # pid.  Both halves of the promise are enforced before
                # any count is derived from len(lost), so a breach is
                # loud in every branch (single- or multi-message,
                # multiset needed or not).
                if pid in lost:
                    raise ModelViolation(
                        f"batched loss adversary dropped {pid}'s own "
                        f"message at itself (self-delivery is "
                        "unconditional)"
                        if messages[pid] is not None
                        else f"batched loss adversary listed non-sender "
                        f"{pid} in its own drop set"
                    )
                if not lost <= sender_set:
                    raise ModelViolation(
                        f"normalized drop set for {pid} contains "
                        f"non-senders {sorted(set(lost) - sender_set, key=repr)}"
                    )
                kept = total - len(lost)
                counts[pid] = kept
                if not needs_multiset:
                    continue
                if single:
                    ms = single_cache.get(kept)
                    if ms is None:
                        ms = Multiset._from_counts_unchecked(
                            {only_message: kept} if kept else {}, kept
                        )
                        single_cache[kept] = ms
                    received[pid] = ms
                    continue
                cnt = dict(base_counts)
                for s in lost:
                    m = messages[s]
                    left = cnt[m] - 1
                    if left:
                        cnt[m] = left
                    else:
                        del cnt[m]
                received[pid] = Multiset._from_counts_unchecked(cnt, kept)
                continue
            # Untrusted mapping: resolve via the shared-set cache.  The
            # cached entry drops *every* sender in the set (no self
            # exemption), so it is receiver-independent and reusable
            # across aliases; each receiver then restores its own
            # message if needed.
            if type(lost) is not set and not isinstance(lost, frozenset):
                lost = set(lost)
            key = id(lost)
            entry = shared_cache.get(key)
            if entry is None:
                if single:
                    kept_excl = total
                    for s in lost:
                        if s in sender_set:
                            kept_excl -= 1
                    entry = [lost, kept_excl, None, None]
                else:
                    cnt_excl = dict(base_counts)
                    kept_excl = total
                    for s in lost:
                        if s not in sender_set:
                            continue
                        m = messages[s]
                        left = cnt_excl[m] - 1
                        if left:
                            cnt_excl[m] = left
                        else:
                            del cnt_excl[m]
                        kept_excl -= 1
                    entry = [lost, kept_excl, cnt_excl, None]
                shared_cache[key] = entry
            kept_excl = entry[1]
            own = messages[pid]
            if own is not None and pid in entry[0]:
                # This receiver broadcast and the (shared) drop set names
                # it: self-delivery is unconditional, so add its own
                # message back.
                kept = kept_excl + 1
                counts[pid] = kept
                if needs_multiset:
                    pkey = (key, own)
                    ms = plus_cache.get(pkey)
                    if ms is None:
                        if single:
                            ms = Multiset._from_counts_unchecked(
                                {only_message: kept}, kept
                            )
                        else:
                            cnt = dict(entry[2])
                            cnt[own] = cnt.get(own, 0) + 1
                            ms = Multiset._from_counts_unchecked(cnt, kept)
                        plus_cache[pkey] = ms
                    received[pid] = ms
            else:
                counts[pid] = kept_excl
                if needs_multiset:
                    ms = entry[3]
                    if ms is None:
                        if single:
                            ms = Multiset._from_counts_unchecked(
                                {only_message: kept_excl}
                                if kept_excl else {},
                                kept_excl,
                            )
                        else:
                            ms = Multiset._from_counts_unchecked(
                                entry[2], kept_excl
                            )
                        entry[3] = ms
                    received[pid] = ms

    # ------------------------------------------------------------------
    def run(
        self,
        max_rounds: int,
        until_all_decided: bool = True,
        observer: Optional[RoundObserver] = None,
    ) -> ExecutionResult:
        """Run up to ``max_rounds`` rounds and return the result.

        With ``until_all_decided`` (the default) the run stops as soon as
        every correct (non-crashed) process has decided — the natural stop
        condition for consensus experiments.  Lower-bound replays disable
        it to force a full fixed-length prefix.

        If *every* process crashes, the run does not report vacuous
        success: it stops (no further state can change — every process is
        in the absorbing fail state) and the result flags the outcome via
        :attr:`ExecutionResult.no_correct_processes`, with
        ``all_correct_decided()`` False.
        """
        if max_rounds < 0:
            raise ConfigurationError("max_rounds must be >= 0")
        for _ in range(max_rounds):
            record = self.step()
            if observer is not None:
                observer(record)
            if until_all_decided:
                if not self._live and not self._departed:
                    # All crashed: nothing further can happen; the result
                    # carries the no-correct-process flag instead of a
                    # vacuous "everyone decided".  (With departed pids
                    # the system may repopulate on a later rejoin, so an
                    # empty live set alone is not terminal.)
                    break
                if self._all_correct_decided():
                    break
        return self.result()

    def _all_correct_decided(self) -> bool:
        """Every live process decided — False (not vacuous) when none live."""
        live = self._live
        if not live:
            return False
        processes = self.processes
        return all(
            processes[pid]._decision is not _UNDECIDED for pid in live
        )

    def result(self) -> ExecutionResult:
        """Snapshot the execution so far as an :class:`ExecutionResult`."""
        env = self.environment
        decisions = {
            pid: self.processes[pid].decision for pid in env.indices
        }
        decision_rounds = {
            pid: self.processes[pid].decision_round for pid in env.indices
        }
        crash_rounds = {
            pid: self._crashed.get(pid) for pid in env.indices
        }
        return ExecutionResult(
            indices=env.indices,
            records=list(self._records),
            decisions=decisions,
            decision_rounds=decision_rounds,
            crash_rounds=crash_rounds,
            initial_values=self.initial_values,
            cst=env.communication_stabilization_time(),
            record_policy=self.record_policy,
            summaries=list(self._summaries),
            rounds=self._round,
            leave_rounds=dict(self._departed),
            rejoin_counts=dict(self._rejoins),
            departed_decisions=tuple(self._departed_decisions),
        )


# ----------------------------------------------------------------------
# High-level entry points
# ----------------------------------------------------------------------
def run_algorithm(
    environment: Environment,
    algorithm: Algorithm,
    max_rounds: int,
    until_all_decided: bool = True,
    record_policy: RecordPolicy = RecordPolicy.FULL,
    observer: Optional[RoundObserver] = None,
    use_array_kernel: Optional[bool] = None,
) -> ExecutionResult:
    """Instantiate ``algorithm`` over the environment's indices and run.

    ``observer`` (e.g. a :class:`~repro.core.records.JsonlSink`) receives
    each round's artifact as it is produced — the streaming companion to
    ``RecordPolicy.SUMMARY``/``NONE``.  ``use_array_kernel`` passes
    through to :class:`ExecutionEngine` (``None`` = automatic gating).
    """
    environment.reset()
    processes = algorithm.spawn_all(environment.indices)
    engine = ExecutionEngine(
        environment, processes, record_policy=record_policy,
        use_array_kernel=use_array_kernel,
        process_factory=algorithm.spawn,
    )
    return engine.run(
        max_rounds, until_all_decided=until_all_decided, observer=observer
    )


def run_consensus(
    environment: Environment,
    algorithm: ConsensusAlgorithm,
    initial_values: Mapping[ProcessId, Value],
    max_rounds: int,
    until_all_decided: bool = True,
    record_policy: RecordPolicy = RecordPolicy.FULL,
    observer: Optional[RoundObserver] = None,
    use_array_kernel: Optional[bool] = None,
) -> ExecutionResult:
    """Run a consensus algorithm with the given initial-value assignment."""
    if set(initial_values) != set(environment.indices):
        raise ConfigurationError(
            "initial values must cover exactly the environment's indices"
        )
    environment.reset()
    processes = algorithm.instantiate(initial_values)
    engine = ExecutionEngine(
        environment, processes, initial_values, record_policy=record_policy,
        use_array_kernel=use_array_kernel,
        # A rejoining process restarts from its initial value — fresh
        # state per the churn model (its pre-leave progress, decisions
        # included, is forgotten).
        process_factory=lambda pid: algorithm.spawn(
            pid, initial_values[pid]
        ),
    )
    return engine.run(
        max_rounds, until_all_decided=until_all_decided, observer=observer
    )
