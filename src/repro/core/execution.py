"""The synchronous round engine (Definition 11, executable).

One engine round performs, in order:

1. the crash adversary picks this round's crash events;
2. the contention manager issues ``active``/``passive`` advice for every
   index (crashed processes get advice too — the CM trace is defined over
   all of ``P`` — they just never act on it);
3. every live, non-halted process produces its message via ``msg_A``
   (processes crashing *after send* still broadcast; *before send* they
   are silent — both timings are legal resolutions of constraint 2);
4. the loss adversary chooses, per receiver, which other senders' messages
   are lost; self-delivery is unconditional (constraint 5);
5. the collision detector, seeing only the counts ``(c, T)`` exactly as
   Definition 6 prescribes, issues per-process advice;
6. surviving processes transition on ``(N_r[i], D_r[i], W_r[i])``;
7. the round is recorded according to the engine's
   :class:`~repro.core.records.RecordPolicy`.

The engine validates constraints 4 and 5 as it goes and raises
:class:`~repro.core.errors.ModelViolation` on any breach, so a buggy
adversary cannot silently produce an illegal execution.

Record policies
---------------

The engine runs the *same* execution under every policy — seeded
adversaries consume randomness identically, so decisions and decision
rounds match round for round — but retains different amounts of it:

* ``RecordPolicy.FULL`` (default) keeps every :class:`RoundRecord`; this
  is what the trace validators and lower-bound replays need.
* ``RecordPolicy.SUMMARY`` keeps one :class:`RoundSummary` per round and
  skips building receive multisets for processes that will not transition
  (crashed or halted ones), cutting both memory and time.
* ``RecordPolicy.NONE`` retains nothing per round — the fastest mode,
  built for the high-volume sweeps the experiment harness fans out.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Union

from ..core.errors import ConfigurationError, ModelViolation
from .algorithm import Algorithm, ConsensusAlgorithm
from .environment import Environment
from .multiset import Multiset
from .process import Process, _UNDECIDED
from .records import ExecutionResult, RecordPolicy, RoundRecord, RoundSummary
from .types import CollisionAdvice, ContentionAdvice, Message, ProcessId, Value

#: What one ``step()`` returns: a full record, or a summary in the
#: streaming modes.
RoundArtifact = Union[RoundRecord, RoundSummary]

#: Optional per-round observer, called after each round with that round's
#: artifact (a ``RoundRecord`` under FULL, a ``RoundSummary`` otherwise).
RoundObserver = Callable[[RoundArtifact], None]


class ExecutionEngine:
    """Runs one execution of a system, producing an :class:`ExecutionResult`.

    The engine owns the fail state: a crashed process is never stepped
    again, which is observationally identical to the paper's absorbing
    ``fail_A``.

    ``record_policy`` selects how much per-round state is retained; see
    the module docstring.  The executed rounds are identical across
    policies for the same seeded environment.
    """

    def __init__(
        self,
        environment: Environment,
        processes: Mapping[ProcessId, Process],
        initial_values: Optional[Mapping[ProcessId, Value]] = None,
        record_policy: RecordPolicy = RecordPolicy.FULL,
    ) -> None:
        if set(processes) != set(environment.indices):
            raise ConfigurationError(
                "process map must cover exactly the environment's indices"
            )
        self.environment = environment
        self.processes = dict(processes)
        self.initial_values = dict(initial_values) if initial_values else None
        self.record_policy = record_policy
        self._records: List[RoundRecord] = []
        self._summaries: List[RoundSummary] = []
        self._crashed: Dict[ProcessId, int] = {}
        self._round = 0
        # Cached live-index list, updated only when crashes commit; the
        # hot path must not rebuild it every round.
        self._live: List[ProcessId] = list(environment.indices)

    # ------------------------------------------------------------------
    @property
    def round(self) -> int:
        """Number of completed rounds."""
        return self._round

    def live_indices(self) -> List[ProcessId]:
        """Indices of processes that have not crashed."""
        return list(self._live)

    # ------------------------------------------------------------------
    def step(self) -> RoundArtifact:
        """Execute one synchronous round and return its artifact."""
        env = self.environment
        indices = env.indices
        crashed = self._crashed
        self._round += 1
        r = self._round
        full = self.record_policy is RecordPolicy.FULL

        # (1) Crashes for this round.
        live_before = self._live
        events = env.crash.crashes(r, live_before)
        crash_after_send = set()
        crash_before_send = set()
        for ev in events:
            if ev.pid in crashed:
                continue
            if ev.after_send:
                crash_after_send.add(ev.pid)
            else:
                crash_before_send.add(ev.pid)

        # (2) Contention advice.  The formal CM trace covers all of P, but
        # a practical manager schedules among nodes it can still hear, so
        # the engine consults it over the live set and pads crashed
        # processes with PASSIVE (their advice is never acted on).
        cm_advice = env.contention.advise(r, live_before)
        if full or crashed:
            # Copy before padding: FULL mode retains the map in the round
            # record, and crashed processes need PASSIVE filler — never
            # mutate the manager's own dict.  The streaming no-crash path
            # uses the manager's map as-is.
            cm_advice = dict(cm_advice)
        if any(pid not in cm_advice for pid in live_before):
            missing = set(live_before) - set(cm_advice)
            raise ModelViolation(
                f"contention manager omitted advice for {sorted(missing)}"
            )
        for pid in crashed:
            if pid not in cm_advice:
                cm_advice[pid] = ContentionAdvice.PASSIVE

        # (3) Message generation.  ``inactive`` collects every process that
        # will not transition this round (already crashed, crashing now,
        # or halted) so the receive loop can decide multiset need with a
        # single membership test.
        processes = self.processes
        messages: Dict[ProcessId, Optional[Message]] = {}
        senders: List[ProcessId] = []
        inactive = set(crash_after_send)
        halted_live: List[ProcessId] = []
        for pid in indices:
            if pid in crashed or pid in crash_before_send:
                messages[pid] = None
                inactive.add(pid)
                continue
            proc = processes[pid]
            if proc._halted:
                messages[pid] = None
                inactive.add(pid)
                if pid not in crash_after_send:
                    halted_live.append(pid)
                continue
            m = proc.message(cm_advice[pid])
            messages[pid] = m
            if m is not None:
                senders.append(pid)

        # (4) Loss resolution and receive multisets.  The round's full
        # broadcast multiset is built once; each receiver's multiset is
        # derived by decrementing its (typically small) lost set rather
        # than rescanning every sender, and loss-free receivers share the
        # full multiset outright (Multiset is immutable, so sharing is
        # safe).  The fast path additionally skips multiset construction
        # for processes that will not transition — the detector only ever
        # needs the counts (Definition 6).
        losses = env.loss.losses
        counts: Dict[ProcessId, int] = {}
        received: Dict[ProcessId, Multiset] = {}
        base_counts: Dict[Message, int] = {}
        sender_set = set(senders)
        for s in senders:
            m = messages[s]
            base_counts[m] = base_counts.get(m, 0) + 1
        total = len(senders)
        full_round_ms = Multiset._from_counts_unchecked(base_counts, total)
        for pid in indices:
            lost = losses(r, senders, pid)
            if type(lost) is not set and not isinstance(lost, frozenset):
                # The decrement loop below assumes no duplicates; coerce
                # annotation-violating adversaries (e.g. a ScriptedLoss
                # callback returning a list) instead of silently
                # double-counting their repeats.
                lost = set(lost)
            needs_multiset = full or pid not in inactive
            if lost:
                if len(base_counts) == 1:
                    # Single distinct message this round (the common case
                    # for value-echo protocol phases): count survivors
                    # without per-loss dict surgery.
                    kept = total
                    for s in lost:
                        if s != pid and s in sender_set:
                            kept -= 1
                    counts[pid] = kept
                    if needs_multiset:
                        (only,) = base_counts
                        ms = Multiset._from_counts_unchecked(
                            {only: kept} if kept else {}, kept
                        )
                        if messages[pid] is not None and kept == 0:
                            raise ModelViolation(
                                f"broadcaster {pid} failed to receive its "
                                "own message"
                            )
                        received[pid] = ms
                    continue
                cnt = dict(base_counts)
                kept = total
                for s in lost:
                    if s == pid or s not in sender_set:
                        # Self-delivery is unconditional; non-broadcasters
                        # have nothing to lose.
                        continue
                    m = messages[s]
                    left = cnt[m] - 1
                    if left:
                        cnt[m] = left
                    else:
                        del cnt[m]
                    kept -= 1
                counts[pid] = kept
                if needs_multiset:
                    ms = Multiset._from_counts_unchecked(cnt, kept)
                    if messages[pid] is not None and messages[pid] not in ms:
                        raise ModelViolation(
                            f"broadcaster {pid} failed to receive its own "
                            "message"
                        )
                    received[pid] = ms
            else:
                counts[pid] = total
                if needs_multiset:
                    received[pid] = full_round_ms

        # (5) Collision-detector advice from counts only.
        cd_advice = dict(env.detector.advise(r, len(senders), counts))
        if any(pid not in cd_advice for pid in indices):
            missing = set(indices) - set(cd_advice)
            raise ModelViolation(
                f"collision detector omitted advice for {sorted(missing)}"
            )

        # (6) Transitions for surviving processes.  Halted-but-live
        # processes only advance their round counter; ``inactive`` holds
        # exactly the halted and the (newly or previously) crashed.
        decided_during: Dict[ProcessId, Value] = {}
        for pid in halted_live:
            processes[pid]._advance_round()
        for pid in indices:
            if pid in inactive:
                continue
            proc = processes[pid]
            # Direct slot reads instead of the has_decided/decision
            # properties: this loop runs once per live process per round.
            already_decided = proc._decision is not _UNDECIDED
            proc.transition(received[pid], cd_advice[pid], cm_advice[pid])
            proc._advance_round()
            if not already_decided and proc._decision is not _UNDECIDED:
                decided_during[pid] = proc._decision

        # Commit crashes and refresh the cached live list.
        newly_crashed = crash_before_send | crash_after_send
        if newly_crashed:
            for pid in newly_crashed:
                crashed[pid] = r
            self._live = [i for i in self._live if i not in newly_crashed]

        # (7) Channel feedback and bookkeeping.
        env.contention.observe(r, len(senders))
        if full:
            record = RoundRecord(
                round=r,
                cm_advice=cm_advice,
                messages=messages,
                received=received,
                cd_advice=cd_advice,
                crashed_during=frozenset(newly_crashed),
                decided_during=decided_during,
            )
            self._records.append(record)
            return record
        summary = RoundSummary(
            round=r,
            broadcast_count=len(senders),
            crashed_during=frozenset(newly_crashed),
            decided_during=decided_during,
        )
        if self.record_policy is RecordPolicy.SUMMARY:
            self._summaries.append(summary)
        return summary

    # ------------------------------------------------------------------
    def run(
        self,
        max_rounds: int,
        until_all_decided: bool = True,
        observer: Optional[RoundObserver] = None,
    ) -> ExecutionResult:
        """Run up to ``max_rounds`` rounds and return the result.

        With ``until_all_decided`` (the default) the run stops as soon as
        every correct (non-crashed) process has decided — the natural stop
        condition for consensus experiments.  Lower-bound replays disable
        it to force a full fixed-length prefix.

        If *every* process crashes, the run does not report vacuous
        success: it stops (no further state can change — every process is
        in the absorbing fail state) and the result flags the outcome via
        :attr:`ExecutionResult.no_correct_processes`, with
        ``all_correct_decided()`` False.
        """
        if max_rounds < 0:
            raise ConfigurationError("max_rounds must be >= 0")
        for _ in range(max_rounds):
            record = self.step()
            if observer is not None:
                observer(record)
            if until_all_decided:
                if not self._live:
                    # All crashed: nothing further can happen; the result
                    # carries the no-correct-process flag instead of a
                    # vacuous "everyone decided".
                    break
                if self._all_correct_decided():
                    break
        return self.result()

    def _all_correct_decided(self) -> bool:
        """Every live process decided — False (not vacuous) when none live."""
        live = self._live
        if not live:
            return False
        processes = self.processes
        return all(
            processes[pid]._decision is not _UNDECIDED for pid in live
        )

    def result(self) -> ExecutionResult:
        """Snapshot the execution so far as an :class:`ExecutionResult`."""
        env = self.environment
        decisions = {
            pid: self.processes[pid].decision for pid in env.indices
        }
        decision_rounds = {
            pid: self.processes[pid].decision_round for pid in env.indices
        }
        crash_rounds = {
            pid: self._crashed.get(pid) for pid in env.indices
        }
        return ExecutionResult(
            indices=env.indices,
            records=list(self._records),
            decisions=decisions,
            decision_rounds=decision_rounds,
            crash_rounds=crash_rounds,
            initial_values=self.initial_values,
            cst=env.communication_stabilization_time(),
            record_policy=self.record_policy,
            summaries=list(self._summaries),
            rounds=self._round,
        )


# ----------------------------------------------------------------------
# High-level entry points
# ----------------------------------------------------------------------
def run_algorithm(
    environment: Environment,
    algorithm: Algorithm,
    max_rounds: int,
    until_all_decided: bool = True,
    record_policy: RecordPolicy = RecordPolicy.FULL,
) -> ExecutionResult:
    """Instantiate ``algorithm`` over the environment's indices and run."""
    environment.reset()
    processes = algorithm.spawn_all(environment.indices)
    engine = ExecutionEngine(
        environment, processes, record_policy=record_policy
    )
    return engine.run(max_rounds, until_all_decided=until_all_decided)


def run_consensus(
    environment: Environment,
    algorithm: ConsensusAlgorithm,
    initial_values: Mapping[ProcessId, Value],
    max_rounds: int,
    until_all_decided: bool = True,
    record_policy: RecordPolicy = RecordPolicy.FULL,
) -> ExecutionResult:
    """Run a consensus algorithm with the given initial-value assignment."""
    if set(initial_values) != set(environment.indices):
        raise ConfigurationError(
            "initial values must cover exactly the environment's indices"
        )
    environment.reset()
    processes = algorithm.instantiate(initial_values)
    engine = ExecutionEngine(
        environment, processes, initial_values, record_policy=record_policy
    )
    return engine.run(max_rounds, until_all_decided=until_all_decided)
