"""The synchronous round engine (Definition 11, executable).

One engine round performs, in order:

1. the crash adversary picks this round's crash events;
2. the contention manager issues ``active``/``passive`` advice for every
   index (crashed processes get advice too — the CM trace is defined over
   all of ``P`` — they just never act on it);
3. every live, non-halted process produces its message via ``msg_A``
   (processes crashing *after send* still broadcast; *before send* they
   are silent — both timings are legal resolutions of constraint 2);
4. the loss adversary chooses, per receiver, which other senders' messages
   are lost; self-delivery is unconditional (constraint 5);
5. the collision detector, seeing only the counts ``(c, T)`` exactly as
   Definition 6 prescribes, issues per-process advice;
6. surviving processes transition on ``(N_r[i], D_r[i], W_r[i])``;
7. the round is recorded.

The engine validates constraints 4 and 5 as it goes and raises
:class:`~repro.core.errors.ModelViolation` on any breach, so a buggy
adversary cannot silently produce an illegal execution.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from ..core.errors import ConfigurationError, ModelViolation
from .algorithm import Algorithm, ConsensusAlgorithm
from .environment import Environment
from .multiset import Multiset
from .process import Process
from .records import ExecutionResult, RoundRecord
from .types import CollisionAdvice, ContentionAdvice, Message, ProcessId, Value

#: Optional per-round observer, called after each recorded round.
RoundObserver = Callable[[RoundRecord], None]


class ExecutionEngine:
    """Runs one execution of a system, producing an :class:`ExecutionResult`.

    The engine owns the fail state: a crashed process is never stepped
    again, which is observationally identical to the paper's absorbing
    ``fail_A``.
    """

    def __init__(
        self,
        environment: Environment,
        processes: Mapping[ProcessId, Process],
        initial_values: Optional[Mapping[ProcessId, Value]] = None,
    ) -> None:
        if set(processes) != set(environment.indices):
            raise ConfigurationError(
                "process map must cover exactly the environment's indices"
            )
        self.environment = environment
        self.processes = dict(processes)
        self.initial_values = dict(initial_values) if initial_values else None
        self._records: List[RoundRecord] = []
        self._crashed: Dict[ProcessId, int] = {}
        self._round = 0

    # ------------------------------------------------------------------
    @property
    def round(self) -> int:
        """Number of completed rounds."""
        return self._round

    def live_indices(self) -> List[ProcessId]:
        """Indices of processes that have not crashed."""
        return [i for i in self.environment.indices if i not in self._crashed]

    # ------------------------------------------------------------------
    def step(self) -> RoundRecord:
        """Execute one synchronous round and return its record."""
        env = self.environment
        indices = env.indices
        self._round += 1
        r = self._round

        # (1) Crashes for this round.
        live_before = self.live_indices()
        events = env.crash.crashes(r, live_before)
        crash_after_send = set()
        crash_before_send = set()
        for ev in events:
            if ev.pid in self._crashed:
                continue
            if ev.after_send:
                crash_after_send.add(ev.pid)
            else:
                crash_before_send.add(ev.pid)

        # (2) Contention advice.  The formal CM trace covers all of P, but
        # a practical manager schedules among nodes it can still hear, so
        # the engine consults it over the live set and pads crashed
        # processes with PASSIVE (their advice is never acted on).
        cm_advice = dict(env.contention.advise(r, live_before))
        missing = set(live_before) - set(cm_advice)
        if missing:
            raise ModelViolation(
                f"contention manager omitted advice for {sorted(missing)}"
            )
        for pid in indices:
            if pid not in cm_advice:
                cm_advice[pid] = ContentionAdvice.PASSIVE

        # (3) Message generation.
        messages: Dict[ProcessId, Optional[Message]] = {}
        for pid in indices:
            proc = self.processes[pid]
            silent = (
                pid in self._crashed
                or pid in crash_before_send
                or proc.halted
            )
            messages[pid] = None if silent else proc.message(cm_advice[pid])
        senders = [pid for pid in indices if messages[pid] is not None]

        # (4) Loss resolution and receive multisets.
        received: Dict[ProcessId, Multiset] = {}
        for pid in indices:
            lost = set(env.loss.losses(r, list(senders), pid))
            kept = [
                messages[s]
                for s in senders
                if s == pid or s not in lost
            ]
            ms = Multiset(kept)
            if messages[pid] is not None and messages[pid] not in ms:
                raise ModelViolation(
                    f"broadcaster {pid} failed to receive its own message"
                )
            received[pid] = ms

        # (5) Collision-detector advice from counts only.
        counts = {pid: len(received[pid]) for pid in indices}
        cd_advice = dict(
            env.detector.advise(r, len(senders), counts)
        )
        missing = set(indices) - set(cd_advice)
        if missing:
            raise ModelViolation(
                f"collision detector omitted advice for {sorted(missing)}"
            )

        # (6) Transitions for surviving processes.
        decided_during: Dict[ProcessId, Value] = {}
        for pid in indices:
            proc = self.processes[pid]
            if (
                pid in self._crashed
                or pid in crash_before_send
                or pid in crash_after_send
            ):
                continue
            if proc.halted:
                proc._advance_round()
                continue
            already_decided = proc.has_decided
            proc.transition(received[pid], cd_advice[pid], cm_advice[pid])
            proc._advance_round()
            if proc.has_decided and not already_decided:
                decided_during[pid] = proc.decision

        # Commit crashes.
        for pid in crash_before_send | crash_after_send:
            self._crashed[pid] = r

        # (7) Channel feedback and bookkeeping.
        env.contention.observe(r, len(senders))
        record = RoundRecord(
            round=r,
            cm_advice=cm_advice,
            messages=messages,
            received=received,
            cd_advice=cd_advice,
            crashed_during=frozenset(crash_before_send | crash_after_send),
            decided_during=decided_during,
        )
        self._records.append(record)
        return record

    # ------------------------------------------------------------------
    def run(
        self,
        max_rounds: int,
        until_all_decided: bool = True,
        observer: Optional[RoundObserver] = None,
    ) -> ExecutionResult:
        """Run up to ``max_rounds`` rounds and return the result.

        With ``until_all_decided`` (the default) the run stops as soon as
        every correct (non-crashed) process has decided — the natural stop
        condition for consensus experiments.  Lower-bound replays disable
        it to force a full fixed-length prefix.
        """
        if max_rounds < 0:
            raise ConfigurationError("max_rounds must be >= 0")
        for _ in range(max_rounds):
            record = self.step()
            if observer is not None:
                observer(record)
            if until_all_decided and self._all_correct_decided():
                break
        return self.result()

    def _all_correct_decided(self) -> bool:
        return all(
            self.processes[pid].has_decided for pid in self.live_indices()
        )

    def result(self) -> ExecutionResult:
        """Snapshot the execution so far as an :class:`ExecutionResult`."""
        env = self.environment
        decisions = {
            pid: self.processes[pid].decision for pid in env.indices
        }
        decision_rounds = {
            pid: self.processes[pid].decision_round for pid in env.indices
        }
        crash_rounds = {
            pid: self._crashed.get(pid) for pid in env.indices
        }
        return ExecutionResult(
            indices=env.indices,
            records=list(self._records),
            decisions=decisions,
            decision_rounds=decision_rounds,
            crash_rounds=crash_rounds,
            initial_values=self.initial_values,
            cst=env.communication_stabilization_time(),
        )


# ----------------------------------------------------------------------
# High-level entry points
# ----------------------------------------------------------------------
def run_algorithm(
    environment: Environment,
    algorithm: Algorithm,
    max_rounds: int,
    until_all_decided: bool = True,
) -> ExecutionResult:
    """Instantiate ``algorithm`` over the environment's indices and run."""
    environment.reset()
    processes = algorithm.spawn_all(environment.indices)
    engine = ExecutionEngine(environment, processes)
    return engine.run(max_rounds, until_all_decided=until_all_decided)


def run_consensus(
    environment: Environment,
    algorithm: ConsensusAlgorithm,
    initial_values: Mapping[ProcessId, Value],
    max_rounds: int,
    until_all_decided: bool = True,
) -> ExecutionResult:
    """Run a consensus algorithm with the given initial-value assignment."""
    if set(initial_values) != set(environment.indices):
        raise ConfigurationError(
            "initial values must cover exactly the environment's indices"
        )
    environment.reset()
    processes = algorithm.instantiate(initial_values)
    engine = ExecutionEngine(environment, processes, initial_values)
    return engine.run(max_rounds, until_all_decided=until_all_decided)
