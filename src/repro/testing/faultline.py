"""Faultline: seeded, deterministic fault injection for the campaign stack.

The repo's contract is that campaign results are *provably*
reproducible — resume after any interruption and ``report()`` bytes
equal a clean run.  Faultline exists to attack that contract
systematically instead of with hand-rolled kill tests: a
:class:`FaultPlan` composes injectors — worker SIGKILL/SIGSTOP
mid-cell, spawn failure, pipe EOF, transient sqlite
``OperationalError`` (locked/busy/disk-full), slow cells, and merges
interrupted mid-ATTACH — and the dispatcher, the sqlite sink, and the
shard merge all consult it at fixed *injection sites*.

Determinism is the whole design.  A plan never draws from a shared RNG
stream (parallel completion order would make that schedule
irreproducible); instead:

* a :class:`FaultClock` counts occurrences per ``(site, key)`` — keys
  are stable identities (``cell:<index>``, ``spawn``, ``commit``,
  ``shard:<i>``), so each key's tick stream is sequential within its
  owner no matter how the pool interleaves cells;
* probabilistic rules gate on a SHA-256 draw over
  ``(seed, site, key, count, rule)`` — a pure function of stable
  values, so whether a fault fires at a given injection point is
  identical in every run, every process, every platform;
* every fired injection is appended to the plan's in-memory ``log``
  (and, when ``log_path`` is set, to a JSONL file that worker
  processes append to as well), so two runs of the same plan + seed
  can be compared injection point by injection point.

Faults are **opt-in twice over**: nothing fires unless a component was
handed a plan (``fault_plan=`` kwarg) or the ``REPRO_FAULTLINE``
environment variable names a plan JSON file.  The hooks themselves are
a ``None``-check when no plan is active, and the e18 bench gates their
installed-but-idle overhead below 3%.

Example plan spec (JSON-serialisable, committed for the CI chaos leg)::

    {
      "seed": 7,
      "rules": [
        {"site": "dispatch", "match": "cell:*", "p": 0.25, "times": 1,
         "action": {"kind": "sigkill"}},
        {"site": "sqlite", "match": "*", "p": 0.3, "times": 2,
         "action": {"kind": "operational-error", "flavor": "locked"}}
      ]
    }

Sites and the actions they honour:

======== ============================== ===============================
site     key                            actions
======== ============================== ===============================
spawn    ``spawn``                      ``die`` (worker exits at birth)
dispatch ``cell:<index>``               ``sigkill``, ``sigstop``
cell     ``cell:<index>`` (worker side) ``sleep`` (``seconds``)
cell-reply ``cell:<index>`` (worker)    ``eof`` (exit without replying)
sqlite   ``<operation>``                ``operational-error``
                                        (``flavor``: locked / busy /
                                        disk-full)
merge    ``shard:<index>``              ``error``, ``sleep``
======== ============================== ===============================
"""

from __future__ import annotations

import dataclasses
import fnmatch
import hashlib
import json
import os
import sqlite3
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.errors import ConfigurationError

#: Environment variable naming a fault-plan JSON file.  Read by every
#: component that accepts a ``fault_plan=`` kwarg when none was passed
#: explicitly; inherited by campaign worker processes, so one exported
#: variable arms the whole stack (the CI chaos smoke rides this).
ENV_VAR = "REPRO_FAULTLINE"

#: The injection sites the campaign stack consults.
SITES: Tuple[str, ...] = (
    "spawn", "dispatch", "cell", "cell-reply", "sqlite", "merge",
)

#: sqlite error texts the ``operational-error`` action can raise —
#: the transient flavors the sink's retry-with-backoff must absorb.
OPERATIONAL_FLAVORS: Dict[str, str] = {
    "locked": "database is locked",
    "busy": "database is busy",
    "disk-full": "database or disk is full",
}


class FaultInjected(RuntimeError):
    """An injected hard failure (the ``error`` action) — deliberately
    *not* a :class:`~repro.core.errors.ConfigurationError`, because it
    simulates an arbitrary crash, not a misconfiguration."""


class FaultClock:
    """Deterministic occurrence counter per ``(site, key)``.

    Not wall-clock time: logical injection-point time.  Each
    ``tick(site, key)`` returns the 1-based occurrence number of that
    site/key pair in this process, which is reproducible because each
    key's stream is sequential within its owner (a cell is dispatched
    once per attempt, a commit retries in order) even when the pool
    interleaves different keys nondeterministically.
    """

    def __init__(self) -> None:
        self._counts: Dict[Tuple[str, str], int] = {}

    def tick(self, site: str, key: str) -> int:
        pair = (site, key)
        self._counts[pair] = self._counts.get(pair, 0) + 1
        return self._counts[pair]

    def count(self, site: str, key: str) -> int:
        """Occurrences seen so far (0 if never ticked)."""
        return self._counts.get((site, key), 0)

    def total(self) -> int:
        """Injection-point visits across all ``(site, key)`` streams —
        the exact number of times the stack consulted this plan."""
        return sum(self._counts.values())


def _draw(seed: int, site: str, key: str, count: int, rule: int) -> float:
    """Uniform [0, 1) from stable identities — no RNG stream order.

    SHA-256 like :func:`~repro.experiments.harness.cell_seed`, so the
    same injection point draws the same number in every process, on
    every platform, independent of scheduling.
    """
    text = f"{int(seed)}|{site}|{key}|{int(count)}|{int(rule)}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One injector: *where* (site + key glob), *when* (occurrence
    filter, per-key budget, seeded probability), and *what* (action).

    ``count_in`` restricts firing to specific occurrence numbers of the
    ``(site, key)`` stream (e.g. ``[1, 2]`` = the first two commits of
    each cell fail, the third succeeds — the transient-error shape the
    retry-with-backoff machinery exists for).  ``times`` caps how often
    the rule fires per key.  ``p`` gates each eligible occurrence on
    the seeded draw.
    """

    site: str
    action: Dict[str, Any]
    match: str = "*"
    p: float = 1.0
    count_in: Optional[Tuple[int, ...]] = None
    times: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known sites: {SITES}"
            )
        if not isinstance(self.action, dict) or "kind" not in self.action:
            raise ConfigurationError(
                f"fault action must be a dict with a 'kind', "
                f"got {self.action!r}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.p}"
            )

    def to_spec(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {
            "site": self.site, "match": self.match,
            "action": dict(self.action),
        }
        if self.p != 1.0:
            spec["p"] = self.p
        if self.count_in is not None:
            spec["count_in"] = list(self.count_in)
        if self.times is not None:
            spec["times"] = self.times
        return spec

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FaultRule":
        unknown = set(spec) - {
            "site", "match", "action", "p", "count_in", "times"
        }
        if unknown:
            raise ConfigurationError(
                f"fault rule has unknown field(s) {sorted(unknown)}: {spec!r}"
            )
        try:
            site = spec["site"]
            action = dict(spec["action"])
        except KeyError as exc:
            raise ConfigurationError(
                f"fault rule needs 'site' and 'action': {spec!r}"
            ) from exc
        count_in = spec.get("count_in")
        return cls(
            site=site,
            action=action,
            match=spec.get("match", "*"),
            p=float(spec.get("p", 1.0)),
            count_in=None if count_in is None else tuple(
                int(c) for c in count_in
            ),
            times=None if spec.get("times") is None else int(spec["times"]),
        )


class FaultPlan:
    """A seeded, replayable schedule of infrastructure faults.

    The campaign stack calls :meth:`fire` at each injection site; the
    plan answers with an action dict (fault!) or ``None`` (proceed).
    Whether a given point fires is a pure function of
    ``(seed, site, key, occurrence, rule)`` — see the module docstring
    — so running the same plan spec twice over the same campaign
    produces the same injection log, which the property tests compare
    byte for byte.

    One plan instance is one process's schedule: worker processes
    reconstruct their own instance from :meth:`to_spec` (or the
    ``REPRO_FAULTLINE`` file) with fresh clocks, which is exactly right
    because their injection sites (cell execution, round streaming) are
    keyed per cell, not per process.  Set ``log_path`` to collect the
    fired injections of *all* processes in one JSONL file (appends of
    one line are atomic well below ``PIPE_BUF``); compare runs on the
    sorted lines, since processes interleave.
    """

    def __init__(
        self,
        rules: Iterable[FaultRule] = (),
        seed: int = 0,
        log_path: Optional[str] = None,
        name: Optional[str] = None,
    ) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = int(seed)
        self.log_path = log_path
        self.name = name
        self.clock = FaultClock()
        #: Fired injections, in this process's firing order:
        #: ``{"site", "key", "count", "action"}`` dicts.
        self.log: List[Dict[str, Any]] = []
        self._fired: Dict[Tuple[int, str], int] = {}

    # -- the one hook the stack calls ----------------------------------
    def fire(self, site: str, key: str) -> Optional[Dict[str, Any]]:
        """Tick the clock at one injection point; maybe return an action.

        First matching rule wins.  Returns a *copy* of the action dict
        (callers may annotate it) or ``None``.
        """
        count = self.clock.tick(site, key)
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if not fnmatch.fnmatchcase(key, rule.match):
                continue
            if rule.count_in is not None and count not in rule.count_in:
                continue
            fired_key = (index, key)
            if (rule.times is not None
                    and self._fired.get(fired_key, 0) >= rule.times):
                continue
            if (rule.p < 1.0
                    and _draw(self.seed, site, key, count, index) >= rule.p):
                continue
            self._fired[fired_key] = self._fired.get(fired_key, 0) + 1
            event = {
                "site": site, "key": key, "count": count,
                "action": dict(rule.action),
            }
            self.log.append(event)
            if self.log_path:
                with open(self.log_path, "a") as fh:
                    fh.write(json.dumps(event, sort_keys=True) + "\n")
            return dict(rule.action)
        return None

    # -- convenience raisers (keep the call sites one-liners) ----------
    def sqlite_check(self, operation: str) -> None:
        """Raise a transient :class:`sqlite3.OperationalError` if an
        ``operational-error`` action fires for this operation."""
        action = self.fire("sqlite", operation)
        if action is None:
            return
        if action["kind"] != "operational-error":
            raise ConfigurationError(
                f"sqlite fault site only honours 'operational-error', "
                f"got {action!r}"
            )
        flavor = action.get("flavor", "locked")
        try:
            message = OPERATIONAL_FLAVORS[flavor]
        except KeyError:
            raise ConfigurationError(
                f"unknown sqlite fault flavor {flavor!r}; known: "
                f"{sorted(OPERATIONAL_FLAVORS)}"
            ) from None
        raise sqlite3.OperationalError(f"{message} [injected]")

    # -- (de)serialisation ---------------------------------------------
    def to_spec(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {
            "seed": self.seed,
            "rules": [rule.to_spec() for rule in self.rules],
        }
        if self.log_path:
            spec["log_path"] = self.log_path
        if self.name:
            spec["name"] = self.name
        return spec

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(spec, dict):
            raise ConfigurationError(
                f"fault plan spec must be a JSON object, got {type(spec)}"
            )
        unknown = set(spec) - {"seed", "rules", "log_path", "name"}
        if unknown:
            raise ConfigurationError(
                f"fault plan spec has unknown field(s) {sorted(unknown)}"
            )
        return cls(
            rules=[FaultRule.from_spec(r) for r in spec.get("rules", ())],
            seed=int(spec.get("seed", 0)),
            log_path=spec.get("log_path"),
            name=spec.get("name"),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path) as fh:
                spec = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"cannot load fault plan from {path!r}: {exc}"
            ) from exc
        return cls.from_spec(spec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or f"{len(self.rules)} rule(s)"
        return f"FaultPlan({label}, seed={self.seed})"


# ----------------------------------------------------------------------
# Process-wide plan resolution
# ----------------------------------------------------------------------
_installed: Optional[FaultPlan] = None
_env_cache: Dict[str, FaultPlan] = {}


def install(plan: Optional[FaultPlan]) -> None:
    """Install *plan* as this process's ambient fault plan.

    Used by dispatcher workers (which receive the plan spec over the
    spawn arguments) so the :class:`~repro.core.records.SqliteSink`
    instances a cell function creates deep inside its call stack pick
    the plan up without any kwarg threading.  ``install(None)``
    uninstalls.
    """
    global _installed
    _installed = plan


def installed() -> Optional[FaultPlan]:
    """The ambient plan installed in this process, if any."""
    return _installed


def resolve(explicit: Optional[FaultPlan] = None) -> Optional[FaultPlan]:
    """The active fault plan: explicit kwarg > installed > environment.

    The environment path (``REPRO_FAULTLINE`` naming a plan JSON file)
    is how the CLI and worker processes opt in without code changes;
    the loaded plan is cached per path so one process shares one clock
    across all its injection sites.  Returns ``None`` when no plan is
    active — the hot-path hooks reduce to this ``None``-check.
    """
    if explicit is not None:
        return explicit
    if _installed is not None:
        return _installed
    path = os.environ.get(ENV_VAR)
    if not path:
        return None
    if path not in _env_cache:
        _env_cache[path] = FaultPlan.from_file(path)
    return _env_cache[path]


# ----------------------------------------------------------------------
# Built-in plans: the property-test matrix and the CI chaos leg
# ----------------------------------------------------------------------
#: Named plan specs covering every injector.  Probability-gated rules
#: use key globs (``cell:*``) so the same plan applies to any grid —
#: which cells get hit is a stable function of (seed, key), never of
#: scheduling.  Every plan is *transient by construction* (``times``
#: caps per key), so a faulted campaign plus one clean resume always
#: converges to the undisturbed reference — the invariant the property
#: matrix in ``tests/test_faultline.py`` asserts.
BUILTIN_PLAN_SPECS: Dict[str, Dict[str, Any]] = {
    # Workers SIGKILLed mid-cell: EOF on the pipe, cell checkpoints
    # ``failed``, the pool refills, a clean resume re-runs it.
    "worker-crash": {
        "seed": 101,
        "rules": [
            {"site": "dispatch", "match": "cell:*", "p": 0.3, "times": 1,
             "action": {"kind": "sigkill"}},
        ],
    },
    # Workers SIGSTOPped mid-cell: heartbeats go silent, the stall
    # watchdog escalates terminate->kill->replace even with no
    # cell_timeout armed.
    "worker-stall": {
        "seed": 202,
        "rules": [
            {"site": "dispatch", "match": "cell:*", "p": 0.2, "times": 1,
             "action": {"kind": "sigstop"}},
        ],
    },
    # Workers that exit without replying: the pipe-EOF injector.
    "pipe-eof": {
        "seed": 303,
        "rules": [
            {"site": "cell-reply", "match": "cell:*", "p": 0.25, "times": 1,
             "action": {"kind": "eof"}},
        ],
    },
    # A couple of fresh spawns die at birth — below the breaker's
    # budget, so the pool backs off, respawns, and completes.
    "spawn-flaky": {
        "seed": 404,
        "rules": [
            {"site": "spawn", "match": "spawn", "count_in": [1, 3],
             "action": {"kind": "die"}},
        ],
    },
    # Transient sqlite adversity on every store operation: the first
    # two attempts of a key may fail locked/busy/disk-full; the seeded
    # backoff-with-jitter retry in SqliteSink absorbs them.
    "sqlite-transient": {
        "seed": 505,
        "rules": [
            {"site": "sqlite", "match": "*", "p": 0.4, "count_in": [1],
             "action": {"kind": "operational-error", "flavor": "locked"}},
            {"site": "sqlite", "match": "*", "p": 0.2, "count_in": [2],
             "action": {"kind": "operational-error", "flavor": "busy"}},
            {"site": "sqlite", "match": "*", "p": 0.1, "count_in": [3],
             "action": {"kind": "operational-error", "flavor": "disk-full"}},
        ],
    },
    # Slow cells: a wall-clock beat on the worker side.  Harmless to
    # results by design — it must be, for reports to stay byte-stable.
    "slow-cells": {
        "seed": 606,
        "rules": [
            {"site": "cell", "match": "cell:*", "p": 0.3, "times": 1,
             "action": {"kind": "sleep", "seconds": 0.05}},
        ],
    },
    # Everything at once, at lower rates: the kitchen sink.
    "kitchen-sink": {
        "seed": 707,
        "rules": [
            {"site": "dispatch", "match": "cell:*", "p": 0.12, "times": 1,
             "action": {"kind": "sigkill"}},
            {"site": "dispatch", "match": "cell:*", "p": 0.08, "times": 1,
             "action": {"kind": "sigstop"}},
            {"site": "cell-reply", "match": "cell:*", "p": 0.1, "times": 1,
             "action": {"kind": "eof"}},
            {"site": "spawn", "match": "spawn", "count_in": [2],
             "action": {"kind": "die"}},
            {"site": "sqlite", "match": "*", "p": 0.25, "count_in": [1],
             "action": {"kind": "operational-error", "flavor": "locked"}},
            {"site": "cell", "match": "cell:*", "p": 0.15, "times": 1,
             "action": {"kind": "sleep", "seconds": 0.02}},
        ],
    },
}


def builtin_plan_names() -> Tuple[str, ...]:
    """The built-in plan names, in a stable order."""
    return tuple(BUILTIN_PLAN_SPECS)


def builtin_plan(
    name: str,
    seed: Optional[int] = None,
    log_path: Optional[str] = None,
) -> FaultPlan:
    """Instantiate one built-in plan (optionally re-seeded/logged)."""
    try:
        spec = json.loads(json.dumps(BUILTIN_PLAN_SPECS[name]))
    except KeyError:
        raise ConfigurationError(
            f"unknown built-in fault plan {name!r}; known: "
            f"{sorted(BUILTIN_PLAN_SPECS)}"
        ) from None
    if seed is not None:
        spec["seed"] = int(seed)
    if log_path is not None:
        spec["log_path"] = log_path
    spec["name"] = name
    return FaultPlan.from_spec(spec)
