"""Testing infrastructure that ships with the library, not the tests.

:mod:`repro.testing.faultline` is the deterministic fault-injection
subsystem threaded through the campaign stack (dispatcher, sqlite
stores, shard merge).  It lives in the package — not under ``tests/``
— because operators use it too: the CI chaos smoke drives the real CLI
under a committed fault plan via the ``REPRO_FAULTLINE`` environment
variable, and the bench suite measures the cost of its idle hooks.
"""

from .faultline import (  # noqa: F401
    ENV_VAR,
    FaultClock,
    FaultInjected,
    FaultPlan,
    FaultRule,
    builtin_plan,
    builtin_plan_names,
    install,
    installed,
    resolve,
)

__all__ = [
    "ENV_VAR",
    "FaultClock",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "builtin_plan",
    "builtin_plan_names",
    "install",
    "installed",
    "resolve",
]
