"""E6-E7: the lower-bound witness battery.

Runs every Section 8 construction against both the paper's algorithms
(expected: bound respected / no decision, consistent with correctness) and
the naive baselines (expected: mechanically exhibited safety violations).
The table is the executable analogue of the theorem list in Section 1.5.
"""

from __future__ import annotations

from typing import List

from ..algorithms.alg1 import algorithm_1
from ..algorithms.alg2 import algorithm_2
from ..algorithms.alg3 import algorithm_3
from ..algorithms.baselines import eager_decider, naive_min_consensus
from ..algorithms.nonanonymous import non_anonymous_algorithm
from ..lowerbounds.theorems import (
    WitnessOutcome,
    theorem4_witness,
    theorem5_witness,
    theorem6_witness,
    theorem7_witness,
    theorem8_witness,
    theorem9_witness,
)
from .harness import Table

_VALUES = list(range(64))


def _row(table: Table, outcome: WitnessOutcome, expected: str) -> None:
    observed = outcome.violation or (
        "decided-fast" if outcome.decided else "no-decision/bound-respected"
    )
    table.add(
        theorem=outcome.theorem,
        algorithm=outcome.algorithm,
        expected=expected,
        observed=observed,
        k=outcome.k,
        indist=outcome.indistinguishability_ok,
        as_expected=(
            (expected == "violation" and outcome.violation is not None)
            or (expected == "respects" and outcome.violation is None)
        ),
    )


def run_impossibility_witnesses() -> List[Table]:
    """E6: Theorems 4, 5, 8 on real algorithms and baselines."""
    table = Table(
        title="E6  Impossibility witnesses (Theorems 4, 5, 8)",
        columns=[
            "theorem", "algorithm", "expected", "observed", "k",
            "indist", "as_expected",
        ],
        note="'respects' = correct algorithm never decides under these hypotheses",
    )
    _row(table, theorem4_witness(algorithm_1(), "a", "b", n=3, horizon=40),
         "respects")
    _row(table, theorem4_witness(naive_min_consensus(2), "a", "b", n=3),
         "violation")
    _row(table, theorem5_witness(algorithm_2(["a", "b"]), "a", "b", n=3,
                                 horizon=40),
         "respects")
    _row(table, theorem5_witness(naive_min_consensus(2), "a", "b", n=3),
         "violation")
    _row(table, theorem8_witness(algorithm_1(), "a", "b", n=3, horizon=60),
         "respects")
    _row(table, theorem8_witness(naive_min_consensus(2), "a", "b", n=3),
         "violation")
    return [table]


def run_round_complexity_witnesses() -> List[Table]:
    """E7: Theorems 6, 7, 9 on real algorithms and baselines."""
    table = Table(
        title="E7  Round-complexity lower bounds (Theorems 6, 7, 9)",
        columns=[
            "theorem", "algorithm", "expected", "observed", "k",
            "indist", "as_expected",
        ],
        note="'respects' = the algorithm is still undecided at the pigeonhole k",
    )
    _row(table, theorem6_witness(algorithm_2(_VALUES), _VALUES, n=2),
         "respects")
    _row(table, theorem6_witness(eager_decider(1), _VALUES, n=2),
         "violation")
    id_space = list(range(8))
    _row(
        table,
        theorem7_witness(
            non_anonymous_algorithm(_VALUES, id_space),
            _VALUES, id_space, n=2,
        ),
        "respects",
    )
    _row(
        table,
        theorem7_witness(
            # A non-anonymous eager baseline: same decider at each index.
            eager_decider(1),
            _VALUES, id_space, n=2,
        ),
        "violation",
    )
    _row(table, theorem9_witness(algorithm_3(_VALUES), _VALUES, n=2),
         "respects")
    _row(table, theorem9_witness(eager_decider(1), _VALUES, n=2),
         "violation")
    return [table]
