"""E12: anonymous counting — k-wake-up solves it, leader election cannot.

Section 4.1 separates contention-manager strength with a concrete
problem: counting the anonymous population is solvable given a k-wake-up
service (every process periodically gets solo rounds) and impossible
given only a leader-election service.  We run the protocol across
population sizes, block lengths, and crash schedules, then run the
indistinguishability construction that defeats any anonymous counter
under a leader-election service.
"""

from __future__ import annotations

from typing import List

from ..adversary.crash import NoCrashes, ScheduledCrashes
from ..adversary.loss import EventualCollisionFreedom, IIDLoss
from ..algorithms.counting import counting_algorithm
from ..contention.services import KWakeUpService
from ..core.environment import Environment
from ..core.execution import ExecutionEngine
from ..detectors.classes import ZERO_OAC
from ..lowerbounds.counting import counting_impossibility_witness
from .harness import Table


def _run_counting(n: int, k: int, stab: int, seed: int, crash=None):
    env = Environment(
        indices=tuple(range(n)),
        detector=ZERO_OAC.make(r_acc=stab),
        contention=KWakeUpService(k=k, stabilization_round=stab),
        loss=EventualCollisionFreedom(IIDLoss(0.4, seed=seed), r_cf=stab),
        crash=crash or NoCrashes(),
    )
    env.reset()
    algorithm = counting_algorithm()
    processes = algorithm.spawn_all(env.indices)
    engine = ExecutionEngine(env, processes)
    # Four full rotations after stabilization: plenty to converge.
    engine.run(stab + 4 * k * n, until_all_decided=False)
    return engine.result(), processes


def run_counting_experiment() -> List[Table]:
    """Build the E12 tables: convergence sweep + impossibility verdict."""
    table = Table(
        title="E12a  Anonymous counting with a k-wake-up service (§4.1)",
        columns=[
            "n", "k", "crashes", "live", "final_counts", "converged",
        ],
        note="final_counts: last output of each surviving process",
    )
    for n in (2, 4, 7):
        for k in (1, 3):
            result, processes = _run_counting(n, k, stab=6, seed=n * 10 + k)
            finals = sorted(
                processes[pid].current_count for pid in result.indices
            )
            table.add(
                n=n, k=k, crashes=0, live=n,
                final_counts=finals,
                converged=all(c == n for c in finals),
            )
    # With a crash: counts converge to the live population.
    n, k = 5, 2
    result, processes = _run_counting(
        n, k, stab=6, seed=3,
        crash=ScheduledCrashes.at({20: [4]}),
    )
    finals = sorted(
        processes[pid].current_count for pid in result.correct_indices()
    )
    table.add(
        n=n, k=k, crashes=1, live=n - 1,
        final_counts=finals,
        converged=all(c == n - 1 for c in finals),
    )

    impossibility = Table(
        title="E12b  Counting impossibility under a leader-election service",
        columns=[
            "small_n", "large_n", "leader_indist", "followers_indist",
            "counting_defeated",
        ],
        note=(
            "identical leader views across population sizes: any output "
            "is wrong in one of the two systems"
        ),
    )
    witness = counting_impossibility_witness(counting_algorithm())
    impossibility.add(
        small_n=2, large_n=3,
        leader_indist=witness.leader_indistinguishable,
        followers_indist=witness.followers_indistinguishable,
        counting_defeated=witness.counting_defeated,
    )
    return [table, impossibility]
