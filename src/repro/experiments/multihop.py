"""E16: the multihop preview — broadcast over the extended model.

The conclusion's future work, made concrete: flood a message through
line / grid / clique-chain topologies under the two channel semantics
Section 1.2 contrasts.  The table reproduces the qualitative story:

* under the **total collision model**, blind flooding deadlocks wherever
  frontier nodes permanently hear several informed relays at once (the
  grid: diagonal frontiers always face two talking neighbours), while
  randomized backoff completes — contention management is *necessary*
  in that model;
* under the **capture** channel (the paper's realistic reading), blind
  flooding completes everywhere and tracks the diameter — the
  total-collision model's pessimism is an artifact, exactly the gap the
  paper's communication model is built to close.
"""

from __future__ import annotations

from typing import List

from ..substrate.multihop import MultihopNetwork, flood
from .harness import Table


def run_multihop_flood(max_rounds: int = 300) -> List[Table]:
    table = Table(
        title="E16  Multihop flooding: total-collision vs capture channels",
        columns=[
            "topology", "n", "diameter", "strategy", "channel",
            "completed", "rounds",
        ],
        note="'—' rounds = flood never completed within the horizon",
    )
    topologies = [
        ("line-12", MultihopNetwork.line(12)),
        ("grid-4x4", MultihopNetwork.grid(4, 4)),
        ("cliques-4x4", MultihopNetwork.clique_chain(4, 4)),
    ]
    for name, network in topologies:
        for strategy in ("blind", "backoff"):
            for channel in ("total", "capture"):
                result = flood(
                    network, source=min(network.indices),
                    strategy=strategy, channel=channel,
                    max_rounds=max_rounds, seed=11,
                )
                table.add(
                    topology=name,
                    n=result.n,
                    diameter=result.diameter,
                    strategy=strategy,
                    channel=channel,
                    completed=result.completed,
                    rounds=result.completed_round or "—",
                )
    return [table]
