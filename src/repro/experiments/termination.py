"""Termination experiments E2-E5: measured rounds vs the paper's bounds.

Each experiment runs an algorithm under its theorem's hypotheses and
reports *rounds after CST* against the closed-form bound:

* E2 (Theorem 1)  — Algorithm 1 terminates by ``CST + 2``, for every n,
  CST position, and crash schedule tried;
* E3 (Theorem 2)  — Algorithm 2 terminates by ``CST + 2(⌈lg|V|⌉ + 1)``;
  the sweep over ``|V|`` reproduces the logarithmic growth curve;
* E4 (Cor. 3 / §7.3) — the non-anonymous variant's cost tracks
  ``min{lg|V|, lg|I|}``; sweeping ``|I|`` with ``|V|`` fixed shows the
  crossover;
* E5 (Theorem 3)  — Algorithm 3 under total silence terminates within
  ``8·⌈lg|V|⌉`` rounds of failures ceasing, including the crash-induced
  re-ascent worst case.
"""

from __future__ import annotations

import math
from typing import List

from ..adversary.crash import ScheduledCrashes
from ..algorithms.alg1 import algorithm_1
from ..algorithms.alg1 import termination_bound as alg1_bound
from ..algorithms.alg2 import algorithm_2
from ..algorithms.alg2 import termination_bound as alg2_bound
from ..algorithms.alg3 import algorithm_3
from ..algorithms.alg3 import termination_bound as alg3_bound
from ..algorithms.nonanonymous import non_anonymous_algorithm
from ..algorithms.nonanonymous import termination_bound as nonanon_bound
from ..core.consensus import evaluate
from ..core.execution import run_consensus
from ..core.records import RecordPolicy
from .harness import SweepRunner, Table
from .scenarios import maj_oac_environment, nocf_environment, zero_oac_environment


def run_alg1_termination(
    ns=(2, 4, 8, 16),
    csts=(1, 8),
    seeds=(0, 1, 2),
) -> List[Table]:
    """E2: Algorithm 1 decides exactly ``CST + 2`` (or earlier)."""
    table = Table(
        title="E2  Algorithm 1 termination (Theorem 1: by CST + 2)",
        columns=[
            "n", "cst", "seed", "decided_round", "bound", "within_bound",
            "agreement",
        ],
    )
    values = list(range(8))
    for n in ns:
        for cst in csts:
            for seed in seeds:
                env = maj_oac_environment(n, cst=cst, seed=seed)
                assignment = {i: values[i % len(values)] for i in range(n)}
                result = run_consensus(
                    env, algorithm_1(), assignment,
                    max_rounds=alg1_bound(cst) + 10,
                )
                report = evaluate(result, by_round=alg1_bound(cst))
                table.add(
                    n=n, cst=cst, seed=seed,
                    decided_round=result.last_decision_round(),
                    bound=alg1_bound(cst),
                    within_bound=report.termination,
                    agreement=report.agreement,
                )
    return [table]


def _alg2_sweep_cell(params, derived_seed):
    """E3 sweep cell (module-level so it pickles to sweep workers).

    Reproduces exactly the original serial computation for one ``|V|``:
    the cell's own ``seed`` coordinate overrides the derived per-cell
    seed, so the table is identical however the cells are distributed.
    """
    vc = params["vc"]
    n = params["n"]
    cst = params["cst"]
    seed = params.get("seed", derived_seed)
    values = list(range(vc))
    env = zero_oac_environment(n, cst=cst, seed=seed)
    assignment = {i: values[(i * 7) % vc] for i in range(n)}
    bound = alg2_bound(cst, vc)
    result = run_consensus(
        env, algorithm_2(values), assignment, max_rounds=bound + 20,
        record_policy=RecordPolicy.SUMMARY,
    )
    report = evaluate(result, by_round=bound)
    decided = result.last_decision_round()
    return {
        "|V|": vc,
        "lg|V|": max(1, math.ceil(math.log2(vc))) if vc > 1 else 1,
        "rounds_after_cst": None if decided is None else decided - cst,
        "bound_after_cst": bound - cst,
        "within_bound": report.termination,
        "solved": report.solved,
    }


def run_alg2_value_sweep(
    value_counts=(2, 4, 16, 64, 256, 1024),
    n: int = 5,
    cst: int = 4,
    seed: int = 0,
    processes=None,
) -> List[Table]:
    """E3: Algorithm 2's rounds-after-CST grow as ``2(⌈lg|V|⌉ + 1)``.

    The per-|V| cells are independent, so they fan out across
    :class:`~repro.experiments.harness.SweepRunner` workers; rows come
    back in grid order under the streaming record policy.
    """
    table = Table(
        title="E3  Algorithm 2 round complexity vs |V| (Theorem 2)",
        columns=[
            "|V|", "lg|V|", "rounds_after_cst", "bound_after_cst",
            "within_bound", "solved",
        ],
        note="rounds_after_cst = decision round - CST; bound = 2(⌈lg|V|⌉+1)",
    )
    runner = SweepRunner(_alg2_sweep_cell, processes=processes)
    outcomes = runner.run_grid(
        vc=value_counts, n=[n], cst=[cst], seed=[seed]
    )
    for outcome in outcomes:
        table.add(**outcome.payload)
    return [table]


def run_nonanon_crossover(
    id_counts=(4, 16, 64, 256),
    value_count: int = 256,
    n: int = 4,
    cst: int = 1,
    seed: int = 0,
) -> List[Table]:
    """E4: the non-anonymous variant tracks ``min{lg|V|, lg|I|}``.

    With ``|V|`` fixed at 256, small ID spaces elect a leader cheaply
    (cost ~ lg|I|) and large ID spaces fall back to Algorithm 2 over
    values (cost ~ lg|V|): the measured curve flattens at the crossover.
    """
    table = Table(
        title="E4  Non-anonymous crossover (Corollary 3 / Section 7.3)",
        columns=[
            "|I|", "|V|", "branch", "min_lg", "rounds_after_cst",
            "bound_after_cst", "within_bound", "solved",
        ],
        note="branch: which machinery §7.3 picks; min_lg = min{lg|V|, lg|I|}",
    )
    values = list(range(value_count))
    for ic in id_counts:
        id_space = list(range(ic))
        branch = "alg2-on-values" if value_count <= ic else "leader-elect"
        env = zero_oac_environment(
            n, cst=cst, seed=seed, indices=id_space[:n]
        )
        assignment = {
            i: values[(i * 31 + 5) % value_count] for i in id_space[:n]
        }
        bound = nonanon_bound(cst, value_count, ic)
        result = run_consensus(
            env,
            non_anonymous_algorithm(values, id_space),
            assignment,
            max_rounds=bound + 40,
        )
        report = evaluate(result, by_round=bound)
        decided = result.last_decision_round()
        table.add(**{
            "|I|": ic,
            "|V|": value_count,
            "branch": branch,
            "min_lg": min(
                math.ceil(math.log2(value_count)),
                math.ceil(math.log2(ic)),
            ),
            "rounds_after_cst": None if decided is None else decided - cst,
            "bound_after_cst": bound - cst,
            "within_bound": report.termination,
            "solved": report.solved,
        })
    return [table]


def run_alg3_nocf(
    value_counts=(2, 8, 32, 128, 512),
    n: int = 4,
) -> List[Table]:
    """E5: Algorithm 3 under total silence, with and without crashes."""
    table = Table(
        title="E5  Algorithm 3 under NOCF (Theorem 3: ≤ 8⌈lg|V|⌉ after failures)",
        columns=[
            "|V|", "crashes", "failures_cease", "decided_round", "bound",
            "within_bound", "solved",
        ],
    )
    for vc in value_counts:
        values = list(range(vc))
        # Failure-free run.
        env = nocf_environment(n)
        assignment = {i: values[(i * 13 + 1) % vc] for i in range(n)}
        bound = alg3_bound(vc, after_round=0)
        result = run_consensus(
            env, algorithm_3(values), assignment, max_rounds=bound + 8
        )
        report = evaluate(result, by_round=bound)
        table.add(**{
            "|V|": vc, "crashes": 0, "failures_cease": 0,
            "decided_round": result.last_decision_round(),
            "bound": bound,
            "within_bound": report.termination,
            "solved": report.solved,
        })
        if vc < 8:
            continue
        # Crash the process with the smallest value mid-descent: the
        # survivors must re-ascend (the paper's O(lg|V|) failure cost).
        crash_round = 6
        env = nocf_environment(
            n, crash=ScheduledCrashes.at({crash_round: [0]})
        )
        assignment = {i: values[-1] for i in range(n)}
        assignment[0] = values[0]  # the crasher drags everyone left first
        bound = alg3_bound(vc, after_round=crash_round)
        result = run_consensus(
            env, algorithm_3(values), assignment, max_rounds=bound + 8
        )
        report = evaluate(result, by_round=bound)
        table.add(**{
            "|V|": vc, "crashes": 1, "failures_cease": crash_round,
            "decided_round": result.last_decision_round(),
            "bound": bound,
            "within_bound": report.termination,
            "solved": report.solved,
        })
    return [table]
