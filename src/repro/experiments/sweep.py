"""E17: the engineering sweep — record policies × workers at a glance.

Not a paper artifact.  This experiment exercises the production-scaling
layer this repo grows toward: it fans a (trial × n × detector-class) grid
through :class:`~repro.experiments.harness.SweepRunner` under the
streaming ``SUMMARY`` record policy, then re-runs a sample cell under
``FULL`` to demonstrate the policies' observational equivalence (same
seeds, same decisions, same decision rounds — only the retained state
differs).
"""

from __future__ import annotations

from typing import List

from .harness import SweepRunner, Table, consensus_sweep_cell


def run_parallel_sweep(
    trials=(0, 1),
    ns=(4, 8),
    detector_names=("0-OAC", "maj-OAC"),
    processes=None,
    base_seed: int = 0,
) -> List[Table]:
    """Fan the grid across workers and verify FULL/SUMMARY equivalence."""
    runner = SweepRunner(
        consensus_sweep_cell, processes=processes, base_seed=base_seed
    )
    outcomes = runner.run_grid(
        trial=trials, n=ns, detector=detector_names,
        record_policy=["summary"],
    )

    table = Table(
        title="E17  Parallel sweep under streaming record policies",
        columns=[
            "trial", "n", "detector", "seed", "rounds", "decision_round",
            "solved", "full_equivalent",
        ],
        note=(
            "cells run under RecordPolicy.SUMMARY across multiprocessing "
            "workers; full_equivalent re-runs the first and last cell "
            "under FULL and compares decisions + decision rounds (blank "
            "= not sampled)"
        ),
    )
    # Observational-equivalence spot check on a sample (first and last
    # cell), not the whole grid — re-running everything under FULL would
    # double the experiment's work and defeat the fan-out it showcases.
    sampled = {outcomes[0].cell.index, outcomes[-1].cell.index}
    for outcome in outcomes:
        p = outcome.params
        payload = outcome.payload
        equivalent = None
        if outcome.cell.index in sampled:
            full_params = dict(p, record_policy="full")
            full_payload = consensus_sweep_cell(
                full_params, outcome.cell.seed
            )
            equivalent = (
                full_payload["decisions"] == payload["decisions"]
                and full_payload["decision_rounds"]
                == payload["decision_rounds"]
                and full_payload["rounds"] == payload["rounds"]
            )
        table.add(**{
            "trial": p["trial"],
            "n": p["n"],
            "detector": p["detector"],
            "seed": outcome.cell.seed,
            "rounds": payload["rounds"],
            "decision_round": payload["decision_round"],
            "solved": payload["solved"],
            "full_equivalent": equivalent,
        })
    return [table]
