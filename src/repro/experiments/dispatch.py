"""One dispatcher for every campaign: a selector-driven persistent pool.

Every way of running a grid of sweep cells — serial, parallel, with or
without per-cell deadlines — is the *same* loop at a different width.
:class:`CampaignDispatcher` owns a persistent pool of worker processes
and drives them with a :mod:`selectors` event loop over the worker
pipes; the campaign runner, the sweep harness, and the benchmarks all
route through it, so worker reuse, deadline enforcement, and
completion-order delivery are universal rather than features of one
code path.

The decision table (there is no fourth path)::

    in_process  processes  cell_timeout   behaviour
    ----------  ---------  ------------   ------------------------------
    True        (ignored)  (unenforced)   cells run serially inside the
                                          calling process — the debug
                                          escape hatch; a set timeout
                                          warns that it cannot be
                                          enforced
    False       0/1        None           one persistent worker, results
                                          in completion order (== grid
                                          order at width 1)
    False       0/1        t seconds      same worker, but each cell has
                                          a wall-clock deadline; overrun
                                          => terminate->kill, replace,
                                          checkpoint ``timed_out``
    False       N>1/None   None           N persistent workers (None =
                                          cpu count), completion-order
                                          delivery, worker reuse across
                                          cells and across passes
    False       N>1/None   t seconds      the full deadline pool: N
                                          workers, one parent-tracked
                                          deadline per in-flight cell

Contract highlights:

* **One execution contract** — :func:`execute_cell_job` is the only
  place a cell function is invoked, whether in-process or on a worker,
  so a cell behaves identically everywhere (exceptions become ``failed``
  results carrying the exception object when it can cross the pipe).
* **Cell sources are iterators** — :meth:`CampaignDispatcher.run`
  accepts any iterable of cells and pulls from it *lazily*: a new cell
  is materialised only when a worker slot frees up (never more than
  ``width`` cells ahead of the results).  This is the seam for
  distributed sharding: a shard host is this loop fed by a shard
  iterator instead of a list.
* **Idle hook** — a callback invoked after every completed cell, while
  the loop is between completions.  This is the seam for a long-lived
  analytics service: a campaign can answer live queries from the hook
  without a second thread.
* **Deterministic teardown** — :meth:`CampaignDispatcher.close` settles
  the pool synchronously: sentinel to every idle worker, pipes closed,
  ``join(grace)``, terminate->kill escalation for stragglers.  Workers
  are additionally daemonic purely as an interpreter-exit backstop for
  callers that never close; correctness never leans on GC timing.
* **Fork hygiene** — the ``pre_fork`` callback passed to ``run`` is
  invoked immediately before *every* worker spawn (first fill and
  replacements alike).  The campaign runner points it at
  ``store.disconnect``, making this the single place the "never fork
  with a live sqlite connection" invariant is enforced.
* **Stall watchdog** — with ``stall_timeout`` set, busy workers send
  periodic heartbeats over their existing result pipes; a worker that
  goes silent past the timeout (SIGSTOPped, wedged in GIL-holding C
  code, swapped to death) is escalated terminate→kill and replaced,
  and its cell checkpoints ``failed`` (so a later resume retries it)
  even when no ``cell_timeout`` is armed.  A slow-but-alive cell keeps
  heartbeating and is never touched — slowness is ``cell_timeout``'s
  business, silence is the watchdog's.
* **Fault injection** — when a
  :class:`~repro.testing.faultline.FaultPlan` is active (``fault_plan=``
  kwarg or the ``REPRO_FAULTLINE`` environment variable) the loop
  consults it at its injection sites: worker spawn (spawn failures),
  job dispatch (SIGKILL/SIGSTOP mid-cell), cell execution (slow
  cells), and the result reply (pipe EOF).  With no plan active every
  site is a ``None``-check.
"""

from __future__ import annotations

import collections
import dataclasses
import multiprocessing
import os
import pickle
import selectors
import signal
import threading
import time
import warnings
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..core.errors import ConfigurationError
from ..testing import faultline

#: Grace period before a terminate escalates to kill.
TERM_GRACE: float = 5.0

#: Consecutive fresh-spawn deaths tolerated before the pool gives up.
MAX_SPAWN_DEATHS: int = 5

#: Base of the exponential backoff between doomed respawns (seconds).
RESPAWN_BACKOFF: float = 0.05

#: The heartbeat message busy workers send when the stall watchdog is
#: armed.  A 1-tuple, so it can never be confused with the 6-tuple
#: result protocol.
_HEARTBEAT: Tuple[str] = ("__heartbeat__",)


class WorkerPoolError(RuntimeError):
    """Freshly-spawned workers keep dying before delivering any result.

    Raised by :class:`CampaignDispatcher` after ``max_spawn_deaths``
    consecutive spawn->death cycles with zero jobs completed: something
    systemic (the cell function's imports, the environment, resource
    exhaustion) kills every new worker, and respawning forever would
    burn the machine while checkpointing nothing but failures.
    """


# ----------------------------------------------------------------------
# The cell-execution contract
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class CellResult:
    """The outcome of one dispatched cell, however it ran.

    ``status`` is ``done``, ``failed``, or ``timed_out``.  ``error`` is
    the repr of the cell's exception (or a dispatcher-level diagnosis
    such as a worker death); ``exception`` carries the exception object
    itself when it survived the pipe, so callers that want to re-raise
    (the sweep harness) keep the original type.  ``worker_pid`` is the
    pool worker that ran the cell (``None`` in-process) — the raw
    material for worker-reuse accounting.
    """

    index: int
    status: str
    payload: Any = None
    error: Optional[str] = None
    elapsed: float = 0.0
    exception: Optional[BaseException] = None
    worker_pid: Optional[int] = None


def execute_cell_job(
    fn: Callable[[Dict[str, Any], int], Any],
    params: Mapping[str, Any],
    seed: int,
    extra: Optional[Mapping[str, Any]] = None,
) -> Tuple[str, Any, Optional[str], float, Optional[BaseException]]:
    """Run one cell function, never letting its exception escape.

    Returns ``(status, payload, error, elapsed, exception)`` with status
    ``done`` or ``failed`` — the single execution contract behind every
    dispatch configuration, so a cell behaves identically whether it ran
    in-process or on a pool worker.
    """
    start = time.monotonic()
    try:
        payload = fn(dict(params, **(extra or {})), seed)
    except Exception as exc:
        return ("failed", None, repr(exc), time.monotonic() - start, exc)
    return ("done", payload, None, time.monotonic() - start, None)


def probe_worker_processes() -> None:
    """Raise when this platform cannot start worker processes."""
    proc = multiprocessing.Process(target=_noop_worker)
    proc.start()
    proc.join()


def _noop_worker() -> None:
    """Target for :func:`probe_worker_processes` (module-level to pickle)."""


# ----------------------------------------------------------------------
# The worker side of the pipe protocol
# ----------------------------------------------------------------------
def _dispatch_worker(
    conn,
    fn,
    extra: Dict[str, Any],
    fault_spec: Optional[Dict[str, Any]] = None,
    heartbeat_interval: Optional[float] = None,
) -> None:
    """Persistent pool worker: loop over jobs fed by the parent.

    Protocol: the parent sends ``(cell_index, params, seed)`` tuples,
    strictly one in flight per worker, and a ``None`` sentinel to shut
    down; the worker answers each job with ``(cell_index, status,
    payload, error, elapsed, exception)`` and never raises for a cell's
    own exception (``BaseException`` included — a cell calling
    ``sys.exit`` comes back ``failed`` with the same ``repr`` the
    in-process path would record, never "worker died").  A result whose
    payload or exception cannot be pickled degrades to a ``failed``
    reply naming the pickling problem, so the parent always hears back.
    An overrun worker is simply terminated by the parent — no
    cooperation required — and a fresh worker takes its place.

    When ``heartbeat_interval`` is set (the parent armed its stall
    watchdog) a daemon thread sends :data:`_HEARTBEAT` over the same
    pipe while a job is running, serialised against the result send by
    a lock.  The beats stop with the process — SIGSTOP, a wedged
    GIL-holding extension, an OOM kill all silence them — which is
    exactly the signal the parent's watchdog keys on.

    ``fault_spec`` reconstructs this process's
    :class:`~repro.testing.faultline.FaultPlan` (fresh clocks — its
    sites are keyed per cell, not per process) and installs it as the
    ambient plan so the cell function's own ``SqliteSink`` picks it up.

    Sibling workers fork-inherit the parent's end of this worker's
    pipe, so a hard-killed parent (SIGKILL, OOM) never produces an EOF
    here; the recv poll therefore watches for re-parenting and exits
    when the parent is gone, so idle workers can't outlive a killed
    campaign as orphans.
    """
    plan = None
    if fault_spec is not None:
        plan = faultline.FaultPlan.from_spec(fault_spec)
        faultline.install(plan)
    send_lock = threading.Lock()
    busy_flag = threading.Event()
    hb_stop = threading.Event()
    if heartbeat_interval:
        def _beat() -> None:
            while not hb_stop.wait(heartbeat_interval):
                if not busy_flag.is_set():
                    continue
                try:
                    with send_lock:
                        conn.send(_HEARTBEAT)
                except Exception:
                    return  # pipe gone; the main loop is exiting too
        threading.Thread(target=_beat, daemon=True).start()
    parent_pid = os.getppid()
    try:
        while True:
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return  # parent died without an EOF; don't orphan
            try:
                job = conn.recv()
            except (EOFError, OSError):
                break
            if job is None:
                break
            index, params, seed = job
            fault_key = f"cell:{index}"
            if plan is not None:
                action = plan.fire("cell", fault_key)
                if action is not None and action.get("kind") == "sleep":
                    time.sleep(float(action.get("seconds", 0.01)))
            exit_after = False
            busy_flag.set()
            try:
                status, payload, error, elapsed, exc = execute_cell_job(
                    fn, params, seed, extra
                )
            except BaseException as caught:  # SystemExit/KeyboardInterrupt
                status, payload, error, elapsed, exc = (
                    "failed", None, repr(caught), 0.0, None
                )
                exit_after = isinstance(caught, KeyboardInterrupt)
            if plan is not None and plan.fire("cell-reply", fault_key):
                # The pipe-EOF injector: die without replying, exactly
                # like a crash between finishing the cell and sending.
                conn.close()
                os._exit(1)
            try:
                try:
                    with send_lock:
                        conn.send(
                            (index, status, payload, error, elapsed, exc)
                        )
                except (BrokenPipeError, OSError):
                    break
                except Exception as send_exc:
                    # Connection.send pickles before writing, so a
                    # pickling failure leaves the pipe clean for the
                    # degraded reply.
                    with send_lock:
                        conn.send((
                            index, "failed", None,
                            f"cell result not picklable: {send_exc!r}",
                            elapsed, None,
                        ))
            except (BrokenPipeError, OSError):
                break
            finally:
                busy_flag.clear()
            if exit_after:
                break  # interrupted: let the parent replace this worker
    finally:
        hb_stop.set()
        conn.close()


def _doomed_worker(conn) -> None:
    """Target for an injected spawn failure: die at birth.

    Closing our pipe end first guarantees the parent observes the death
    (EOF or a broken send) rather than blocking.
    """
    conn.close()
    os._exit(1)


class _Worker:
    """Parent-side handle on one pool worker process.

    ``jobs_done`` counts results this worker delivered — zero marks a
    fresh spawn, the signal the respawn-storm breaker keys on.
    """

    __slots__ = ("proc", "conn", "jobs_done")

    def __init__(self, proc: multiprocessing.Process, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.jobs_done = 0

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def stop(self, grace: float = TERM_GRACE) -> None:
        """Terminate->kill escalation; never returns with a live process."""
        try:
            self.conn.close()
        except Exception:
            pass
        self.proc.terminate()
        if self.proc.pid is not None:
            # A SIGSTOPped worker (stall injection, an operator's ^Z)
            # holds the SIGTERM pending forever; SIGCONT delivers it.
            # For a running worker this is a no-op.
            try:
                os.kill(self.proc.pid, signal.SIGCONT)
            except (ProcessLookupError, OSError):
                pass
        self.proc.join(grace)
        if self.proc.is_alive():
            # SIGTERM caught/ignored or the cell is stuck in
            # uninterruptible C code — escalate so one cell can never
            # hang the grid.
            self.proc.kill()
            self.proc.join()

    def shutdown(self, grace: float = TERM_GRACE) -> None:
        """Graceful exit for an idle worker: sentinel, close the pipe,
        ``join(grace)``, then escalate.  Deterministic — the caller gets
        back a reaped process or none at all, never a leak."""
        try:
            self.conn.send(None)
        except Exception:
            pass
        try:
            self.conn.close()
        except Exception:
            pass
        self.proc.join(grace)
        if self.proc.is_alive():
            self.stop(grace)


# ----------------------------------------------------------------------
# The dispatcher
# ----------------------------------------------------------------------
class CampaignDispatcher:
    """A persistent worker pool driven by one selector event loop.

    Parameters
    ----------
    cell_fn:
        The cell function ``fn(params, seed) -> payload``.  Must be
        picklable for pooled execution (probed up front; an unpicklable
        function degrades to in-process execution with a warning, never
        a crash).
    extra_params:
        Non-coordinate parameters merged into every cell's ``params`` at
        execution time (the campaign's infra paths).
    processes:
        Pool width.  ``None`` resolves to the CPU count; ``0``/``1``
        mean a one-worker pool — still worker reuse, still deadlines,
        just no parallelism.  Fewer workers than ``width`` are spawned
        when the cell source never keeps that many busy.
    cell_timeout:
        Optional per-cell wall-clock budget in seconds.  ``None`` means
        no deadline tracking: the same loop simply blocks on the worker
        pipes without a timeout.
    in_process:
        Escape hatch: run every cell serially inside the calling
        process (no workers, no pickling, debugger-friendly).  Timeouts
        cannot be enforced in-process; a set ``cell_timeout`` warns.
    idle_hook:
        Callback invoked with no arguments after each completed cell —
        the seam for serving live queries while a campaign runs.  A
        per-``run`` hook can override it.
    term_grace:
        Grace period before terminate escalates to kill.
    max_spawn_deaths:
        Consecutive fresh-spawn deaths (a worker dying before delivering
        any result) tolerated before the loop raises
        :class:`WorkerPoolError` instead of respawning forever.  Each
        doomed respawn is preceded by an exponentially growing backoff
        (base ``respawn_backoff`` seconds); any delivered result resets
        the streak, and an *established* worker's death never counts —
        only a spawn storm trips the breaker.
    fault_plan:
        Optional :class:`~repro.testing.faultline.FaultPlan` consulted
        at the dispatcher's injection sites.  ``None`` falls back to
        the process-installed plan or the ``REPRO_FAULTLINE``
        environment variable (see
        :func:`repro.testing.faultline.resolve`); the common case — no
        plan anywhere — costs one ``None`` check per site.
    stall_timeout:
        Optional stall watchdog budget in seconds.  When set, busy
        workers heartbeat over their result pipes (interval
        ``min(1.0, stall_timeout / 4)``) and a worker silent for this
        long is escalated terminate→kill, replaced, and its cell
        delivered ``failed`` (retryable on resume) with a
        deterministic error message.  Independent of ``cell_timeout``:
        the watchdog catches *silence*, the deadline catches
        *slowness* — a slow cell that keeps heartbeating is never
        touched by the watchdog.

    The pool is *persistent across* :meth:`run` *calls*: workers spawned
    by one pass park on their pipes and are reused by the next, so a
    resume loop does not pay a pool spin-up per pass.  :meth:`close`
    (or the context manager exit) tears the pool down deterministically.
    """

    def __init__(
        self,
        cell_fn: Callable[[Dict[str, Any], int], Any],
        extra_params: Optional[Mapping[str, Any]] = None,
        processes: Optional[int] = None,
        cell_timeout: Optional[float] = None,
        in_process: bool = False,
        idle_hook: Optional[Callable[[], None]] = None,
        term_grace: float = TERM_GRACE,
        max_spawn_deaths: int = MAX_SPAWN_DEATHS,
        respawn_backoff: float = RESPAWN_BACKOFF,
        fault_plan: Optional["faultline.FaultPlan"] = None,
        stall_timeout: Optional[float] = None,
    ) -> None:
        self.cell_fn = cell_fn
        self.extra_params = dict(extra_params or {})
        if processes is None:
            width = multiprocessing.cpu_count() or 1
        else:
            width = max(1, int(processes))
        self.width = width
        self.cell_timeout = cell_timeout
        self.idle_hook = idle_hook
        self.term_grace = term_grace
        self.max_spawn_deaths = max(1, int(max_spawn_deaths))
        self.respawn_backoff = float(respawn_backoff)
        self.fault_plan = faultline.resolve(fault_plan)
        self._worker_fault_spec = (
            None if self.fault_plan is None else self.fault_plan.to_spec()
        )
        if stall_timeout is not None:
            stall_timeout = float(stall_timeout)
            if stall_timeout <= 0:
                raise ConfigurationError(
                    f"stall_timeout must be positive, got {stall_timeout}"
                )
        self.stall_timeout = stall_timeout
        self._heartbeat_interval = (
            None if stall_timeout is None else min(1.0, stall_timeout / 4.0)
        )
        self._spawn_death_streak = 0
        self._in_process = bool(in_process)
        # An explicitly in-process dispatcher needs no capability probe.
        self._probed = bool(in_process)
        self._warned_unenforced = False
        self._workers: List[_Worker] = []
        self._pre_fork: Optional[Callable[[], None]] = None

    # -- lifecycle ------------------------------------------------------
    @property
    def in_process(self) -> bool:
        """Whether cells run inside the calling process (resolved mode)."""
        return self._in_process

    def worker_pids(self) -> List[int]:
        """Pids of the currently parked/live pool workers."""
        return [w.pid for w in self._workers if w.pid is not None]

    def close(self) -> None:
        """Deterministic pool teardown (idempotent).

        Every parked worker gets the shutdown sentinel, its pipe is
        closed, and the process is ``join``\\ ed within the grace period
        — terminate->kill for anything still alive after it.  Nothing is
        left to daemon-flag or destructor timing; after ``close``
        returns there are no pool children.  The dispatcher remains
        usable: the next :meth:`run` simply respawns workers.
        """
        while self._workers:
            self._workers.pop().shutdown(self.term_grace)

    def __enter__(self) -> "CampaignDispatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- mode resolution ------------------------------------------------
    def _resolve_in_process(self) -> bool:
        """Probe once whether pooled execution is possible here."""
        if self._probed:
            return self._in_process
        self._probed = True
        try:
            pickle.dumps((self.cell_fn, self.extra_params))
        except Exception as exc:
            warnings.warn(
                f"CampaignDispatcher: cell function not picklable "
                f"({exc!r}); running cells serially in-process",
                RuntimeWarning,
                stacklevel=4,
            )
            self._in_process = True
            return True
        try:
            if self._pre_fork is not None:
                self._pre_fork()  # the probe forks too
            probe_worker_processes()
        except Exception as exc:
            warnings.warn(
                f"CampaignDispatcher: worker processes unavailable "
                f"({exc!r}); running cells in-process",
                RuntimeWarning,
                stacklevel=4,
            )
            self._in_process = True
            return True
        return False

    def _warn_unenforced_timeout(self) -> None:
        if self.cell_timeout is not None and not self._warned_unenforced:
            self._warned_unenforced = True
            warnings.warn(
                "CampaignDispatcher: cells run in-process — per-cell "
                "timeouts are NOT enforced",
                RuntimeWarning,
                stacklevel=4,
            )

    # -- the loop -------------------------------------------------------
    def run(
        self,
        cells: Iterable[Any],
        on_result: Callable[[Any, CellResult], None],
        pre_fork: Optional[Callable[[], None]] = None,
        idle_hook: Optional[Callable[[], None]] = None,
    ) -> int:
        """Drive every cell from ``cells`` through the pool.

        ``cells`` may be any iterable of cell objects exposing
        ``.index``, ``.seed``, and ``.as_dict()`` (duck-typed —
        :class:`~repro.experiments.harness.SweepCell` is the usual
        shape); it is consumed *lazily*, one pull per freed worker slot.
        ``on_result(cell, result)`` fires in completion order; an
        exception it raises aborts the run (in-flight workers are
        stopped, parked workers survive) and propagates.  ``pre_fork``
        is called immediately before every worker spawn during this run.
        Returns the number of completed cells.
        """
        hook = self.idle_hook if idle_hook is None else idle_hook
        self._pre_fork = pre_fork
        try:
            if self._resolve_in_process():
                self._warn_unenforced_timeout()
                return self._run_in_process(cells, on_result, hook)
            return self._run_pool(cells, on_result, hook)
        finally:
            self._pre_fork = None

    def _run_in_process(self, cells, on_result, hook) -> int:
        completed = 0
        plan = self.fault_plan
        for cell in cells:
            if plan is not None:
                action = plan.fire("cell", f"cell:{cell.index}")
                if action is not None and action.get("kind") == "sleep":
                    time.sleep(float(action.get("seconds", 0.01)))
            status, payload, error, elapsed, exc = execute_cell_job(
                self.cell_fn, cell.as_dict(), cell.seed, self.extra_params
            )
            completed += 1
            on_result(cell, CellResult(
                index=cell.index, status=status, payload=payload,
                error=error, elapsed=elapsed, exception=exc,
                worker_pid=None,
            ))
            if hook is not None:
                hook()
        return completed

    def _spawn(self) -> _Worker:
        # Checkpointing between completions may have reopened the
        # caller's store; pre_fork (store.disconnect) runs before every
        # spawn — first fill and replacements alike — because an sqlite
        # connection must never cross a fork.
        if self._pre_fork is not None:
            self._pre_fork()
        parent_conn, child_conn = multiprocessing.Pipe()
        if (
            self.fault_plan is not None
            and self.fault_plan.fire("spawn", "spawn")
        ):
            # Injected spawn failure: the child dies at birth, exactly
            # like a broken cell-function import or an OOM-killed fork.
            proc = multiprocessing.Process(
                target=_doomed_worker, args=(child_conn,)
            )
        else:
            proc = multiprocessing.Process(
                target=_dispatch_worker,
                args=(
                    child_conn, self.cell_fn, self.extra_params,
                    self._worker_fault_spec, self._heartbeat_interval,
                ),
            )
        # Daemonic as an interpreter-exit backstop only: close() is the
        # real teardown, but a caller that never closes must not
        # deadlock interpreter shutdown on the atexit join of a
        # non-daemon child.  (Consequence: cells themselves cannot
        # spawn child processes.)
        proc.daemon = True
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def _inject_dispatch_fault(self, worker: _Worker, cell) -> None:
        """Fire the ``dispatch`` site right after a job send.

        ``sigkill``/``sigstop`` actions hit the worker mid-cell from
        the parent side, exactly like the OOM killer or an operator's
        stray signal would.  A SIGSTOP with neither watchdog armed
        would hang the loop forever, so it is refused loudly.
        """
        if self.fault_plan is None or worker.pid is None:
            return
        action = self.fault_plan.fire("dispatch", f"cell:{cell.index}")
        if action is None:
            return
        kind = action.get("kind")
        if kind == "sigstop":
            if self.stall_timeout is None and self.cell_timeout is None:
                raise ConfigurationError(
                    "fault plan injects SIGSTOP but neither "
                    "stall_timeout nor cell_timeout is armed — the "
                    "dispatcher would wait on the stopped worker "
                    "forever; arm a stall watchdog to run this plan"
                )
            sig = signal.SIGSTOP
        elif kind == "sigkill":
            sig = signal.SIGKILL
        else:
            return
        try:
            os.kill(worker.pid, sig)
        except (ProcessLookupError, OSError):
            pass

    def _run_pool(self, cells, on_result, hook) -> int:
        source = iter(cells)
        requeue: collections.deque = collections.deque()
        exhausted = False

        def next_cell():
            nonlocal exhausted
            if requeue:
                return requeue.popleft()
            if exhausted:
                return None
            cell = next(source, None)
            if cell is None:
                exhausted = True
            return cell

        completed = 0

        def deliver(cell, result: CellResult) -> None:
            nonlocal completed
            completed += 1
            on_result(cell, result)
            if hook is not None:
                hook()

        # worker -> (cell, started, deadline-or-None) for in-flight cells.
        busy: Dict[_Worker, Tuple[Any, float, Optional[float]]] = {}
        # worker -> monotonic time of its last message (the job send
        # counts as one); only consulted when the watchdog is armed.
        last_seen: Dict[_Worker, float] = {}
        sel = selectors.DefaultSelector()

        def retire(worker: _Worker) -> None:
            """Drop a worker from the pool and stop it (terminate->kill)."""
            if worker in self._workers:
                self._workers.remove(worker)
            worker.stop(self.term_grace)

        def note_death(worker: _Worker, context: str) -> None:
            """Respawn-storm breaker: count fresh-spawn deaths in a row.

            A worker that never delivered a result died — if that keeps
            happening to every fresh spawn, the cause is systemic and
            respawning is futile: back off exponentially, then abort the
            campaign loudly.  A death after at least one delivered
            result is an isolated casualty and resets nothing either
            way (the streak only tracks *fresh* spawns).
            """
            if worker.jobs_done > 0:
                return
            self._spawn_death_streak += 1
            streak = self._spawn_death_streak
            if streak >= self.max_spawn_deaths:
                raise WorkerPoolError(
                    f"{streak} freshly-spawned workers died in a row "
                    f"(last: {context}); aborting the campaign — "
                    "something systemic is killing new workers "
                    "(cell-function imports, environment, or resource "
                    "exhaustion), so respawning cannot make progress"
                )
            if self.respawn_backoff > 0:
                time.sleep(
                    min(self.respawn_backoff * (2 ** (streak - 1)), 5.0)
                )

        def collect(worker: _Worker) -> None:
            """Recv one message — result, heartbeat, or death — from a
            readable worker.  A heartbeat only refreshes ``last_seen``;
            the worker stays busy and registered."""
            try:
                msg = worker.conn.recv()
            except (EOFError, OSError):
                # The worker died mid-cell (OOM kill, hard crash)
                # without shipping a result; the cell checkpoints
                # ``failed`` and the pool refills lazily.
                cell, started, _deadline = busy.pop(worker)
                last_seen.pop(worker, None)
                sel.unregister(worker.conn)
                pid = worker.pid
                retire(worker)
                deliver(cell, CellResult(
                    index=cell.index, status="failed",
                    error="worker died without a result",
                    elapsed=time.monotonic() - started, worker_pid=pid,
                ))
                note_death(worker, f"pid {pid} died mid-cell")
                return
            if len(msg) == 1:
                last_seen[worker] = time.monotonic()
                return
            cell, started, _deadline = busy.pop(worker)
            last_seen.pop(worker, None)
            sel.unregister(worker.conn)
            _, status, payload, error, elapsed, exc = msg
            worker.jobs_done += 1
            self._spawn_death_streak = 0
            deliver(cell, CellResult(
                index=cell.index, status=status, payload=payload,
                error=error, elapsed=elapsed, exception=exc,
                worker_pid=worker.pid,
            ))

        def drain(worker: _Worker) -> None:
            """A message already in the pipe always beats a deadline or
            the watchdog — consume everything pending."""
            while worker in busy and worker.conn.poll():
                collect(worker)

        try:
            while True:
                # Feed: one lazily-pulled cell per free slot.  Idle
                # parked workers are reused; the pool only grows when
                # every live worker is busy and width allows.
                while len(busy) < self.width:
                    cell = next_cell()
                    if cell is None:
                        break
                    worker = next(
                        (w for w in self._workers if w not in busy), None
                    )
                    if worker is None:
                        worker = self._spawn()
                        self._workers.append(worker)
                    try:
                        worker.conn.send(
                            (cell.index, cell.as_dict(), cell.seed)
                        )
                    except (BrokenPipeError, OSError):
                        # Died while parked; requeue and refill — unless
                        # fresh spawns keep dying, in which case the
                        # breaker backs off and eventually aborts.
                        pid = worker.pid
                        requeue.append(cell)
                        retire(worker)
                        note_death(
                            worker, f"pid {pid} died parked, before "
                            "accepting a job"
                        )
                        continue
                    now = time.monotonic()
                    deadline = (
                        None if self.cell_timeout is None
                        else now + self.cell_timeout
                    )
                    busy[worker] = (cell, now, deadline)
                    last_seen[worker] = now
                    sel.register(worker.conn, selectors.EVENT_READ, worker)
                    self._inject_dispatch_fault(worker, cell)
                if not busy:
                    break  # source drained and nothing in flight
                # Block until a result lands, the nearest deadline
                # expires, or a watchdog check is due (nothing armed =>
                # block indefinitely).
                waits = [d for _, _, d in busy.values() if d is not None]
                if self.stall_timeout is not None:
                    waits.extend(
                        last_seen[w] + self.stall_timeout for w in busy
                    )
                timeout = (
                    max(0.0, min(waits) - time.monotonic())
                    if waits else None
                )
                for key, _ in sel.select(timeout):
                    collect(key.data)
                if self.cell_timeout is not None:
                    now = time.monotonic()
                    for worker in [
                        w for w, (_, _, d) in busy.items()
                        if d is not None and now >= d
                    ]:
                        # The result may have landed between the select
                        # and this sweep — a result in hand always
                        # beats the deadline.
                        drain(worker)
                        if worker not in busy:
                            continue
                        cell, started, _deadline = busy.pop(worker)
                        last_seen.pop(worker, None)
                        sel.unregister(worker.conn)
                        pid = worker.pid
                        retire(worker)
                        deliver(cell, CellResult(
                            index=cell.index, status="timed_out",
                            elapsed=time.monotonic() - started,
                            worker_pid=pid,
                        ))
                if self.stall_timeout is not None:
                    now = time.monotonic()
                    for worker in [
                        w for w in list(busy)
                        if now - last_seen[w] >= self.stall_timeout
                    ]:
                        # Same courtesy as the deadline sweep: a late
                        # heartbeat or the result itself, already in
                        # the pipe, beats the watchdog.
                        drain(worker)
                        if worker not in busy:
                            continue
                        if (
                            time.monotonic() - last_seen[worker]
                            < self.stall_timeout
                        ):
                            continue  # a drained heartbeat vouched for it
                        cell, started, _deadline = busy.pop(worker)
                        last_seen.pop(worker, None)
                        sel.unregister(worker.conn)
                        pid = worker.pid
                        retire(worker)
                        deliver(cell, CellResult(
                            index=cell.index, status="failed",
                            error=(
                                "worker stalled: no heartbeat within "
                                f"{self.stall_timeout}s"
                            ),
                            elapsed=time.monotonic() - started,
                            worker_pid=pid,
                        ))
            return completed
        finally:
            # Exceptional unwind only: workers still mid-cell are in an
            # unknown state and must go; idle workers park for the next
            # pass.  (On a clean exit ``busy`` is already empty.)
            for worker in list(busy):
                if worker in self._workers:
                    self._workers.remove(worker)
                worker.stop(self.term_grace)
            sel.close()
