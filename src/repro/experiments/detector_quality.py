"""E9: substrate calibration against the paper's empirical claims.

Three claims from Sections 1.1 and 1.3 are checked against the simulated
physical layer:

* message loss under contention sits in the 20-50% band (and worsens with
  more simultaneous senders), while a lone broadcaster nearly always gets
  through;
* simple carrier-sense detection achieves zero completeness in ~100% of
  rounds and majority completeness in over 90%;
* drifting clocks, resynchronised by reference broadcasts, keep skew far
  below a round length — validating the synchronous-round abstraction.
"""

from __future__ import annotations

from typing import List

from ..substrate.carrier_sense import measure_detector_quality
from ..substrate.clock import ClockModel, ReferenceBroadcastSync
from ..substrate.radio import RadioChannel, RadioConfig
from .harness import Table


def run_loss_calibration(
    n: int = 8, rounds: int = 400, seed: int = 2
) -> List[Table]:
    """Loss fraction vs number of simultaneous broadcasters."""
    table = Table(
        title="E9a  Radio loss vs contention (paper: 20-50% loss in practice)",
        columns=["broadcasters", "loss_fraction", "single_delivery"],
    )
    for b in (1, 2, 3, 5, 8):
        channel = RadioChannel(seed=seed)
        stats = channel.loss_statistics(n, b, rounds)
        table.add(
            broadcasters=b,
            loss_fraction=stats["loss_fraction"],
            single_delivery=stats.get("single_broadcaster_delivery"),
        )
    return [table]


def run_detector_calibration(
    n: int = 8, rounds: int = 400, seed: int = 1
) -> List[Table]:
    """Achieved completeness/accuracy rates of carrier-sense detection."""
    table = Table(
        title=(
            "E9b  Carrier-sense detector class achievement "
            "(paper: 0-complete ~100%, maj-complete >90%)"
        ),
        columns=[
            "broadcasters", "zero", "half", "majority", "full", "accuracy",
        ],
    )
    for b in (1, 2, 3, 5):
        stats = measure_detector_quality(n, b, rounds, seed=seed)
        table.add(
            broadcasters=b,
            zero=stats.zero_complete_rate,
            half=stats.half_complete_rate,
            majority=stats.majority_complete_rate,
            full=stats.full_complete_rate,
            accuracy=stats.accuracy_rate,
        )
    return [table]


def run_clock_calibration(
    n: int = 10, rounds: int = 1000, seed: int = 3
) -> List[Table]:
    """Clock skew under RBS-style resynchronisation."""
    table = Table(
        title="E9c  Clock skew with reference-broadcast resync (RBS [25])",
        columns=[
            "resync_interval", "max_skew", "round_length", "aligned",
        ],
        note="aligned = skew never exceeds half a round length",
    )
    model = ClockModel(round_length=1.0, drift_ppm=100.0, jitter=1e-4)
    for interval in (25, 100, 400):
        sync = ReferenceBroadcastSync(
            n, model=model, resync_interval=interval, seed=seed
        )
        max_skew = sync.max_skew_between_resyncs(rounds)
        table.add(
            resync_interval=interval,
            max_skew=max_skew,
            round_length=model.round_length,
            aligned=max_skew <= 0.5 * model.round_length,
        )
    return [table]


def run_detector_quality() -> List[Table]:
    """The full E9 bundle."""
    return (
        run_loss_calibration()
        + run_detector_calibration()
        + run_clock_calibration()
    )
