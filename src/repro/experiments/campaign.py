"""Checkpointing campaign runner: resumable sweep grids over sqlite.

:class:`~repro.experiments.harness.SweepRunner` fans a grid across
workers, but a large campaign run through it is all-or-nothing — a
crash, timeout, or CI cancellation throws away every completed cell.
:class:`CampaignRunner` wraps the same cell functions and seeding with
durable, cell-granular checkpoints in a single ``campaign.db``
(see :class:`~repro.core.records.SqliteSink`):

* **Checkpointing** — every finished cell is committed to the ``cells``
  table the moment it completes (in completion order, not submission
  order, under the pooled paths), keyed on its canonical coordinate tag.
  Killing the campaign at any point loses at most the cells still
  in flight on the workers.  Checkpointing a non-``done`` status also
  clears the cell's ``round_summaries`` rows, so a killed or failed
  attempt can never leave stale per-round data behind — even for
  ``timed_out`` cells that will never re-run.
* **Resume** — :meth:`CampaignRunner.resume` queries the store first and
  only runs cells that are not already checkpointed (``failed`` cells
  are retried while their attempt count is within the ``max_retries``
  budget; ``done`` and ``timed_out`` cells — and ``failed`` cells whose
  budget is exhausted — are skipped).  Resume is *idempotent*: with the
  same ``base_seed`` and the same grid, the merged outcomes — and the
  byte content of :meth:`report` — are identical whether the grid ran
  in one pass or across N interrupted passes, because every payload is
  canonically JSON-serialised on the way into the store and all merging
  reads back out of the store.
* **One dispatcher** — every configuration routes through
  :class:`~repro.experiments.dispatch.CampaignDispatcher`: a persistent
  pool of worker processes driven by a selector event loop over the
  worker pipes.  ``processes`` sets the pool width (``None`` = CPU
  count; ``0``/``1`` = a one-worker pool — still worker reuse, still
  deadlines, just no parallelism) and ``cell_timeout`` optionally arms
  one parent-tracked wall-clock deadline per in-flight cell.  A cell
  that exceeds its budget has its worker terminated (terminate→kill
  escalation, so a SIGTERM-ignoring cell cannot hang the grid) and
  **replaced**, keeping the pool at full width while the cell is
  checkpointed ``timed_out`` and the grid keeps moving; a worker that
  dies mid-cell checkpoints its cell ``failed`` the same way.  The pool
  is *persistent within one runner lifetime*: workers park on their
  pipes between ``resume()`` calls and are reused by the next pass
  (asserted by a worker-pid test), so a campaign loop does not pay a
  pool spin-up per pass.  Call :meth:`CampaignRunner.close` (or use
  the runner as a context manager) for the deterministic teardown;
  ``in_process=True`` is the debugger escape hatch that skips workers
  entirely (and cannot enforce timeouts).
* **Failure isolation** — a cell that raises is checkpointed as
  ``failed`` (with the exception's repr) and the campaign moves on;
  unlike ``SweepRunner.run``, one bad cell never aborts the grid.
  Each run increments the cell's ``attempts`` count; once a failed
  cell has been run ``1 + max_retries`` times it is left permanently
  ``failed`` — resume converges instead of re-crashing it forever.
* **Distributed sharding** — one grid, many hosts: :func:`shard_of`
  deterministically assigns every cell to one of K shards (SHA-256 of
  its canonical coordinate tag, mod K), :func:`shard_cells` streams a
  shard lazily into the dispatcher's iterator seam, and a runner
  constructed with ``shard_index``/``shard_count`` runs exactly its
  shard into its own WAL store with resume/retry/timeout semantics
  unchanged.  :func:`merge_campaign_stores` folds the K shard stores
  into one store whose :meth:`CampaignRunner.report` bytes equal an
  uninterrupted single-host run — and rejects mismatched base_seeds,
  overlapping shards, and missing shards loudly.  ``python -m repro
  campaign shard --index i --of k`` / ``campaign merge`` are the CLI
  face; ``docs/campaigns.md`` is the operator guide.

Seeds come from :func:`~repro.experiments.harness.cell_seed` over the
grid coordinates only.  Infrastructure parameters that must not perturb
seeding or cell identity (a database path, a sink directory) go in
``extra_params``: they are merged into the cell function's ``params`` at
execution time but excluded from the tag, the seed, and the report's
``params``, so two campaigns over the same grid agree cell-for-cell
even when their databases live in different directories.  Byte-stable
reports additionally need the *payload* to be a deterministic function
of ``(grid params, seed)`` — ``consensus_sweep_cell`` satisfies this
for both ``sqlite_db`` and ``sink_dir`` (the payload records only the
sink file's basename, never the absolute path, so reports agree across
machines).

Example::

    runner = CampaignRunner(
        consensus_sweep_cell, db_path="campaign.db", base_seed=7,
        processes=4, cell_timeout=30.0,
    )
    outcomes = runner.resume(
        n=[4, 16], detector=["0-OAC", "maj-OAC"], loss_rate=[0.1, 0.3],
        trial=range(5),
    )                       # first call: runs everything, 4 cells at a time
    outcomes = runner.resume(
        n=[4, 16], detector=["0-OAC", "maj-OAC"], loss_rate=[0.1, 0.3],
        trial=range(5),
    )                       # second call: all cells checkpointed, no work

(Replicates sweep as a ``trial`` axis, which folds into each cell's
*derived* seed; a literal ``seed`` axis would override the derived seed
inside ``consensus_sweep_cell`` and make cells sharing a seed value
clobber each other's ``(cell_seed, round)`` rows in the shared
``round_summaries`` table.)
    print(runner.report(n=[4, 16], ...))   # canonical JSON, byte-stable
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import ConfigurationError
from ..core.records import SqliteSink
from ..testing import faultline
from .dispatch import CampaignDispatcher, CellResult
from .harness import SweepCell, SweepRunner, _canonical

#: Cell statuses a resume does not re-run.
SKIP_STATUSES: Tuple[str, ...] = ("done", "timed_out")

#: Cell statuses a resume retries (subject to the ``max_retries`` budget).
RETRY_STATUSES: Tuple[str, ...] = ("failed",)


def cell_tag(cell: SweepCell) -> str:
    """The canonical, cross-run-stable identity of one grid cell.

    Built from the cell's sorted coordinates via the same value-based
    encoding that seeds it, so the tag is independent of grid order,
    worker scheduling, and which pass of a resumed campaign ran it.
    """
    return "|".join(f"{k}={_canonical(v)}" for k, v in cell.params)


def shard_of(tag: str, shard_count: int) -> int:
    """Which of ``shard_count`` hosts owns the cell with this tag.

    The stable hash of the cell's canonical coordinate tag, mod K —
    SHA-256, like :func:`~repro.experiments.harness.cell_seed`, so the
    assignment is identical in every process, on every platform, in
    every run (no ``PYTHONHASHSEED`` dependence), and independent of
    grid order.  Because the tag excludes ``extra_params`` (infra
    paths), the same cell maps to the same shard no matter where each
    host keeps its database.
    """
    if shard_count < 1:
        raise ConfigurationError(
            f"shard_count must be >= 1, got {shard_count}"
        )
    digest = hashlib.sha256(tag.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % shard_count


def shard_cells(
    cells: Iterable[SweepCell], shard_index: int, shard_count: int
) -> Iterator[SweepCell]:
    """Lazily yield the cells of one shard, in grid order.

    A generator, not a list: it plugs straight into
    :meth:`~repro.experiments.dispatch.CampaignDispatcher.run`'s lazy
    cell-source seam, so a shard host never materialises the other
    hosts' share of a multi-million-cell grid.  The K shards partition
    the grid — every cell appears in exactly one shard — which is what
    makes the merged store's :meth:`CampaignRunner.report` bytes equal
    a single-host run.
    """
    _validate_shard(shard_index, shard_count)
    for cell in cells:
        if shard_of(cell_tag(cell), shard_count) == shard_index:
            yield cell


def _validate_shard(shard_index: int, shard_count: int) -> None:
    if shard_count < 1:
        raise ConfigurationError(
            f"shard_count must be >= 1, got {shard_count}"
        )
    if not 0 <= shard_index < shard_count:
        raise ConfigurationError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )


def _payload_text(payload: Any) -> str:
    """Canonical JSON for a cell payload (sorted keys, str fallback)."""
    return json.dumps(payload, sort_keys=True, default=str)


def _params_text(cell: SweepCell) -> str:
    return json.dumps(dict(cell.params), sort_keys=True, default=str)


@dataclasses.dataclass(frozen=True)
class CampaignOutcome:
    """One checkpointed cell read back from the campaign store.

    ``payload`` is the JSON round-trip of what the cell function
    returned (``None`` unless ``status == "done"``): int dict keys
    become strings, tuples become lists — identical whether the cell ran
    in this pass or a previous one, which is what makes resumed reports
    byte-stable.  ``attempts`` counts how many times the cell has run
    in total (retries included).
    """

    cell: SweepCell
    status: str
    payload: Any = None
    error: Optional[str] = None
    attempts: int = 1

    @property
    def params(self) -> Dict[str, Any]:
        return self.cell.as_dict()


class CampaignRunner:
    """A resumable, checkpointing wrapper around the sweep machinery.

    Parameters
    ----------
    cell_fn:
        A picklable top-level callable ``fn(params, seed) -> payload``
        (the same contract as :class:`SweepRunner`); the payload must be
        JSON-serialisable up to ``str`` fallback.
    db_path:
        The campaign's sqlite store.  One database is one campaign:
        reusing a database with a different ``base_seed`` or a
        conflicting grid raises instead of silently mixing results.
    base_seed:
        Folded into every cell's deterministic seed.
    processes:
        Dispatcher pool width (``None`` picks the CPU count; ``0``/``1``
        mean a *one-worker pool*, not in-process execution — worker
        reuse and deadline enforcement are universal).  Fewer workers
        are spawned when the grid never keeps the full width busy.
    cell_timeout:
        Per-cell wall-clock budget in seconds, enforced at every pool
        width.  Overrunning cells have their worker terminated
        (terminate→kill escalation) and *replaced* while the cell is
        checkpointed ``timed_out`` and the grid keeps moving.  When
        worker processes are unavailable (sandboxed platforms), cells
        run in-process with a warning and the timeout is not enforced.
    in_process:
        Debug escape hatch (CLI ``--in-process``): run cells serially
        inside this process — no workers, no pickling, timeouts
        unenforced.  Reports are byte-identical to any pooled
        configuration of the same grid; this is the serial reference
        the parity suite compares against.
    max_retries:
        How many times a ``failed`` cell may be *re*-run by later
        resumes (default 2, i.e. at most ``1 + max_retries`` total
        attempts).  A cell that exhausts the budget stays ``failed``
        permanently and is skipped, so resuming a campaign with a
        deterministically-crashing cell converges instead of busy-work
        retrying forever.
    extra_params:
        Non-coordinate parameters merged into ``params`` at execution
        time only — excluded from seeding, cell identity, and reports.
    idle_hook:
        Optional callback invoked after every completed cell (passed
        through to the dispatcher) — the seam for serving live queries
        while a campaign runs.
    fault_plan:
        Optional :class:`~repro.testing.faultline.FaultPlan` threaded
        through the dispatcher and every store the runner opens.
        ``None`` falls back to the process-installed plan or the
        ``REPRO_FAULTLINE`` environment variable; no plan anywhere is
        the (cheap) common case.
    stall_timeout:
        Optional dispatcher stall watchdog in seconds: a busy worker
        silent for this long (no heartbeat) is killed and replaced and
        its cell checkpoints ``failed`` — retryable on resume — even
        with ``cell_timeout`` unset.  Slow-but-heartbeating cells are
        never touched.
    shard_index, shard_count:
        Distributed sharding: this runner owns shard ``shard_index`` of
        a grid split deterministically across ``shard_count`` hosts
        (:func:`shard_of` over each cell's canonical coordinate tag).
        Every grid operation — resume, outcomes, report — is scoped to
        the shard's cells, fed lazily to the dispatcher by
        :func:`shard_cells`.  The default ``0``/``1`` *is* the
        single-host campaign (one shard owning everything), so sharding
        adds no fourth code path.  The store is stamped with the shard
        spec (and ``base_seed``) on first use and every reopen
        validates it, so a shard database can never silently absorb
        another shard's — or an unsharded run's — cells.
    """

    def __init__(
        self,
        cell_fn: Callable[[Dict[str, Any], int], Any],
        db_path: str,
        base_seed: int = 0,
        processes: Optional[int] = None,
        cell_timeout: Optional[float] = None,
        max_retries: int = 2,
        extra_params: Optional[Mapping[str, Any]] = None,
        in_process: bool = False,
        idle_hook: Optional[Callable[[], None]] = None,
        shard_index: int = 0,
        shard_count: int = 1,
        fault_plan: Optional["faultline.FaultPlan"] = None,
        stall_timeout: Optional[float] = None,
    ) -> None:
        self.cell_fn = cell_fn
        self.db_path = str(db_path)
        self.base_seed = base_seed
        self.processes = processes
        self.cell_timeout = cell_timeout
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.max_retries = int(max_retries)
        _validate_shard(shard_index, shard_count)
        self.shard_index = int(shard_index)
        self.shard_count = int(shard_count)
        self.extra_params = dict(extra_params or {})
        self._sweep = SweepRunner(cell_fn, processes=processes,
                                  base_seed=base_seed)
        # The one dispatcher every configuration routes through.  Its
        # pool is persistent across resume() passes within one runner
        # lifetime (spawning a worker costs a fork plus a pipe, so
        # back-to-back resumes — the normal campaign loop — must not
        # pay it per pass); close() is the deterministic teardown.
        self._dispatcher = CampaignDispatcher(
            cell_fn,
            extra_params=self.extra_params,
            processes=processes,
            cell_timeout=cell_timeout,
            in_process=in_process,
            idle_hook=idle_hook,
            fault_plan=fault_plan,
            stall_timeout=stall_timeout,
        )
        # The dispatcher already resolved kwarg > installed > env; reuse
        # its answer so the runner's stores consult the same plan.
        self.fault_plan = self._dispatcher.fault_plan
        self.stall_timeout = self._dispatcher.stall_timeout
        #: Worker-reuse accounting for the most recent pass that ran
        #: cells: ``{"cells", "distinct_worker_pids", "in_process"}``
        #: (``None`` until a pass dispatches work).  Benchmarks publish
        #: this so a regression to spawn-per-cell is visible.
        self.last_dispatch_stats: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    @property
    def dispatcher(self) -> CampaignDispatcher:
        """The runner's persistent dispatcher (one per runner lifetime)."""
        return self._dispatcher

    def close(self) -> None:
        """Deterministically tear down the dispatcher pool (idempotent).

        Every parked worker gets the shutdown sentinel, pipes are
        closed, and processes are joined within the grace period —
        terminate→kill for stragglers.  The runner remains usable
        afterwards: the next pass simply respawns its workers.
        """
        self._dispatcher.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def cells(self, **axes: Iterable[Any]) -> List[SweepCell]:
        """The seeded grid, scoped to this runner's shard (grid order).

        Shard 0/1 — the default — is the whole grid.  Cell indices and
        seeds always come from *full-grid* enumeration (the shard filter
        runs over the lazily streamed grid afterwards), so a cell's
        identity — tag, seed, index — is identical on every host
        regardless of how many shards the grid is split into.
        """
        stream = self._sweep.iter_cells(**axes)
        if self.shard_count == 1:
            return list(stream)
        return list(shard_cells(stream, self.shard_index, self.shard_count))

    # ------------------------------------------------------------------
    def run(
        self, max_cells: Optional[int] = None, **axes: Iterable[Any]
    ) -> List[CampaignOutcome]:
        """Launch (or continue) the campaign — an alias of :meth:`resume`.

        Launching and resuming are the same idempotent operation: run
        whatever the store does not already hold.
        """
        return self.resume(max_cells=max_cells, **axes)

    def resume(
        self, max_cells: Optional[int] = None, **axes: Iterable[Any]
    ) -> List[CampaignOutcome]:
        """Run every cell not already checkpointed; return merged outcomes.

        ``max_cells`` bounds how many *pending* cells this pass runs
        (the deterministic interruption used by tests and the CI resume
        smoke); the merged outcome list covers every cell present in the
        store after the pass, in grid order.
        """
        cells = self.cells(**axes)
        with SqliteSink(self.db_path, fault_plan=self.fault_plan) as store:
            self._check_store_identity(store)
            existing = store.get_cells()
            pending = []
            prior_attempts: Dict[int, int] = {}
            for cell in cells:
                tag = cell_tag(cell)
                row = existing.get(tag)
                if row is not None:
                    if row["cell_seed"] != cell.seed:
                        raise ConfigurationError(
                            f"campaign db {self.db_path!r} holds cell "
                            f"{tag!r} with seed {row['cell_seed']}, but "
                            f"this grid derives seed {cell.seed} — the "
                            "store belongs to a different base_seed/grid"
                        )
                    if row["status"] in SKIP_STATUSES:
                        continue
                    if (row["status"] in RETRY_STATUSES
                            and row["attempts"] > self.max_retries):
                        # Retry budget exhausted: 1 + max_retries runs
                        # already happened; the cell stays failed
                        # permanently and resume converges.
                        continue
                    prior_attempts[cell.index] = row["attempts"]
                pending.append(cell)
            if max_cells is not None:
                pending = pending[:max_cells]
            if pending:
                self._run_pending(store, pending, prior_attempts)
            return self._merge(store, cells)

    # ------------------------------------------------------------------
    def _check_store_identity(self, store: SqliteSink) -> None:
        """Stamp (first use) or validate (reopen) the store's identity.

        One database is one (campaign, shard): its ``base_seed`` and
        shard spec are written into ``campaign_meta`` the first time a
        runner touches it and must match exactly on every later open —
        a shard store can never silently absorb another shard's cells,
        and an unsharded resume can never backfill a shard store into a
        corrupt "almost full" grid.  Stores that predate the metadata
        (or were produced by :func:`merge_campaign_stores`, which stamps
        shard 0/1) are stamped with the current spec in place.
        """
        stored_seed = store.get_meta("base_seed")
        if stored_seed is not None and stored_seed != self.base_seed:
            raise ConfigurationError(
                f"campaign db {self.db_path!r} was created with "
                f"base_seed {stored_seed}, but this runner uses a "
                f"different base_seed {self.base_seed} — one store is "
                "one campaign"
            )
        mine = {"count": self.shard_count, "index": self.shard_index}
        stored_shard = store.get_meta("shard")
        if stored_shard is not None and stored_shard != mine:
            raise ConfigurationError(
                f"campaign db {self.db_path!r} belongs to shard "
                f"{stored_shard['index']}/{stored_shard['count']}, but "
                f"this runner is shard {self.shard_index}/"
                f"{self.shard_count} — one store is one shard; use "
                "merge_campaign_stores to combine shards instead of "
                "resuming across specs"
            )
        if stored_seed is None:
            store.set_meta("base_seed", self.base_seed)
        if stored_shard is None:
            store.set_meta("shard", mine)

    # ------------------------------------------------------------------
    def _checkpoint(
        self,
        store: SqliteSink,
        cell: SweepCell,
        status: str,
        payload: Any = None,
        error: Optional[str] = None,
        elapsed: Optional[float] = None,
        attempts: int = 1,
    ) -> None:
        if status != "done":
            # The dead attempt may have streamed partial rounds into the
            # store before it was killed (timeout) or raised (failure);
            # clear them *now* — a timed_out cell is never re-run, so
            # the pre-run sweep in _run_pending would never reach it and
            # the stale rows would otherwise live forever.
            store.clear_rounds(cell.seed)
        store.record_cell(
            tag=cell_tag(cell),
            seed=cell.seed,
            index=cell.index,
            params_text=_params_text(cell),
            status=status,
            payload_text=_payload_text(payload) if status == "done" else None,
            error=error,
            elapsed=elapsed,
            attempts=attempts,
        )

    def _run_pending(
        self,
        store: SqliteSink,
        pending: Sequence[SweepCell],
        prior_attempts: Mapping[int, int],
    ) -> None:
        """Dispatch every pending cell and checkpoint in completion order.

        All of it — serial or parallel, with or without deadlines — is
        one :meth:`CampaignDispatcher.run` call.  ``pre_fork`` points at
        ``store.disconnect``: the dispatcher invokes it immediately
        before *every* worker spawn (first fill and replacements alike),
        which is the single place the "never fork with a live sqlite
        connection" invariant is enforced — checkpointing between
        completions reopens the store lazily.
        """
        attempts = {
            cell.index: prior_attempts.get(cell.index, 0) + 1
            for cell in pending
        }
        pids = set()

        def checkpoint(cell: SweepCell, result: CellResult) -> None:
            self._checkpoint(store, cell, result.status,
                             payload=result.payload, error=result.error,
                             elapsed=result.elapsed,
                             attempts=attempts[cell.index])
            if result.worker_pid is not None:
                pids.add(result.worker_pid)

        def feed() -> Iterator[SweepCell]:
            # The dispatcher pulls this generator lazily, one cell per
            # freed worker slot (the same seam the shard filter rides).
            # A pending cell may have streamed rounds in a killed or
            # failed earlier attempt; clear them immediately before the
            # cell is handed out — before any worker can stream the new
            # attempt — so stale rows never linger past its final round.
            # (The dispatcher disconnects the store via pre_fork before
            # every spawn, after this pull, so the lazily reopened
            # connection never crosses a fork.)
            for cell in pending:
                store.clear_rounds(cell.seed)
                yield cell

        self._dispatcher.run(feed(), checkpoint,
                             pre_fork=store.disconnect)
        self.last_dispatch_stats = {
            "cells": len(pending),
            "distinct_worker_pids": len(pids),
            "in_process": self._dispatcher.in_process,
        }

    # ------------------------------------------------------------------
    def _merge(
        self,
        store: SqliteSink,
        cells: Sequence[SweepCell],
        corrupt: Optional[List[int]] = None,
    ) -> List[CampaignOutcome]:
        """Grid-ordered outcomes for every cell present in the store.

        Reads *everything* back out of the store — including cells that
        just ran — so a payload always arrives through the same JSON
        round-trip regardless of which pass produced it.

        A stored payload that no longer parses as JSON (torn write,
        disk corruption) raises :class:`ConfigurationError` pointing at
        ``campaign verify``; pass a list as ``corrupt`` to instead
        collect the offending cell indices and skip those cells (the
        ``report(allow_partial=True)`` path).
        """
        rows = store.get_cells()
        merged = []
        for cell in cells:
            row = rows.get(cell_tag(cell))
            if row is None:
                continue  # interrupted before this cell ran
            if row["cell_seed"] != cell.seed:
                # Guard the read path too: a report over a store built
                # under a different base_seed must never attribute its
                # payloads to this grid's seeds.
                raise ConfigurationError(
                    f"campaign db {self.db_path!r} holds cell "
                    f"{cell_tag(cell)!r} with seed {row['cell_seed']}, "
                    f"but this grid derives seed {cell.seed} — the "
                    "store belongs to a different base_seed/grid"
                )
            payload = None
            if row["payload"] is not None:
                try:
                    payload = json.loads(row["payload"])
                except ValueError as exc:
                    if corrupt is None:
                        raise ConfigurationError(
                            f"campaign db {self.db_path!r} holds a "
                            f"corrupt payload for cell "
                            f"{cell_tag(cell)!r} ({exc}) — run `python "
                            "-m repro campaign verify --db ...` "
                            "(--quarantine demotes it for retry on the "
                            "next resume), or report with "
                            "allow_partial to skip it"
                        ) from exc
                    corrupt.append(cell.index)
                    continue
            merged.append(CampaignOutcome(
                cell=cell,
                status=row["status"],
                payload=payload,
                error=row["error"],
                attempts=row["attempts"],
            ))
        return merged

    def outcomes(self, **axes: Iterable[Any]) -> List[CampaignOutcome]:
        """Merged outcomes currently in the store, without running anything."""
        with SqliteSink(self.db_path, fault_plan=self.fault_plan) as store:
            self._check_store_identity(store)
            return self._merge(store, self.cells(**axes))

    def report(
        self, allow_partial: bool = False, **axes: Iterable[Any]
    ) -> str:
        """A canonical JSON report of the campaign's merged outcomes.

        Byte-identical across any interrupt/resume/fault schedule of
        the same grid, provided every cell completes
        (``done``/``timed_out``): cell order is grid order, every
        payload went through the same canonical serialisation, and
        wall-clock noise (elapsed times) is excluded.  ``attempts``
        appears only on *failed* cells — how many retries a cell needed
        before succeeding is infrastructure noise (a worker crash, a
        transient lock), so surfacing it for ``done`` cells would make
        the report depend on the fault history it is defined to be
        independent of; an exhausted retry budget, by contrast, is a
        result, and stays visible.

        ``allow_partial=True`` degrades gracefully over an incomplete
        or damaged store: cells missing from the store or holding a
        corrupt payload are skipped and listed under a ``"partial"``
        key (omitted when there are no gaps, so a complete store
        reports identical bytes either way) instead of the default
        :class:`ConfigurationError` on corruption.
        """
        cells = self.cells(**axes)
        corrupt: Optional[List[int]] = [] if allow_partial else None
        with SqliteSink(self.db_path, fault_plan=self.fault_plan) as store:
            self._check_store_identity(store)
            merged = self._merge(store, cells, corrupt=corrupt)
        entries = []
        for o in merged:
            entry: Dict[str, Any] = {
                "index": o.cell.index,
                "seed": o.cell.seed,
                "params": o.params,
                "status": o.status,
                "payload": o.payload,
                "error": o.error,
            }
            if o.status == "failed":
                entry["attempts"] = o.attempts
            entries.append(entry)
        doc: Dict[str, Any] = {
            "base_seed": self.base_seed,
            "cells": entries,
        }
        if allow_partial:
            present = {o.cell.index for o in merged}
            skipped = set(corrupt or ())
            missing = [
                c.index for c in cells
                if c.index not in present and c.index not in skipped
            ]
            if missing or corrupt:
                doc["partial"] = {
                    "missing": missing,
                    "corrupt": sorted(corrupt or ()),
                }
        return json.dumps(doc, sort_keys=True, default=str, indent=1)

    def report_table(self, **axes: Iterable[Any]) -> str:
        """An aligned-column table over the store's ``round_summaries``.

        One row per checkpointed cell, in grid order: the cell's
        canonical tag, status, attempt count, how many rounds it
        streamed into the store, and the mean per-round broadcast count
        — the campaign-analytics view in its minimal useful form.  The
        per-cell aggregation happens inside sqlite
        (:meth:`~repro.core.records.SqliteSink.round_aggregates`), so
        the table costs one query however many rounds the store holds.
        Cells that streamed nothing (``NONE``-policy cells, failures
        before round 1, cleared dead attempts) show ``-`` in both round
        columns.  A footer below a closing rule totals the cell counts
        per status and the attempts spent, so a glance at the last line
        answers "how did the campaign go" without scanning the rows.
        """
        cells = self.cells(**axes)
        with SqliteSink(self.db_path, fault_plan=self.fault_plan) as store:
            self._check_store_identity(store)
            merged = self._merge(store, cells)
            aggregates = store.round_aggregates()
        headers = ("cell", "status", "attempts", "rounds", "mean_bcast")
        rows = []
        for outcome in merged:
            agg = aggregates.get(outcome.cell.seed)
            rows.append((
                cell_tag(outcome.cell),
                outcome.status,
                str(outcome.attempts),
                str(agg[0]) if agg is not None else "-",
                f"{agg[1]:.2f}" if agg is not None else "-",
            ))
        widths = [
            max(len(headers[col]), *(len(row[col]) for row in rows))
            if rows else len(headers[col])
            for col in range(len(headers))
        ]

        def fmt(row: Tuple[str, ...]) -> str:
            # The tag column is left-aligned prose; numbers and statuses
            # right-align so columns scan vertically.
            first = row[0].ljust(widths[0])
            rest = "  ".join(
                cell.rjust(widths[col + 1])
                for col, cell in enumerate(row[1:])
            )
            return f"{first}  {rest}".rstrip()

        lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
        lines.extend(fmt(row) for row in rows)
        counts = {}
        for outcome in merged:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        lines.append(fmt(tuple("-" * w for w in widths)))
        lines.append(
            f"{len(merged)} cells: {counts.get('done', 0)} done, "
            f"{counts.get('failed', 0)} failed, "
            f"{counts.get('timed_out', 0)} timed_out; "
            f"{sum(o.attempts for o in merged)} attempts"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Shard merging: K shard stores -> one single-host-equivalent store
# ----------------------------------------------------------------------
def merge_campaign_stores(
    out_path: str,
    shard_paths: Sequence[str],
    force: bool = False,
) -> Dict[str, Any]:
    """Fold K shard stores into one store equal to a single-host run.

    Validates before copying a single row, and loudly — every rejection
    is a :class:`~repro.core.errors.ConfigurationError` naming exactly
    what disagrees:

    * every input must be a stamped campaign store (``base_seed`` plus
      shard spec in ``campaign_meta``);
    * all shards must share one ``base_seed`` (different seeds are
      different campaigns whose cells merely look alike);
    * all shards must share one shard count K, carry indices inside
      ``[0, K)``, and cover **exactly** the set ``{0, …, K-1}`` — a
      duplicated index is an overlapping shard, an absent one a missing
      shard, and either would make the merged report silently diverge
      from the single-host truth;
    * row-level overlap (the same cell tag or ``(cell_seed, round)``
      key in two stores) aborts inside sqlite via
      :meth:`~repro.core.records.SqliteSink.merge_from`'s plain-INSERT
      discipline, as a belt-and-braces guard under the metadata checks.

    The merged store is stamped as shard ``0/1`` (plus a
    ``merged_from`` provenance key): it *is* a single-host store from
    that point on — :meth:`CampaignRunner.report` over it is
    byte-identical to an uninterrupted single-host run of the same
    grid, because every payload was canonically serialised on its way
    into its shard and cell identity (tag, seed, index) is derived from
    full-grid enumeration on every host.

    The merge is **atomic at the filesystem level**: rows are folded
    into a ``<out_path>.tmp`` sidecar, the WAL is checkpointed into it
    so it is one self-contained file, and only then does a single
    ``os.replace`` publish it as ``out_path``.  A merge killed at any
    instant — SIGKILL included — therefore leaves either no target at
    all or the complete merged store, never a half-written database;
    the deterministic sidecar name lets the next run (and this one's
    cleanup) sweep any stray ``.tmp`` remnants.

    ``out_path`` must not already exist unless ``force`` is set (the
    stale target plus its WAL sidecars are then removed first).
    Returns a summary dict (``base_seed``, ``shards``, ``cells``,
    ``path``).
    """
    if not shard_paths:
        raise ConfigurationError(
            "merge needs at least one shard store to fold"
        )
    if os.path.exists(out_path):
        if not force:
            raise ConfigurationError(
                f"merge target {out_path!r} already exists — merging "
                "into a live store would mix campaigns; pass "
                "force=True (CLI --force) to replace it"
            )
        for suffix in ("", "-wal", "-shm"):
            stale = out_path + suffix
            if os.path.exists(stale):
                os.remove(stale)

    infos: List[Dict[str, Any]] = []
    for path in shard_paths:
        if not os.path.exists(path):
            raise ConfigurationError(
                f"shard store {path!r} does not exist"
            )
        # Opening through SqliteSink also migrates legacy schemas in
        # place, so merge_from's column-for-column copy always sees the
        # current shape.
        with SqliteSink(path) as store:
            base_seed = store.get_meta("base_seed")
            shard = store.get_meta("shard")
            cells = store.cell_count()
        if base_seed is None or shard is None:
            raise ConfigurationError(
                f"{path!r} carries no campaign identity metadata — it "
                "is not a (post-sharding) campaign store; resume it "
                "once so it is stamped, then merge"
            )
        infos.append({
            "path": path, "base_seed": base_seed,
            "index": shard["index"], "count": shard["count"],
            "cells": cells,
        })

    base_seeds = sorted({info["base_seed"] for info in infos})
    if len(base_seeds) > 1:
        raise ConfigurationError(
            f"shard stores disagree on base_seed ({base_seeds}) — they "
            "are shards of different campaigns and must not be merged"
        )
    counts = sorted({info["count"] for info in infos})
    if len(counts) > 1:
        raise ConfigurationError(
            f"shard stores disagree on the shard count ({counts}) — "
            "a K-way merge needs K stores from one K-way split"
        )
    k = counts[0]
    owners: Dict[int, List[str]] = {}
    for info in infos:
        owners.setdefault(info["index"], []).append(info["path"])
    bad = sorted(i for i in owners if not 0 <= i < k)
    if bad:
        raise ConfigurationError(
            f"shard indices {bad} are outside [0, {k}) — the stores' "
            "metadata is inconsistent with their shard count"
        )
    overlapping = {i: paths for i, paths in owners.items()
                   if len(paths) > 1}
    if overlapping:
        raise ConfigurationError(
            f"overlapping shards: {overlapping} — the same shard index "
            "appears in more than one store, so their cells would "
            "collide (or worse, silently double)"
        )
    missing = sorted(set(range(k)) - set(owners))
    if missing:
        raise ConfigurationError(
            f"missing shard(s) {missing} of {k} — a merge over an "
            "incomplete shard set would report a partial grid as if it "
            "were the whole campaign"
        )

    total = 0
    plan = faultline.resolve(None)
    tmp_path = out_path + ".tmp"
    # A merge killed mid-flight leaves its sidecar behind under this
    # deterministic name; sweep any such remnant (WAL sidecars too)
    # before starting, so reruns never trip over a dead merge.
    for suffix in ("", "-wal", "-shm"):
        stale = tmp_path + suffix
        if os.path.exists(stale):
            os.remove(stale)
    try:
        with SqliteSink(tmp_path) as out:
            for info in sorted(infos, key=lambda i: i["index"]):
                if plan is not None:
                    action = plan.fire("merge", f"shard:{info['index']}")
                    if action is not None:
                        kind = action.get("kind")
                        if kind == "sleep":
                            time.sleep(
                                float(action.get("seconds", 0.05))
                            )
                        elif kind == "error":
                            raise ConfigurationError(
                                "injected merge failure at shard "
                                f"{info['index']}"
                            )
                total += out.merge_from(info["path"])
            out.set_meta("base_seed", base_seeds[0])
            out.set_meta("shard", {"count": 1, "index": 0})
            out.set_meta("merged_from", k)
            # Fold the WAL so the rename moves one complete database,
            # not a main file whose recent history lives in sidecars
            # os.replace would leave behind.
            out.fold_wal()
        os.replace(tmp_path, out_path)
    finally:
        for suffix in ("", "-wal", "-shm"):
            stray = tmp_path + suffix
            if os.path.exists(stray):
                os.remove(stray)
    return {
        "base_seed": base_seeds[0], "shards": k, "cells": total,
        "path": out_path,
    }
