"""Checkpointing campaign runner: resumable sweep grids over sqlite.

:class:`~repro.experiments.harness.SweepRunner` fans a grid across
workers, but a large campaign run through it is all-or-nothing — a
crash, timeout, or CI cancellation throws away every completed cell.
:class:`CampaignRunner` wraps the same cell functions and seeding with
durable, cell-granular checkpoints in a single ``campaign.db``
(see :class:`~repro.core.records.SqliteSink`):

* **Checkpointing** — every finished cell is committed to the ``cells``
  table the moment it completes (in completion order, not submission
  order, under the pooled path), keyed on its canonical coordinate tag.
  Killing the campaign at any point loses at most the cells still
  in flight on the workers.
* **Resume** — :meth:`CampaignRunner.resume` queries the store first and
  only runs cells that are not already checkpointed (``failed`` cells
  are retried; ``done`` and ``timed_out`` cells are skipped).  Resume is
  *idempotent*: with the same ``base_seed`` and the same grid, the
  merged outcomes — and the byte content of :meth:`report` — are
  identical whether the grid ran in one pass or across N interrupted
  passes, because every payload is canonically JSON-serialised on the
  way into the store and all merging reads back out of the store.
* **Per-cell timeouts** — with ``cell_timeout`` set, each cell runs in
  its own worker process; a cell that exceeds the wall-clock budget is
  terminated and checkpointed as ``timed_out`` instead of killing the
  grid.
* **Failure isolation** — a cell that raises is checkpointed as
  ``failed`` (with the exception's repr) and the campaign moves on;
  unlike ``SweepRunner.run``, one bad cell never aborts the grid.

Seeds come from :func:`~repro.experiments.harness.cell_seed` over the
grid coordinates only.  Infrastructure parameters that must not perturb
seeding or cell identity (a database path, a sink directory) go in
``extra_params``: they are merged into the cell function's ``params`` at
execution time but excluded from the tag, the seed, and the report's
``params``, so two campaigns over the same grid agree cell-for-cell
even when their databases live in different directories.  Byte-stable
reports additionally need the *payload* to be a deterministic function
of ``(grid params, seed)`` — ``consensus_sweep_cell`` satisfies this
for ``sqlite_db`` but embeds the sink path in its payload under
``sink_dir``, so campaigns comparing reports across machines should
stream rounds via ``sqlite_db`` rather than ``sink_dir``.

Example::

    runner = CampaignRunner(
        consensus_sweep_cell, db_path="campaign.db", base_seed=7,
        cell_timeout=30.0,
    )
    outcomes = runner.resume(
        n=[4, 16], detector=["0-OAC", "maj-OAC"], loss_rate=[0.1, 0.3],
        trial=range(5),
    )                       # first call: runs everything
    outcomes = runner.resume(
        n=[4, 16], detector=["0-OAC", "maj-OAC"], loss_rate=[0.1, 0.3],
        trial=range(5),
    )                       # second call: all cells checkpointed, no work

(Replicates sweep as a ``trial`` axis, which folds into each cell's
*derived* seed; a literal ``seed`` axis would override the derived seed
inside ``consensus_sweep_cell`` and make cells sharing a seed value
clobber each other's ``(cell_seed, round)`` rows in the shared
``round_summaries`` table.)
    print(runner.report(n=[4, 16], ...))   # canonical JSON, byte-stable
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import pickle
import time
import warnings
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import ConfigurationError
from ..core.records import SqliteSink
from .harness import SweepCell, SweepRunner, _canonical

#: Cell statuses a resume does not re-run.
SKIP_STATUSES: Tuple[str, ...] = ("done", "timed_out")

#: Cell statuses a resume retries.
RETRY_STATUSES: Tuple[str, ...] = ("failed",)


def cell_tag(cell: SweepCell) -> str:
    """The canonical, cross-run-stable identity of one grid cell.

    Built from the cell's sorted coordinates via the same value-based
    encoding that seeds it, so the tag is independent of grid order,
    worker scheduling, and which pass of a resumed campaign ran it.
    """
    return "|".join(f"{k}={_canonical(v)}" for k, v in cell.params)


def _payload_text(payload: Any) -> str:
    """Canonical JSON for a cell payload (sorted keys, str fallback)."""
    return json.dumps(payload, sort_keys=True, default=str)


def _params_text(cell: SweepCell) -> str:
    return json.dumps(dict(cell.params), sort_keys=True, default=str)


@dataclasses.dataclass(frozen=True)
class CampaignOutcome:
    """One checkpointed cell read back from the campaign store.

    ``payload`` is the JSON round-trip of what the cell function
    returned (``None`` unless ``status == "done"``): int dict keys
    become strings, tuples become lists — identical whether the cell ran
    in this pass or a previous one, which is what makes resumed reports
    byte-stable.
    """

    cell: SweepCell
    status: str
    payload: Any = None
    error: Optional[str] = None

    @property
    def params(self) -> Dict[str, Any]:
        return self.cell.as_dict()


def _campaign_cell_worker(conn, fn, params: Dict[str, Any], seed: int) -> None:
    """Timeout-mode worker: run one cell, ship (status, payload, error)."""
    try:
        payload = fn(params, seed)
        conn.send(("done", payload, None))
    except BaseException as exc:  # checkpointed as failed, never fatal
        try:
            conn.send(("failed", None, repr(exc)))
        except Exception:
            pass
    finally:
        conn.close()


def _run_campaign_job(
    job: Tuple[Callable[..., Any], SweepCell, Dict[str, Any]]
) -> Tuple[int, str, Any, Optional[str], float]:
    """Pool worker entry point (module-level so it pickles under spawn).

    Returns ``(cell_index, status, payload, error, elapsed)`` and never
    raises for a cell's own exception, so results can flow back through
    ``imap_unordered`` — checkpointed in completion order — while still
    being attributable to their cell.
    """
    fn, cell, extra = job
    start = time.monotonic()
    try:
        payload = fn(dict(cell.as_dict(), **extra), cell.seed)
    except Exception as exc:
        return (cell.index, "failed", None, repr(exc),
                time.monotonic() - start)
    return (cell.index, "done", payload, None, time.monotonic() - start)


class CampaignRunner:
    """A resumable, checkpointing wrapper around the sweep machinery.

    Parameters
    ----------
    cell_fn:
        A picklable top-level callable ``fn(params, seed) -> payload``
        (the same contract as :class:`SweepRunner`); the payload must be
        JSON-serialisable up to ``str`` fallback.
    db_path:
        The campaign's sqlite store.  One database is one campaign:
        reusing a database with a different ``base_seed`` or a
        conflicting grid raises instead of silently mixing results.
    base_seed:
        Folded into every cell's deterministic seed.
    processes:
        Worker count for the no-timeout parallel path (``None`` picks
        ``min(cells, cpu_count)``; ``0``/``1`` forces serial).
    cell_timeout:
        Per-cell wall-clock budget in seconds.  When set, each cell runs
        in its own worker process (serially) so an overrunning cell can
        be terminated and checkpointed as ``timed_out``.  When worker
        processes are unavailable (sandboxed platforms), cells run
        in-process with a warning and the timeout is not enforced.
    extra_params:
        Non-coordinate parameters merged into ``params`` at execution
        time only — excluded from seeding, cell identity, and reports.
    """

    def __init__(
        self,
        cell_fn: Callable[[Dict[str, Any], int], Any],
        db_path: str,
        base_seed: int = 0,
        processes: Optional[int] = None,
        cell_timeout: Optional[float] = None,
        extra_params: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.cell_fn = cell_fn
        self.db_path = str(db_path)
        self.base_seed = base_seed
        self.processes = processes
        self.cell_timeout = cell_timeout
        self.extra_params = dict(extra_params or {})
        self._sweep = SweepRunner(cell_fn, processes=processes,
                                  base_seed=base_seed)

    # ------------------------------------------------------------------
    def cells(self, **axes: Iterable[Any]) -> List[SweepCell]:
        """The seeded grid (delegates to :meth:`SweepRunner.cells`)."""
        return self._sweep.cells(**axes)

    # ------------------------------------------------------------------
    def run(
        self, max_cells: Optional[int] = None, **axes: Iterable[Any]
    ) -> List[CampaignOutcome]:
        """Launch (or continue) the campaign — an alias of :meth:`resume`.

        Launching and resuming are the same idempotent operation: run
        whatever the store does not already hold.
        """
        return self.resume(max_cells=max_cells, **axes)

    def resume(
        self, max_cells: Optional[int] = None, **axes: Iterable[Any]
    ) -> List[CampaignOutcome]:
        """Run every cell not already checkpointed; return merged outcomes.

        ``max_cells`` bounds how many *pending* cells this pass runs
        (the deterministic interruption used by tests and the CI resume
        smoke); the merged outcome list covers every cell present in the
        store after the pass, in grid order.
        """
        cells = self.cells(**axes)
        with SqliteSink(self.db_path) as store:
            existing = store.get_cells()
            pending = []
            for cell in cells:
                tag = cell_tag(cell)
                row = existing.get(tag)
                if row is not None:
                    if row["cell_seed"] != cell.seed:
                        raise ConfigurationError(
                            f"campaign db {self.db_path!r} holds cell "
                            f"{tag!r} with seed {row['cell_seed']}, but "
                            f"this grid derives seed {cell.seed} — the "
                            "store belongs to a different base_seed/grid"
                        )
                    if row["status"] in SKIP_STATUSES:
                        continue
                pending.append(cell)
            if max_cells is not None:
                pending = pending[:max_cells]
            if pending:
                self._run_pending(store, pending)
            return self._merge(store, cells)

    # ------------------------------------------------------------------
    def _checkpoint(
        self,
        store: SqliteSink,
        cell: SweepCell,
        status: str,
        payload: Any = None,
        error: Optional[str] = None,
        elapsed: Optional[float] = None,
    ) -> None:
        store.record_cell(
            tag=cell_tag(cell),
            seed=cell.seed,
            index=cell.index,
            params_text=_params_text(cell),
            status=status,
            payload_text=_payload_text(payload) if status == "done" else None,
            error=error,
            elapsed=elapsed,
        )

    def _run_pending(
        self, store: SqliteSink, pending: Sequence[SweepCell]
    ) -> None:
        # A pending cell may have streamed rounds in a killed or failed
        # earlier attempt; clear them so stale rows can never linger
        # past the new attempt's final round.
        for cell in pending:
            store.clear_rounds(cell.seed)
        if self.cell_timeout is not None:
            self._run_with_timeouts(store, pending)
        else:
            self._run_pooled(store, pending)

    # -- no-timeout path: pool fan-out, checkpoint as results arrive ----
    def _run_pooled(
        self, store: SqliteSink, pending: Sequence[SweepCell]
    ) -> None:
        jobs = [(self.cell_fn, cell, self.extra_params) for cell in pending]
        workers = self.processes
        if workers is None:
            workers = min(len(jobs), multiprocessing.cpu_count() or 1)
        pool = None
        if workers > 1 and len(jobs) > 1:
            try:
                pickle.dumps((self.cell_fn, self.extra_params))
                # Never fork with a live sqlite connection: the child's
                # inherited descriptor can break the parent's WAL locks.
                store.disconnect()
                pool = multiprocessing.Pool(workers)
            except Exception as exc:
                warnings.warn(
                    f"CampaignRunner: pool unavailable ({exc!r}); running "
                    "cells serially in-process",
                    RuntimeWarning,
                    stacklevel=3,
                )
        if pool is None:
            for job in jobs:
                _, status, payload, error, elapsed = _run_campaign_job(job)
                self._checkpoint(store, job[1], status, payload=payload,
                                 error=error, elapsed=elapsed)
            return
        # imap_unordered checkpoints every cell the moment it completes:
        # a kill mid-grid loses only cells still in flight, never a
        # finished cell queued behind a slow neighbour.  Workers catch
        # their cell's exception and return it tagged with the cell
        # index, so failures stay attributable out of order.
        by_index = {cell.index: cell for cell in pending}
        with pool:
            for index, status, payload, error, elapsed in (
                pool.imap_unordered(_run_campaign_job, jobs)
            ):
                self._checkpoint(store, by_index[index], status,
                                 payload=payload, error=error,
                                 elapsed=elapsed)

    # -- timeout path: one worker process per cell ----------------------
    def _run_with_timeouts(
        self, store: SqliteSink, pending: Sequence[SweepCell]
    ) -> None:
        store.disconnect()  # no sqlite connection may cross the forks below
        try:
            self._probe_worker()
        except Exception as exc:
            warnings.warn(
                f"CampaignRunner: worker processes unavailable ({exc!r}); "
                "running cells in-process — per-cell timeouts are NOT "
                "enforced",
                RuntimeWarning,
                stacklevel=3,
            )
            for cell in pending:
                _, status, payload, error, elapsed = _run_campaign_job(
                    (self.cell_fn, cell, self.extra_params)
                )
                self._checkpoint(store, cell, status, payload=payload,
                                 error=error, elapsed=elapsed)
            return
        for cell in pending:
            start = time.monotonic()
            store.disconnect()  # checkpointing reopened it; drop pre-fork
            status, payload, error = self._run_one_with_timeout(cell)
            self._checkpoint(store, cell, status, payload=payload,
                             error=error, elapsed=time.monotonic() - start)

    @staticmethod
    def _probe_worker() -> None:
        """Raise when this platform cannot start worker processes."""
        proc = multiprocessing.Process(target=_noop)
        proc.start()
        proc.join()

    def _run_one_with_timeout(self, cell: SweepCell):
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        params = dict(cell.as_dict(), **self.extra_params)
        proc = multiprocessing.Process(
            target=_campaign_cell_worker,
            args=(child_conn, self.cell_fn, params, cell.seed),
        )
        proc.start()
        child_conn.close()
        try:
            if parent_conn.poll(self.cell_timeout):
                try:
                    status, payload, error = parent_conn.recv()
                except EOFError:
                    status, payload, error = (
                        "failed", None, "worker died without a result"
                    )
                # The result is in hand; never let a worker that won't
                # exit (stray non-daemon thread, blocking atexit hook)
                # stall the grid.
                proc.join(5.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join()
                return status, payload, error
            proc.terminate()
            proc.join(5.0)
            if proc.is_alive():
                # SIGTERM caught or the cell is stuck in uninterruptible
                # C code — escalate so one cell can never hang the grid.
                proc.kill()
                proc.join()
            return "timed_out", None, None
        finally:
            parent_conn.close()

    # ------------------------------------------------------------------
    def _merge(
        self, store: SqliteSink, cells: Sequence[SweepCell]
    ) -> List[CampaignOutcome]:
        """Grid-ordered outcomes for every cell present in the store.

        Reads *everything* back out of the store — including cells that
        just ran — so a payload always arrives through the same JSON
        round-trip regardless of which pass produced it.
        """
        rows = store.get_cells()
        merged = []
        for cell in cells:
            row = rows.get(cell_tag(cell))
            if row is None:
                continue  # interrupted before this cell ran
            if row["cell_seed"] != cell.seed:
                # Guard the read path too: a report over a store built
                # under a different base_seed must never attribute its
                # payloads to this grid's seeds.
                raise ConfigurationError(
                    f"campaign db {self.db_path!r} holds cell "
                    f"{cell_tag(cell)!r} with seed {row['cell_seed']}, "
                    f"but this grid derives seed {cell.seed} — the "
                    "store belongs to a different base_seed/grid"
                )
            merged.append(CampaignOutcome(
                cell=cell,
                status=row["status"],
                payload=(
                    json.loads(row["payload"])
                    if row["payload"] is not None else None
                ),
                error=row["error"],
            ))
        return merged

    def outcomes(self, **axes: Iterable[Any]) -> List[CampaignOutcome]:
        """Merged outcomes currently in the store, without running anything."""
        with SqliteSink(self.db_path) as store:
            return self._merge(store, self.cells(**axes))

    def report(self, **axes: Iterable[Any]) -> str:
        """A canonical JSON report of the campaign's merged outcomes.

        Byte-identical across any interrupt/resume schedule of the same
        grid: cell order is grid order, every payload went through the
        same canonical serialisation, and wall-clock noise (elapsed
        times) is excluded.
        """
        merged = self.outcomes(**axes)
        return json.dumps(
            {
                "base_seed": self.base_seed,
                "cells": [
                    {
                        "index": o.cell.index,
                        "seed": o.cell.seed,
                        "params": o.params,
                        "status": o.status,
                        "payload": o.payload,
                        "error": o.error,
                    }
                    for o in merged
                ],
            },
            sort_keys=True,
            default=str,
            indent=1,
        )


def _noop() -> None:
    """Target for the worker-availability probe."""
