"""Checkpointing campaign runner: resumable sweep grids over sqlite.

:class:`~repro.experiments.harness.SweepRunner` fans a grid across
workers, but a large campaign run through it is all-or-nothing — a
crash, timeout, or CI cancellation throws away every completed cell.
:class:`CampaignRunner` wraps the same cell functions and seeding with
durable, cell-granular checkpoints in a single ``campaign.db``
(see :class:`~repro.core.records.SqliteSink`):

* **Checkpointing** — every finished cell is committed to the ``cells``
  table the moment it completes (in completion order, not submission
  order, under the pooled paths), keyed on its canonical coordinate tag.
  Killing the campaign at any point loses at most the cells still
  in flight on the workers.  Checkpointing a non-``done`` status also
  clears the cell's ``round_summaries`` rows, so a killed or failed
  attempt can never leave stale per-round data behind — even for
  ``timed_out`` cells that will never re-run.
* **Resume** — :meth:`CampaignRunner.resume` queries the store first and
  only runs cells that are not already checkpointed (``failed`` cells
  are retried while their attempt count is within the ``max_retries``
  budget; ``done`` and ``timed_out`` cells — and ``failed`` cells whose
  budget is exhausted — are skipped).  Resume is *idempotent*: with the
  same ``base_seed`` and the same grid, the merged outcomes — and the
  byte content of :meth:`report` — are identical whether the grid ran
  in one pass or across N interrupted passes, because every payload is
  canonically JSON-serialised on the way into the store and all merging
  reads back out of the store.
* **Per-cell deadlines, in parallel** — with ``cell_timeout`` set the
  grid runs on a *deadline-aware pool*: ``processes`` persistent worker
  processes, each fed cells over a pipe while the parent tracks one
  wall-clock deadline per in-flight cell.  A cell that exceeds its
  budget has its worker terminated (terminate→kill escalation, so a
  SIGTERM-ignoring cell cannot hang the grid) and **replaced**, keeping
  the pool at full width while the cell is checkpointed ``timed_out``
  and the grid keeps moving.  Timeouts therefore no longer serialise
  the campaign; ``processes=0``/``1`` still forces the serial
  one-worker-per-cell path.  The pool is *persistent within one runner
  lifetime*: workers spawned by the first timed pass stay parked on
  their pipes between ``resume()`` calls and are reused by the next
  pass (asserted by a worker-pid test), so a campaign loop does not pay
  a pool spin-up per pass.  Call :meth:`CampaignRunner.close` (or use
  the runner as a context manager) to tear the pool down; the
  destructor backstops it.
* **Failure isolation** — a cell that raises is checkpointed as
  ``failed`` (with the exception's repr) and the campaign moves on;
  unlike ``SweepRunner.run``, one bad cell never aborts the grid.
  Each run increments the cell's ``attempts`` count; once a failed
  cell has been run ``1 + max_retries`` times it is left permanently
  ``failed`` — resume converges instead of re-crashing it forever.

Seeds come from :func:`~repro.experiments.harness.cell_seed` over the
grid coordinates only.  Infrastructure parameters that must not perturb
seeding or cell identity (a database path, a sink directory) go in
``extra_params``: they are merged into the cell function's ``params`` at
execution time but excluded from the tag, the seed, and the report's
``params``, so two campaigns over the same grid agree cell-for-cell
even when their databases live in different directories.  Byte-stable
reports additionally need the *payload* to be a deterministic function
of ``(grid params, seed)`` — ``consensus_sweep_cell`` satisfies this
for both ``sqlite_db`` and ``sink_dir`` (the payload records only the
sink file's basename, never the absolute path, so reports agree across
machines).

Example::

    runner = CampaignRunner(
        consensus_sweep_cell, db_path="campaign.db", base_seed=7,
        processes=4, cell_timeout=30.0,
    )
    outcomes = runner.resume(
        n=[4, 16], detector=["0-OAC", "maj-OAC"], loss_rate=[0.1, 0.3],
        trial=range(5),
    )                       # first call: runs everything, 4 cells at a time
    outcomes = runner.resume(
        n=[4, 16], detector=["0-OAC", "maj-OAC"], loss_rate=[0.1, 0.3],
        trial=range(5),
    )                       # second call: all cells checkpointed, no work

(Replicates sweep as a ``trial`` axis, which folds into each cell's
*derived* seed; a literal ``seed`` axis would override the derived seed
inside ``consensus_sweep_cell`` and make cells sharing a seed value
clobber each other's ``(cell_seed, round)`` rows in the shared
``round_summaries`` table.)
    print(runner.report(n=[4, 16], ...))   # canonical JSON, byte-stable
"""

from __future__ import annotations

import collections
import dataclasses
import json
import multiprocessing
import os
import pickle
import time
import warnings
from multiprocessing import connection as mp_connection
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import ConfigurationError
from ..core.records import SqliteSink
from .harness import (
    SweepCell,
    SweepRunner,
    _canonical,
    execute_cell_job,
    probe_worker_processes,
)

#: Cell statuses a resume does not re-run.
SKIP_STATUSES: Tuple[str, ...] = ("done", "timed_out")

#: Cell statuses a resume retries (subject to the ``max_retries`` budget).
RETRY_STATUSES: Tuple[str, ...] = ("failed",)

#: Grace period before a terminate escalates to kill.
_TERM_GRACE: float = 5.0


def cell_tag(cell: SweepCell) -> str:
    """The canonical, cross-run-stable identity of one grid cell.

    Built from the cell's sorted coordinates via the same value-based
    encoding that seeds it, so the tag is independent of grid order,
    worker scheduling, and which pass of a resumed campaign ran it.
    """
    return "|".join(f"{k}={_canonical(v)}" for k, v in cell.params)


def _payload_text(payload: Any) -> str:
    """Canonical JSON for a cell payload (sorted keys, str fallback)."""
    return json.dumps(payload, sort_keys=True, default=str)


def _params_text(cell: SweepCell) -> str:
    return json.dumps(dict(cell.params), sort_keys=True, default=str)


@dataclasses.dataclass(frozen=True)
class CampaignOutcome:
    """One checkpointed cell read back from the campaign store.

    ``payload`` is the JSON round-trip of what the cell function
    returned (``None`` unless ``status == "done"``): int dict keys
    become strings, tuples become lists — identical whether the cell ran
    in this pass or a previous one, which is what makes resumed reports
    byte-stable.  ``attempts`` counts how many times the cell has run
    in total (retries included).
    """

    cell: SweepCell
    status: str
    payload: Any = None
    error: Optional[str] = None
    attempts: int = 1

    @property
    def params(self) -> Dict[str, Any]:
        return self.cell.as_dict()


def _campaign_cell_worker(conn, fn, params: Dict[str, Any], seed: int) -> None:
    """Serial-timeout worker: run one cell, ship (status, payload, error)."""
    try:
        status, payload, error, _ = execute_cell_job(fn, params, seed)
        conn.send((status, payload, error))
    except BaseException as exc:  # checkpointed as failed, never fatal
        try:
            conn.send(("failed", None, repr(exc)))
        except Exception:
            pass
    finally:
        conn.close()


def _run_campaign_job(
    job: Tuple[Callable[..., Any], SweepCell, Dict[str, Any]]
) -> Tuple[int, str, Any, Optional[str], float]:
    """Pool worker entry point (module-level so it pickles under spawn).

    Returns ``(cell_index, status, payload, error, elapsed)`` and never
    raises for a cell's own exception, so results can flow back through
    ``imap_unordered`` — checkpointed in completion order — while still
    being attributable to their cell.
    """
    fn, cell, extra = job
    status, payload, error, elapsed = execute_cell_job(
        fn, cell.as_dict(), cell.seed, extra
    )
    return (cell.index, status, payload, error, elapsed)


def _deadline_pool_worker(conn, fn, extra: Dict[str, Any]) -> None:
    """Persistent deadline-pool worker: loop over jobs fed by the parent.

    Protocol: the parent sends ``(cell_index, params, seed)`` tuples,
    strictly one in flight per worker, and a ``None`` sentinel to shut
    down; the worker answers each job with ``(cell_index, status,
    payload, error, elapsed)`` and never raises for a cell's own
    exception (``BaseException`` included — a cell calling
    ``sys.exit`` is checkpointed ``failed`` with the same ``repr`` the
    serial path would record, never "worker died").  An overrun worker
    is simply terminated by the parent — no cooperation required — and
    a fresh worker takes its place.

    Sibling workers fork-inherit the parent's end of this worker's
    pipe, so a hard-killed parent (SIGKILL, OOM) never produces an EOF
    here; the recv poll therefore watches for re-parenting and exits
    when the parent is gone, so idle workers can't outlive a killed
    campaign as orphans.
    """
    parent_pid = os.getppid()
    try:
        while True:
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return  # parent died without an EOF; don't orphan
            try:
                job = conn.recv()
            except (EOFError, OSError):
                break
            if job is None:
                break
            index, params, seed = job
            exit_after = False
            try:
                status, payload, error, elapsed = execute_cell_job(
                    fn, params, seed, extra
                )
            except BaseException as exc:  # SystemExit/KeyboardInterrupt
                status, payload, error, elapsed = (
                    "failed", None, repr(exc), 0.0
                )
                exit_after = isinstance(exc, KeyboardInterrupt)
            try:
                conn.send((index, status, payload, error, elapsed))
            except (BrokenPipeError, OSError):
                break
            if exit_after:
                break  # interrupted: let the parent replace this worker
    finally:
        conn.close()


class _PoolWorker:
    """Parent-side handle on one deadline-pool worker process."""

    __slots__ = ("proc", "conn")

    def __init__(self, proc: multiprocessing.Process, conn) -> None:
        self.proc = proc
        self.conn = conn

    def stop(self) -> None:
        """Terminate→kill escalation; never returns with a live process."""
        try:
            self.conn.close()
        except Exception:
            pass
        self.proc.terminate()
        self.proc.join(_TERM_GRACE)
        if self.proc.is_alive():
            # SIGTERM caught/ignored or the cell is stuck in
            # uninterruptible C code — escalate so one cell can never
            # hang the grid.
            self.proc.kill()
            self.proc.join()

    def shutdown(self) -> None:
        """Graceful exit for an idle worker (sentinel, then escalate)."""
        try:
            self.conn.send(None)
        except Exception:
            pass
        try:
            self.conn.close()
        except Exception:
            pass
        self.proc.join(_TERM_GRACE)
        if self.proc.is_alive():
            self.stop()


class CampaignRunner:
    """A resumable, checkpointing wrapper around the sweep machinery.

    Parameters
    ----------
    cell_fn:
        A picklable top-level callable ``fn(params, seed) -> payload``
        (the same contract as :class:`SweepRunner`); the payload must be
        JSON-serialisable up to ``str`` fallback.
    db_path:
        The campaign's sqlite store.  One database is one campaign:
        reusing a database with a different ``base_seed`` or a
        conflicting grid raises instead of silently mixing results.
    base_seed:
        Folded into every cell's deterministic seed.
    processes:
        Worker count for both parallel paths (``None`` picks
        ``min(cells, cpu_count)``; ``0``/``1`` forces serial).  Composes
        with ``cell_timeout``: a timed campaign with ``processes`` > 1
        runs on the deadline-aware pool at full width.
    cell_timeout:
        Per-cell wall-clock budget in seconds.  Overrunning cells are
        terminated (terminate→kill escalation) and checkpointed as
        ``timed_out`` while the grid keeps moving — on the
        deadline-aware pool when ``processes`` allows parallelism, or
        one worker process per cell serially otherwise.  When worker
        processes are unavailable (sandboxed platforms), cells run
        in-process with a warning and the timeout is not enforced.
    max_retries:
        How many times a ``failed`` cell may be *re*-run by later
        resumes (default 2, i.e. at most ``1 + max_retries`` total
        attempts).  A cell that exhausts the budget stays ``failed``
        permanently and is skipped, so resuming a campaign with a
        deterministically-crashing cell converges instead of busy-work
        retrying forever.
    extra_params:
        Non-coordinate parameters merged into ``params`` at execution
        time only — excluded from seeding, cell identity, and reports.
    """

    def __init__(
        self,
        cell_fn: Callable[[Dict[str, Any], int], Any],
        db_path: str,
        base_seed: int = 0,
        processes: Optional[int] = None,
        cell_timeout: Optional[float] = None,
        max_retries: int = 2,
        extra_params: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.cell_fn = cell_fn
        self.db_path = str(db_path)
        self.base_seed = base_seed
        self.processes = processes
        self.cell_timeout = cell_timeout
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.max_retries = int(max_retries)
        self.extra_params = dict(extra_params or {})
        self._sweep = SweepRunner(cell_fn, processes=processes,
                                  base_seed=base_seed)
        # The persistent deadline pool: workers survive across resume()
        # passes within one runner lifetime (spawning a worker costs a
        # fork plus a pipe, so back-to-back resumes — the normal
        # campaign loop — must not pay it per pass).  Workers are
        # spawned lazily by the first timed parallel pass, kept while
        # idle, replaced when they die or overrun a deadline, and torn
        # down by close() (or the destructor as a backstop).
        self._pool: List[_PoolWorker] = []

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the persistent deadline pool (idempotent).

        Idle workers get the graceful sentinel; anything still alive
        after the grace period is terminated.  The runner remains usable
        afterwards — the next timed parallel pass simply respawns its
        workers.
        """
        while self._pool:
            self._pool.pop().shutdown()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def cells(self, **axes: Iterable[Any]) -> List[SweepCell]:
        """The seeded grid (delegates to :meth:`SweepRunner.cells`)."""
        return self._sweep.cells(**axes)

    # ------------------------------------------------------------------
    def run(
        self, max_cells: Optional[int] = None, **axes: Iterable[Any]
    ) -> List[CampaignOutcome]:
        """Launch (or continue) the campaign — an alias of :meth:`resume`.

        Launching and resuming are the same idempotent operation: run
        whatever the store does not already hold.
        """
        return self.resume(max_cells=max_cells, **axes)

    def resume(
        self, max_cells: Optional[int] = None, **axes: Iterable[Any]
    ) -> List[CampaignOutcome]:
        """Run every cell not already checkpointed; return merged outcomes.

        ``max_cells`` bounds how many *pending* cells this pass runs
        (the deterministic interruption used by tests and the CI resume
        smoke); the merged outcome list covers every cell present in the
        store after the pass, in grid order.
        """
        cells = self.cells(**axes)
        with SqliteSink(self.db_path) as store:
            existing = store.get_cells()
            pending = []
            prior_attempts: Dict[int, int] = {}
            for cell in cells:
                tag = cell_tag(cell)
                row = existing.get(tag)
                if row is not None:
                    if row["cell_seed"] != cell.seed:
                        raise ConfigurationError(
                            f"campaign db {self.db_path!r} holds cell "
                            f"{tag!r} with seed {row['cell_seed']}, but "
                            f"this grid derives seed {cell.seed} — the "
                            "store belongs to a different base_seed/grid"
                        )
                    if row["status"] in SKIP_STATUSES:
                        continue
                    if (row["status"] in RETRY_STATUSES
                            and row["attempts"] > self.max_retries):
                        # Retry budget exhausted: 1 + max_retries runs
                        # already happened; the cell stays failed
                        # permanently and resume converges.
                        continue
                    prior_attempts[cell.index] = row["attempts"]
                pending.append(cell)
            if max_cells is not None:
                pending = pending[:max_cells]
            if pending:
                self._run_pending(store, pending, prior_attempts)
            return self._merge(store, cells)

    # ------------------------------------------------------------------
    def _checkpoint(
        self,
        store: SqliteSink,
        cell: SweepCell,
        status: str,
        payload: Any = None,
        error: Optional[str] = None,
        elapsed: Optional[float] = None,
        attempts: int = 1,
    ) -> None:
        if status != "done":
            # The dead attempt may have streamed partial rounds into the
            # store before it was killed (timeout) or raised (failure);
            # clear them *now* — a timed_out cell is never re-run, so
            # the pre-run sweep in _run_pending would never reach it and
            # the stale rows would otherwise live forever.
            store.clear_rounds(cell.seed)
        store.record_cell(
            tag=cell_tag(cell),
            seed=cell.seed,
            index=cell.index,
            params_text=_params_text(cell),
            status=status,
            payload_text=_payload_text(payload) if status == "done" else None,
            error=error,
            elapsed=elapsed,
            attempts=attempts,
        )

    def _run_pending(
        self,
        store: SqliteSink,
        pending: Sequence[SweepCell],
        prior_attempts: Mapping[int, int],
    ) -> None:
        # A pending cell may have streamed rounds in a killed or failed
        # earlier attempt; clear them so stale rows can never linger
        # past the new attempt's final round.
        for cell in pending:
            store.clear_rounds(cell.seed)
        attempts = {
            cell.index: prior_attempts.get(cell.index, 0) + 1
            for cell in pending
        }
        if self.cell_timeout is not None:
            store.disconnect()  # no sqlite connection may cross the forks
            try:
                probe_worker_processes()
            except Exception as exc:
                warnings.warn(
                    f"CampaignRunner: worker processes unavailable "
                    f"({exc!r}); running cells in-process — per-cell "
                    "timeouts are NOT enforced",
                    RuntimeWarning,
                    stacklevel=4,
                )
                for cell in pending:
                    index, status, payload, error, elapsed = (
                        _run_campaign_job(
                            (self.cell_fn, cell, self.extra_params)
                        )
                    )
                    self._checkpoint(store, cell, status, payload=payload,
                                     error=error, elapsed=elapsed,
                                     attempts=attempts[index])
                return
            width = self.processes
            if width is None:
                width = multiprocessing.cpu_count() or 1
            width = min(len(pending), int(width))
            if width > 1 and self._cell_fn_picklable():
                self._run_deadline_pool(store, pending, attempts, width)
            else:
                self._run_with_timeouts(store, pending, attempts)
        else:
            self._run_pooled(store, pending, attempts)

    # -- no-timeout path: pool fan-out, checkpoint as results arrive ----
    def _run_pooled(
        self,
        store: SqliteSink,
        pending: Sequence[SweepCell],
        attempts: Mapping[int, int],
    ) -> None:
        jobs = [(self.cell_fn, cell, self.extra_params) for cell in pending]
        workers = self.processes
        if workers is None:
            workers = min(len(jobs), multiprocessing.cpu_count() or 1)
        pool = None
        if workers > 1 and len(jobs) > 1:
            try:
                pickle.dumps((self.cell_fn, self.extra_params))
                # Never fork with a live sqlite connection: the child's
                # inherited descriptor can break the parent's WAL locks.
                store.disconnect()
                pool = multiprocessing.Pool(workers)
            except Exception as exc:
                warnings.warn(
                    f"CampaignRunner: pool unavailable ({exc!r}); running "
                    "cells serially in-process",
                    RuntimeWarning,
                    stacklevel=3,
                )
        if pool is None:
            for job in jobs:
                index, status, payload, error, elapsed = _run_campaign_job(job)
                self._checkpoint(store, job[1], status, payload=payload,
                                 error=error, elapsed=elapsed,
                                 attempts=attempts[index])
            return
        # imap_unordered checkpoints every cell the moment it completes:
        # a kill mid-grid loses only cells still in flight, never a
        # finished cell queued behind a slow neighbour.  Workers catch
        # their cell's exception and return it tagged with the cell
        # index, so failures stay attributable out of order.
        by_index = {cell.index: cell for cell in pending}
        with pool:
            for index, status, payload, error, elapsed in (
                pool.imap_unordered(_run_campaign_job, jobs)
            ):
                self._checkpoint(store, by_index[index], status,
                                 payload=payload, error=error,
                                 elapsed=elapsed, attempts=attempts[index])

    # -- deadline-aware pool: parallel fan-out under per-cell budgets ---
    def _cell_fn_picklable(self) -> bool:
        """Can the cell function cross a process boundary by pickling?

        The serial timeout path inherits the function over the fork, so
        an unpicklable cell only forfeits the pool's parallelism (with a
        warning), never the timeout enforcement itself.
        """
        try:
            pickle.dumps((self.cell_fn, self.extra_params))
        except Exception as exc:
            warnings.warn(
                f"CampaignRunner: deadline pool unavailable ({exc!r}); "
                "falling back to one worker process per cell",
                RuntimeWarning,
                stacklevel=5,
            )
            return False
        return True

    def _spawn_pool_worker(self, store: SqliteSink) -> _PoolWorker:
        # Checkpointing between jobs reopens the store; always drop the
        # connection again before forking a worker (or a replacement).
        store.disconnect()
        parent_conn, child_conn = multiprocessing.Pipe()
        proc = multiprocessing.Process(
            target=_deadline_pool_worker,
            args=(child_conn, self.cell_fn, self.extra_params),
        )
        # Daemonic, like multiprocessing.Pool's own workers on the
        # no-timeout path: a persistent worker parked between passes
        # must never block interpreter shutdown when a caller forgets
        # close() — the atexit join of a non-daemon child would
        # deadlock against a parent that is already past __del__.
        # (Consequence, shared with the Pool path: cells themselves
        # cannot spawn child processes.)
        proc.daemon = True
        proc.start()
        child_conn.close()
        return _PoolWorker(proc, parent_conn)

    def _run_deadline_pool(
        self,
        store: SqliteSink,
        pending: Sequence[SweepCell],
        attempts: Mapping[int, int],
        width: int,
    ) -> None:
        """Fan ``pending`` over ``width`` persistent workers with deadlines.

        The parent owns all bookkeeping: it feeds each idle worker one
        cell, stamps the cell's wall-clock deadline, multiplexes on the
        worker pipes with :func:`multiprocessing.connection.wait`, and
        checkpoints results in completion order.  A worker that overruns
        its cell's deadline is stopped (terminate→kill) and replaced so
        the pool never narrows; its cell is checkpointed ``timed_out``
        and the grid keeps moving.  A worker that dies mid-cell (OOM
        kill, hard crash) checkpoints the cell ``failed`` and is
        replaced the same way.

        The pool itself outlives the pass: workers left idle when the
        queue drains stay parked on their pipes for the runner's next
        ``resume()`` (a dead idle worker is detected on feed and
        replaced), and only :meth:`close` — or an exceptional exit, for
        workers still mid-cell — tears them down.
        """
        queue = collections.deque(pending)
        workers = self._pool
        while len(workers) < width:
            workers.append(self._spawn_pool_worker(store))
        # worker -> (cell, started, deadline) for in-flight cells.
        busy: Dict[_PoolWorker, Tuple[SweepCell, float, float]] = {}

        def replace(worker: _PoolWorker) -> None:
            workers.remove(worker)
            worker.stop()
            workers.append(self._spawn_pool_worker(store))

        def finish(worker: _PoolWorker, cell: SweepCell,
                   started: float) -> None:
            """Collect one result from a readable worker and checkpoint."""
            try:
                _, status, payload, error, elapsed = worker.conn.recv()
            except (EOFError, OSError):
                # The worker died without shipping a result.
                self._checkpoint(
                    store, cell, "failed",
                    error="worker died without a result",
                    elapsed=time.monotonic() - started,
                    attempts=attempts[cell.index],
                )
                replace(worker)
                return
            self._checkpoint(store, cell, status, payload=payload,
                             error=error, elapsed=elapsed,
                             attempts=attempts[cell.index])

        try:
            while queue or busy:
                for worker in list(workers):
                    if worker in busy or not queue:
                        continue
                    cell = queue.popleft()
                    try:
                        worker.conn.send(
                            (cell.index, cell.as_dict(), cell.seed)
                        )
                    except (BrokenPipeError, OSError):
                        # Worker died while idle; requeue and replace.
                        queue.appendleft(cell)
                        replace(worker)
                        continue
                    now = time.monotonic()
                    busy[worker] = (cell, now, now + self.cell_timeout)
                if not busy:
                    continue
                wait_for = max(
                    0.0,
                    min(d for _, _, d in busy.values()) - time.monotonic(),
                )
                ready = mp_connection.wait(
                    [w.conn for w in busy], wait_for
                )
                by_conn = {w.conn: w for w in busy}
                for conn in ready:
                    worker = by_conn[conn]
                    cell, started, _ = busy.pop(worker)
                    finish(worker, cell, started)
                now = time.monotonic()
                for worker in [
                    w for w, (_, _, d) in busy.items() if now >= d
                ]:
                    cell, started, _ = busy.pop(worker)
                    if worker.conn.poll():
                        # The result landed between the wait and the
                        # deadline sweep — a result in hand always beats
                        # the deadline.
                        finish(worker, cell, started)
                        continue
                    replace(worker)
                    self._checkpoint(
                        store, cell, "timed_out",
                        elapsed=time.monotonic() - started,
                        attempts=attempts[cell.index],
                    )
        finally:
            # Keep idle workers for the next pass; only workers still
            # mid-cell (we are unwinding through an exception) are in an
            # unknown state and must go.
            for worker in list(busy):
                if worker in workers:
                    workers.remove(worker)
                worker.stop()

    # -- serial timeout path: one worker process per cell ----------------
    def _run_with_timeouts(
        self,
        store: SqliteSink,
        pending: Sequence[SweepCell],
        attempts: Mapping[int, int],
    ) -> None:
        # Worker availability was already probed by _run_pending.
        for cell in pending:
            start = time.monotonic()
            store.disconnect()  # checkpointing reopened it; drop pre-fork
            status, payload, error = self._run_one_with_timeout(cell)
            self._checkpoint(store, cell, status, payload=payload,
                             error=error, elapsed=time.monotonic() - start,
                             attempts=attempts[cell.index])

    def _run_one_with_timeout(self, cell: SweepCell):
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        params = dict(cell.as_dict(), **self.extra_params)
        proc = multiprocessing.Process(
            target=_campaign_cell_worker,
            args=(child_conn, self.cell_fn, params, cell.seed),
        )
        proc.start()
        child_conn.close()
        try:
            if parent_conn.poll(self.cell_timeout):
                try:
                    status, payload, error = parent_conn.recv()
                except EOFError:
                    status, payload, error = (
                        "failed", None, "worker died without a result"
                    )
                # The result is in hand; never let a worker that won't
                # exit (stray non-daemon thread, blocking atexit hook)
                # stall the grid.
                proc.join(_TERM_GRACE)
                if proc.is_alive():
                    proc.kill()
                    proc.join()
                return status, payload, error
            proc.terminate()
            proc.join(_TERM_GRACE)
            if proc.is_alive():
                # SIGTERM caught or the cell is stuck in uninterruptible
                # C code — escalate so one cell can never hang the grid.
                proc.kill()
                proc.join()
            return "timed_out", None, None
        finally:
            parent_conn.close()

    # ------------------------------------------------------------------
    def _merge(
        self, store: SqliteSink, cells: Sequence[SweepCell]
    ) -> List[CampaignOutcome]:
        """Grid-ordered outcomes for every cell present in the store.

        Reads *everything* back out of the store — including cells that
        just ran — so a payload always arrives through the same JSON
        round-trip regardless of which pass produced it.
        """
        rows = store.get_cells()
        merged = []
        for cell in cells:
            row = rows.get(cell_tag(cell))
            if row is None:
                continue  # interrupted before this cell ran
            if row["cell_seed"] != cell.seed:
                # Guard the read path too: a report over a store built
                # under a different base_seed must never attribute its
                # payloads to this grid's seeds.
                raise ConfigurationError(
                    f"campaign db {self.db_path!r} holds cell "
                    f"{cell_tag(cell)!r} with seed {row['cell_seed']}, "
                    f"but this grid derives seed {cell.seed} — the "
                    "store belongs to a different base_seed/grid"
                )
            merged.append(CampaignOutcome(
                cell=cell,
                status=row["status"],
                payload=(
                    json.loads(row["payload"])
                    if row["payload"] is not None else None
                ),
                error=row["error"],
                attempts=row["attempts"],
            ))
        return merged

    def outcomes(self, **axes: Iterable[Any]) -> List[CampaignOutcome]:
        """Merged outcomes currently in the store, without running anything."""
        with SqliteSink(self.db_path) as store:
            return self._merge(store, self.cells(**axes))

    def report(self, **axes: Iterable[Any]) -> str:
        """A canonical JSON report of the campaign's merged outcomes.

        Byte-identical across any interrupt/resume schedule of the same
        grid, provided every cell completes (``done``/``timed_out``):
        cell order is grid order, every payload went through the same
        canonical serialisation, and wall-clock noise (elapsed times)
        is excluded.  Each cell surfaces its ``attempts`` count, so
        exhausted retry budgets are visible straight from the report —
        which also means a *failed* cell's report depends on how many
        resumes retried it, exactly like its eventual success would.
        """
        merged = self.outcomes(**axes)
        return json.dumps(
            {
                "base_seed": self.base_seed,
                "cells": [
                    {
                        "index": o.cell.index,
                        "seed": o.cell.seed,
                        "params": o.params,
                        "status": o.status,
                        "payload": o.payload,
                        "error": o.error,
                        "attempts": o.attempts,
                    }
                    for o in merged
                ],
            },
            sort_keys=True,
            default=str,
            indent=1,
        )

    def report_table(self, **axes: Iterable[Any]) -> str:
        """An aligned-column table over the store's ``round_summaries``.

        One row per checkpointed cell, in grid order: the cell's
        canonical tag, status, attempt count, how many rounds it
        streamed into the store, and the mean per-round broadcast count
        — the campaign-analytics view in its minimal useful form.  The
        per-cell aggregation happens inside sqlite
        (:meth:`~repro.core.records.SqliteSink.round_aggregates`), so
        the table costs one query however many rounds the store holds.
        Cells that streamed nothing (``NONE``-policy cells, failures
        before round 1, cleared dead attempts) show ``-`` in both round
        columns.
        """
        cells = self.cells(**axes)
        with SqliteSink(self.db_path) as store:
            merged = self._merge(store, cells)
            aggregates = store.round_aggregates()
        headers = ("cell", "status", "attempts", "rounds", "mean_bcast")
        rows = []
        for outcome in merged:
            agg = aggregates.get(outcome.cell.seed)
            rows.append((
                cell_tag(outcome.cell),
                outcome.status,
                str(outcome.attempts),
                str(agg[0]) if agg is not None else "-",
                f"{agg[1]:.2f}" if agg is not None else "-",
            ))
        widths = [
            max(len(headers[col]), *(len(row[col]) for row in rows))
            if rows else len(headers[col])
            for col in range(len(headers))
        ]

        def fmt(row: Tuple[str, ...]) -> str:
            # The tag column is left-aligned prose; numbers and statuses
            # right-align so columns scan vertically.
            first = row[0].ljust(widths[0])
            rest = "  ".join(
                cell.rjust(widths[col + 1])
                for col, cell in enumerate(row[1:])
            )
            return f"{first}  {rest}".rstrip()

        lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
        lines.extend(fmt(row) for row in rows)
        return "\n".join(lines)
