"""E8: the majority-complete vs half-complete ablation.

The paper's sharpest qualitative finding is that a *single message* of
detector strength separates constant-round consensus from Ω(lg|V|):
majority completeness obliges a report when a process receives exactly
half of the round's messages, half completeness does not.  This
experiment makes the gap concrete:

* Algorithm 1 under a **maj-OAC** detector is safe and constant-round
  (Theorem 1);
* the *same* Algorithm 1 code under a **half-AC** detector is driven into
  an agreement violation by the Lemma 23 two-group composition: each
  group hears exactly one of the two simultaneous proposals, the detector
  may legally stay silent, and both groups sail through quiet veto rounds
  into different decisions;
* Algorithm 2, which only assumes zero completeness, survives the same
  composition (at the cost of logarithmically many rounds — Theorem 2 vs
  Theorem 6's bound).
"""

from __future__ import annotations

from typing import List

from ..algorithms.alg1 import algorithm_1
from ..algorithms.alg1 import termination_bound as alg1_bound
from ..algorithms.alg2 import algorithm_2
from ..core.consensus import evaluate
from ..core.execution import run_consensus
from ..lowerbounds.alpha import alpha_execution
from ..lowerbounds.compose import compose_alpha_executions
from .harness import Table
from .scenarios import maj_oac_environment

_VALUES = ["a", "b", "c", "d"]


def _compose_against(algorithm, k: int, extra: int):
    """Drive an algorithm through the two-group half-AC composition."""
    alpha_a = alpha_execution(algorithm, (0, 1), "a", k)
    alpha_b = alpha_execution(algorithm, (2, 3), "b", k)
    return compose_alpha_executions(
        algorithm, alpha_a, alpha_b, "a", "b", k, extra_rounds=extra
    )


def run_completeness_ablation() -> List[Table]:
    """Build the maj-vs-half gap table."""
    table = Table(
        title="E8  Ablation: majority-complete vs half-complete detection",
        columns=["algorithm", "detector", "outcome", "rounds", "note"],
        note=(
            "the half-AC rows use the Lemma 23 composition: two groups, "
            "each hearing exactly half of each round's messages"
        ),
    )

    # Algorithm 1 with its intended maj-OAC detector: safe, CST + 2.
    cst = 3
    env = maj_oac_environment(4, cst=cst, seed=0)
    assignment = dict(zip(range(4), _VALUES))
    result = run_consensus(
        env, algorithm_1(), assignment, max_rounds=alg1_bound(cst) + 10
    )
    report = evaluate(result, by_round=alg1_bound(cst))
    table.add(
        algorithm="Algorithm 1",
        detector="maj-OAC",
        outcome="agreement + termination" if report.solved else "FAILED",
        rounds=result.last_decision_round(),
        note=f"constant: decided at CST+{result.last_decision_round() - cst}",
    )

    # Algorithm 1 under half-AC: the exactly-half loss pattern is legal
    # and silent, so the two groups decide different values.
    composed = _compose_against(algorithm_1(), k=4, extra=0)
    decisions = set(composed.gamma.decided_values().values())
    table.add(
        algorithm="Algorithm 1",
        detector="half-AC (adversarial)",
        outcome=(
            "AGREEMENT VIOLATED" if len(decisions) > 1 else "no violation"
        ),
        rounds=composed.gamma.last_decision_round(),
        note=f"composed groups decided {sorted(decisions)}",
    )

    # Algorithm 2 under the same composition: safe (but logarithmic).
    # Its propose-phase broadcasts spell out the estimate's bits, so the
    # two groups' broadcast-count sequences diverge after the first
    # propose round — that bit-spelling is exactly how it stays safe, and
    # why the composition window cannot extend past k=2 here.
    alg2 = algorithm_2(_VALUES)
    composed2 = _compose_against(alg2, k=2, extra=60)
    report2 = evaluate(composed2.gamma)
    decisions2 = set(composed2.gamma.decided_values().values())
    table.add(
        algorithm="Algorithm 2",
        detector="half-AC (adversarial)",
        outcome="agreement holds" if report2.agreement else "VIOLATED",
        rounds=composed2.gamma.last_decision_round(),
        note=(
            f"decided {sorted(decisions2) or 'nothing during partition'}; "
            "pays Θ(lg|V|) rounds (Theorem 6)"
        ),
    )
    return [table]
