"""E1: the Figure 1 / Section 1.5 solvability-and-complexity matrix.

One row per (detector class, channel regime) combination the paper
analyses, reporting:

* the paper's verdict (solvable + bound, or impossible),
* what our implementation *measured*: either the matching algorithm's
  decision round relative to CST, or the witness constructor's verdict
  that no decision happened / a hypothetical fast decider would violate
  agreement.
"""

from __future__ import annotations

import math
from typing import List

from ..algorithms.alg1 import algorithm_1
from ..algorithms.alg1 import termination_bound as alg1_bound
from ..algorithms.alg2 import algorithm_2
from ..algorithms.alg2 import termination_bound as alg2_bound
from ..algorithms.alg3 import algorithm_3
from ..algorithms.alg3 import termination_bound as alg3_bound
from ..algorithms.baselines import naive_min_consensus
from ..core.consensus import evaluate
from ..core.execution import run_consensus
from ..core.records import RecordPolicy
from ..detectors.classes import HALF_AC, MAJ_OAC, ZERO_OAC
from ..lowerbounds.theorems import (
    theorem4_witness,
    theorem5_witness,
    theorem6_witness,
    theorem8_witness,
    theorem9_witness,
)
from .harness import Table
from .scenarios import ecf_environment, nocf_environment

_N = 4
_CST = 3
_VALUES = list(range(64))


def _measure_upper(algorithm_factory, detector_class, bound: int) -> str:
    env = ecf_environment(_N, detector_class, cst=_CST, seed=1)
    assignment = {i: _VALUES[(i * 5) % len(_VALUES)] for i in range(_N)}
    # Upper-bound rows only consult decisions and decision rounds, so the
    # streaming record policy suffices (identical outcomes, less memory).
    result = run_consensus(
        env, algorithm_factory(), assignment, max_rounds=bound + 20,
        record_policy=RecordPolicy.SUMMARY,
    )
    report = evaluate(result, by_round=bound)
    decided = result.last_decision_round()
    status = "ok" if report.solved else "FAILED"
    return f"decided CST+{decided - _CST} (bound CST+{bound - _CST}) {status}"


def run_matrix() -> List[Table]:
    """Build the solvability/complexity matrix (Figure 1 + Section 1.5)."""
    lgv = math.ceil(math.log2(len(_VALUES)))
    table = Table(
        title="E1  Solvability and round complexity per detector class",
        columns=["class", "cm", "channel", "paper", "measured"],
        note=f"|V|={len(_VALUES)} (lg|V|={lgv}), n={_N}, CST={_CST}",
    )

    # --- maj-OAC + WS + ECF: O(1) via Algorithm 1 (Theorem 1). ---------
    table.add(
        **{
            "class": "maj-OAC",
            "cm": "WS",
            "channel": "ECF",
            "paper": "solvable, CST + 2 (Thm 1)",
            "measured": _measure_upper(
                algorithm_1, MAJ_OAC, alg1_bound(_CST)
            ),
        }
    )

    # --- 0-OAC + WS + ECF: Θ(lg|V|) via Algorithm 2 (Theorem 2). -------
    table.add(
        **{
            "class": "0-OAC",
            "cm": "WS",
            "channel": "ECF",
            "paper": "solvable, CST + 2(⌈lg|V|⌉+1) (Thm 2)",
            "measured": _measure_upper(
                lambda: algorithm_2(_VALUES),
                ZERO_OAC,
                alg2_bound(_CST, len(_VALUES)),
            ),
        }
    )

    # --- half-AC + LS + ECF: Ω(lg|V|) lower bound (Theorem 6). ---------
    witness = theorem6_witness(algorithm_2(_VALUES), _VALUES, n=2)
    table.add(
        **{
            "class": "half-AC",
            "cm": "LS",
            "channel": "ECF",
            "paper": "no o(lg|V|)-round algorithm (Thm 6)",
            "measured": (
                f"Alg2 undecided at k={witness.k} after CST "
                f"(bound respected); half-AC compositions legal: "
                f"{witness.indistinguishability_ok}"
            ),
        }
    )
    fast = theorem6_witness(naive_min_consensus(1), _VALUES, n=2)
    table.add(
        **{
            "class": "half-AC",
            "cm": "LS",
            "channel": "ECF",
            "paper": "fast deciders violate agreement (Thm 6 proof)",
            "measured": (
                f"naive baseline: {fast.violation or 'no violation'} "
                f"at k={fast.k}"
            ),
        }
    )

    # --- NoCD + LS + ECF: impossible (Theorem 4). ----------------------
    w4 = theorem4_witness(algorithm_1(), "a", "b", n=3, horizon=40)
    w4_naive = theorem4_witness(naive_min_consensus(2), "a", "b", n=3)
    table.add(
        **{
            "class": "NoCD",
            "cm": "LS",
            "channel": "ECF",
            "paper": "impossible (Thm 4)",
            "measured": (
                f"Alg1 never decides; naive decider -> "
                f"{w4_naive.violation}"
                if not w4.decided
                else "UNEXPECTED: Alg1 decided under NoCD"
            ),
        }
    )

    # --- NoACC + LS + ECF: impossible (Theorem 5). ---------------------
    w5 = theorem5_witness(naive_min_consensus(2), "a", "b", n=3)
    table.add(
        **{
            "class": "NoACC",
            "cm": "LS",
            "channel": "ECF",
            "paper": "impossible (Thm 5, via Lemma 1)",
            "measured": f"naive decider -> {w5.violation}",
        }
    )

    # --- OAC + LS + NoCF: impossible (Theorem 8). ----------------------
    w8 = theorem8_witness(algorithm_1(), "a", "b", n=3, horizon=60)
    w8_naive = theorem8_witness(naive_min_consensus(2), "a", "b", n=3)
    table.add(
        **{
            "class": "OAC",
            "cm": "LS",
            "channel": "NoCF",
            "paper": "impossible (Thm 8)",
            "measured": (
                f"Alg1 never decides; naive decider -> "
                f"{w8_naive.violation}"
                if not w8.decided
                else "UNEXPECTED: Alg1 decided"
            ),
        }
    )

    # --- 0-AC + NoCM + NoCF: Θ(lg|V|) via Algorithm 3 (Thms 3, 9). -----
    env = nocf_environment(_N)
    assignment = {i: _VALUES[(i * 5) % len(_VALUES)] for i in range(_N)}
    bound = alg3_bound(len(_VALUES))
    result = run_consensus(
        env, algorithm_3(_VALUES), assignment, max_rounds=bound + 8,
        record_policy=RecordPolicy.SUMMARY,
    )
    report = evaluate(result, by_round=bound)
    w9 = theorem9_witness(algorithm_3(_VALUES), _VALUES, n=2)
    table.add(
        **{
            "class": "0-AC",
            "cm": "NoCM",
            "channel": "NoCF",
            "paper": "solvable, ≤8⌈lg|V|⌉ after failures; Ω(lg|V|) (Thms 3, 9)",
            "measured": (
                f"Alg3 decided r{result.last_decision_round()} "
                f"(bound {bound}) {'ok' if report.solved else 'FAILED'}; "
                f"undecided at lower-bound k={w9.k}"
            ),
        }
    )
    return [table]
