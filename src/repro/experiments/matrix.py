"""E1: the Figure 1 / Section 1.5 solvability-and-complexity matrix.

One row per (detector class, channel regime) combination the paper
analyses, reporting:

* the paper's verdict (solvable + bound, or impossible),
* what our implementation *measured*: either the matching algorithm's
  decision round relative to CST, or the witness constructor's verdict
  that no decision happened / a hypothetical fast decider would violate
  agreement.

E18 (:func:`run_campaign_matrix`) is the matrix *at scale*: the upper
bound rows re-run as a full (n × detector × loss_rate × seed) grid
through the checkpointing :class:`~repro.experiments.campaign.
CampaignRunner`, so the sweep survives interruption and resumes from
its sqlite store.
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
from typing import Iterable, List, Optional

from ..algorithms.alg1 import algorithm_1
from ..algorithms.alg1 import termination_bound as alg1_bound
from ..algorithms.alg2 import algorithm_2
from ..algorithms.alg2 import termination_bound as alg2_bound
from ..algorithms.alg3 import algorithm_3
from ..algorithms.alg3 import termination_bound as alg3_bound
from ..algorithms.baselines import naive_min_consensus
from ..core.consensus import evaluate
from ..core.execution import run_consensus
from ..core.records import RecordPolicy
from ..detectors.classes import HALF_AC, MAJ_OAC, ZERO_OAC
from ..lowerbounds.theorems import (
    theorem4_witness,
    theorem5_witness,
    theorem6_witness,
    theorem8_witness,
    theorem9_witness,
)
from .campaign import CampaignRunner
from .harness import Table, consensus_sweep_cell
from .scenarios import ecf_environment, nocf_environment

_N = 4
_CST = 3
_VALUES = list(range(64))


def _measure_upper(algorithm_factory, detector_class, bound: int) -> str:
    env = ecf_environment(_N, detector_class, cst=_CST, seed=1)
    assignment = {i: _VALUES[(i * 5) % len(_VALUES)] for i in range(_N)}
    # Upper-bound rows only consult decisions and decision rounds, so the
    # streaming record policy suffices (identical outcomes, less memory).
    result = run_consensus(
        env, algorithm_factory(), assignment, max_rounds=bound + 20,
        record_policy=RecordPolicy.SUMMARY,
    )
    report = evaluate(result, by_round=bound)
    decided = result.last_decision_round()
    status = "ok" if report.solved else "FAILED"
    return f"decided CST+{decided - _CST} (bound CST+{bound - _CST}) {status}"


def run_matrix() -> List[Table]:
    """Build the solvability/complexity matrix (Figure 1 + Section 1.5)."""
    lgv = math.ceil(math.log2(len(_VALUES)))
    table = Table(
        title="E1  Solvability and round complexity per detector class",
        columns=["class", "cm", "channel", "paper", "measured"],
        note=f"|V|={len(_VALUES)} (lg|V|={lgv}), n={_N}, CST={_CST}",
    )

    # --- maj-OAC + WS + ECF: O(1) via Algorithm 1 (Theorem 1). ---------
    table.add(
        **{
            "class": "maj-OAC",
            "cm": "WS",
            "channel": "ECF",
            "paper": "solvable, CST + 2 (Thm 1)",
            "measured": _measure_upper(
                algorithm_1, MAJ_OAC, alg1_bound(_CST)
            ),
        }
    )

    # --- 0-OAC + WS + ECF: Θ(lg|V|) via Algorithm 2 (Theorem 2). -------
    table.add(
        **{
            "class": "0-OAC",
            "cm": "WS",
            "channel": "ECF",
            "paper": "solvable, CST + 2(⌈lg|V|⌉+1) (Thm 2)",
            "measured": _measure_upper(
                lambda: algorithm_2(_VALUES),
                ZERO_OAC,
                alg2_bound(_CST, len(_VALUES)),
            ),
        }
    )

    # --- half-AC + LS + ECF: Ω(lg|V|) lower bound (Theorem 6). ---------
    witness = theorem6_witness(algorithm_2(_VALUES), _VALUES, n=2)
    table.add(
        **{
            "class": "half-AC",
            "cm": "LS",
            "channel": "ECF",
            "paper": "no o(lg|V|)-round algorithm (Thm 6)",
            "measured": (
                f"Alg2 undecided at k={witness.k} after CST "
                f"(bound respected); half-AC compositions legal: "
                f"{witness.indistinguishability_ok}"
            ),
        }
    )
    fast = theorem6_witness(naive_min_consensus(1), _VALUES, n=2)
    table.add(
        **{
            "class": "half-AC",
            "cm": "LS",
            "channel": "ECF",
            "paper": "fast deciders violate agreement (Thm 6 proof)",
            "measured": (
                f"naive baseline: {fast.violation or 'no violation'} "
                f"at k={fast.k}"
            ),
        }
    )

    # --- NoCD + LS + ECF: impossible (Theorem 4). ----------------------
    w4 = theorem4_witness(algorithm_1(), "a", "b", n=3, horizon=40)
    w4_naive = theorem4_witness(naive_min_consensus(2), "a", "b", n=3)
    table.add(
        **{
            "class": "NoCD",
            "cm": "LS",
            "channel": "ECF",
            "paper": "impossible (Thm 4)",
            "measured": (
                f"Alg1 never decides; naive decider -> "
                f"{w4_naive.violation}"
                if not w4.decided
                else "UNEXPECTED: Alg1 decided under NoCD"
            ),
        }
    )

    # --- NoACC + LS + ECF: impossible (Theorem 5). ---------------------
    w5 = theorem5_witness(naive_min_consensus(2), "a", "b", n=3)
    table.add(
        **{
            "class": "NoACC",
            "cm": "LS",
            "channel": "ECF",
            "paper": "impossible (Thm 5, via Lemma 1)",
            "measured": f"naive decider -> {w5.violation}",
        }
    )

    # --- OAC + LS + NoCF: impossible (Theorem 8). ----------------------
    w8 = theorem8_witness(algorithm_1(), "a", "b", n=3, horizon=60)
    w8_naive = theorem8_witness(naive_min_consensus(2), "a", "b", n=3)
    table.add(
        **{
            "class": "OAC",
            "cm": "LS",
            "channel": "NoCF",
            "paper": "impossible (Thm 8)",
            "measured": (
                f"Alg1 never decides; naive decider -> "
                f"{w8_naive.violation}"
                if not w8.decided
                else "UNEXPECTED: Alg1 decided"
            ),
        }
    )

    # --- 0-AC + NoCM + NoCF: Θ(lg|V|) via Algorithm 3 (Thms 3, 9). -----
    env = nocf_environment(_N)
    assignment = {i: _VALUES[(i * 5) % len(_VALUES)] for i in range(_N)}
    bound = alg3_bound(len(_VALUES))
    result = run_consensus(
        env, algorithm_3(_VALUES), assignment, max_rounds=bound + 8,
        record_policy=RecordPolicy.SUMMARY,
    )
    report = evaluate(result, by_round=bound)
    w9 = theorem9_witness(algorithm_3(_VALUES), _VALUES, n=2)
    table.add(
        **{
            "class": "0-AC",
            "cm": "NoCM",
            "channel": "NoCF",
            "paper": "solvable, ≤8⌈lg|V|⌉ after failures; Ω(lg|V|) (Thms 3, 9)",
            "measured": (
                f"Alg3 decided r{result.last_decision_round()} "
                f"(bound {bound}) {'ok' if report.solved else 'FAILED'}; "
                f"undecided at lower-bound k={w9.k}"
            ),
        }
    )
    return [table]


# ----------------------------------------------------------------------
# E18: the matrix at campaign scale
# ----------------------------------------------------------------------
def run_campaign_matrix(
    db_path: Optional[str] = None,
    ns: Iterable[int] = (4, 8),
    detectors: Iterable[str] = ("0-OAC", "maj-OAC"),
    loss_rates: Iterable[float] = (0.1, 0.3),
    seeds: Iterable[int] = (0, 1, 2),
    base_seed: int = 0,
    values: int = 16,
    cell_timeout: Optional[float] = None,
    processes: Optional[int] = None,
    max_retries: int = 2,
    max_cells: Optional[int] = None,
    in_process: bool = False,
    shard_index: int = 0,
    shard_count: int = 1,
    stall_timeout: Optional[float] = None,
) -> List[Table]:
    """E18: the E1 upper-bound matrix at scale, through the campaign layer.

    Sweeps (n × detector × loss_rate × seed) cells of
    :func:`~repro.experiments.harness.consensus_sweep_cell` — Algorithm 2
    to decision under the ``SUMMARY`` record policy — via
    :class:`~repro.experiments.campaign.CampaignRunner`, which
    checkpoints every finished cell into ``db_path`` (``campaign.db``)
    and streams each cell's per-round summaries into the same store.
    Re-running with the same ``db_path`` resumes: completed cells are
    read back instead of re-simulated, and an interrupted grid finishes
    from where it stopped with byte-identical merged outcomes.
    Every configuration routes through the unified
    :class:`~repro.experiments.dispatch.CampaignDispatcher` pool —
    ``processes`` sets its width (``0``/``1`` = a one-worker pool) and
    ``cell_timeout`` arms per-cell deadlines at any width; ``failed``
    cells are retried on resume only within the ``max_retries`` budget.
    ``in_process=True`` is the serial debug escape hatch (CLI
    ``--in-process``): no workers, timeouts unenforced, byte-identical
    reports.

    One table row aggregates each (n, detector, loss_rate) combination
    over its seeds; ``db_path=None`` uses a throwaway store under the
    system temp directory — a fresh campaign every call, removed once
    the table is built (pass an explicit ``db_path`` to keep a store
    you can resume or interrupt).

    ``shard_index``/``shard_count`` run just one host's deterministic
    share of the grid (CLI ``campaign shard --index i --of k``) into
    its own store; ``merge_campaign_stores`` folds the K stores back
    into one whose report bytes equal this function run unsharded.
    """
    throwaway = None
    if db_path is None:
        throwaway = tempfile.mkdtemp(prefix="repro-e18-")
        db_path = os.path.join(throwaway, "campaign.db")
    try:
        return _campaign_matrix_tables(
            db_path, ns, detectors, loss_rates, seeds, base_seed, values,
            cell_timeout, processes, max_retries, max_cells,
            in_process=in_process,
            shard_index=shard_index, shard_count=shard_count,
            stall_timeout=stall_timeout,
            throwaway=throwaway is not None,
        )
    finally:
        if throwaway is not None:
            shutil.rmtree(throwaway, ignore_errors=True)


def _campaign_matrix_tables(
    db_path: str,
    ns: Iterable[int],
    detectors: Iterable[str],
    loss_rates: Iterable[float],
    seeds: Iterable[int],
    base_seed: int,
    values: int,
    cell_timeout: Optional[float],
    processes: Optional[int],
    max_retries: int,
    max_cells: Optional[int],
    in_process: bool = False,
    shard_index: int = 0,
    shard_count: int = 1,
    stall_timeout: Optional[float] = None,
    throwaway: bool = False,
) -> List[Table]:
    # The seed axis is swept as ``trial``: each trial folds into the
    # *derived* per-cell seed (via cell_seed) instead of overriding it,
    # so every cell owns a distinct (cell_seed, round) key range in the
    # shared round_summaries table.
    axes = dict(
        n=list(ns),
        detector=list(detectors),
        loss_rate=[float(r) for r in loss_rates],
        trial=list(seeds),
        values=[int(values)],
        record_policy=["summary"],
    )
    # Context-managed so the dispatcher pool is torn down before the
    # tables are returned — a one-shot matrix must not park workers.
    with CampaignRunner(
        consensus_sweep_cell,
        db_path=db_path,
        base_seed=base_seed,
        processes=processes,
        cell_timeout=cell_timeout,
        max_retries=max_retries,
        extra_params={"sqlite_db": db_path},
        in_process=in_process,
        shard_index=shard_index,
        shard_count=shard_count,
        stall_timeout=stall_timeout,
    ) as runner:
        outcomes = runner.resume(max_cells=max_cells, **axes)

    sharded = shard_count > 1
    table = Table(
        title=(
            "E18  Campaign matrix: (n x detector x loss_rate x seed)"
            + (f" [shard {shard_index}/{shard_count}]" if sharded else "")
        ),
        columns=[
            "n", "detector", "loss_rate", "cells", "done", "timed_out",
            "failed", "solved", "mean_rounds", "mean_decision_round",
        ],
        note=(
            "checkpointed in a throwaway temp store (pass db_path to "
            "keep one)" if throwaway else
            f"checkpointed in {db_path}; rerun with the same db to "
            "resume — completed cells are read back, not re-simulated"
            + (f"; shard {shard_index}/{shard_count} — merge the shard "
               "stores with 'python -m repro campaign merge' for the "
               "full grid" if sharded else "")
        ),
    )
    groups = {}
    for outcome in outcomes:
        p = outcome.params
        groups.setdefault(
            (p["n"], p["detector"], p["loss_rate"]), []
        ).append(outcome)
    for (n, detector, loss_rate), cell_outcomes in sorted(
        groups.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
    ):
        done = [o for o in cell_outcomes if o.status == "done"]
        solved = sum(1 for o in done if o.payload["solved"])
        rounds = [o.payload["rounds"] for o in done]
        decision_rounds = [
            o.payload["decision_round"] for o in done
            if o.payload["decision_round"] is not None
        ]
        table.add(**{
            "n": n,
            "detector": detector,
            "loss_rate": loss_rate,
            "cells": len(cell_outcomes),
            "done": len(done),
            "timed_out": sum(
                1 for o in cell_outcomes if o.status == "timed_out"
            ),
            "failed": sum(
                1 for o in cell_outcomes if o.status == "failed"
            ),
            "solved": f"{solved}/{len(done)}" if done else "0/0",
            "mean_rounds": (
                sum(rounds) / len(rounds) if rounds else None
            ),
            "mean_decision_round": (
                sum(decision_rounds) / len(decision_rounds)
                if decision_rounds else None
            ),
        })
    return [table]
