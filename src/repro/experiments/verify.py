"""Self-healing campaign stores: integrity audit plus quarantine.

A campaign store is the durable half of the resume contract — if its
rows rot (torn writes, disk faults, a stray editor), resume and report
inherit the rot.  :func:`verify_campaign_store` audits one store from
first principles and, with ``quarantine=True``, demotes or removes the
damage so that a subsequent ``resume`` + ``report`` converges back to
the clean reference bytes:

* ``PRAGMA integrity_check`` — the database file itself;
* schema validation — the three campaign tables with the exact column
  sets the current code writes;
* metadata validation — the ``base_seed`` stamp and shard spec shape;
* per-cell validation — a legal status, a parseable payload for every
  ``done`` cell, a sane attempts count, and **re-derived identity**:
  the row's coordinate tag and seed are recomputed from its stored
  params (via the same canonical encoding and SHA-256 derivation that
  created them) and must match the row exactly;
* round hygiene — ``round_summaries`` rows filed under no known cell
  (orphans) or under a non-``done`` cell (stale data a checkpoint
  should have cleared).

Quarantine actions are deliberately conservative:

* a cell whose *content* is damaged (bad status, missing or corrupt
  payload, bad attempts) is **demoted** to ``failed`` with
  ``attempts=0`` and its rounds cleared — the next resume re-runs it
  as if it had simply failed, and because the re-run is attempt 1, the
  eventual report is byte-identical to a never-corrupted run;
* a cell whose *identity* is damaged (tag/seed/params disagree) cannot
  be trusted at all and is **deleted** outright — the next resume sees
  a gap and fills it;
* orphaned and stale rounds are deleted.

The CLI face is ``python -m repro campaign verify --db PATH
[--quarantine]`` (exit 0 when the store is clean, 1 when findings were
reported).  ``docs/failure-modes.md`` maps each finding to its operator
action.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Dict, List, Optional

from ..core.errors import ConfigurationError
from .harness import _canonical, cell_seed as derive_cell_seed

#: The only statuses the campaign layer ever writes.
VALID_STATUSES = ("done", "failed", "timed_out")

#: table -> required columns, matching ``_CAMPAIGN_SCHEMA``.
_REQUIRED_SCHEMA: Dict[str, tuple] = {
    "cells": (
        "cell_tag", "cell_seed", "cell_index", "params", "status",
        "payload", "error", "elapsed", "attempts",
    ),
    "round_summaries": (
        "cell_seed", "round", "broadcast_count", "crashed_during",
        "decided_during",
    ),
    "campaign_meta": ("key", "value"),
}

#: Error text stamped on demoted cells (deterministic — it can reach a
#: report only while the cell is still failed, and a resume overwrites
#: it either way).
_QUARANTINE_ERROR = "quarantined by campaign verify"


def _tag_from_params(params: Dict[str, Any]) -> str:
    return "|".join(
        f"{k}={_canonical(v)}" for k, v in sorted(params.items())
    )


def verify_campaign_store(
    db_path: str, quarantine: bool = False
) -> Dict[str, Any]:
    """Audit one campaign store; optionally quarantine what is broken.

    Returns a summary dict::

        {
            "path": db_path,
            "cells": <row count>,
            "ok": <no findings>,
            "findings": [
                {"kind": ..., "cell_tag"/"cell_seed": ..., "detail": ...,
                 "action": <quarantine action or "report-only">},
                ...
            ],
            "quarantined": <number of actions applied>,
        }

    Findings are detected in full before any quarantine action runs, so
    the finding list is identical with and without ``quarantine`` on
    the same store.  The connection is opened raw — *not* through
    :class:`~repro.core.records.SqliteSink` — because the sink's lazy
    schema bootstrap would silently repair exactly the damage this
    function exists to report.
    """
    if not os.path.exists(db_path):
        raise ConfigurationError(
            f"campaign store {db_path!r} does not exist — nothing to "
            "verify"
        )
    findings: List[Dict[str, Any]] = []
    conn = sqlite3.connect(db_path)
    try:
        try:
            integrity = conn.execute(
                "PRAGMA integrity_check"
            ).fetchone()[0]
        except sqlite3.DatabaseError as exc:
            findings.append({
                "kind": "integrity",
                "detail": f"not a database: {exc}",
                "action": "report-only",
            })
            return _summary(db_path, 0, findings, 0)
        if integrity != "ok":
            findings.append({
                "kind": "integrity",
                "detail": integrity,
                "action": "report-only",
            })
            return _summary(db_path, 0, findings, 0)

        tables = {
            row[0] for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        schema_ok = True
        for table, columns in _REQUIRED_SCHEMA.items():
            if table not in tables:
                schema_ok = False
                findings.append({
                    "kind": "schema",
                    "detail": f"missing table {table!r}",
                    "action": "report-only",
                })
                continue
            present = {
                row[1] for row in conn.execute(
                    f"PRAGMA table_info({table})"
                )
            }
            absent = [c for c in columns if c not in present]
            if absent:
                schema_ok = False
                findings.append({
                    "kind": "schema",
                    "detail": f"table {table!r} lacks columns {absent}",
                    "action": "report-only",
                })
        if not schema_ok:
            # Row-level checks against a wrong shape would themselves
            # error; schema damage is strictly report-only.
            return _summary(db_path, 0, findings, 0)

        base_seed = _read_meta(conn, "base_seed")
        if base_seed is None:
            findings.append({
                "kind": "meta",
                "detail": (
                    "no base_seed stamp — the store is unstamped or its "
                    "campaign_meta was lost; cell seeds cannot be "
                    "re-derived"
                ),
                "action": "report-only",
            })
        shard = _read_meta(conn, "shard")
        if shard is not None and (
            not isinstance(shard, dict)
            or not isinstance(shard.get("count"), int)
            or not isinstance(shard.get("index"), int)
        ):
            findings.append({
                "kind": "meta",
                "detail": f"malformed shard spec {shard!r}",
                "action": "report-only",
            })

        rows = conn.execute(
            "SELECT cell_tag, cell_seed, cell_index, params, status, "
            "payload, attempts FROM cells"
        ).fetchall()
        demote: List[tuple] = []   # (tag, seed)
        delete: List[tuple] = []   # (tag, seed)
        for tag, seed, index, params_text, status, payload, attempts \
                in rows:
            cell_findings: List[Dict[str, Any]] = []
            identity_bad = False
            try:
                params = json.loads(params_text)
                if not isinstance(params, dict):
                    raise ValueError("params is not a JSON object")
            except ValueError as exc:
                identity_bad = True
                cell_findings.append({
                    "kind": "cell-identity",
                    "cell_tag": tag,
                    "detail": f"unparseable params ({exc})",
                })
            else:
                derived_tag = _tag_from_params(params)
                if derived_tag != tag:
                    identity_bad = True
                    cell_findings.append({
                        "kind": "cell-identity",
                        "cell_tag": tag,
                        "detail": (
                            "stored tag does not match its params "
                            f"(re-derived {derived_tag!r})"
                        ),
                    })
                elif base_seed is not None:
                    derived_seed = derive_cell_seed(base_seed, **params)
                    if derived_seed != seed:
                        identity_bad = True
                        cell_findings.append({
                            "kind": "cell-identity",
                            "cell_tag": tag,
                            "detail": (
                                f"stored seed {seed} does not match "
                                f"re-derived seed {derived_seed}"
                            ),
                        })
            if status not in VALID_STATUSES:
                cell_findings.append({
                    "kind": "cell-status",
                    "cell_tag": tag,
                    "detail": (
                        f"illegal status {status!r} (expected one of "
                        f"{list(VALID_STATUSES)})"
                    ),
                })
            elif status == "done":
                if payload is None:
                    cell_findings.append({
                        "kind": "cell-payload",
                        "cell_tag": tag,
                        "detail": "done cell with no payload",
                    })
                else:
                    try:
                        json.loads(payload)
                    except ValueError as exc:
                        cell_findings.append({
                            "kind": "cell-payload",
                            "cell_tag": tag,
                            "detail": f"corrupt payload ({exc})",
                        })
            if not isinstance(attempts, int) or attempts < 0:
                cell_findings.append({
                    "kind": "cell-attempts",
                    "cell_tag": tag,
                    "detail": f"illegal attempts count {attempts!r}",
                })
            if not cell_findings:
                continue
            action = "delete-cell" if identity_bad else "demote-cell"
            for finding in cell_findings:
                finding["action"] = (
                    action if quarantine else "report-only"
                )
                findings.append(finding)
            (delete if identity_bad else demote).append((tag, seed))

        known_seeds = {row[1] for row in rows}
        non_done_seeds = {
            row[1] for row in rows if row[4] != "done"
        }
        round_seeds = {
            row[0] for row in conn.execute(
                "SELECT DISTINCT cell_seed FROM round_summaries"
            )
        }
        orphan_seeds = sorted(round_seeds - known_seeds)
        for seed in orphan_seeds:
            findings.append({
                "kind": "orphan-rounds",
                "cell_seed": seed,
                "detail": (
                    "round_summaries rows filed under a cell_seed no "
                    "checkpointed cell owns"
                ),
                "action": "delete-rounds" if quarantine
                else "report-only",
            })
        stale_seeds = sorted(round_seeds & non_done_seeds)
        for seed in stale_seeds:
            findings.append({
                "kind": "stale-rounds",
                "cell_seed": seed,
                "detail": (
                    "round_summaries rows under a non-done cell — a "
                    "checkpoint should have cleared them"
                ),
                "action": "delete-rounds" if quarantine
                else "report-only",
            })

        quarantined = 0
        if quarantine:
            for tag, seed in demote:
                conn.execute(
                    "UPDATE cells SET status='failed', payload=NULL, "
                    "error=?, attempts=0 WHERE cell_tag=?",
                    (_QUARANTINE_ERROR, tag),
                )
                conn.execute(
                    "DELETE FROM round_summaries WHERE cell_seed=?",
                    (seed,),
                )
                quarantined += 1
            for tag, seed in delete:
                conn.execute(
                    "DELETE FROM cells WHERE cell_tag=?", (tag,)
                )
                conn.execute(
                    "DELETE FROM round_summaries WHERE cell_seed=?",
                    (seed,),
                )
                quarantined += 1
            for seed in orphan_seeds + stale_seeds:
                conn.execute(
                    "DELETE FROM round_summaries WHERE cell_seed=?",
                    (seed,),
                )
                quarantined += 1
            conn.commit()
        return _summary(db_path, len(rows), findings, quarantined)
    finally:
        conn.close()


def _read_meta(conn: sqlite3.Connection, key: str) -> Any:
    row = conn.execute(
        "SELECT value FROM campaign_meta WHERE key=?", (key,)
    ).fetchone()
    if row is None:
        return None
    try:
        return json.loads(row[0])
    except ValueError:
        return None


def _summary(
    path: str,
    cells: int,
    findings: List[Dict[str, Any]],
    quarantined: int,
) -> Dict[str, Any]:
    return {
        "path": path,
        "cells": cells,
        "ok": not findings,
        "findings": findings,
        "quarantined": quarantined,
    }


def format_findings(summary: Dict[str, Any]) -> str:
    """Human-readable, deterministic rendering of a verify summary."""
    lines = [
        f"verify {summary['path']}: {summary['cells']} cells, "
        f"{len(summary['findings'])} finding(s), "
        f"{summary['quarantined']} quarantined"
    ]
    for finding in summary["findings"]:
        where = finding.get("cell_tag", finding.get("cell_seed", "-"))
        lines.append(
            f"  [{finding['kind']}] {where}: {finding['detail']} "
            f"-> {finding['action']}"
        )
    if summary["ok"]:
        lines.append("  store is clean")
    return "\n".join(lines)
