"""E15: Conjecture 1, measured — does the overlapping-subset universe
keep composable pairs alive longer than Lemma 22's disjoint partition?

For the §7.3 algorithm (the one the conjecture would pinch against its
upper bound), we report, per ``|I|``: the closed-form Lemma 22 bound, the
longest composable prefix found in the disjoint universe, the longest
found in the overlapping universe, and the conjectured ``lg|I|`` target.
The overlapping universe dominating the disjoint one is the mechanism
the conjecture relies on.
"""

from __future__ import annotations

import math
from typing import List

from ..algorithms.nonanonymous import non_anonymous_algorithm
from ..lowerbounds.conjecture import max_composable_prefix
from ..lowerbounds.pigeonhole import lemma22_bound
from .harness import Table

_VALUES = list(range(64))
_N = 2


def run_conjecture_exploration(
    id_counts=(4, 8, 16),
) -> List[Table]:
    table = Table(
        title="E15  Conjecture 1: disjoint vs overlapping pigeonhole universes",
        columns=[
            "|I|", "lemma22_bound", "k_disjoint", "k_overlapping",
            "conjectured_lg|I|", "overlap_dominates",
        ],
        note=(
            "k_* = longest prefix with a composable execution pair still "
            "available to the adversary (larger = stronger bound)"
        ),
    )
    for ic in id_counts:
        id_space = list(range(ic))
        algorithm = non_anonymous_algorithm(_VALUES, id_space)
        k_disjoint = max_composable_prefix(
            algorithm, id_space, _N, _VALUES, mode="disjoint",
        )
        k_overlapping = max_composable_prefix(
            algorithm, id_space, _N, _VALUES, mode="overlapping",
        )
        table.add(**{
            "|I|": ic,
            "lemma22_bound": lemma22_bound(len(_VALUES), ic, _N),
            "k_disjoint": k_disjoint,
            "k_overlapping": k_overlapping,
            "conjectured_lg|I|": math.ceil(math.log2(ic)),
            "overlap_dominates": k_overlapping >= k_disjoint,
        })
    return [table]
