"""The evaluation harness: every paper artifact as a runnable experiment.

``REGISTRY`` indexes experiments E1-E19 (see DESIGN.md for the mapping to
the paper's figures and theorems); each benchmark in ``benchmarks/``
regenerates one entry, and :func:`render_all` reproduces the whole
evaluation as ASCII tables.  E17/E18 are engineering artifacts: the
parallel sweep and the resumable sqlite-checkpointed campaign layer
(``python -m repro campaign``); E19 is the churn campaign — consensus
under dynamic membership (``python -m repro campaign --family e19``).
"""

from .ablation import run_completeness_ablation
from .applications import run_applications
from .campaign import (
    CampaignOutcome,
    CampaignRunner,
    cell_tag,
    merge_campaign_stores,
    shard_cells,
    shard_of,
)
from .churn import churn_sweep_cell, run_churn_campaign
from .conjecture import run_conjecture_exploration
from .counting import run_counting_experiment
from .dispatch import (
    CampaignDispatcher,
    CellResult,
    WorkerPoolError,
    execute_cell_job,
)
from .eventual_completeness import run_eventual_completeness
from .detector_quality import (
    run_clock_calibration,
    run_detector_calibration,
    run_detector_quality,
    run_loss_calibration,
)
from .harness import (
    Experiment,
    ExperimentRegistry,
    SweepCell,
    SweepOutcome,
    SweepRunner,
    Table,
    cell_seed,
    consensus_sweep_cell,
    iter_sweep_grid,
    sweep_grid,
)
from .lower import run_impossibility_witnesses, run_round_complexity_witnesses
from .matrix import run_campaign_matrix, run_matrix
from .multihop import run_multihop_flood
from .registry import REGISTRY, render_all, run_experiment
from .resilience import run_resilience
from .sweep import run_parallel_sweep
from .scenarios import (
    ecf_environment,
    maj_oac_environment,
    nocf_environment,
    zero_oac_environment,
)
from .verify import format_findings, verify_campaign_store
from .termination import (
    run_alg1_termination,
    run_alg2_value_sweep,
    run_alg3_nocf,
    run_nonanon_crossover,
)

__all__ = [
    "Table", "Experiment", "ExperimentRegistry",
    "SweepRunner", "SweepCell", "SweepOutcome",
    "sweep_grid", "iter_sweep_grid", "cell_seed", "consensus_sweep_cell",
    "CampaignRunner", "CampaignOutcome", "cell_tag",
    "shard_of", "shard_cells", "merge_campaign_stores",
    "verify_campaign_store", "format_findings",
    "CampaignDispatcher", "CellResult", "execute_cell_job",
    "WorkerPoolError",
    "run_parallel_sweep", "run_campaign_matrix",
    "churn_sweep_cell", "run_churn_campaign",
    "REGISTRY", "render_all", "run_experiment",
    "ecf_environment", "maj_oac_environment", "zero_oac_environment",
    "nocf_environment",
    "run_matrix",
    "run_alg1_termination", "run_alg2_value_sweep",
    "run_nonanon_crossover", "run_alg3_nocf",
    "run_impossibility_witnesses", "run_round_complexity_witnesses",
    "run_completeness_ablation",
    "run_counting_experiment",
    "run_applications",
    "run_conjecture_exploration",
    "run_multihop_flood",
    "run_eventual_completeness",
    "run_loss_calibration", "run_detector_calibration",
    "run_clock_calibration", "run_detector_quality",
    "run_resilience",
]
