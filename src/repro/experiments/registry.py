"""The experiment index: id -> (paper artifact, runner).

This is DESIGN.md's per-experiment table in executable form; the
benchmarks regenerate each entry, and ``render_all`` reproduces the whole
evaluation in one call (used to fill EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List

from .ablation import run_completeness_ablation
from .applications import run_applications
from .churn import run_churn_campaign
from .conjecture import run_conjecture_exploration
from .counting import run_counting_experiment
from .eventual_completeness import run_eventual_completeness
from .detector_quality import (
    run_clock_calibration,
    run_detector_calibration,
    run_loss_calibration,
)
from .harness import Experiment, ExperimentRegistry, Table
from .lower import run_impossibility_witnesses, run_round_complexity_witnesses
from .matrix import run_campaign_matrix, run_matrix
from .multihop import run_multihop_flood
from .resilience import run_resilience
from .sweep import run_parallel_sweep
from .termination import (
    run_alg1_termination,
    run_alg2_value_sweep,
    run_alg3_nocf,
    run_nonanon_crossover,
)

REGISTRY = ExperimentRegistry()

REGISTRY.register(Experiment(
    exp_id="E1",
    title="Solvability and round-complexity matrix",
    paper_ref="Figure 1 + Section 1.5 result summary",
    run=run_matrix,
))
REGISTRY.register(Experiment(
    exp_id="E2",
    title="Algorithm 1 terminates by CST + 2",
    paper_ref="Theorem 1 (Section 7.1)",
    run=run_alg1_termination,
))
REGISTRY.register(Experiment(
    exp_id="E3",
    title="Algorithm 2 round complexity vs |V|",
    paper_ref="Theorem 2 (Section 7.2)",
    run=run_alg2_value_sweep,
))
REGISTRY.register(Experiment(
    exp_id="E4",
    title="Non-anonymous min{lg|V|, lg|I|} crossover",
    paper_ref="Section 7.3 + Corollary 3",
    run=run_nonanon_crossover,
))
REGISTRY.register(Experiment(
    exp_id="E5",
    title="Algorithm 3 under NOCF, with crash re-ascent",
    paper_ref="Theorem 3 (Section 7.4)",
    run=run_alg3_nocf,
))
REGISTRY.register(Experiment(
    exp_id="E6",
    title="Impossibility witnesses",
    paper_ref="Theorems 4, 5, 8 (Sections 8.1, 8.2, 8.4)",
    run=run_impossibility_witnesses,
))
REGISTRY.register(Experiment(
    exp_id="E7",
    title="Round-complexity lower-bound witnesses",
    paper_ref="Theorems 6, 7, 9 (Sections 8.3, 8.5)",
    run=run_round_complexity_witnesses,
))
REGISTRY.register(Experiment(
    exp_id="E8",
    title="Ablation: maj-complete vs half-complete",
    paper_ref="Theorem 1 vs Theorem 6 (Section 8.3 discussion)",
    run=run_completeness_ablation,
))
REGISTRY.register(Experiment(
    exp_id="E9a",
    title="Radio loss calibration",
    paper_ref="Section 1.1 empirical loss band (20-50%)",
    run=run_loss_calibration,
))
REGISTRY.register(Experiment(
    exp_id="E9b",
    title="Carrier-sense detector class achievement",
    paper_ref="Section 1.3 (0-complete ~100%, maj-complete >90%)",
    run=run_detector_calibration,
))
REGISTRY.register(Experiment(
    exp_id="E9c",
    title="Clock skew under reference-broadcast sync",
    paper_ref="Section 1.3 synchronized rounds / RBS [25]",
    run=run_clock_calibration,
))
REGISTRY.register(Experiment(
    exp_id="E12",
    title="Anonymous counting: k-wake-up vs leader election",
    paper_ref="Section 4.1 (contention-manager separation)",
    run=run_counting_experiment,
))
REGISTRY.register(Experiment(
    exp_id="E13",
    title="Time-varying completeness (open questions)",
    paper_ref="Section 9 conclusion / Section 5.2 remark",
    run=run_eventual_completeness,
))
REGISTRY.register(Experiment(
    exp_id="E14",
    title="Section 1.4 applications: aggregation and cluster voting",
    paper_ref="Section 1.4 motivation (aggregation trees, Kumar [44])",
    run=run_applications,
))
REGISTRY.register(Experiment(
    exp_id="E15",
    title="Conjecture 1: overlapping pigeonhole universes",
    paper_ref="Section 8.3.4, Conjecture 1",
    run=run_conjecture_exploration,
))
REGISTRY.register(Experiment(
    exp_id="E16",
    title="Multihop flooding preview (future work)",
    paper_ref="Section 9 conclusion; Section 1.2 total-collision critique",
    run=run_multihop_flood,
))
REGISTRY.register(Experiment(
    exp_id="E10",
    title="Safety under randomized hostile schedules",
    paper_ref="Section 1.3 safety/liveness separation",
    run=run_resilience,
))
REGISTRY.register(Experiment(
    exp_id="E17",
    title="Parallel sweep under streaming record policies",
    paper_ref="engineering artifact (ROADMAP scaling north star)",
    run=run_parallel_sweep,
))
REGISTRY.register(Experiment(
    exp_id="E18",
    title="Campaign matrix at scale (resumable, sqlite-checkpointed)",
    paper_ref="Figure 1 upper bounds at scale (ROADMAP campaign layer)",
    run=run_campaign_matrix,
))
REGISTRY.register(Experiment(
    exp_id="E19",
    title="Churn campaign: consensus under dynamic membership",
    paper_ref="Section 9 conclusion (dynamic extension; Augustine et al.)",
    run=run_churn_campaign,
))


def render_all() -> str:
    """Run every experiment and render the full evaluation."""
    return "\n\n\n".join(exp.render() for exp in REGISTRY.all())


def run_experiment(exp_id: str) -> List[Table]:
    """Run one experiment by id."""
    return REGISTRY.get(exp_id).run()
