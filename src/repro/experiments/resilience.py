"""E10: end-to-end safety under randomized hostile schedules.

The paper's safety/liveness separation (Section 1.3) demands that
agreement and validity *never* break, no matter how badly the channel,
the detector's free choices, or the crash schedule behave — only
termination is allowed to depend on the eventual-stabilization
hypotheses.  This experiment hammers each algorithm with seeded random
adversaries and counts violations (the expected count is zero), plus runs
the full physical testbed (radio + carrier sense + backoff).
"""

from __future__ import annotations

from typing import Callable, List

from ..adversary.crash import SeededRandomCrashes
from ..algorithms.alg1 import algorithm_1
from ..algorithms.alg2 import algorithm_2
from ..algorithms.alg3 import algorithm_3
from ..core.consensus import evaluate
from ..core.execution import run_consensus
from ..detectors.classes import MAJ_OAC, ZERO_OAC
from ..detectors.policy import SeededRandomPolicy
from ..substrate.device import Testbed
from .harness import Table
from .scenarios import ecf_environment, nocf_environment

_VALUES = list(range(16))


def _random_trial(
    algorithm_factory: Callable,
    detector_class,
    seed: int,
    n: int = 5,
    cst: int = 12,
    nocf: bool = False,
):
    crash = SeededRandomCrashes(
        p=0.02, max_crashes=n - 1, deadline=cst, seed=seed + 1000
    )
    if nocf:
        env = nocf_environment(n, crash=crash)
    else:
        env = ecf_environment(
            n,
            detector_class,
            cst=cst,
            loss_rate=0.4,
            seed=seed,
            crash=crash,
            detector_policy=SeededRandomPolicy(
                p_collision=0.3, seed=seed + 2000
            ),
        )
    assignment = {i: _VALUES[(i * 3 + seed) % len(_VALUES)] for i in range(n)}
    result = run_consensus(
        env, algorithm_factory(), assignment, max_rounds=400
    )
    return evaluate(result), result


def run_resilience(trials: int = 25) -> List[Table]:
    """Randomized safety sweep per algorithm, plus the physical testbed."""
    table = Table(
        title="E10  Safety under randomized loss / crash / spurious-CD schedules",
        columns=[
            "algorithm", "trials", "agreement_violations",
            "validity_violations", "terminated", "max_rounds_seen",
        ],
        note="safety violations must be 0; termination may lag under hostile CMs",
    )
    configs = [
        ("Algorithm 1 (maj-OAC, ECF)", algorithm_1, MAJ_OAC, False),
        ("Algorithm 2 (0-OAC, ECF)", lambda: algorithm_2(_VALUES),
         ZERO_OAC, False),
        ("Algorithm 3 (0-AC, NoCF)", lambda: algorithm_3(_VALUES),
         None, True),
    ]
    for name, factory, det, nocf in configs:
        agreement = validity = terminated = 0
        worst = 0
        for seed in range(trials):
            report, result = _random_trial(
                factory, det, seed, nocf=nocf
            )
            if not report.agreement:
                agreement += 1
            if not report.strong_validity:
                validity += 1
            if report.termination:
                terminated += 1
                worst = max(worst, result.last_decision_round() or 0)
        table.add(
            algorithm=name,
            trials=trials,
            agreement_violations=agreement,
            validity_violations=validity,
            terminated=terminated,
            max_rounds_seen=worst,
        )

    # Physical testbed sweep: the same code over radio + carrier sense.
    testbed_table = Table(
        title="E10b  Physical testbed (radio + carrier sense + backoff)",
        columns=[
            "algorithm", "trials", "safe", "solved", "median_rounds",
        ],
    )
    for name, factory in (
        ("Algorithm 1", algorithm_1),
        ("Algorithm 2", lambda: algorithm_2(_VALUES)),
    ):
        rounds_seen = []
        safe = solved = 0
        trials_tb = max(5, trials // 5)
        for seed in range(trials_tb):
            testbed = Testbed(n=5, seed=seed)
            assignment = {
                i: _VALUES[(i + seed) % len(_VALUES)] for i in range(5)
            }
            outcome = testbed.run(
                factory(), assignment, max_rounds=3000
            )
            report = evaluate(outcome.execution)
            safe += int(report.safe)
            solved += int(report.solved)
            if report.termination:
                rounds_seen.append(
                    outcome.execution.last_decision_round()
                )
        rounds_seen.sort()
        testbed_table.add(
            algorithm=name,
            trials=trials_tb,
            safe=safe,
            solved=solved,
            median_rounds=(
                rounds_seen[len(rounds_seen) // 2] if rounds_seen else None
            ),
        )
    return [table, testbed_table]
