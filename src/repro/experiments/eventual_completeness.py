"""E13: the conclusion's open questions about time-varying completeness.

Three executable findings:

* **no completeness for an unknown prefix ⇒ impossible** — the paper's
  offhand remark, run as a Theorem-4-style witness: naive deciders get
  partitioned into disagreement, and the paper's algorithms (correctly)
  never decide;
* **"usually perfect" is not enough for Algorithm 1** — a detector that
  is always zero-complete and fully complete from an unknown ``r_comp``
  admits pre-``r_comp`` executions in which Algorithm 1 violates
  agreement (the zero-complete composition: each group hears one of two
  simultaneous proposals and nothing flags the loss);
* **Algorithm 2 is the safe adaptive answer** — zero completeness is all
  it ever needs, so the phase boundary is irrelevant; and when full
  completeness happens to hold from round 1, Algorithm 1 does terminate
  in constant rounds — quantifying the open question's speed/assumption
  trade-off.
"""

from __future__ import annotations

from typing import List

from ..algorithms.alg1 import algorithm_1
from ..algorithms.alg1 import termination_bound as alg1_bound
from ..algorithms.alg2 import algorithm_2
from ..algorithms.alg2 import termination_bound as alg2_bound
from ..algorithms.baselines import naive_min_consensus
from ..contention.services import WakeUpService
from ..core.consensus import evaluate
from ..core.environment import Environment
from ..core.execution import run_consensus
from ..core.records import RecordPolicy
from ..adversary.loss import EventualCollisionFreedom, IIDLoss
from ..detectors.eventual import usually_perfect_detector
from ..detectors.properties import Completeness
from ..lowerbounds.alpha import alpha_execution
from ..lowerbounds.compose import compose_alpha_executions
from ..lowerbounds.theorems import eventual_completeness_witness
from .harness import Table

_VALUES = ["a", "b", "c", "d"]


def run_eventual_completeness() -> List[Table]:
    table = Table(
        title="E13  Time-varying completeness (conclusion's open questions)",
        columns=["setting", "algorithm", "outcome", "detail"],
    )

    # (1) Eventual completeness only: impossible.
    naive = eventual_completeness_witness(
        naive_min_consensus(2), "a", "b", n=3
    )
    table.add(
        setting="completeness only after unknown r_comp",
        algorithm=naive.algorithm,
        outcome=f"violation: {naive.violation}",
        detail=f"partition invisible through k={naive.k}",
    )
    # Even the paper's algorithms are defeated here: with a silent
    # pre-r_comp detector and clean delivery, Algorithm 1 legitimately
    # decides in two rounds — and the composed partition splits it.  That
    # universality is exactly why the paper never admits this class.
    alg1_outcome = eventual_completeness_witness(
        algorithm_1(), "a", "b", n=3, horizon=40
    )
    table.add(
        setting="completeness only after unknown r_comp",
        algorithm=alg1_outcome.algorithm,
        outcome=f"violation: {alg1_outcome.violation}",
        detail=(
            "even Algorithm 1 splits: silence before r_comp is "
            "indistinguishable from clean delivery"
        ),
    )

    # (2) Usually-perfect (0-complete now, full later): Algorithm 1 is
    # unsafe before r_comp — the zero-complete composition breaks it.
    alpha_a = alpha_execution(algorithm_1(), (0, 1), "a", 4)
    alpha_b = alpha_execution(algorithm_1(), (2, 3), "b", 4)
    composed = compose_alpha_executions(
        algorithm_1(), alpha_a, alpha_b, "a", "b", k=4,
        completeness=Completeness.ZERO,
    )
    decided = sorted(set(composed.gamma.decided_values().values()))
    table.add(
        setting="0-complete now, fully complete later",
        algorithm="algorithm-1",
        outcome=(
            "agreement VIOLATED pre-r_comp" if len(decided) > 1
            else "no violation"
        ),
        detail=f"composed groups decided {decided}",
    )

    # (3) Algorithm 2 under the same phased detector: safe and on-bound.
    cst = 3
    env = Environment(
        indices=tuple(range(4)),
        detector=usually_perfect_detector(r_comp=25),
        contention=WakeUpService(stabilization_round=cst),
        loss=EventualCollisionFreedom(IIDLoss(0.3, seed=4), r_cf=cst),
    )
    bound = alg2_bound(cst, len(_VALUES))
    # Only decisions and rounds are consulted: stream summaries.
    result = run_consensus(
        env, algorithm_2(_VALUES),
        {i: _VALUES[i] for i in range(4)}, max_rounds=bound + 10,
        record_policy=RecordPolicy.SUMMARY,
    )
    report = evaluate(result, by_round=bound)
    table.add(
        setting="0-complete now, fully complete later",
        algorithm="algorithm-2",
        outcome="solved within Theorem 2 bound" if report.solved
        else "FAILED",
        detail=(
            f"decided r{result.last_decision_round()} (bound {bound}); "
            "r_comp irrelevant"
        ),
    )

    # (4) When full completeness holds from round 1, Algorithm 1 IS the
    # fast path: the open question's best case.
    env = Environment(
        indices=tuple(range(4)),
        detector=usually_perfect_detector(r_comp=1),
        contention=WakeUpService(stabilization_round=cst),
        loss=EventualCollisionFreedom(IIDLoss(0.3, seed=4), r_cf=cst),
    )
    result = run_consensus(
        env, algorithm_1(), {i: _VALUES[i] for i in range(4)},
        max_rounds=alg1_bound(cst) + 5,
        record_policy=RecordPolicy.SUMMARY,
    )
    report = evaluate(result, by_round=alg1_bound(cst))
    table.add(
        setting="fully complete from round 1 (lucky phase)",
        algorithm="algorithm-1",
        outcome="constant-round decision" if report.solved else "FAILED",
        detail=f"decided r{result.last_decision_round()} "
        f"(bound CST+2={alg1_bound(cst)})",
    )
    return [table]
