"""E19: consensus under dynamic membership (churn x loss x topology).

The paper's model fixes ``P`` for the whole execution; the churn engine
(:mod:`repro.adversary.churn` plus the execution engine's dynamic live
set) relaxes that.  E19 measures what the relaxation costs: agreement
quality — decision rate over the finally-present membership, system-level
agreement violations (ghost decisions included), and termination round —
as a function of churn rate x loss rate x detector class x topology.

Topologies:

* ``clique``  — the paper's own single-hop setting
  (:func:`~repro.experiments.scenarios.ecf_environment` with a churn
  adversary installed);
* ``ring``    — a Chord-style successor/finger overlay
  (:meth:`~repro.substrate.multihop.MultihopNetwork.ring`) behind a
  :class:`~repro.substrate.multihop.MultihopLayer`, the natural home of
  churn in the dynamic-network literature.

The sweep runs through :class:`~repro.experiments.campaign.
CampaignRunner` under the ``SUMMARY`` record policy, so E19 campaigns
checkpoint, resume, and report byte-identically like E18 — with
``churn_rate`` and ``topology`` folded into every cell's canonical
coordinate tag and derived seed.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Any, Dict, Iterable, List, Optional

from .campaign import CampaignRunner
from .harness import Table


def churn_sweep_cell(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One E19 cell: Algorithm 2 to decision under membership churn.

    Recognised ``params`` (all optional): ``n`` (default 4), ``values``
    (|V|, default 8), ``cst`` (default 2), ``detector`` (a Figure 1
    class name, default ``"0-OAC"``), ``loss_rate`` (default 0.1),
    ``churn_rate`` (per-round leave probability for
    :class:`~repro.adversary.churn.SeededChurn`; 0.0 = static
    membership, default 0.2), ``churn_deadline`` (last churn-active
    round, default ``cst + 6``), ``topology`` (``"clique"`` or
    ``"ring"``, default clique), ``successors`` (ring successor-list
    width, default 1), ``record_policy``, ``seed`` (overrides the
    derived per-cell seed), and ``sqlite_db`` (stream per-round
    summaries into the campaign store, exactly like
    :func:`~repro.experiments.harness.consensus_sweep_cell`).

    The payload reports agreement quality over the *final* membership:
    ``decision_rate`` counts decided processes among
    :meth:`~repro.core.records.ExecutionResult.present_indices` (never
    the departed), while ``agreement`` checks
    :meth:`~repro.core.records.ExecutionResult.all_decided_values` —
    ghost decisions of churned-out processes included, so a rejoiner
    that re-decides differently is a violation even though only one
    incarnation is still present.
    """
    from ..adversary.churn import NoChurn, SeededChurn
    from ..adversary.loss import IIDLoss
    from ..algorithms.alg2 import algorithm_2, termination_bound
    from ..contention.services import WakeUpService
    from ..core.environment import Environment
    from ..core.errors import ConfigurationError
    from ..core.execution import run_consensus
    from ..core.records import RecordPolicy, SqliteSink
    from ..detectors.classes import get_class
    from ..detectors.policy import SpuriousUntilPolicy
    from ..detectors.properties import AccuracyMode
    from ..substrate.multihop import MultihopLayer, MultihopNetwork
    from .scenarios import ecf_environment

    n = int(params.get("n", 4))
    vc = int(params.get("values", 8))
    cst = int(params.get("cst", 2))
    loss_rate = float(params.get("loss_rate", 0.1))
    churn_rate = float(params.get("churn_rate", 0.2))
    deadline = int(params.get("churn_deadline", cst + 6))
    topology = str(params.get("topology", "clique"))
    successors = int(params.get("successors", 1))
    detector_class = get_class(str(params.get("detector", "0-OAC")))
    policy = RecordPolicy(str(params.get("record_policy", "summary")))
    seed = int(params.get("seed", seed))
    sqlite_db = params.get("sqlite_db")

    if topology not in ("clique", "ring"):
        raise ConfigurationError(
            f"topology must be 'clique' or 'ring', got {topology!r}"
        )
    # The churn RNG stream is offset from the loss adversary's so the
    # two draw independent (but still seed-determined) coin sequences.
    if churn_rate > 0.0:
        churn = SeededChurn(
            leave_rate=churn_rate, join_rate=0.5, seed=seed + 101,
            deadline=deadline, min_live=2,
        )
    else:
        churn = NoChurn()

    if topology == "clique":
        env = ecf_environment(
            n, detector_class, cst=cst, loss_rate=loss_rate, seed=seed,
            churn=churn,
        )
    else:
        spurious = SpuriousUntilPolicy(cst) if cst > 1 else None
        layer = MultihopLayer(
            MultihopNetwork.ring(n, successors=successors, fingers=True),
            inner=IIDLoss(loss_rate, seed=seed),
            completeness=detector_class.completeness,
            accuracy=detector_class.accuracy,
            r_acc=(
                cst
                if detector_class.accuracy is AccuracyMode.EVENTUAL
                else None
            ),
            policy=spurious,
        )
        # One object, both roles: the detector needs the loss path's
        # per-round sender sets to compute neighbourhood counts.
        env = Environment(
            indices=tuple(range(n)),
            detector=layer,
            contention=WakeUpService(stabilization_round=cst),
            loss=layer,
            churn=churn,
        )

    values = list(range(vc))
    assignment = {i: values[(i * 7 + seed) % vc] for i in env.indices}
    # Churn erases progress until its deadline; the effective
    # stabilization point is whichever comes later.
    bound = termination_bound(max(cst, deadline), vc)
    sink = SqliteSink(str(sqlite_db), cell_seed=seed) if sqlite_db else None
    try:
        result = run_consensus(
            env, algorithm_2(values), assignment,
            max_rounds=bound + 20, record_policy=policy,
            observer=sink,
        )
    finally:
        if sink is not None:
            sink.close()

    present = result.present_indices()
    # ``decisions`` maps *every* pid (None while undecided), so test the
    # value, not membership.
    decided_present = [
        p for p in present if result.decisions.get(p) is not None
    ]
    distinct = len(set(result.all_decided_values()))
    return {
        "present": len(present),
        "decided": len(decided_present),
        "decision_rate": (
            len(decided_present) / len(present) if present else None
        ),
        "agreement": distinct <= 1,
        "distinct_values": distinct,
        "termination_round": result.last_present_decision_round(),
        "rounds": result.rounds,
        "churned": result.churned,
        "rejoins": sum(result.rejoin_counts.values()),
        "ghost_decisions": len(result.departed_decisions),
    }


# ----------------------------------------------------------------------
# E19 at campaign scale
# ----------------------------------------------------------------------
def run_churn_campaign(
    db_path: Optional[str] = None,
    ns: Iterable[int] = (4, 6),
    detectors: Iterable[str] = ("0-OAC", "maj-OAC"),
    loss_rates: Iterable[float] = (0.1, 0.3),
    churn_rates: Iterable[float] = (0.0, 0.15, 0.3),
    topologies: Iterable[str] = ("clique", "ring"),
    seeds: Iterable[int] = (0, 1),
    base_seed: int = 0,
    values: int = 8,
    cell_timeout: Optional[float] = None,
    processes: Optional[int] = None,
    max_retries: int = 2,
    max_cells: Optional[int] = None,
    in_process: bool = False,
    shard_index: int = 0,
    shard_count: int = 1,
    stall_timeout: Optional[float] = None,
) -> List[Table]:
    """E19: agreement quality vs churn rate, at campaign scale.

    Sweeps (n x detector x loss_rate x churn_rate x topology x seed)
    cells of :func:`churn_sweep_cell` through the checkpointing
    :class:`~repro.experiments.campaign.CampaignRunner` — same
    resume/report semantics as E18's
    :func:`~repro.experiments.matrix.run_campaign_matrix`: re-running
    with the same ``db_path`` reads completed cells back instead of
    re-simulating, and interrupted grids finish with byte-identical
    merged outcomes.  ``db_path=None`` uses a throwaway store.

    ``shard_index``/``shard_count`` split the churn grid across hosts
    exactly like E18 (CLI ``campaign shard --family e19 --index i
    --of k``): each host runs its deterministic share into its own
    store, and ``merge_campaign_stores`` folds them back into a store
    reporting byte-identically to an unsharded run.

    One table row aggregates each (n, detector, loss_rate, churn_rate,
    topology) combination over its seed replicates.
    """
    throwaway = None
    if db_path is None:
        throwaway = tempfile.mkdtemp(prefix="repro-e19-")
        db_path = os.path.join(throwaway, "campaign.db")
    try:
        return _churn_campaign_tables(
            db_path, ns, detectors, loss_rates, churn_rates, topologies,
            seeds, base_seed, values, cell_timeout, processes,
            max_retries, max_cells, in_process=in_process,
            shard_index=shard_index, shard_count=shard_count,
            stall_timeout=stall_timeout,
            throwaway=throwaway is not None,
        )
    finally:
        if throwaway is not None:
            shutil.rmtree(throwaway, ignore_errors=True)


def _churn_campaign_tables(
    db_path: str,
    ns: Iterable[int],
    detectors: Iterable[str],
    loss_rates: Iterable[float],
    churn_rates: Iterable[float],
    topologies: Iterable[str],
    seeds: Iterable[int],
    base_seed: int,
    values: int,
    cell_timeout: Optional[float],
    processes: Optional[int],
    max_retries: int,
    max_cells: Optional[int],
    in_process: bool = False,
    shard_index: int = 0,
    shard_count: int = 1,
    stall_timeout: Optional[float] = None,
    throwaway: bool = False,
) -> List[Table]:
    axes = dict(
        n=list(ns),
        detector=list(detectors),
        loss_rate=[float(r) for r in loss_rates],
        churn_rate=[float(r) for r in churn_rates],
        topology=list(topologies),
        trial=list(seeds),
        values=[int(values)],
        record_policy=["summary"],
    )
    with CampaignRunner(
        churn_sweep_cell,
        db_path=db_path,
        base_seed=base_seed,
        processes=processes,
        cell_timeout=cell_timeout,
        max_retries=max_retries,
        extra_params={"sqlite_db": db_path},
        in_process=in_process,
        shard_index=shard_index,
        shard_count=shard_count,
        stall_timeout=stall_timeout,
    ) as runner:
        outcomes = runner.resume(max_cells=max_cells, **axes)

    sharded = shard_count > 1
    table = Table(
        title=(
            "E19  Churn campaign: agreement quality vs "
            "(churn_rate x loss_rate x detector x topology)"
            + (f" [shard {shard_index}/{shard_count}]" if sharded else "")
        ),
        columns=[
            "n", "detector", "loss_rate", "churn_rate", "topology",
            "cells", "done", "decision_rate", "agreement",
            "mean_term_round", "mean_rejoins",
        ],
        note=(
            "checkpointed in a throwaway temp store (pass db_path to "
            "keep one)" if throwaway else
            f"checkpointed in {db_path}; rerun with the same db to "
            "resume — completed cells are read back, not re-simulated"
            + (f"; shard {shard_index}/{shard_count} — merge the shard "
               "stores with 'python -m repro campaign merge' for the "
               "full grid" if sharded else "")
        ),
    )
    groups: Dict[tuple, list] = {}
    for outcome in outcomes:
        p = outcome.params
        key = (p["n"], p["detector"], p["loss_rate"], p["churn_rate"],
               p["topology"])
        groups.setdefault(key, []).append(outcome)
    for key, cell_outcomes in sorted(groups.items(), key=lambda kv: kv[0]):
        n, detector, loss_rate, churn_rate, topology = key
        done = [o for o in cell_outcomes if o.status == "done"]
        rates = [
            o.payload["decision_rate"] for o in done
            if o.payload["decision_rate"] is not None
        ]
        agree = sum(1 for o in done if o.payload["agreement"])
        terms = [
            o.payload["termination_round"] for o in done
            if o.payload["termination_round"] is not None
        ]
        rejoins = [o.payload["rejoins"] for o in done]
        table.add(**{
            "n": n,
            "detector": detector,
            "loss_rate": loss_rate,
            "churn_rate": churn_rate,
            "topology": topology,
            "cells": len(cell_outcomes),
            "done": len(done),
            "decision_rate": (
                sum(rates) / len(rates) if rates else None
            ),
            "agreement": f"{agree}/{len(done)}" if done else "0/0",
            "mean_term_round": (
                sum(terms) / len(terms) if terms else None
            ),
            "mean_rejoins": (
                sum(rejoins) / len(rejoins) if rejoins else None
            ),
        })
    return [table]
