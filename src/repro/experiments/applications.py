"""E14: the Section 1.4 applications, measured.

* E14a — aggregation: silent loss corrupts the naive push-up pipeline's
  result with probability growing in the loss rate, while the
  consensus-hardened pipeline is exact at every loss rate tried (its
  price: local consensus rounds per sibling group);
* E14b — Kumar clustering: per-cluster consensus keeps every device's
  vote while cutting long-haul transport; the break-even against naive
  shipping appears as the source moves farther away.
"""

from __future__ import annotations

import random
from typing import List

from ..applications.aggregation import (
    aggregate_naive,
    aggregate_with_consensus,
)
from ..applications.clustering import ClusteredNetwork, cluster_vote
from .harness import Table

DOMAIN = list(range(64))


def run_aggregation_comparison(
    trials: int = 20, leaf_count: int = 16
) -> List[Table]:
    table = Table(
        title="E14a  Spanning-tree aggregation: naive push vs consensus",
        columns=[
            "loss_rate", "naive_exact", "naive_silent_error",
            "consensus_exact", "consensus_safe",
        ],
        note=(
            "fraction of trials whose root aggregate equals the true max; "
            "silent_error = wrong answer with no failure indication"
        ),
    )
    for loss_rate in (0.1, 0.3, 0.5):
        naive_exact = naive_error = 0
        cons_exact = cons_safe = 0
        for t in range(trials):
            rng = random.Random(1000 * t + int(loss_rate * 10))
            readings = [rng.randrange(len(DOMAIN))
                        for _ in range(leaf_count)]
            naive = aggregate_naive(readings, loss_rate, seed=t)
            naive_exact += int(naive.exact)
            naive_error += int(not naive.exact)
            hardened = aggregate_with_consensus(
                readings, DOMAIN, loss_rate, seed=t
            )
            cons_exact += int(hardened.exact)
            cons_safe += int(hardened.safety_ok)
        table.add(
            loss_rate=loss_rate,
            naive_exact=naive_exact / trials,
            naive_silent_error=naive_error / trials,
            consensus_exact=cons_exact / trials,
            consensus_safe=cons_safe / trials,
        )
    return [table]


def run_clustering_comparison(
    n: int = 24, cluster_size: int = 4
) -> List[Table]:
    table = Table(
        title="E14b  Kumar cluster voting vs naive shipping (to the source)",
        columns=[
            "source_distance", "naive_hop_cost", "clustered_hop_cost",
            "saving", "all_agreed", "all_voted",
        ],
        note="hop cost = sum over messages of hops travelled",
    )
    rng = random.Random(7)
    readings = {i: rng.randrange(len(DOMAIN)) for i in range(n)}
    for base in (2, 8, 32):
        network = ClusteredNetwork(n, cluster_size, base_distance=base)
        reports = cluster_vote(network, readings, DOMAIN, seed=base)
        naive_cost = network.naive_transport_cost()
        clustered_cost = network.clustered_transport_cost(reports)
        table.add(
            source_distance=base,
            naive_hop_cost=naive_cost,
            clustered_hop_cost=clustered_cost,
            saving=f"{(1 - clustered_cost / naive_cost) * 100:.0f}%",
            all_agreed=all(r.agreement_ok for r in reports),
            all_voted=all(r.every_member_voted for r in reports),
        )
    return [table]


def run_applications() -> List[Table]:
    return run_aggregation_comparison() + run_clustering_comparison()
