"""Canned environment builders shared by experiments, examples, and tests.

Each builder assembles one of the paper's hypothesis bundles (detector
class + contention manager + channel behaviour) with explicit
stabilization rounds, so termination measurements can be taken relative
to a known CST.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..adversary.churn import ChurnAdversary, NoChurn
from ..adversary.crash import CrashAdversary, NoCrashes
from ..adversary.loss import (
    EventualCollisionFreedom,
    IIDLoss,
    LossAdversary,
    SilenceLoss,
)
from ..contention.services import NoContentionManager, WakeUpService
from ..core.environment import Environment
from ..core.types import ProcessId
from ..detectors.classes import DetectorClass, MAJ_OAC, ZERO_AC, ZERO_OAC
from ..detectors.policy import DetectorPolicy, SpuriousUntilPolicy


def ecf_environment(
    n: int,
    detector_class: DetectorClass = ZERO_OAC,
    cst: int = 1,
    loss_rate: float = 0.3,
    seed: int = 0,
    crash: Optional[CrashAdversary] = None,
    detector_policy: Optional[DetectorPolicy] = None,
    indices: Optional[Sequence[ProcessId]] = None,
    churn: Optional[ChurnAdversary] = None,
) -> Environment:
    """The standard upper-bound setting: WS + ECF + chosen detector class.

    All three stabilization rounds (``r_wake``, ``r_acc``, ``r_cf``)
    coincide at ``cst``; before it, the channel drops messages IID, the
    detector may produce spurious collisions (for eventually-accurate
    classes), and the wake-up service lets everyone talk at once.
    """
    idx = tuple(indices) if indices is not None else tuple(range(n))
    policy = detector_policy
    if policy is None and cst > 1:
        policy = SpuriousUntilPolicy(cst)
    if detector_class.accuracy.name == "EVENTUAL":
        detector = detector_class.make(r_acc=cst, policy=policy)
    else:
        detector = detector_class.make(policy=policy)
    return Environment(
        indices=idx,
        detector=detector,
        contention=WakeUpService(stabilization_round=cst),
        loss=EventualCollisionFreedom(
            IIDLoss(loss_rate, seed=seed), r_cf=cst
        ),
        crash=crash or NoCrashes(),
        churn=churn or NoChurn(),
    )


def maj_oac_environment(n: int, cst: int = 1, seed: int = 0, **kwargs) -> Environment:
    """Algorithm 1's hypothesis bundle."""
    return ecf_environment(n, MAJ_OAC, cst=cst, seed=seed, **kwargs)


def zero_oac_environment(n: int, cst: int = 1, seed: int = 0, **kwargs) -> Environment:
    """Algorithm 2's hypothesis bundle."""
    return ecf_environment(n, ZERO_OAC, cst=cst, seed=seed, **kwargs)


def nocf_environment(
    n: int,
    crash: Optional[CrashAdversary] = None,
    loss: Optional[LossAdversary] = None,
    indices: Optional[Sequence[ProcessId]] = None,
) -> Environment:
    """Algorithm 3's hypothesis bundle: 0-AC, NoCM, unrestricted loss.

    The default channel is total silence — the harshest legal behaviour.
    """
    idx = tuple(indices) if indices is not None else tuple(range(n))
    return Environment(
        indices=idx,
        detector=ZERO_AC.make(),
        contention=NoContentionManager(),
        loss=loss or SilenceLoss(),
        crash=crash or NoCrashes(),
    )
