"""Experiment harness: tables, rendering, the experiment registry type,
and the parallel sweep runner.

Every evaluation artifact of the paper (Figure 1 and the theorem matrix of
Section 1.5) is reproduced by an *experiment*: a callable producing one or
more :class:`Table` objects whose rows mirror what the paper reports.  The
benchmarks print these tables; EXPERIMENTS.md records paper-vs-measured.

Record policies and the parallel sweep API
------------------------------------------

Large sweeps (the E1 matrix, E3's |V| sweep, E13's phase studies, and any
randomized campaign) have two scaling levers, both provided here and in
:mod:`repro.core`:

1. **Record policies** — :class:`repro.core.records.RecordPolicy` selects
   how much per-round state an execution retains.  ``FULL`` keeps every
   ``RoundRecord`` (required by trace validators and lower-bound
   replays); ``SUMMARY`` streams one small per-round aggregate
   (broadcast count, decisions, crashes); ``NONE`` keeps only final
   outcomes.  Decisions and decision rounds are identical across
   policies for the same seeds — an experiment that only calls
   ``evaluate``/``last_decision_round`` should run under ``SUMMARY`` or
   ``NONE`` and get the same table rows at a fraction of the memory.

2. **The sweep runner** — :class:`SweepRunner` fans a grid of cells
   (e.g. seed × n × detector class) across worker processes by
   delegating to the unified
   :class:`~repro.experiments.dispatch.CampaignDispatcher` loop (the
   same selector-driven pool the campaign layer runs on).  A *cell
   function* is any picklable top-level callable
   ``fn(params: dict, seed: int) -> payload`` returning a picklable
   payload; :func:`sweep_grid` builds the Cartesian product of named
   axes, :func:`cell_seed` derives a deterministic per-cell seed from a
   base seed plus the cell's coordinates (stable across processes and
   runs — no ``PYTHONHASHSEED`` dependence), and ``SweepRunner.run``
   merges payloads back in grid order.  Dispatch problems — a sandboxed
   platform with no workers, an unpicklable cell function — degrade to
   in-process serial execution with a warning, so results never depend
   on where cells ran; an exception raised *by a cell* always
   propagates with its original type.

Example::

    runner = SweepRunner(consensus_sweep_cell, base_seed=7)
    outcomes = runner.run_grid(
        n=[4, 16], detector=["0-OAC", "maj-OAC"], trial=range(3)
    )
    solved = [o.payload["solved"] for o in outcomes]

The campaign layer
------------------

``SweepRunner`` is all-or-nothing: interrupt it and every completed
cell is lost.  :class:`repro.experiments.campaign.CampaignRunner` wraps
the same cell functions and :func:`cell_seed` derivation with durable
checkpoints in one sqlite ``campaign.db``
(:class:`repro.core.records.SqliteSink`, WAL mode):

* **Checkpoint schema** — a ``cells`` table keyed on the cell's
  canonical coordinate tag (status ``done``/``timed_out``/``failed``,
  canonical-JSON payload), plus a ``round_summaries`` table keyed on
  ``(cell_seed, round)`` that cells stream per-round aggregates into
  (pass ``sqlite_db`` to :func:`consensus_sweep_cell`).
* **Resume semantics** — ``resume()`` queries the store and runs only
  unfinished cells (``failed`` retried up to a ``max_retries`` budget,
  ``done``/``timed_out`` skipped).  Same ``base_seed`` + same grid ⇒
  the merged outcomes and ``report()`` bytes are identical whether the
  campaign ran in one pass or across N interrupted passes.
* **One dispatcher** — every campaign configuration (any ``processes``
  width including 1, with or without ``cell_timeout``) runs through
  :class:`~repro.experiments.dispatch.CampaignDispatcher`'s persistent
  worker pool; an overrunning cell's worker is terminated
  (terminate→kill escalation) and *replaced* so the pool stays at full
  width, while the cell is checkpointed ``timed_out`` instead of
  killing the grid.

``python -m repro campaign`` launches/resumes a campaign from the
command line; E18 (``repro.experiments.matrix.run_campaign_matrix``)
drives the full (n × detector × loss_rate × seed) matrix through it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import os
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .dispatch import CampaignDispatcher, CellResult


@dataclasses.dataclass
class Table:
    """A titled ASCII table with ordered columns."""

    title: str
    columns: Sequence[str]
    rows: List[Mapping[str, object]] = dataclasses.field(default_factory=list)
    note: Optional[str] = None

    def add(self, **cells: object) -> None:
        """Append a row (missing columns render blank)."""
        self.rows.append(cells)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render to an aligned ASCII table."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            if value is None:
                return ""
            return str(value)

        header = list(self.columns)
        body = [[fmt(row.get(col)) for col in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body
            else len(header[i])
            for i in range(len(header))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(header, widths))
        )
        lines.append(sep)
        for r in body:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(r, widths))
            )
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        """Extract one column as a list (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]


@dataclasses.dataclass
class Experiment:
    """One reproducible evaluation artifact.

    ``run`` executes the experiment and returns its tables; ``paper_ref``
    points at the table/figure/theorem being reproduced.
    """

    exp_id: str
    title: str
    paper_ref: str
    run: Callable[[], List[Table]]

    def render(self) -> str:
        tables = self.run()
        banner = f"[{self.exp_id}] {self.title}  ({self.paper_ref})"
        parts = [banner, "#" * len(banner)]
        parts.extend(t.render() for t in tables)
        return "\n\n".join(parts)


class ExperimentRegistry:
    """Name -> experiment lookup used by benchmarks and the CLI examples."""

    def __init__(self) -> None:
        self._experiments: Dict[str, Experiment] = {}

    def register(self, experiment: Experiment) -> Experiment:
        if experiment.exp_id in self._experiments:
            raise ValueError(f"duplicate experiment id {experiment.exp_id}")
        self._experiments[experiment.exp_id] = experiment
        return experiment

    def get(self, exp_id: str) -> Experiment:
        return self._experiments[exp_id]

    def all(self) -> List[Experiment]:
        return [self._experiments[k] for k in sorted(self._experiments)]

    def ids(self) -> List[str]:
        return sorted(self._experiments)


# ----------------------------------------------------------------------
# The parallel sweep runner
# ----------------------------------------------------------------------
def _canonical(value: Any) -> str:
    """A stable, value-based encoding of one sweep coordinate.

    Only types with value-based representations are accepted; anything
    falling back to ``object.__repr__`` would embed a memory address and
    silently break cross-run seed determinism, so it is rejected instead.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, (list, tuple)):
        inner = ",".join(_canonical(v) for v in value)
        return f"[{inner}]"
    if isinstance(value, dict):
        inner = ",".join(
            f"{_canonical(k)}:{_canonical(v)}"
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
        return f"{{{inner}}}"
    raise TypeError(
        f"sweep coordinate {value!r} of type {type(value).__name__} has no "
        "canonical value encoding; use primitive coordinates (e.g. a "
        "detector-class *name*) and construct objects inside the cell fn"
    )


def cell_seed(base_seed: int, **params: Any) -> int:
    """Deterministic 32-bit seed for one sweep cell.

    Derived from ``base_seed`` plus the cell's named coordinates via
    SHA-256, so the same cell gets the same seed in every process, on
    every platform, in every run — independent of grid order, worker
    scheduling, and ``PYTHONHASHSEED``.  Coordinates must be primitives
    (or lists/dicts of them); objects without value-based reprs are
    rejected rather than silently seeding from a memory address.
    """
    text = "|".join(
        [str(int(base_seed))]
        + [f"{name}={_canonical(v)}" for name, v in sorted(params.items())]
    )
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def iter_sweep_grid(**axes: Iterable[Any]):
    """Lazily stream the Cartesian product of named axes (row-major).

    The generator form of :func:`sweep_grid`: one coordinate dict at a
    time, never the whole grid — the substrate under the campaign
    layer's shard feed, where a host filters a multi-million-cell grid
    down to its own share without materialising the rest.
    """
    names = list(axes)
    values = [list(axes[name]) for name in names]
    for combo in itertools.product(*values):
        yield dict(zip(names, combo))


def sweep_grid(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes, row-major in keyword order."""
    return list(iter_sweep_grid(**axes))


@dataclasses.dataclass(frozen=True)
class SweepCell:
    """One point of a sweep grid: its position, seed, and coordinates."""

    index: int
    seed: int
    params: Tuple[Tuple[str, Any], ...]

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclasses.dataclass(frozen=True)
class SweepOutcome:
    """A finished cell: the cell plus whatever its function returned."""

    cell: SweepCell
    payload: Any

    @property
    def params(self) -> Dict[str, Any]:
        return self.cell.as_dict()


class SweepRunner:
    """Fan a grid of experiment cells across worker processes.

    Parameters
    ----------
    cell_fn:
        A picklable top-level callable ``fn(params, seed) -> payload``.
        ``params`` is the cell's coordinate dict; ``seed`` its
        deterministic per-cell seed (which the function may ignore when a
        coordinate supplies its own).  The payload must be picklable —
        return plain dicts/tuples, not live engine objects.
    processes:
        Worker count.  ``None`` picks ``min(cells, cpu_count)``; ``0`` or
        ``1`` forces serial in-process execution (no pickling involved).
    base_seed:
        Folded into every cell's :func:`cell_seed`.
    """

    def __init__(
        self,
        cell_fn: Callable[[Dict[str, Any], int], Any],
        processes: Optional[int] = None,
        base_seed: int = 0,
    ) -> None:
        self.cell_fn = cell_fn
        self.processes = processes
        self.base_seed = base_seed

    # ------------------------------------------------------------------
    def iter_cells(self, **axes: Iterable[Any]):
        """Lazily stream the grid as seeded :class:`SweepCell` objects.

        Indices count the *full* grid in row-major order, so a consumer
        that filters the stream (the campaign layer's shard feed) still
        sees every cell's global identity.
        """
        for i, params in enumerate(iter_sweep_grid(**axes)):
            yield SweepCell(
                index=i,
                seed=cell_seed(self.base_seed, **params),
                params=tuple(sorted(params.items())),
            )

    def cells(self, **axes: Iterable[Any]) -> List[SweepCell]:
        """Materialise the grid as seeded :class:`SweepCell` objects."""
        return list(self.iter_cells(**axes))

    def run(self, cells: Sequence[SweepCell]) -> List[SweepOutcome]:
        """Run every cell and return outcomes in grid order.

        Delegates to :class:`~repro.experiments.dispatch.CampaignDispatcher`
        — the unified selector loop the campaign layer runs on — created
        per call and torn down deterministically before returning, so a
        sweep never leaks worker processes.  ``processes <= 1`` (or a
        single-cell grid) maps to the dispatcher's in-process mode,
        preserving the documented no-pickling serial contract; dispatch
        problems (unpicklable cell function, sandboxed platform) degrade
        the same way with a warning.  Unlike the fault-isolating
        campaign layer, a cell that fails aborts the whole sweep: its
        exception is re-raised with the original type.
        """
        workers = self.processes
        if workers is None:
            workers = min(len(cells), os.cpu_count() or 1)
        outcomes: Dict[int, SweepOutcome] = {}

        def on_result(cell: SweepCell, result: CellResult) -> None:
            if result.status != "done":
                if result.exception is not None:
                    raise result.exception
                raise RuntimeError(
                    f"sweep cell {cell.index} failed: {result.error}"
                )
            outcomes[cell.index] = SweepOutcome(
                cell=cell, payload=result.payload
            )

        dispatcher = CampaignDispatcher(
            self.cell_fn,
            processes=workers,
            in_process=(workers <= 1 or len(cells) <= 1),
        )
        with dispatcher:
            dispatcher.run(cells, on_result)
        return [outcomes[cell.index] for cell in cells]

    def run_grid(self, **axes: Iterable[Any]) -> List[SweepOutcome]:
        """Convenience: :meth:`cells` then :meth:`run`."""
        return self.run(self.cells(**axes))


def _fanout_observer(observers: Sequence[Callable[[Any], None]]):
    """Compose round observers (each artifact goes to every sink)."""
    def observe(artifact: Any) -> None:
        for obs in observers:
            obs(artifact)
    return observe


def consensus_sweep_cell(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Built-in sweep cell: Algorithm 2 to decision in an ECF environment.

    Recognised ``params`` (all optional): ``n`` (process count, default 4),
    ``values`` (|V|, default 16), ``cst`` (default 3), ``detector`` (a
    Figure 1 class name, default ``"0-OAC"``), ``loss_rate`` (default
    0.3), ``record_policy`` (``"full"``/``"summary"``/``"none"``, default
    summary), ``seed`` (overrides the derived per-cell seed),
    ``sink_dir`` (a directory path: stream every round's summary to
    ``<sink_dir>/cell-<seed>-<tag>.jsonl`` via a
    :class:`~repro.core.records.JsonlSink`, so even ``NONE``-policy
    campaigns leave a durable per-round trail without holding rounds in
    memory; ``tag`` is derived from the grid coordinates — infra paths
    excluded — so cells sharing an explicit ``seed`` axis value still
    get distinct files and parallel workers never clobber each other,
    while the name itself is machine-independent), and ``sqlite_db`` (a
    database path: stream the same per-round summaries into the shared
    campaign store's ``round_summaries`` table via a
    :class:`~repro.core.records.SqliteSink` keyed on this cell's seed —
    WAL mode makes the concurrent appends of parallel workers safe).
    Both sinks open lazily, so a cell that raises before round 1 leaves
    no empty file (and no spurious rows) behind.  Returns a picklable
    dict with decisions, decision rounds, round count, and the consensus
    report's verdicts; under ``sink_dir`` the payload records the sink
    file's *basename* only (``sink_file``), keeping reports
    byte-identical across machines whose sink directories differ.
    """
    from ..algorithms.alg2 import algorithm_2, termination_bound
    from ..core.consensus import evaluate
    from ..core.execution import run_consensus
    from ..core.records import JsonlSink, RecordPolicy, SqliteSink
    from ..detectors.classes import get_class
    from .scenarios import ecf_environment

    n = int(params.get("n", 4))
    vc = int(params.get("values", 16))
    cst = int(params.get("cst", 3))
    loss_rate = float(params.get("loss_rate", 0.3))
    detector = get_class(str(params.get("detector", "0-OAC")))
    policy = RecordPolicy(str(params.get("record_policy", "summary")))
    seed = int(params.get("seed", seed))
    sink_dir = params.get("sink_dir")
    sqlite_db = params.get("sqlite_db")

    values = list(range(vc))
    env = ecf_environment(n, detector, cst=cst, loss_rate=loss_rate, seed=seed)
    assignment = {i: values[(i * 7 + seed) % vc] for i in env.indices}
    bound = termination_bound(cst, vc)
    sinks: List[Any] = []
    sink_path = None
    if sink_dir:
        os.makedirs(str(sink_dir), exist_ok=True)
        # Distinguish cells that share a seed (e.g. a fixed seed axis):
        # fold every *grid* coordinate into the filename tag.  Infra
        # paths are excluded so the filename — recorded in the payload —
        # is identical no matter where the sinks or store live.
        coords = {
            k: v for k, v in params.items()
            if k not in ("sink_dir", "sqlite_db")
        }
        tag = cell_seed(seed, **coords)
        sink_path = os.path.join(
            str(sink_dir), f"cell-{seed}-{tag:08x}.jsonl"
        )
        sinks.append(JsonlSink(sink_path))
    if sqlite_db:
        sinks.append(SqliteSink(str(sqlite_db), cell_seed=seed))
    observer = None
    if sinks:
        observer = sinks[0] if len(sinks) == 1 else _fanout_observer(sinks)
    try:
        result = run_consensus(
            env, algorithm_2(values), assignment,
            max_rounds=bound + 20, record_policy=policy,
            observer=observer,
        )
    finally:
        for sink in sinks:
            sink.close()
    report = evaluate(result, by_round=bound)
    payload = {
        "decisions": dict(result.decisions),
        "decision_rounds": dict(result.decision_rounds),
        "rounds": result.rounds,
        "solved": report.solved,
        "agreement": report.agreement,
        "decision_round": result.last_decision_round(),
    }
    if sink_path is not None:
        # The payload must be a deterministic function of (grid params,
        # seed): record only the basename — never the absolute path — so
        # reports over sink_dir-streaming campaigns are byte-identical
        # across machines and directories.
        payload["sink_file"] = os.path.basename(sink_path)
    return payload
