"""Experiment harness: tables, rendering, and the experiment registry type.

Every evaluation artifact of the paper (Figure 1 and the theorem matrix of
Section 1.5) is reproduced by an *experiment*: a callable producing one or
more :class:`Table` objects whose rows mirror what the paper reports.  The
benchmarks print these tables; EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Sequence


@dataclasses.dataclass
class Table:
    """A titled ASCII table with ordered columns."""

    title: str
    columns: Sequence[str]
    rows: List[Mapping[str, object]] = dataclasses.field(default_factory=list)
    note: Optional[str] = None

    def add(self, **cells: object) -> None:
        """Append a row (missing columns render blank)."""
        self.rows.append(cells)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render to an aligned ASCII table."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            if value is None:
                return ""
            return str(value)

        header = list(self.columns)
        body = [[fmt(row.get(col)) for col in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body
            else len(header[i])
            for i in range(len(header))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(header, widths))
        )
        lines.append(sep)
        for r in body:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(r, widths))
            )
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        """Extract one column as a list (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]


@dataclasses.dataclass
class Experiment:
    """One reproducible evaluation artifact.

    ``run`` executes the experiment and returns its tables; ``paper_ref``
    points at the table/figure/theorem being reproduced.
    """

    exp_id: str
    title: str
    paper_ref: str
    run: Callable[[], List[Table]]

    def render(self) -> str:
        tables = self.run()
        banner = f"[{self.exp_id}] {self.title}  ({self.paper_ref})"
        parts = [banner, "#" * len(banner)]
        parts.extend(t.render() for t in tables)
        return "\n\n".join(parts)


class ExperimentRegistry:
    """Name -> experiment lookup used by benchmarks and the CLI examples."""

    def __init__(self) -> None:
        self._experiments: Dict[str, Experiment] = {}

    def register(self, experiment: Experiment) -> Experiment:
        if experiment.exp_id in self._experiments:
            raise ValueError(f"duplicate experiment id {experiment.exp_id}")
        self._experiments[experiment.exp_id] = experiment
        return experiment

    def get(self, exp_id: str) -> Experiment:
        return self._experiments[exp_id]

    def all(self) -> List[Experiment]:
        return [self._experiments[k] for k in sorted(self._experiments)]

    def ids(self) -> List[str]:
        return sorted(self._experiments)
