"""repro — an executable reproduction of *Consensus and Collision Detectors
in Wireless Ad Hoc Networks* (Chockler, Demirbas, Gilbert, Newport, Nolte;
PODC 2005 / Newport's MIT Master's thesis, 2006).

The package is organised by the paper's own structure:

* :mod:`repro.core`        — the formal model (Sections 2-3, 6): multisets,
  processes, environments, the synchronous round engine, traces, and the
  consensus-property checkers.
* :mod:`repro.detectors`   — receiver-side collision detectors and the
  Figure 1 completeness/accuracy class lattice (Section 5).
* :mod:`repro.contention`  — wake-up / leader-election services and a
  practical backoff manager (Section 4).
* :mod:`repro.adversary`   — message-loss and crash adversaries, including
  eventual collision freedom (Property 1).
* :mod:`repro.algorithms`  — Algorithms 1-3 and the non-anonymous variant
  (Section 7), plus naive baselines.
* :mod:`repro.lowerbounds` — the Section 8 impossibility and round-
  complexity constructions, as executable adversaries.
* :mod:`repro.substrate`   — a physical-layer substitute (capture-effect
  radio, carrier-sense detection, drifting clocks) standing in for the
  mote hardware the paper's motivation cites.
* :mod:`repro.experiments` — the per-table/figure experiment harness.

Quickstart::

    from repro import quick_consensus

    result = quick_consensus(values=["commit", "abort"], n=5)
    print(result.decisions)
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .core import (
    ConsensusReport,
    Environment,
    ExecutionResult,
    RecordPolicy,
    RoundSummary,
    evaluate,
    run_consensus,
)
from .core.types import ProcessId, Value

__version__ = "1.0.0"


def quick_consensus(
    values: Sequence[Value],
    n: int = 5,
    assignment: Optional[Dict[ProcessId, Value]] = None,
    loss_rate: float = 0.3,
    seed: int = 0,
    max_rounds: int = 500,
) -> ExecutionResult:
    """Run Algorithm 2 end-to-end with sensible defaults.

    Builds ``n`` processes, a zero-complete eventually-accurate detector,
    a wake-up service, and a lossy-but-eventually-collision-free channel,
    then runs Algorithm 2 until everyone decides.  This is the package's
    "hello world"; see :mod:`repro.experiments` for the full harness.
    """
    from .adversary import EventualCollisionFreedom, IIDLoss
    from .algorithms import algorithm_2
    from .contention import WakeUpService
    from .detectors import ZERO_OAC

    indices = tuple(range(n))
    if assignment is None:
        assignment = {
            i: values[i % len(values)] for i in indices
        }
    environment = Environment(
        indices=indices,
        detector=ZERO_OAC.make(r_acc=1),
        contention=WakeUpService(stabilization_round=1),
        loss=EventualCollisionFreedom(IIDLoss(loss_rate, seed=seed), r_cf=1),
    )
    return run_consensus(
        environment, algorithm_2(values), assignment, max_rounds=max_rounds
    )


def sweep_runner(cell_fn=None, processes=None, base_seed: int = 0):
    """Build a :class:`repro.experiments.SweepRunner` for parallel grids.

    Defaults to the built-in Algorithm-2 consensus cell; pass any
    picklable top-level ``fn(params, seed) -> payload`` to sweep custom
    workloads.  Imported lazily so ``import repro`` stays light.
    """
    from .experiments.harness import SweepRunner, consensus_sweep_cell

    return SweepRunner(
        cell_fn or consensus_sweep_cell,
        processes=processes,
        base_seed=base_seed,
    )


__all__ = [
    "__version__",
    "quick_consensus",
    "sweep_runner",
    "Environment",
    "ExecutionResult",
    "RecordPolicy",
    "RoundSummary",
    "ConsensusReport",
    "evaluate",
    "run_consensus",
]
