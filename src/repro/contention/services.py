"""The formal contention-manager services (Properties 2-3 and NoCM).

* :class:`NoContentionManager` — the trivial ``NOCM_P`` manager: everyone
  is ``active`` every round (the NoCM class).
* :class:`WakeUpService` — Property 2: from some round ``r_wake`` on,
  exactly one process is active per round, but *which* process may change
  every round (no fairness, no stability).
* :class:`LeaderElectionService` — Property 3: from ``r_lead`` on the same
  single process is active.  Every leader-election service is a wake-up
  service; tests verify this containment.

Before stabilization both services may behave arbitrarily; the
pre-stabilization schedule is pluggable so lower bounds can script it
(standing in for the maximal service ``MAXLS_P``, Definition 14) and upper
bounds can stress algorithms with hostile pre-CST advice.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.types import ACTIVE, PASSIVE, ContentionAdvice, ProcessId
from .manager import ContentionManager

#: A pre-stabilization schedule: (round, indices) -> set of active indices.
PreSchedule = Callable[[int, Sequence[ProcessId]], Sequence[ProcessId]]


def all_active_schedule(
    round_index: int, indices: Sequence[ProcessId]
) -> Sequence[ProcessId]:
    """Everyone active — the default (and most contentious) prelude."""
    return list(indices)


def all_passive_schedule(
    round_index: int, indices: Sequence[ProcessId]
) -> Sequence[ProcessId]:
    """Nobody active — a legal, maximally silent prelude."""
    return []


class NoContentionManager(ContentionManager):
    """The trivial manager ``NOCM_P``: all processes active, always.

    The advice map is cached per *live-list object*: the engine rebuilds
    its live list whenever membership changes, so identity is a sound
    cache key, and the advice contract already forbids callers from
    mutating the returned dict (the engine copies before padding).
    """

    _cache_key: Optional[Sequence[ProcessId]] = None
    _cache_advice: Optional[Dict[ProcessId, ContentionAdvice]] = None

    def advise(
        self, round_index: int, indices: Sequence[ProcessId]
    ) -> Dict[ProcessId, ContentionAdvice]:
        if self._cache_key is indices:
            return self._cache_advice
        advice = {i: ACTIVE for i in indices}
        self._cache_key = indices
        self._cache_advice = advice
        return advice


class WakeUpService(ContentionManager):
    """Property 2: eventually exactly one active process per round.

    Parameters
    ----------
    stabilization_round:
        The round ``r_wake`` from which the guarantee holds.
    pre_schedule:
        Arbitrary advice before ``r_wake`` (default: everyone active).
    chooser:
        Picks the single active index from ``r_wake`` on; receives
        ``(round, indices)``.  The default scrambles deterministically by
        round number, so the service is a wake-up service but *not* a
        leader-election service — exercising the weaker hypothesis the
        upper bounds assume.  Scrambling (rather than plain rotation)
        matters for fairness inside phased algorithms: a rotation whose
        period divides an algorithm's cycle length would hand the same
        process every occurrence of a given phase, starving the others
        (observed with max-merge consensus, whose liveness needs the
        maximum's holder to reach a prepare slot eventually).
    """

    def __init__(
        self,
        stabilization_round: int = 1,
        pre_schedule: Optional[PreSchedule] = None,
        chooser: Optional[Callable[[int, Sequence[ProcessId]], ProcessId]] = None,
    ) -> None:
        if stabilization_round < 1:
            raise ConfigurationError("stabilization_round must be >= 1")
        self._r_wake = stabilization_round
        self._pre = pre_schedule or all_active_schedule
        self._chooser = chooser or self._scrambled_chooser

    @staticmethod
    def _scrambled_chooser(
        round_index: int, indices: Sequence[ProcessId]
    ) -> ProcessId:
        ordered = sorted(indices)
        # Seed an RNG with the round number: deterministic and replayable,
        # but aperiodic over any arithmetic subsequence of rounds (a
        # multiplicative hash mod a power of two would preserve the
        # period of the subsequence in its low bits).
        pick = random.Random(round_index).randrange(len(ordered))
        return ordered[pick]

    @staticmethod
    def rotating_chooser(
        round_index: int, indices: Sequence[ProcessId]
    ) -> ProcessId:
        """Plain round-robin, for tests that need a predictable order."""
        ordered = sorted(indices)
        return ordered[round_index % len(ordered)]

    def advise(
        self, round_index: int, indices: Sequence[ProcessId]
    ) -> Dict[ProcessId, ContentionAdvice]:
        if round_index < self._r_wake:
            active = set(self._pre(round_index, indices))
            return {
                i: ACTIVE if i in active else PASSIVE for i in indices
            }
        the_one = self._chooser(round_index, indices)
        if the_one not in set(indices):
            raise ConfigurationError(
                f"chooser picked {the_one}, not a live index"
            )
        return {i: ACTIVE if i == the_one else PASSIVE for i in indices}

    @property
    def stabilization_round(self) -> int:
        return self._r_wake


class LeaderElectionService(ContentionManager):
    """Property 3: eventually the *same* single process is active.

    ``leader`` may be a fixed index or ``None`` (the minimum index, which
    is the choice the lower-bound constructions fix for ``MAXLS``).
    """

    def __init__(
        self,
        stabilization_round: int = 1,
        leader: Optional[ProcessId] = None,
        pre_schedule: Optional[PreSchedule] = None,
    ) -> None:
        if stabilization_round < 1:
            raise ConfigurationError("stabilization_round must be >= 1")
        self._r_lead = stabilization_round
        self._leader = leader
        self._pre = pre_schedule or all_active_schedule

    def advise(
        self, round_index: int, indices: Sequence[ProcessId]
    ) -> Dict[ProcessId, ContentionAdvice]:
        if round_index < self._r_lead:
            active = set(self._pre(round_index, indices))
            return {
                i: ACTIVE if i in active else PASSIVE for i in indices
            }
        leader = self._leader if self._leader is not None else min(indices)
        if leader not in set(indices):
            raise ConfigurationError(
                f"configured leader {leader} is not a live index"
            )
        return {i: ACTIVE if i == leader else PASSIVE for i in indices}

    @property
    def stabilization_round(self) -> int:
        return self._r_lead


class KWakeUpService(ContentionManager):
    """The k-wake-up service sketched in Section 4.1.

    After ``stabilization_round``, the service cycles through the live
    processes in index order, giving each a *block* of ``k`` consecutive
    rounds as the sole active process — so every process is guaranteed k
    solo rounds, infinitely often.  Section 4.1 notes that this strictly
    stronger fairness makes problems like anonymous counting solvable
    that a leader-election service cannot solve (see
    :mod:`repro.algorithms.counting` and
    :mod:`repro.lowerbounds.counting`).

    Note a k-wake-up service *is* a wake-up service (one active process
    per round after stabilization) but is *not* a leader-election service
    (the active process keeps changing).
    """

    def __init__(self, k: int, stabilization_round: int = 1,
                 pre_schedule: Optional[PreSchedule] = None) -> None:
        if k < 1:
            raise ConfigurationError("block length k must be >= 1")
        if stabilization_round < 1:
            raise ConfigurationError("stabilization_round must be >= 1")
        self.k = k
        self._r_stab = stabilization_round
        self._pre = pre_schedule or all_active_schedule

    def advise(
        self, round_index: int, indices: Sequence[ProcessId]
    ) -> Dict[ProcessId, ContentionAdvice]:
        if round_index < self._r_stab:
            active = set(self._pre(round_index, indices))
            return {i: ACTIVE if i in active else PASSIVE for i in indices}
        ordered = sorted(indices)
        block = (round_index - self._r_stab) // self.k
        the_one = ordered[block % len(ordered)]
        return {i: ACTIVE if i == the_one else PASSIVE for i in indices}

    @property
    def stabilization_round(self) -> int:
        return self._r_stab

    def block_start(self, round_index: int) -> bool:
        """Is ``round_index`` the first round of a block (post-stab)?"""
        return (
            round_index >= self._r_stab
            and (round_index - self._r_stab) % self.k == 0
        )


class ScriptedContentionManager(ContentionManager):
    """A manager driven by an explicit per-round active-set script.

    ``script[r]`` (1-based dict) is the set of active indices at round
    ``r``; rounds beyond the script fall back to ``default`` ("leader" =
    min index active, or "all", or "none").  This is the lower-bound
    workhorse — Theorems 4 and 8 script the pre-composition advice
    directly.
    """

    def __init__(
        self,
        script: Dict[int, Sequence[ProcessId]],
        default: str = "leader",
        stabilization_round: Optional[int] = None,
    ) -> None:
        if default not in ("leader", "all", "none"):
            raise ConfigurationError("default must be leader|all|none")
        self._script = {r: set(active) for r, active in script.items()}
        self._default = default
        self._stab = stabilization_round

    def advise(
        self, round_index: int, indices: Sequence[ProcessId]
    ) -> Dict[ProcessId, ContentionAdvice]:
        if round_index in self._script:
            active = self._script[round_index]
        elif self._default == "leader":
            active = {min(indices)}
        elif self._default == "all":
            active = set(indices)
        else:
            active = set()
        return {i: ACTIVE if i in active else PASSIVE for i in indices}

    @property
    def stabilization_round(self) -> Optional[int]:
        return self._stab
