"""Contention managers (Section 4): wake-up, leader election, backoff."""

from .backoff import BackoffContentionManager
from .manager import ContentionManager
from .services import (
    KWakeUpService,
    LeaderElectionService,
    NoContentionManager,
    ScriptedContentionManager,
    WakeUpService,
    all_active_schedule,
    all_passive_schedule,
)

__all__ = [
    "ContentionManager",
    "NoContentionManager",
    "WakeUpService",
    "LeaderElectionService",
    "KWakeUpService",
    "ScriptedContentionManager",
    "BackoffContentionManager",
    "all_active_schedule",
    "all_passive_schedule",
]
