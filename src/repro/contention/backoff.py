"""A practical randomized-backoff contention manager.

Section 1.3 argues that the abstract wake-up / leader-election services
"could be implemented in a real system by a backoff protocol".  This module
provides such an implementation so the examples and resilience experiments
can run end-to-end without a magic oracle:

* every process starts with broadcast probability 1;
* after a round in which two or more processes were active (observed via
  the channel-feedback hook), each active process halves its probability;
* after a silent round every process doubles its probability (capped at 1);
* once a round advised exactly one active process *and* exactly one
  broadcast was actually heard on the channel, that process is locked in
  as the leader (giving leader-election-style stability thereafter, unless
  it crashes — the engine re-opens contention if the leader disappears).

Lock-in is confirmed in :meth:`~BackoffContentionManager.observe`, not at
advice time: a sole active process that crashes *before send* never
broadcasts, so (assuming processes follow the manager's advice) the
channel stays silent that round and no leader is locked — advice-time
lock-in would anoint a dead leader unconditionally.

Channel feedback is a *count*, not an identity, so the confirmation is a
heuristic with two residual windows: (a) a process that broadcasts its
confirming solo message and then crashes *after send* the same round is
locked in; the next :meth:`~BackoffContentionManager.advise` call heals
this (the leader is absent from the live set, so contention reopens),
and end-of-run consumers should treat a crashed locked-in leader as no
leader (see :class:`repro.substrate.device.Testbed`).  (b) Under
algorithms that ignore CM advice (Algorithm 3 does), a passive process
may supply the round's single broadcast, confirming a silent candidate.
Both are strictly narrower than the advice-time lock-in they replace,
which required no broadcast at all.

The manager is randomized but fully seeded, so executions replay.  It makes
a *probabilistic* liveness promise only — exactly the safety/liveness
separation the paper advocates: the consensus algorithms stay safe even
while the backoff is still thrashing.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from ..core.types import ACTIVE, PASSIVE, ContentionAdvice, ProcessId
from .manager import ContentionManager


class BackoffContentionManager(ContentionManager):
    """Seeded exponential backoff with leader lock-in.

    Parameters
    ----------
    seed:
        RNG seed; executions are reproducible per seed.
    min_probability:
        Floor for the per-process broadcast probability, keeping the
        protocol live even after long contention streaks.
    """

    def __init__(self, seed: int = 0, min_probability: float = 1.0 / 1024) -> None:
        self.seed = seed
        self.min_probability = min_probability
        self._rng = random.Random(seed)
        self._prob: Dict[ProcessId, float] = {}
        self._leader: Optional[ProcessId] = None
        self._last_active: Sequence[ProcessId] = ()
        self._stabilized_at: Optional[int] = None

    # ------------------------------------------------------------------
    def advise(
        self, round_index: int, indices: Sequence[ProcessId]
    ) -> Dict[ProcessId, ContentionAdvice]:
        live = list(indices)
        if self._leader is not None and self._leader not in live:
            # Leader crashed: re-open contention.
            self._leader = None
            self._stabilized_at = None
        if self._leader is not None:
            self._last_active = (self._leader,)
            return {
                i: ACTIVE if i == self._leader else PASSIVE for i in live
            }
        for i in live:
            self._prob.setdefault(i, 1.0)
        active = [i for i in live if self._rng.random() < self._prob[i]]
        if not active and live:
            # Guarantee progress: promote one uniformly random process.
            active = [self._rng.choice(sorted(live))]
        self._last_active = tuple(active)
        return {i: ACTIVE if i in set(active) else PASSIVE for i in live}

    def observe(self, round_index: int, broadcast_count: int) -> None:
        if self._leader is not None:
            return
        if broadcast_count == 1 and len(self._last_active) == 1:
            # Lock-in only once the channel confirms the sole active
            # process actually broadcast: a candidate that crashed before
            # send leaves the round silent and stays unlocked.
            self._leader = self._last_active[0]
            self._stabilized_at = round_index
            return
        if broadcast_count >= 2:
            for i in self._last_active:
                self._prob[i] = max(
                    self.min_probability, self._prob.get(i, 1.0) / 2.0
                )
        elif broadcast_count == 0:
            for i in self._prob:
                self._prob[i] = min(1.0, self._prob[i] * 2.0)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._prob = {}
        self._leader = None
        self._last_active = ()
        self._stabilized_at = None

    # ------------------------------------------------------------------
    @property
    def leader(self) -> Optional[ProcessId]:
        """The locked-in leader, once contention has resolved."""
        return self._leader

    @property
    def stabilized_at(self) -> Optional[int]:
        """Round at which a single active process first emerged."""
        return self._stabilized_at

    @property
    def stabilization_round(self) -> Optional[int]:
        # No a-priori promise: stabilization is empirical.
        return None
