"""Contention-manager interface (Section 4).

A contention manager advises each process, each round, to be ``active``
(may broadcast) or ``passive`` (should stay silent).  Formally it is just a
set of legal CM traces (Definition 8); operationally we implement it as an
object producing one trace, with an optional channel-feedback hook so that
practical managers (backoff, Section 1.3) can adapt — the formal services
ignore the feedback.

The engine relies on two conventions:

* ``advise(round, indices)`` is called exactly once per round, rounds
  numbered from 1, with a fixed index set;
* ``observe(round, broadcast_count)`` is called after the round resolves
  (practical managers may listen to the channel; the paper notes this is
  how real implementations work even though the formal definition is a
  trace set);
* a returned advice dict is *frozen once returned*: the engine may cache
  derived views keyed by the dict's identity, so a manager must hand back
  a fresh dict whenever the advice changes (returning one long-lived,
  never-mutated dict — NoContentionManager does — is fine and cheap).
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence

from ..core.types import ContentionAdvice, ProcessId


class ContentionManager(abc.ABC):
    """Per-round active/passive advice for every process."""

    @abc.abstractmethod
    def advise(
        self, round_index: int, indices: Sequence[ProcessId]
    ) -> Dict[ProcessId, ContentionAdvice]:
        """Advice for round ``round_index`` (1-based) for each index."""

    def observe(self, round_index: int, broadcast_count: int) -> None:
        """Channel feedback after the round (default: ignored)."""

    def reset(self) -> None:
        """Prepare for a fresh execution (default: stateless)."""

    @property
    def stabilization_round(self) -> Optional[int]:
        """The round ``r_wake``/``r_lead`` from which the service's
        single-active guarantee holds, or ``None`` when the manager makes
        no such promise (NoCM, practical backoff)."""
        return None
