"""Phased-completeness detectors (the conclusion's open questions).

The paper's conclusion asks about detectors whose *completeness* varies
over time: "a collision detector that is always zero complete and
occasionally fully complete", and notes that consensus is impossible "if
a collision detector might satisfy no completeness properties for an a
priori unknown number of rounds".  This module supplies the detector
family for both investigations:

:class:`PhasedCompletenessDetector` honours a *weak* completeness level
before an unknown round ``r_comp`` and a *strong* one from it onward
(accuracy is configured independently, as usual).  Two instantiations
matter:

* ``weak=NONE`` — eventual completeness only.  The executable
  impossibility (:func:`repro.lowerbounds.theorems.eventual_completeness_witness`)
  shows why the paper never studies this class: before ``r_comp`` the
  detector may stay silent through arbitrary loss, so a partition is
  invisible, exactly as with NoCD.
* ``weak=ZERO, strong=FULL`` — the open question's "usually perfect,
  always at least carrier-sense" detector.  Algorithm 2 runs unmodified
  (zero completeness is all it needs); Algorithm 1 is *unsafe* before
  ``r_comp`` (its agreement argument needs majority completeness in
  every round), which the E13 experiment demonstrates with a concrete
  violating execution.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..core.arrays import numpy_or_none
from ..core.errors import ConfigurationError, ModelViolation
from ..core.types import CollisionAdvice, ProcessId
from .detector import CollisionDetector, vectorised_advice
from .policy import BenignPolicy, DetectorPolicy
from .properties import (
    AccuracyMode,
    Completeness,
    must_report_collision,
    must_report_null,
)

#: Same gated-numpy binding as :mod:`repro.detectors.detector`.
_np = numpy_or_none()


class PhasedCompletenessDetector(CollisionDetector):
    """Weak completeness before ``r_comp``, strong completeness after.

    Parameters mirror :class:`ParametricCollisionDetector`; the policy
    decides everything neither phase's obligations pin down.
    """

    def __init__(
        self,
        weak: Completeness,
        strong: Completeness,
        r_comp: int,
        accuracy: AccuracyMode = AccuracyMode.ALWAYS,
        r_acc: Optional[int] = None,
        policy: Optional[DetectorPolicy] = None,
    ) -> None:
        if strong.value < weak.value:
            raise ConfigurationError(
                "the strong completeness level must be at least the weak one"
            )
        if r_comp < 1:
            raise ConfigurationError("r_comp must be >= 1")
        if accuracy is AccuracyMode.EVENTUAL and (r_acc is None or r_acc < 1):
            raise ConfigurationError("EVENTUAL accuracy requires r_acc >= 1")
        if accuracy is not AccuracyMode.EVENTUAL and r_acc is not None:
            raise ConfigurationError(
                "r_acc is only meaningful with EVENTUAL accuracy"
            )
        self.weak = weak
        self.strong = strong
        self.r_comp = r_comp
        self.accuracy = accuracy
        self.r_acc = r_acc
        self.policy = policy if policy is not None else BenignPolicy()

    def completeness_at(self, round_index: int) -> Completeness:
        """The completeness obligation in force at ``round_index``."""
        return self.strong if round_index >= self.r_comp else self.weak

    def advise(
        self,
        round_index: int,
        broadcasters: int,
        received_counts: Mapping[ProcessId, int],
    ) -> Dict[ProcessId, CollisionAdvice]:
        level = self.completeness_at(round_index)
        advice: Dict[ProcessId, CollisionAdvice] = {}
        for pid, t in received_counts.items():
            if t > broadcasters:
                raise ModelViolation(
                    f"process {pid} received {t} of {broadcasters} messages"
                )
            if must_report_collision(level, broadcasters, t):
                advice[pid] = CollisionAdvice.COLLISION
            elif must_report_null(
                self.accuracy, round_index, self.r_acc, broadcasters, t
            ):
                advice[pid] = CollisionAdvice.NULL
            else:
                advice[pid] = self.policy.free_choice(
                    round_index, pid, broadcasters, t
                )
        return advice

    def advise_array(
        self,
        round_index: int,
        broadcasters: int,
        counts,
        indices: Sequence[ProcessId],
    ) -> List[CollisionAdvice]:
        """Vectorised advice with the phase's completeness level.

        Obligations resolve as array predicates over the in-force level;
        free choices call the policy once per unconstrained process in
        index order — exactly the calls the dict :meth:`advise` makes,
        so seeded policies consume their streams identically.  Subclasses
        overriding :meth:`advise` fall back to the dict path.
        """
        if _np is None or (
            type(self).advise is not PhasedCompletenessDetector.advise
        ):
            return CollisionDetector.advise_array(
                self, round_index, broadcasters, counts, indices
            )
        # memo_per_t=False: the dict advise above consults the policy
        # once per free *process* regardless of pid-independence, and
        # the array path must make the exact same calls.
        return vectorised_advice(
            _np, self.completeness_at(round_index), self.accuracy,
            self.r_acc, self.policy, round_index, broadcasters, counts,
            indices,
            lambda pid, t, c: f"process {pid} received {t} of {c} messages",
            memo_per_t=False,
        )

    def reset(self) -> None:
        self.policy.reset()

    def __repr__(self) -> str:
        return (
            f"PhasedCompletenessDetector({self.weak.name}->"
            f"{self.strong.name}@r{self.r_comp}, {self.accuracy.name})"
        )


def eventually_complete_detector(
    r_comp: int, policy: Optional[DetectorPolicy] = None
) -> PhasedCompletenessDetector:
    """No completeness before ``r_comp``, full completeness after."""
    return PhasedCompletenessDetector(
        Completeness.NONE, Completeness.FULL, r_comp,
        accuracy=AccuracyMode.ALWAYS, policy=policy,
    )


def usually_perfect_detector(
    r_comp: int, policy: Optional[DetectorPolicy] = None
) -> PhasedCompletenessDetector:
    """The open question's detector: always 0-complete, eventually full."""
    return PhasedCompletenessDetector(
        Completeness.ZERO, Completeness.FULL, r_comp,
        accuracy=AccuracyMode.ALWAYS, policy=policy,
    )
