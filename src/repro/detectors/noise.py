"""The noise lemma and detector-legality validators (Section 5.5).

Lemma 2 (the *noise lemma*): with a zero-complete detector, whenever one or
more processes broadcast in a round, every process either receives
something or detects a collision.  Corollary 1: if any process receives
nothing and detects no collision, then nobody broadcast — "silence implies
silence".  Both are the load-bearing facts behind the veto phases of
Algorithms 1-3.

This module checks these guarantees, and full class-legality of a CD trace
(Definition 11, constraint 6), over finished executions.  The execution
engine already constructs legal advice; these validators exist so tests and
lower-bound constructions can *prove* legality rather than assume it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.arrays import numpy_or_none
from ..core.records import ExecutionResult
from ..core.types import CollisionAdvice
from .properties import (
    AccuracyMode,
    Completeness,
    accuracy_active,
    advice_legal,
    collision_obligation_array,
)

#: Gated acceleration for whole-trace legality checks, same probe (and
#: the same ``REPRO_PURE_PYTHON`` override) as the engine's array
#: kernel.  Legality is a pure function of the ``(c, t)`` counts, so
#: these validators vectorise every round unconditionally — including
#: multi-payload rounds, which the engine now also keeps on its kernel
#: via message interning rather than dropping to the scalar path.
_np = numpy_or_none()


def noise_lemma_violations(
    result: ExecutionResult,
) -> List[Tuple[int, int]]:
    """Return ``(round, pid)`` pairs violating Lemma 2.

    A violation is a round with at least one broadcaster in which some
    process received nothing *and* got ``null`` advice.  For any detector
    satisfying zero completeness this list must be empty.
    """
    violations = []
    for rec in result.records:
        c = rec.broadcast_count
        if c == 0:
            continue
        for pid in result.indices:
            if len(rec.received[pid]) == 0 and (
                rec.cd_advice[pid] is CollisionAdvice.NULL
            ):
                violations.append((rec.round, pid))
    return violations


def check_noise_lemma(result: ExecutionResult) -> bool:
    """True when Lemma 2 holds throughout ``result``."""
    return not noise_lemma_violations(result)


def silence_implies_no_broadcast(result: ExecutionResult) -> bool:
    """Corollary 1 check: silence at any process implies nobody broadcast.

    Scans every round; if some process received nothing with ``null``
    advice, the round's broadcast count must be zero.
    """
    for rec in result.records:
        for pid in result.indices:
            quiet = len(rec.received[pid]) == 0 and (
                rec.cd_advice[pid] is CollisionAdvice.NULL
            )
            if quiet and rec.broadcast_count > 0:
                return False
    return True


def detector_trace_violations(
    result: ExecutionResult,
    completeness: Completeness,
    accuracy: AccuracyMode,
    r_acc: Optional[int] = None,
) -> List[Tuple[int, int, str]]:
    """Check a CD trace against a detector class's obligations.

    Returns a list of ``(round, pid, reason)`` triples; empty means the
    trace is a legal output of some detector in the class (Definition 11,
    constraint 6 holds).

    When numpy is available each round's legality resolves in whole-array
    passes over the same Properties 4-9 predicates the engine's array
    detector advice uses (:func:`collision_obligation_array`); the
    pure-python loop is the reference and the two agree triple-for-triple
    in order and content.
    """
    violations: List[Tuple[int, int, str]] = []
    indices = result.indices
    if _np is not None:
        collision = CollisionAdvice.COLLISION
        for rec in result.records:
            c = rec.broadcast_count
            received = rec.received
            cd = rec.cd_advice
            t_arr = _np.fromiter(
                (len(received[pid]) for pid in indices),
                dtype=_np.int64, count=len(indices),
            )
            reported = _np.fromiter(
                (cd[pid] is collision for pid in indices),
                dtype=bool, count=len(indices),
            )
            over = t_arr > c
            if over.any():
                k = int(over.argmax())
                raise ValueError(
                    f"invalid transmission data c={c}, t={int(t_arr[k])}"
                )
            obliged = collision_obligation_array(completeness, c, t_arr)
            missing = obliged & ~reported
            if accuracy_active(accuracy, rec.round, r_acc):
                inaccurate = (t_arr == c) & reported
            else:
                inaccurate = t_arr < 0  # all-False
            bad = missing | inaccurate
            if bad.any():
                for k in _np.flatnonzero(bad).tolist():
                    reason = (
                        "missing obligatory collision report"
                        if missing[k]
                        else "collision report violates accuracy"
                    )
                    violations.append((rec.round, indices[k], reason))
        return violations
    for rec in result.records:
        c = rec.broadcast_count
        for pid in indices:
            t = len(rec.received[pid])
            reported = rec.cd_advice[pid] is CollisionAdvice.COLLISION
            if not advice_legal(
                completeness, accuracy, rec.round, r_acc, c, t, reported
            ):
                reason = (
                    "missing obligatory collision report"
                    if not reported
                    else "collision report violates accuracy"
                )
                violations.append((rec.round, pid, reason))
    return violations


def check_detector_trace(
    result: ExecutionResult,
    completeness: Completeness,
    accuracy: AccuracyMode,
    r_acc: Optional[int] = None,
) -> bool:
    """True when the execution's CD trace is legal for the class."""
    return not detector_trace_violations(result, completeness, accuracy, r_acc)
