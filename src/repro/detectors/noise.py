"""The noise lemma and detector-legality validators (Section 5.5).

Lemma 2 (the *noise lemma*): with a zero-complete detector, whenever one or
more processes broadcast in a round, every process either receives
something or detects a collision.  Corollary 1: if any process receives
nothing and detects no collision, then nobody broadcast — "silence implies
silence".  Both are the load-bearing facts behind the veto phases of
Algorithms 1-3.

This module checks these guarantees, and full class-legality of a CD trace
(Definition 11, constraint 6), over finished executions.  The execution
engine already constructs legal advice; these validators exist so tests and
lower-bound constructions can *prove* legality rather than assume it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.records import ExecutionResult
from ..core.types import CollisionAdvice
from .properties import AccuracyMode, Completeness, advice_legal


def noise_lemma_violations(
    result: ExecutionResult,
) -> List[Tuple[int, int]]:
    """Return ``(round, pid)`` pairs violating Lemma 2.

    A violation is a round with at least one broadcaster in which some
    process received nothing *and* got ``null`` advice.  For any detector
    satisfying zero completeness this list must be empty.
    """
    violations = []
    for rec in result.records:
        c = rec.broadcast_count
        if c == 0:
            continue
        for pid in result.indices:
            if len(rec.received[pid]) == 0 and (
                rec.cd_advice[pid] is CollisionAdvice.NULL
            ):
                violations.append((rec.round, pid))
    return violations


def check_noise_lemma(result: ExecutionResult) -> bool:
    """True when Lemma 2 holds throughout ``result``."""
    return not noise_lemma_violations(result)


def silence_implies_no_broadcast(result: ExecutionResult) -> bool:
    """Corollary 1 check: silence at any process implies nobody broadcast.

    Scans every round; if some process received nothing with ``null``
    advice, the round's broadcast count must be zero.
    """
    for rec in result.records:
        for pid in result.indices:
            quiet = len(rec.received[pid]) == 0 and (
                rec.cd_advice[pid] is CollisionAdvice.NULL
            )
            if quiet and rec.broadcast_count > 0:
                return False
    return True


def detector_trace_violations(
    result: ExecutionResult,
    completeness: Completeness,
    accuracy: AccuracyMode,
    r_acc: Optional[int] = None,
) -> List[Tuple[int, int, str]]:
    """Check a CD trace against a detector class's obligations.

    Returns a list of ``(round, pid, reason)`` triples; empty means the
    trace is a legal output of some detector in the class (Definition 11,
    constraint 6 holds).
    """
    violations = []
    for rec in result.records:
        c = rec.broadcast_count
        for pid in result.indices:
            t = len(rec.received[pid])
            reported = rec.cd_advice[pid] is CollisionAdvice.COLLISION
            if not advice_legal(
                completeness, accuracy, rec.round, r_acc, c, t, reported
            ):
                reason = (
                    "missing obligatory collision report"
                    if not reported
                    else "collision report violates accuracy"
                )
                violations.append((rec.round, pid, reason))
    return violations


def check_detector_trace(
    result: ExecutionResult,
    completeness: Completeness,
    accuracy: AccuracyMode,
    r_acc: Optional[int] = None,
) -> bool:
    """True when the execution's CD trace is legal for the class."""
    return not detector_trace_violations(result, completeness, accuracy, r_acc)
