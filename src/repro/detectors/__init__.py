"""Receiver-side collision detectors (Section 5).

Public surface:

* :class:`~repro.detectors.properties.Completeness` /
  :class:`~repro.detectors.properties.AccuracyMode` — the property axes.
* :class:`~repro.detectors.detector.ParametricCollisionDetector` — the one
  concrete detector, configured by class + policy.
* The Figure 1 class registry in :mod:`repro.detectors.classes`.
* Free-choice policies in :mod:`repro.detectors.policy`.
* Noise-lemma and legality validators in :mod:`repro.detectors.noise`.
"""

from .classes import (
    AC,
    ALL_CLASSES,
    CLASSES_BY_NAME,
    HALF_AC,
    HALF_OAC,
    MAJ_AC,
    MAJ_OAC,
    NO_ACC,
    NO_CD,
    OAC,
    ZERO_AC,
    ZERO_OAC,
    DetectorClass,
    containment_pairs,
    get_class,
)
from .eventual import (
    PhasedCompletenessDetector,
    eventually_complete_detector,
    usually_perfect_detector,
)
from .detector import (
    CollisionDetector,
    ParametricCollisionDetector,
    no_cd_detector,
    perfect_detector,
)
from .noise import (
    check_detector_trace,
    check_noise_lemma,
    detector_trace_violations,
    noise_lemma_violations,
    silence_implies_no_broadcast,
)
from .policy import (
    BenignPolicy,
    CallbackPolicy,
    DetectorPolicy,
    NoisyPolicy,
    SeededRandomPolicy,
    SilentPolicy,
    SpuriousUntilPolicy,
    TargetedSpuriousPolicy,
)
from .properties import (
    AccuracyMode,
    Completeness,
    accuracy_active,
    advice_legal,
    must_report_collision,
    must_report_null,
)

__all__ = [
    "AC", "OAC", "MAJ_AC", "MAJ_OAC", "HALF_AC", "HALF_OAC",
    "ZERO_AC", "ZERO_OAC", "NO_ACC", "NO_CD",
    "ALL_CLASSES", "CLASSES_BY_NAME", "DetectorClass",
    "containment_pairs", "get_class",
    "CollisionDetector", "ParametricCollisionDetector",
    "PhasedCompletenessDetector", "eventually_complete_detector",
    "usually_perfect_detector",
    "no_cd_detector", "perfect_detector",
    "Completeness", "AccuracyMode",
    "must_report_collision", "must_report_null", "accuracy_active",
    "advice_legal",
    "DetectorPolicy", "BenignPolicy", "SilentPolicy", "NoisyPolicy",
    "SpuriousUntilPolicy", "SeededRandomPolicy", "TargetedSpuriousPolicy",
    "CallbackPolicy",
    "check_noise_lemma", "noise_lemma_violations",
    "silence_implies_no_broadcast",
    "check_detector_trace", "detector_trace_violations",
]
