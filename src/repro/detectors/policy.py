"""Free-choice policies for collision detectors.

A detector *class* only constrains behaviour; inside the constraints a
detector may answer however it likes (the paper's MAXCD captures exactly
this freedom, Definition 15).  We factor the freedom into a *policy* object
that is consulted only when neither the completeness nor the accuracy
obligation pins down the answer.

Policies matter in two directions:

* **Upper bounds** run against hostile policies (spurious notifications,
  seeded noise) to demonstrate that the algorithms tolerate *any* detector
  in their class.
* **Lower bounds** drive the policy directly (:class:`CallbackPolicy`) to
  realise the specific adversarial detector their proofs construct.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Iterable, Optional, Set

from ..core.types import CollisionAdvice, ProcessId


class DetectorPolicy(abc.ABC):
    """Chooses advice for (round, process) pairs left free by the class."""

    #: True when ``free_choice`` depends only on ``(round_index, c, t)``
    #: — never on the pid and never on mutable/RNG state — so a detector
    #: may compute one answer per distinct ``t`` per round and fan it out
    #: to every process.  Conservative default: per-pid evaluation.
    pid_independent = False

    @abc.abstractmethod
    def free_choice(
        self, round_index: int, pid: ProcessId, c: int, t: int
    ) -> CollisionAdvice:
        """Return the advice for an unconstrained (round, process) pair."""

    def free_choice_array(self, round_index: int, c: int, counts):
        """Whole-round free choices over a receive-count array, or ``None``.

        The array-advice hot path calls this with the round's counts
        array (numpy, aligned with the engine's index order); a policy
        that can answer in one vectorised pass returns a boolean array —
        ``True`` where it chooses ``COLLISION`` — that must agree
        elementwise with :meth:`free_choice`.  Returning ``None`` (the
        default, and the only legal answer for pid-dependent or stateful
        policies) sends the detector back to per-choice evaluation, so
        third-party policies never change behaviour by omitting this.
        """
        return None

    def reset(self) -> None:
        """Forget internal state before a fresh execution (default: none)."""


class BenignPolicy(DetectorPolicy):
    """Report a collision exactly when the process actually lost a message.

    This is the "honest" detector: within its class constraints it behaves
    like a perfect detector.  Used as the default for examples.
    """

    pid_independent = True

    def free_choice(
        self, round_index: int, pid: ProcessId, c: int, t: int
    ) -> CollisionAdvice:
        return CollisionAdvice.COLLISION if t < c else CollisionAdvice.NULL

    def free_choice_array(self, round_index: int, c: int, counts):
        return counts < c


class SilentPolicy(DetectorPolicy):
    """Stay silent whenever allowed — the *minimal* detector in its class.

    Against a half-complete detector this policy realises the adversarial
    "exactly half lost, no notification" behaviour at the heart of
    Theorem 6.
    """

    pid_independent = True

    def free_choice(
        self, round_index: int, pid: ProcessId, c: int, t: int
    ) -> CollisionAdvice:
        return CollisionAdvice.NULL

    def free_choice_array(self, round_index: int, c: int, counts):
        return counts < 0  # all-False of the right shape


class NoisyPolicy(DetectorPolicy):
    """Report a collision whenever allowed — the *maximal* false-positive
    detector.  With ``AccuracyMode.NEVER`` this realises the paper's
    trivial ``NOCD`` detector that returns ``±`` everywhere."""

    pid_independent = True

    def free_choice(
        self, round_index: int, pid: ProcessId, c: int, t: int
    ) -> CollisionAdvice:
        return CollisionAdvice.COLLISION

    def free_choice_array(self, round_index: int, c: int, counts):
        return counts >= 0  # all-True of the right shape


class SpuriousUntilPolicy(DetectorPolicy):
    """False positives before a threshold round, honest afterwards.

    Models an eventually-accurate detector whose pre-``r_acc`` noise is as
    bad as the class permits: every free choice before ``quiet_round`` is a
    collision report.
    """

    pid_independent = True

    def __init__(self, quiet_round: int) -> None:
        self.quiet_round = quiet_round
        self._benign = BenignPolicy()

    def free_choice(
        self, round_index: int, pid: ProcessId, c: int, t: int
    ) -> CollisionAdvice:
        if round_index < self.quiet_round:
            return CollisionAdvice.COLLISION
        return self._benign.free_choice(round_index, pid, c, t)

    def free_choice_array(self, round_index: int, c: int, counts):
        if round_index < self.quiet_round:
            return counts >= 0  # all-True of the right shape
        return counts < c


class SeededRandomPolicy(DetectorPolicy):
    """Flip a seeded coin for every free choice.

    ``p_collision`` is the probability of answering ``±`` when
    unconstrained.  Deterministic given the seed, so executions replay.
    """

    def __init__(self, p_collision: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= p_collision <= 1.0:
            raise ValueError("p_collision must lie in [0, 1]")
        self.p_collision = p_collision
        self.seed = seed
        self._rng = random.Random(seed)

    def free_choice(
        self, round_index: int, pid: ProcessId, c: int, t: int
    ) -> CollisionAdvice:
        if self._rng.random() < self.p_collision:
            return CollisionAdvice.COLLISION
        return CollisionAdvice.NULL

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class TargetedSpuriousPolicy(DetectorPolicy):
    """Spurious collision reports at chosen (round, process) pairs.

    Anything not listed falls through to a benign choice.  Used by tests
    that need one precisely-placed false positive.
    """

    def __init__(
        self,
        spurious_rounds: Iterable[int] = (),
        spurious_pairs: Iterable[tuple] = (),
    ) -> None:
        self.spurious_rounds: Set[int] = set(spurious_rounds)
        self.spurious_pairs: Set[tuple] = set(spurious_pairs)
        self._benign = BenignPolicy()

    def free_choice(
        self, round_index: int, pid: ProcessId, c: int, t: int
    ) -> CollisionAdvice:
        if round_index in self.spurious_rounds:
            return CollisionAdvice.COLLISION
        if (round_index, pid) in self.spurious_pairs:
            return CollisionAdvice.COLLISION
        return self._benign.free_choice(round_index, pid, c, t)


class CallbackPolicy(DetectorPolicy):
    """Delegate every free choice to a callable.

    The callable receives ``(round_index, pid, c, t)`` and must return a
    :class:`CollisionAdvice`.  This is the lower-bound workhorse: each
    impossibility construction scripts the exact detector behaviour its
    proof requires, and the parametric detector still enforces that the
    script stays inside the class (so a buggy construction fails loudly
    instead of proving a false theorem).
    """

    def __init__(
        self,
        fn: Callable[[int, ProcessId, int, int], CollisionAdvice],
        on_reset: Optional[Callable[[], None]] = None,
    ) -> None:
        self._fn = fn
        self._on_reset = on_reset

    def free_choice(
        self, round_index: int, pid: ProcessId, c: int, t: int
    ) -> CollisionAdvice:
        return self._fn(round_index, pid, c, t)

    def reset(self) -> None:
        if self._on_reset is not None:
            self._on_reset()
