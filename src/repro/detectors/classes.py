"""The Figure 1 collision-detector class lattice.

Figure 1 of the paper names eight classes — the product of four
completeness levels and two accuracy regimes::

                Complete   maj-Complete   half-Complete   0-Complete
    Accurate       AC         maj-AC         half-AC         0-AC
    Ev.Accurate    OAC        maj-OAC        half-OAC        0-OAC

plus two special classes: **NoCD** (the trivial always-``±`` detector) and
**NoACC** (complete, but no accuracy guarantee whatsoever).

This module provides a registry of these classes, membership and subset
tests (the containment lattice drives which theorems transfer between
classes, e.g. Lemma 1: ``NoCD ⊆ NoACC``), and factory helpers to build a
concrete :class:`ParametricCollisionDetector` inside a class.

Every detector built through :meth:`DetectorClass.make` resolves its
advice vectorised under the engine's array round kernel: the parametric
detector's ``advise_array`` answers the completeness/accuracy
obligations in whole-array passes and is elementwise identical to the
dict ``advise`` path, so picking a lattice class never trades fidelity
for throughput (see :mod:`repro.detectors.detector`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..core.errors import ConfigurationError
from .detector import ParametricCollisionDetector, no_cd_detector
from .policy import BenignPolicy, DetectorPolicy
from .properties import AccuracyMode, Completeness


@dataclasses.dataclass(frozen=True)
class DetectorClass:
    """A named collision-detector class from the paper.

    ``special`` marks NoCD, whose definition is "the one trivial detector"
    rather than a property combination.
    """

    name: str
    completeness: Completeness
    accuracy: AccuracyMode
    special: bool = False

    def contains(self, detector: ParametricCollisionDetector) -> bool:
        """Class membership: does ``detector`` satisfy our properties?

        A detector with a stronger completeness level and a stronger
        accuracy regime is a member of every weaker class (the containment
        direction used throughout Sections 7-8).
        """
        if self.special:
            # NoCD contains exactly the trivial detector; we approximate by
            # requiring FULL completeness, NEVER accuracy and a policy that
            # always answers collision — checked structurally.
            from .policy import NoisyPolicy

            return (
                detector.accuracy is AccuracyMode.NEVER
                and isinstance(detector.policy, NoisyPolicy)
            )
        return detector.completeness.at_least(
            self.completeness
        ) and detector.accuracy.at_least(self.accuracy)

    def is_subclass_of(self, other: "DetectorClass") -> bool:
        """Class containment: every detector of ``self`` is in ``other``.

        Holds when ``self`` demands at-least-as-strong completeness *and*
        accuracy.  NoCD is a subclass of NoACC (Lemma 1) because the
        trivial detector reports every loss (vacuously complete) and NoACC
        demands no accuracy.
        """
        if self.special:
            # NoCD: the trivial detector is complete and never accurate.
            return Completeness.FULL.at_least(
                other.completeness
            ) and AccuracyMode.NEVER.at_least(other.accuracy)
        if other.special:
            return False
        return self.completeness.at_least(
            other.completeness
        ) and self.accuracy.at_least(other.accuracy)

    def make(
        self,
        r_acc: Optional[int] = None,
        policy: Optional[DetectorPolicy] = None,
    ) -> ParametricCollisionDetector:
        """Build a concrete member of this class.

        For eventually-accurate classes, ``r_acc`` positions the round from
        which accuracy holds (default 1 — accurate from the start, which is
        a legal member of every OAC class).  For always-accurate classes
        ``r_acc`` must be omitted.
        """
        if self.special:
            if policy is not None or r_acc is not None:
                raise ConfigurationError("NoCD admits exactly one detector")
            return no_cd_detector()
        if self.accuracy is AccuracyMode.EVENTUAL:
            r = 1 if r_acc is None else r_acc
            return ParametricCollisionDetector(
                self.completeness, self.accuracy, r_acc=r,
                policy=policy or BenignPolicy(),
            )
        if r_acc is not None:
            raise ConfigurationError(
                f"class {self.name} does not take an r_acc"
            )
        return ParametricCollisionDetector(
            self.completeness, self.accuracy, policy=policy or BenignPolicy()
        )

    def __str__(self) -> str:
        return self.name


# ----------------------------------------------------------------------
# The registry (Figure 1 plus the two special classes)
# ----------------------------------------------------------------------
AC = DetectorClass("AC", Completeness.FULL, AccuracyMode.ALWAYS)
OAC = DetectorClass("OAC", Completeness.FULL, AccuracyMode.EVENTUAL)
MAJ_AC = DetectorClass("maj-AC", Completeness.MAJORITY, AccuracyMode.ALWAYS)
MAJ_OAC = DetectorClass("maj-OAC", Completeness.MAJORITY, AccuracyMode.EVENTUAL)
HALF_AC = DetectorClass("half-AC", Completeness.HALF, AccuracyMode.ALWAYS)
HALF_OAC = DetectorClass("half-OAC", Completeness.HALF, AccuracyMode.EVENTUAL)
ZERO_AC = DetectorClass("0-AC", Completeness.ZERO, AccuracyMode.ALWAYS)
ZERO_OAC = DetectorClass("0-OAC", Completeness.ZERO, AccuracyMode.EVENTUAL)
NO_ACC = DetectorClass("NoACC", Completeness.FULL, AccuracyMode.NEVER)
NO_CD = DetectorClass("NoCD", Completeness.FULL, AccuracyMode.NEVER, special=True)

#: All classes discussed in the paper, in Figure 1 order.
ALL_CLASSES: Tuple[DetectorClass, ...] = (
    AC, MAJ_AC, HALF_AC, ZERO_AC,
    OAC, MAJ_OAC, HALF_OAC, ZERO_OAC,
    NO_ACC, NO_CD,
)

#: Lookup by name.
CLASSES_BY_NAME: Dict[str, DetectorClass] = {c.name: c for c in ALL_CLASSES}


def get_class(name: str) -> DetectorClass:
    """Look up a detector class by its Figure 1 name."""
    try:
        return CLASSES_BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown detector class {name!r}; known: "
            f"{sorted(CLASSES_BY_NAME)}"
        ) from None


def containment_pairs() -> Tuple[Tuple[str, str], ...]:
    """All (subclass, superclass) name pairs in the lattice.

    Used by tests to verify the lattice matches the paper's containment
    claims (e.g. every class with completeness is inside 0-OAC except the
    always-accurate ones inside 0-AC, AC ⊆ maj-AC ⊆ half-AC ⊆ 0-AC, and
    X-AC ⊆ X-OAC for every level X).
    """
    pairs = []
    for a in ALL_CLASSES:
        for b in ALL_CLASSES:
            if a.name != b.name and a.is_subclass_of(b):
                pairs.append((a.name, b.name))
    return tuple(pairs)
