"""Concrete collision detectors (Definition 6, realised as objects).

Formally a P-collision detector maps transmission traces to sets of legal
CD traces.  Operationally we implement a detector as an object that, each
round, sees only this round's transmission data ``(c, T)`` — never message
contents or sender identities, exactly as Definition 6 requires — and
returns advice for every process.

:class:`ParametricCollisionDetector` is the single implementation: it
enforces the completeness/accuracy *obligations* of its configured class
and delegates all remaining freedom to a :class:`DetectorPolicy`.  Every
detector in the Figure 1 lattice, plus NoCD and NoACC, is an instance.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Optional

from ..core.errors import ConfigurationError, ModelViolation
from ..core.types import CollisionAdvice, ProcessId
from .policy import BenignPolicy, DetectorPolicy, NoisyPolicy
from .properties import (
    AccuracyMode,
    Completeness,
    accuracy_active,
    must_report_collision,
    must_report_null,
)


class CollisionDetector(abc.ABC):
    """Interface consumed by the execution engine."""

    @abc.abstractmethod
    def advise(
        self,
        round_index: int,
        broadcasters: int,
        received_counts: Mapping[ProcessId, int],
    ) -> Dict[ProcessId, CollisionAdvice]:
        """Return advice for every process for round ``round_index``.

        ``broadcasters`` is the paper's ``c``; ``received_counts[i]`` is
        ``T(i)``.  Implementations must not consult anything else — the
        engine deliberately passes only counts.
        """

    def reset(self) -> None:
        """Prepare for a fresh execution (default: stateless)."""


class ParametricCollisionDetector(CollisionDetector):
    """A detector defined by (completeness, accuracy, policy).

    Parameters
    ----------
    completeness:
        The completeness obligation (Properties 4-7) the detector honours.
    accuracy:
        ``ALWAYS``, ``EVENTUAL`` or ``NEVER`` (Properties 8-9).
    r_acc:
        For ``EVENTUAL`` accuracy, the (1-based) round from which accuracy
        holds.  The paper's algorithms never learn this value; it exists
        only inside the environment.
    policy:
        Decides every unconstrained answer.  Defaults to
        :class:`BenignPolicy`.

    The detector *checks its own output*: if the policy ever returns advice
    that violates an obligation, the obligation wins, so a parametric
    detector is legal for its class by construction.
    """

    def __init__(
        self,
        completeness: Completeness,
        accuracy: AccuracyMode,
        r_acc: Optional[int] = None,
        policy: Optional[DetectorPolicy] = None,
    ) -> None:
        if accuracy is AccuracyMode.EVENTUAL:
            if r_acc is None or r_acc < 1:
                raise ConfigurationError(
                    "EVENTUAL accuracy requires r_acc >= 1"
                )
        elif r_acc is not None:
            raise ConfigurationError(
                "r_acc is only meaningful with EVENTUAL accuracy"
            )
        self.completeness = completeness
        self.accuracy = accuracy
        self.r_acc = r_acc
        self.policy = policy if policy is not None else BenignPolicy()

    # ------------------------------------------------------------------
    def advise(
        self,
        round_index: int,
        broadcasters: int,
        received_counts: Mapping[ProcessId, int],
    ) -> Dict[ProcessId, CollisionAdvice]:
        advice: Dict[ProcessId, CollisionAdvice] = {}
        c = broadcasters
        # The completeness/accuracy obligations depend only on (c, t), and
        # c is fixed for the round: resolve each distinct t once.  Free
        # choices stay per-process unless the policy declares itself
        # pid-independent, in which case they memoise per t as well.
        obligation: Dict[int, Optional[CollisionAdvice]] = {}
        free_choice = self.policy.free_choice
        memo_free = self.policy.pid_independent
        for pid, t in received_counts.items():
            if t > c:
                raise ModelViolation(
                    f"process {pid} received {t} messages but only {c} "
                    "were broadcast"
                )
            if t in obligation:
                obliged = obligation[t]
            elif must_report_collision(self.completeness, c, t):
                obliged = obligation[t] = CollisionAdvice.COLLISION
            elif must_report_null(
                self.accuracy, round_index, self.r_acc, c, t
            ):
                obliged = obligation[t] = CollisionAdvice.NULL
            elif memo_free:
                obliged = obligation[t] = free_choice(round_index, pid, c, t)
            else:
                obliged = obligation[t] = None
            advice[pid] = (
                obliged if obliged is not None
                else free_choice(round_index, pid, c, t)
            )
        return advice

    def reset(self) -> None:
        self.policy.reset()

    # ------------------------------------------------------------------
    def accuracy_active_at(self, round_index: int) -> bool:
        """Is the accuracy obligation in force at ``round_index``?"""
        return accuracy_active(self.accuracy, round_index, self.r_acc)

    def __repr__(self) -> str:
        acc = self.accuracy.name
        if self.accuracy is AccuracyMode.EVENTUAL:
            acc += f"(r_acc={self.r_acc})"
        return (
            f"ParametricCollisionDetector({self.completeness.name}, {acc}, "
            f"policy={type(self.policy).__name__})"
        )


def no_cd_detector() -> ParametricCollisionDetector:
    """The paper's trivial ``NOCD_P`` detector: ``±`` everywhere.

    Returning ``±`` to every process in every round trivially satisfies
    completeness (Lemma 1: NoCD is a subset of NoACC) and satisfies no
    accuracy property.
    """
    return ParametricCollisionDetector(
        Completeness.FULL, AccuracyMode.NEVER, policy=NoisyPolicy()
    )


def perfect_detector() -> ParametricCollisionDetector:
    """A detector in AC with honest free choices: the classical "perfect"
    collision detector (complete and accurate)."""
    return ParametricCollisionDetector(
        Completeness.FULL, AccuracyMode.ALWAYS, policy=BenignPolicy()
    )
