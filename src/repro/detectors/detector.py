"""Concrete collision detectors (Definition 6, realised as objects).

Formally a P-collision detector maps transmission traces to sets of legal
CD traces.  Operationally we implement a detector as an object that, each
round, sees only this round's transmission data ``(c, T)`` — never message
contents or sender identities, exactly as Definition 6 requires — and
returns advice for every process.

:class:`ParametricCollisionDetector` is the single implementation: it
enforces the completeness/accuracy *obligations* of its configured class
and delegates all remaining freedom to a :class:`DetectorPolicy`.  Every
detector in the Figure 1 lattice, plus NoCD and NoACC, is an instance.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.arrays import numpy_or_none
from ..core.errors import ConfigurationError, ModelViolation
from ..core.types import CollisionAdvice, ProcessId
from .policy import BenignPolicy, DetectorPolicy, NoisyPolicy
from .properties import (
    AccuracyMode,
    Completeness,
    accuracy_active,
    collision_obligation_array,
    must_report_collision,
    must_report_null,
)

#: Optional acceleration for array advice; same gate as every other
#: vectorised path (numpy importable, ``REPRO_PURE_PYTHON`` unset).
_np = numpy_or_none()

#: Advice by obligation truth value: ``lut[bool]``.
_ADVICE_LUT = (CollisionAdvice.NULL, CollisionAdvice.COLLISION)

#: policy class -> may its ``free_choice_array`` stand in for
#: ``free_choice``?  See :func:`_trusted_free_choice_array`.
_FCA_TRUSTED: Dict[type, bool] = {}


def _trusted_free_choice_array(policy_cls: type) -> bool:
    """May ``policy_cls.free_choice_array`` answer for ``free_choice``?

    Only when the *same* class (walking the MRO) provides both: a
    subclass that overrides ``free_choice`` while inheriting an
    ancestor's ``free_choice_array`` must not have its override silently
    bypassed by the array path, so the first class that defines either
    method decides — it is trusted exactly when it defines the array
    form itself.
    """
    cached = _FCA_TRUSTED.get(policy_cls)
    if cached is None:
        cached = False
        for klass in policy_cls.__mro__:
            owns_array = "free_choice_array" in klass.__dict__
            if owns_array or "free_choice" in klass.__dict__:
                cached = owns_array
                break
        _FCA_TRUSTED[policy_cls] = cached
    return cached


def vectorised_advice(
    np_mod,
    level: Completeness,
    accuracy: AccuracyMode,
    r_acc: Optional[int],
    policy: DetectorPolicy,
    round_index: int,
    broadcasters: int,
    counts,
    indices: Sequence[ProcessId],
    overflow_message,
    memo_per_t: bool,
) -> List[CollisionAdvice]:
    """The one vectorised advice resolution both built-ins share.

    Obligations resolve as array predicates (Properties 4-9 over the
    counts array); free choices go to the policy exactly as the caller's
    dict ``advise`` would call it — via ``free_choice_array`` when the
    policy's own class vouches for it, once per distinct ``t`` when the
    caller memoises pid-independent policies (``memo_per_t``, the
    parametric detector's dict behaviour), and once per unconstrained
    process *in index order* otherwise, so seeded policies consume their
    streams identically on both paths.  ``overflow_message(pid, t, c)``
    renders the caller's own t-greater-than-c violation text.
    """
    c = broadcasters
    over = counts > c
    if over.any():
        k = int(over.argmax())
        raise ModelViolation(overflow_message(indices[k], int(counts[k]), c))
    obliged = collision_obligation_array(level, c, counts)
    if accuracy_active(accuracy, round_index, r_acc):
        free = ~(obliged | (counts == c))
    else:
        free = ~obliged
    if free.any():
        chosen = (
            policy.free_choice_array(round_index, c, counts)
            if _trusted_free_choice_array(type(policy))
            else None
        )
        if chosen is not None:
            obliged = obliged | (free & chosen)
        elif memo_per_t and policy.pid_independent:
            free_choice = policy.free_choice
            for t in np_mod.unique(counts[free]).tolist():
                mask = free & (counts == t)
                first = int(mask.argmax())
                choice = free_choice(round_index, indices[first], c, t)
                if choice is CollisionAdvice.COLLISION:
                    obliged = obliged | mask
        else:
            free_choice = policy.free_choice
            counts_list = counts.tolist()
            for k in np_mod.flatnonzero(free).tolist():
                choice = free_choice(
                    round_index, indices[k], c, counts_list[k]
                )
                if choice is CollisionAdvice.COLLISION:
                    obliged[k] = True
    return [_ADVICE_LUT[v] for v in obliged.tolist()]


class CollisionDetector(abc.ABC):
    """Interface consumed by the execution engine."""

    @abc.abstractmethod
    def advise(
        self,
        round_index: int,
        broadcasters: int,
        received_counts: Mapping[ProcessId, int],
    ) -> Dict[ProcessId, CollisionAdvice]:
        """Return advice for every process for round ``round_index``.

        ``broadcasters`` is the paper's ``c``; ``received_counts[i]`` is
        ``T(i)``.  Implementations must not consult anything else — the
        engine deliberately passes only counts.
        """

    def advise_array(
        self,
        round_index: int,
        broadcasters: int,
        counts,
        indices: Sequence[ProcessId],
    ) -> List[CollisionAdvice]:
        """Array advice for the engine's vectorised round kernel.

        ``counts`` is an int array of per-process receive counts aligned
        with ``indices`` (the paper's ``T`` as one array instead of a
        mapping); the return value is the advice list in the same
        alignment.  The default implementation round-trips through the
        dict :meth:`advise`, so third-party detectors written against
        the mapping interface keep working under the array kernel — they
        see the exact calls (same counts, same iteration order) the
        pure-python engine path would have made.  Built-in detectors
        override this with genuinely vectorised obligation resolution.
        """
        received_counts = dict(zip(indices, counts.tolist()))
        advice = self.advise(round_index, broadcasters, received_counts)
        if not set(indices) <= advice.keys():
            missing = set(indices) - advice.keys()
            raise ModelViolation(
                f"collision detector omitted advice for {sorted(missing)}"
            )
        return [advice[pid] for pid in indices]

    def reset(self) -> None:
        """Prepare for a fresh execution (default: stateless)."""


class ParametricCollisionDetector(CollisionDetector):
    """A detector defined by (completeness, accuracy, policy).

    Parameters
    ----------
    completeness:
        The completeness obligation (Properties 4-7) the detector honours.
    accuracy:
        ``ALWAYS``, ``EVENTUAL`` or ``NEVER`` (Properties 8-9).
    r_acc:
        For ``EVENTUAL`` accuracy, the (1-based) round from which accuracy
        holds.  The paper's algorithms never learn this value; it exists
        only inside the environment.
    policy:
        Decides every unconstrained answer.  Defaults to
        :class:`BenignPolicy`.

    The detector *checks its own output*: if the policy ever returns advice
    that violates an obligation, the obligation wins, so a parametric
    detector is legal for its class by construction.
    """

    def __init__(
        self,
        completeness: Completeness,
        accuracy: AccuracyMode,
        r_acc: Optional[int] = None,
        policy: Optional[DetectorPolicy] = None,
    ) -> None:
        if accuracy is AccuracyMode.EVENTUAL:
            if r_acc is None or r_acc < 1:
                raise ConfigurationError(
                    "EVENTUAL accuracy requires r_acc >= 1"
                )
        elif r_acc is not None:
            raise ConfigurationError(
                "r_acc is only meaningful with EVENTUAL accuracy"
            )
        self.completeness = completeness
        self.accuracy = accuracy
        self.r_acc = r_acc
        self.policy = policy if policy is not None else BenignPolicy()

    # ------------------------------------------------------------------
    def advise(
        self,
        round_index: int,
        broadcasters: int,
        received_counts: Mapping[ProcessId, int],
    ) -> Dict[ProcessId, CollisionAdvice]:
        advice: Dict[ProcessId, CollisionAdvice] = {}
        c = broadcasters
        # The completeness/accuracy obligations depend only on (c, t), and
        # c is fixed for the round: resolve each distinct t once.  Free
        # choices stay per-process unless the policy declares itself
        # pid-independent, in which case they memoise per t as well.
        obligation: Dict[int, Optional[CollisionAdvice]] = {}
        free_choice = self.policy.free_choice
        memo_free = self.policy.pid_independent
        for pid, t in received_counts.items():
            if t > c:
                raise ModelViolation(
                    f"process {pid} received {t} messages but only {c} "
                    "were broadcast"
                )
            if t in obligation:
                obliged = obligation[t]
            elif must_report_collision(self.completeness, c, t):
                obliged = obligation[t] = CollisionAdvice.COLLISION
            elif must_report_null(
                self.accuracy, round_index, self.r_acc, c, t
            ):
                obliged = obligation[t] = CollisionAdvice.NULL
            elif memo_free:
                obliged = obligation[t] = free_choice(round_index, pid, c, t)
            else:
                obliged = obligation[t] = None
            advice[pid] = (
                obliged if obliged is not None
                else free_choice(round_index, pid, c, t)
            )
        return advice

    def advise_array(
        self,
        round_index: int,
        broadcasters: int,
        counts,
        indices: Sequence[ProcessId],
    ) -> List[CollisionAdvice]:
        """Vectorised advice: obligations in whole-array passes.

        Elementwise identical to :meth:`advise` — completeness and
        accuracy resolve as array predicates; free choices go to the
        policy exactly as the dict path would call it (once per distinct
        ``t`` for pid-independent policies, once per unconstrained
        process *in index order* otherwise, so seeded policies consume
        their streams identically on both paths).  Subclasses that
        override :meth:`advise` are routed through the dict fallback, so
        their customisation is never silently bypassed.
        """
        if _np is None or type(self).advise is not ParametricCollisionDetector.advise:
            return CollisionDetector.advise_array(
                self, round_index, broadcasters, counts, indices
            )
        return vectorised_advice(
            _np, self.completeness, self.accuracy, self.r_acc, self.policy,
            round_index, broadcasters, counts, indices,
            lambda pid, t, c: (
                f"process {pid} received {t} messages but only {c} "
                "were broadcast"
            ),
            memo_per_t=True,
        )

    def reset(self) -> None:
        self.policy.reset()

    # ------------------------------------------------------------------
    def accuracy_active_at(self, round_index: int) -> bool:
        """Is the accuracy obligation in force at ``round_index``?"""
        return accuracy_active(self.accuracy, round_index, self.r_acc)

    def __repr__(self) -> str:
        acc = self.accuracy.name
        if self.accuracy is AccuracyMode.EVENTUAL:
            acc += f"(r_acc={self.r_acc})"
        return (
            f"ParametricCollisionDetector({self.completeness.name}, {acc}, "
            f"policy={type(self.policy).__name__})"
        )


def no_cd_detector() -> ParametricCollisionDetector:
    """The paper's trivial ``NOCD_P`` detector: ``±`` everywhere.

    Returning ``±`` to every process in every round trivially satisfies
    completeness (Lemma 1: NoCD is a subset of NoACC) and satisfies no
    accuracy property.
    """
    return ParametricCollisionDetector(
        Completeness.FULL, AccuracyMode.NEVER, policy=NoisyPolicy()
    )


def perfect_detector() -> ParametricCollisionDetector:
    """A detector in AC with honest free choices: the classical "perfect"
    collision detector (complete and accurate)."""
    return ParametricCollisionDetector(
        Completeness.FULL, AccuracyMode.ALWAYS, policy=BenignPolicy()
    )
