"""Collision-detector completeness and accuracy properties (Section 5).

The paper classifies detectors by *when they must report* a collision
(completeness, Properties 4-7) and *when they must stay silent*
(accuracy, Properties 8-9).  This module encodes both as pure predicates
over a round's transmission data ``(c, T(i))``:

* ``c``   — number of processes that broadcast in the round,
* ``t``   — number of messages process ``i`` received (incl. its own).

The four completeness levels, strongest to weakest:

=============  =========================================================
``FULL``       report whenever ``t < c``             (Property 4)
``MAJORITY``   report whenever ``c > 0 and t <= c/2`` (Property 5 —
               the process failed to receive a *strict majority*)
``HALF``       report whenever ``c > 0 and t < c/2``  (Property 6 —
               the process received *less than half*)
``ZERO``       report whenever ``c > 0 and t == 0``   (Property 7)
``NONE``       never obliged to report
=============  =========================================================

The single-message gap between ``MAJORITY`` and ``HALF`` (receiving
*exactly* half obliges a majority-complete detector to report but lets a
half-complete detector stay silent) drives the complexity separation
between Theorem 1's O(1) algorithm and Theorem 6's Omega(log |V|) lower
bound, so we keep both and test the boundary explicitly.
"""

from __future__ import annotations

import enum
from typing import Optional


class Completeness(enum.Enum):
    """The four completeness levels plus NONE, ordered strongest first."""

    FULL = 4
    MAJORITY = 3
    HALF = 2
    ZERO = 1
    NONE = 0

    def at_least(self, other: "Completeness") -> bool:
        """True when this level implies (is at least as strong as) ``other``.

        Stronger completeness obliges a superset of reports, hence a
        detector satisfying ``FULL`` also satisfies ``MAJORITY``, ``HALF``
        and ``ZERO`` (cf. the remark after Lemma 2).
        """
        return self.value >= other.value


class AccuracyMode(enum.Enum):
    """Accuracy regimes, ordered strongest first."""

    ALWAYS = 2     #: accurate in every round (Property 8)
    EVENTUAL = 1   #: accurate from some round ``r_acc`` on (Property 9)
    NEVER = 0      #: no accuracy guarantee at all (the NoACC regime)

    def at_least(self, other: "AccuracyMode") -> bool:
        """True when this mode implies ``other``."""
        return self.value >= other.value


def must_report_collision(level: Completeness, c: int, t: int) -> bool:
    """Is the detector *obliged* to return ``±`` given ``(c, t)``?

    Implements Properties 4-7 exactly.  Note that ``t`` counts the
    receiver's own message when it broadcast, matching the model in which
    broadcasters always receive their own message.
    """
    if c < 0 or t < 0 or t > c:
        raise ValueError(f"invalid transmission data c={c}, t={t}")
    if level is Completeness.FULL:
        return t < c
    if level is Completeness.MAJORITY:
        # Fails to receive a strict majority: t/c <= 0.5  <=>  2t <= c.
        return c > 0 and 2 * t <= c
    if level is Completeness.HALF:
        # Fails to receive half: t/c < 0.5  <=>  2t < c.
        return c > 0 and 2 * t < c
    if level is Completeness.ZERO:
        return c > 0 and t == 0
    return False


def collision_obligation_array(level: Completeness, c: int, counts):
    """Vectorised :func:`must_report_collision` over a receive-count array.

    ``counts`` is an int array of per-process ``t`` values for one round
    (the engine's array kernel hands the detector exactly this).  Returns
    a boolean array: ``True`` where the detector is obliged to report a
    collision.  Callers validate ``t <= c`` first — this helper encodes
    only the Properties 4-7 predicates, elementwise identical to the
    scalar function.
    """
    if c < 0:
        raise ValueError(f"invalid transmission data c={c}")
    if level is Completeness.FULL:
        return counts < c
    if level is Completeness.MAJORITY:
        return (2 * counts <= c) if c > 0 else counts < 0
    if level is Completeness.HALF:
        return (2 * counts < c) if c > 0 else counts < 0
    if level is Completeness.ZERO:
        return (counts == 0) if c > 0 else counts < 0
    return counts < 0  # NONE: all-False of the right shape


def accuracy_active(
    mode: AccuracyMode, round_index: int, r_acc: Optional[int]
) -> bool:
    """Is the accuracy obligation in force at ``round_index`` (1-based)?

    ``ALWAYS`` is in force everywhere; ``EVENTUAL`` from ``r_acc`` on;
    ``NEVER`` nowhere.
    """
    if mode is AccuracyMode.ALWAYS:
        return True
    if mode is AccuracyMode.EVENTUAL:
        if r_acc is None:
            raise ValueError("EVENTUAL accuracy requires an r_acc round")
        return round_index >= r_acc
    return False


def must_report_null(
    mode: AccuracyMode, round_index: int, r_acc: Optional[int], c: int, t: int
) -> bool:
    """Is the detector *obliged* to return ``null`` given ``(c, t)``?

    Properties 8-9: when accuracy is in force and the process received all
    messages sent this round (``t == c``), the detector must stay silent.
    """
    return accuracy_active(mode, round_index, r_acc) and t == c


def advice_legal(
    level: Completeness,
    mode: AccuracyMode,
    round_index: int,
    r_acc: Optional[int],
    c: int,
    t: int,
    reported_collision: bool,
) -> bool:
    """Check one advice value against both obligations.

    The obligations are never contradictory: ``must_report_null`` requires
    ``t == c`` while every completeness obligation requires ``t < c``
    (given ``c > 0``), so at most one of the two fires.
    """
    if must_report_collision(level, c, t) and not reported_collision:
        return False
    if must_report_null(mode, round_index, r_acc, c, t) and reported_collision:
        return False
    return True
