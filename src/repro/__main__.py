"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro                 # list available experiments
    python -m repro all             # run the full evaluation
    python -m repro E3 E8           # run selected experiments
"""

from __future__ import annotations

import sys


def main(argv: list) -> int:
    from .experiments import REGISTRY, render_all

    if not argv:
        print("repro — Consensus and Collision Detectors (PODC 2005)")
        print("\nAvailable experiments:")
        for experiment in REGISTRY.all():
            print(f"  {experiment.exp_id:<4} {experiment.title}")
            print(f"       ({experiment.paper_ref})")
        print("\nRun with: python -m repro all | <experiment ids>")
        return 0
    if argv == ["all"]:
        print(render_all())
        return 0
    unknown = [a for a in argv if a not in REGISTRY.ids()]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"known: {', '.join(REGISTRY.ids())}", file=sys.stderr)
        return 2
    for exp_id in argv:
        print(REGISTRY.get(exp_id).render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
