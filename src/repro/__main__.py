"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro                 # list available experiments
    python -m repro all             # run the full evaluation
    python -m repro E3 E8           # run selected experiments

    # launch (or resume — same idempotent operation) a checkpointed
    # campaign over the (n x detector x loss_rate x seed) matrix;
    # every configuration runs through the unified CampaignDispatcher
    # worker pool (--processes sets its width, --cell-timeout arms
    # per-cell deadlines at any width, --in-process is the serial
    # debug escape hatch):
    python -m repro campaign --db campaign.db --quick
    python -m repro campaign --db campaign.db --report   # no work, just JSON
    python -m repro campaign report --table --db campaign.db
                                  # aligned per-cell round analytics

    # the E19 churn family: same resumable machinery over the dynamic-
    # membership grid (churn_rate x topology join the coordinates):
    python -m repro campaign --family e19 --db churn.db --quick

    # distributed sharding: split one grid deterministically across K
    # hosts — each host runs only its share, into its own store, with
    # resume/retry/timeout semantics unchanged — then fold the K shard
    # stores into one whose report is byte-identical to a single-host
    # run (see docs/campaigns.md for the operator guide):
    python -m repro campaign shard --index 0 --of 2 --quick   # host A
    python -m repro campaign shard --index 1 --of 2 --quick   # host B
    python -m repro campaign merge --out merged.db \\
        campaign.shard0-of-2.db campaign.shard1-of-2.db
    python -m repro campaign --db merged.db --quick --report

    # audit a store's integrity (and heal it: --quarantine demotes
    # corrupt cells so the next resume re-runs them); report over a
    # damaged or incomplete store without aborting:
    python -m repro campaign verify --db campaign.db --quarantine
    python -m repro campaign report --allow-partial --db campaign.db
"""

from __future__ import annotations

import argparse
import sys


def _campaign_merge_main(argv: list) -> int:
    """The ``campaign merge`` subcommand: fold shard stores into one."""
    from .core.errors import ConfigurationError
    from .experiments.campaign import merge_campaign_stores

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign merge",
        description=(
            "Fold K shard stores (produced by 'campaign shard "
            "--index i --of k', one store per host) into a single "
            "store whose report is byte-identical to an uninterrupted "
            "single-host run of the same grid.  The merge validates "
            "before copying a row: every input must carry shard "
            "metadata, all inputs must share one base_seed and one "
            "shard count, and the shard indices must cover exactly "
            "{0..k-1} — mismatched base_seeds, overlapping shards, "
            "and missing shards are all rejected loudly."
        ),
        epilog=(
            "example: python -m repro campaign merge --out merged.db "
            "campaign.shard0-of-2.db campaign.shard1-of-2.db"
        ),
    )
    parser.add_argument("shards", nargs="+", metavar="SHARD_DB",
                        help="the K shard stores to fold (order is "
                             "irrelevant; each store knows its own "
                             "shard index)")
    parser.add_argument("--out", required=True,
                        help="path for the merged store (must not "
                             "already exist unless --force)")
    parser.add_argument("--force", action="store_true",
                        help="replace an existing --out store (its WAL "
                             "sidecars included) instead of refusing")
    args = parser.parse_args(argv)
    try:
        summary = merge_campaign_stores(
            args.out, args.shards, force=args.force
        )
    except ConfigurationError as exc:
        print(f"merge rejected: {exc}", file=sys.stderr)
        return 2
    print(
        f"merged {summary['shards']} shard store(s) -> "
        f"{summary['path']} ({summary['cells']} cells, "
        f"base_seed {summary['base_seed']}); report it with: "
        f"python -m repro campaign --db {summary['path']} --report "
        "(plus the grid flags the shards ran with)"
    )
    return 0


def _campaign_verify_main(argv: list) -> int:
    """The ``campaign verify`` subcommand: audit (and heal) a store."""
    from .core.errors import ConfigurationError
    from .experiments.verify import format_findings, verify_campaign_store

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign verify",
        description=(
            "Audit one campaign store: PRAGMA integrity_check, schema "
            "and metadata validation, per-cell identity re-derivation "
            "(each row's coordinate tag and seed recomputed from its "
            "stored params must match exactly), payload parseability, "
            "and round_summaries hygiene (orphaned or stale rows).  "
            "With --quarantine, content-corrupt cells are demoted to "
            "failed (attempts reset, rounds cleared) so the next "
            "resume re-runs them, identity-corrupt cells are deleted, "
            "and bad rounds are removed — after which resume + report "
            "converges back to the clean reference bytes.  Exit 0 when "
            "the store is clean, 1 when findings were reported.  See "
            "docs/failure-modes.md for the finding -> action table."
        ),
        epilog=(
            "example: python -m repro campaign verify --db campaign.db "
            "--quarantine && python -m repro campaign --db campaign.db "
            "--quick"
        ),
    )
    parser.add_argument("--db", required=True,
                        help="the campaign store to audit")
    parser.add_argument("--quarantine", action="store_true",
                        help="demote/remove corrupt rows so the next "
                             "resume repairs the campaign (default: "
                             "report only, write nothing)")
    args = parser.parse_args(argv)
    try:
        summary = verify_campaign_store(
            args.db, quarantine=args.quarantine
        )
    except ConfigurationError as exc:
        print(f"verify rejected: {exc}", file=sys.stderr)
        return 2
    print(format_findings(summary))
    return 0 if summary["ok"] else 1


def _campaign_main(argv: list) -> int:
    """The ``campaign`` subcommand: launch/resume/shard/merge/report."""
    from .experiments.campaign import CampaignRunner
    from .experiments.churn import churn_sweep_cell, run_churn_campaign
    from .experiments.harness import consensus_sweep_cell
    from .experiments.matrix import run_campaign_matrix

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=(
            "Run a consensus campaign as a resumable, "
            "sqlite-checkpointed grid. --family e18 (default) sweeps "
            "the (n x detector x loss_rate x seed) matrix; --family "
            "e19 sweeps the churn grid (n x detector x loss_rate x "
            "churn_rate x topology x seed) over dynamic membership. "
            "Every finished cell is checkpointed into the sqlite "
            "store, so re-running the same command resumes an "
            "interrupted grid; completed cells are read back, not "
            "re-simulated, and the merged outcomes are byte-identical "
            "to an uninterrupted run.  Every configuration dispatches "
            "through one persistent worker-pool loop "
            "(CampaignDispatcher); 'campaign shard --index i --of k' "
            "runs one host's deterministic share of the grid and "
            "'campaign merge' folds the shard stores back together "
            "(see docs/campaigns.md)."
        ),
        epilog=(
            "examples: python -m repro campaign --db campaign.db --quick"
            "  |  python -m repro campaign --family e19 --db churn.db "
            "--quick"
            "  |  python -m repro campaign --db campaign.db --report"
            "  |  python -m repro campaign report --table --db campaign.db"
            "  |  python -m repro campaign shard --index 0 --of 2 --quick"
            "  |  python -m repro campaign merge --out merged.db "
            "campaign.shard0-of-2.db campaign.shard1-of-2.db"
        ),
    )
    parser.add_argument("--family", choices=("e18", "e19"), default="e18",
                        help="which campaign family to run: e18 = the "
                             "consensus matrix, e19 = the churn grid "
                             "(default e18)")
    parser.add_argument("--db", default=None,
                        help="sqlite checkpoint store (default "
                             "campaign.db; under shard mode, "
                             "campaign.shard<i>-of-<k>.db so two "
                             "shards never share a store by accident)")
    parser.add_argument("--index", type=int, default=None,
                        dest="shard_index",
                        help="shard mode: this host's shard index in "
                             "[0, K) (requires --of)")
    parser.add_argument("--of", type=int, default=None,
                        dest="shard_of", metavar="K",
                        help="shard mode: total number of shards the "
                             "grid is deterministically split across "
                             "(requires --index)")
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--n", type=int, nargs="+", default=None,
                        help="process counts to sweep (default 4 8)")
    parser.add_argument("--detector", nargs="+", default=None,
                        help="detector class names to sweep "
                             "(default 0-OAC maj-OAC)")
    parser.add_argument("--loss-rate", type=float, nargs="+",
                        default=None, help="(default 0.1 0.3)")
    parser.add_argument("--seeds", type=int, default=None,
                        help="replicate seeds per cell "
                             "(default 3, or 2 under --quick)")
    parser.add_argument("--values", type=int, default=None,
                        help="|V| (default 16 for e18, 8 for e19)")
    parser.add_argument("--churn-rate", type=float, nargs="+",
                        default=None,
                        help="e19 only: per-round leave probabilities to "
                             "sweep (default 0.0 0.15 0.3)")
    parser.add_argument("--topology", nargs="+", default=None,
                        choices=("clique", "ring"),
                        help="e19 only: topologies to sweep "
                             "(default clique ring)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the grid for smoke runs")
    parser.add_argument("--cell-timeout", "--timeout", type=float,
                        default=None, dest="cell_timeout",
                        help="per-cell wall-clock timeout in seconds; "
                             "overruns are checkpointed as timed_out. "
                             "Enforced at any --processes width by the "
                             "unified dispatcher pool")
    parser.add_argument("--processes", type=int, default=None,
                        help="dispatcher pool width (0/1 = a one-worker "
                             "pool; default: one per cpu), honored with "
                             "and without --cell-timeout")
    parser.add_argument("--in-process", action="store_true",
                        help="debug escape hatch: run cells serially "
                             "inside this process (no workers, timeouts "
                             "unenforced); reports stay byte-identical "
                             "to any pooled width")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="how many times a failed cell is re-run by "
                             "later resumes before it is left failed "
                             "permanently (default 2)")
    parser.add_argument("--max-cells", type=int, default=None,
                        help="run at most this many pending cells, then "
                             "stop (deterministic interruption; resume "
                             "later with the same command)")
    parser.add_argument("--report", action="store_true",
                        help="print the canonical JSON report of what "
                             "the store holds and exit without running "
                             "(also available as the 'report' "
                             "subcommand: campaign report [--table])")
    parser.add_argument("--table", action="store_true",
                        help="with report mode: render an aligned-column "
                             "table over the sqlite round_summaries "
                             "(per-cell status, attempts, rounds, mean "
                             "broadcast count) instead of JSON")
    parser.add_argument("--allow-partial", action="store_true",
                        help="with report mode: degrade gracefully over "
                             "an incomplete or damaged store — missing "
                             "and corrupt cells are skipped and listed "
                             "under a 'partial' key instead of aborting "
                             "(a complete store reports identical bytes "
                             "either way)")
    parser.add_argument("--stall-timeout", type=float, default=None,
                        help="arm the dispatcher's stall watchdog: a "
                             "busy worker silent for this many seconds "
                             "(no heartbeat) is killed and replaced and "
                             "its cell checkpointed failed — retryable "
                             "on resume — even without --cell-timeout")
    if argv and argv[0] == "merge":
        return _campaign_merge_main(argv[1:])
    if argv and argv[0] == "verify":
        return _campaign_verify_main(argv[1:])
    shard_word = bool(argv) and argv[0] == "shard"
    if shard_word:
        argv = argv[1:]
    if argv and argv[0] == "report":
        argv = ["--report"] + argv[1:]
    args = parser.parse_args(argv)
    if args.table and not args.report:
        parser.error("--table is a report view; use 'campaign report "
                     "--table' (or add --report)")
    if args.allow_partial and not args.report:
        parser.error("--allow-partial is a report view; use 'campaign "
                     "report --allow-partial' (or add --report)")
    if (args.shard_index is None) != (args.shard_of is None):
        parser.error("--index and --of go together: a shard is one "
                     "host's slice of a K-way split")
    if shard_word and args.shard_of is None:
        parser.error("'campaign shard' needs --index i --of k")
    sharded = args.shard_of is not None
    shard_index = args.shard_index if sharded else 0
    shard_count = args.shard_of if sharded else 1
    if shard_count < 1 or not 0 <= shard_index < shard_count:
        parser.error(f"--index must be in [0, --of) and --of >= 1; "
                     f"got --index {shard_index} --of {shard_count}")
    if args.db is None:
        args.db = (f"campaign.shard{shard_index}-of-{shard_count}.db"
                   if sharded else "campaign.db")
    e19 = args.family == "e19"
    if not e19:
        explicit = [name for name, value in
                    (("--churn-rate", args.churn_rate),
                     ("--topology", args.topology)) if value is not None]
        if explicit:
            parser.error(
                f"{', '.join(explicit)} only applies to --family e19"
            )

    if args.quick:
        explicit = [name for name, value in
                    (("--n", args.n), ("--detector", args.detector),
                     ("--loss-rate", args.loss_rate),
                     ("--churn-rate", args.churn_rate),
                     ("--topology", args.topology)) if value is not None]
        if explicit:
            parser.error(
                f"--quick fixes the grid; drop {', '.join(explicit)} "
                "or drop --quick"
            )
        ns = [4] if e19 else [3, 4]
        detectors = ["0-OAC"]
        loss_rates = [0.1] if e19 else [0.1, 0.3]
        churn_rates = [0.0, 0.25]
        topologies = ["clique", "ring"]
        # An explicit --seeds is honored even under --quick (it only
        # shrinks/extends replicates, never the swept grid shape).
        seeds = list(range(args.seeds if args.seeds is not None else 2))
    else:
        ns = args.n if args.n is not None else ([4, 6] if e19 else [4, 8])
        detectors = (args.detector if args.detector is not None
                     else ["0-OAC", "maj-OAC"])
        loss_rates = (args.loss_rate if args.loss_rate is not None
                      else [0.1, 0.3])
        churn_rates = (args.churn_rate if args.churn_rate is not None
                       else [0.0, 0.15, 0.3])
        topologies = (args.topology if args.topology is not None
                      else ["clique", "ring"])
        seeds = list(range(args.seeds if args.seeds is not None
                           else (2 if e19 else 3)))
    values = args.values if args.values is not None else (8 if e19 else 16)

    if args.report:
        # Report mode never dispatches work, so the runner's pool is
        # never spawned; in_process makes that explicit and free.
        runner = CampaignRunner(
            churn_sweep_cell if e19 else consensus_sweep_cell,
            db_path=args.db,
            base_seed=args.base_seed, processes=args.processes,
            cell_timeout=args.cell_timeout, max_retries=args.max_retries,
            extra_params={"sqlite_db": args.db}, in_process=True,
            shard_index=shard_index, shard_count=shard_count,
        )
        axes = dict(
            n=ns, detector=detectors, loss_rate=loss_rates, trial=seeds,
            values=[values], record_policy=["summary"],
        )
        if e19:
            axes["churn_rate"] = churn_rates
            axes["topology"] = topologies
        if args.table:
            print(runner.report_table(**axes))
        else:
            print(runner.report(
                allow_partial=args.allow_partial, **axes
            ))
        return 0

    if e19:
        tables = run_churn_campaign(
            db_path=args.db, ns=ns, detectors=detectors,
            loss_rates=loss_rates, churn_rates=churn_rates,
            topologies=topologies, seeds=seeds,
            base_seed=args.base_seed, values=values,
            cell_timeout=args.cell_timeout, processes=args.processes,
            max_retries=args.max_retries, max_cells=args.max_cells,
            in_process=args.in_process,
            shard_index=shard_index, shard_count=shard_count,
            stall_timeout=args.stall_timeout,
        )
    else:
        tables = run_campaign_matrix(
            db_path=args.db, ns=ns, detectors=detectors,
            loss_rates=loss_rates, seeds=seeds, base_seed=args.base_seed,
            values=values, cell_timeout=args.cell_timeout,
            processes=args.processes, max_retries=args.max_retries,
            max_cells=args.max_cells, in_process=args.in_process,
            shard_index=shard_index, shard_count=shard_count,
            stall_timeout=args.stall_timeout,
        )
    for table in tables:
        print(table.render())
    return 0


def main(argv: list) -> int:
    from .experiments import REGISTRY, render_all

    if argv and argv[0] == "campaign":
        return _campaign_main(argv[1:])
    if not argv:
        print("repro — Consensus and Collision Detectors (PODC 2005)")
        print("\nAvailable experiments:")
        for experiment in REGISTRY.all():
            print(f"  {experiment.exp_id:<4} {experiment.title}")
            print(f"       ({experiment.paper_ref})")
        print("\nRun with: python -m repro all | <experiment ids>")
        print("Campaigns: python -m repro campaign --db campaign.db "
              "[--quick|--report] (resumable; see campaign --help)")
        print("Sharding:  python -m repro campaign shard --index i "
              "--of k | campaign merge --out merged.db <shard dbs> "
              "(docs/campaigns.md)")
        return 0
    if argv == ["all"]:
        print(render_all())
        return 0
    unknown = [a for a in argv if a not in REGISTRY.ids()]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"known: {', '.join(REGISTRY.ids())}", file=sys.stderr)
        return 2
    for exp_id in argv:
        print(REGISTRY.get(exp_id).render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
