"""Kumar-style cluster voting (Section 1.4, citing [44]).

Kumar's proposal: sub-divide the network into non-overlapping clusters,
run consensus inside each cluster to decide what the cluster reports to
the source, and forward only the agreed reports — "reducing the number
of messages traveling through the network while ensuring that all
devices still have a 'vote'".

We model a field of sensors at integer hop distances from a source,
partition them into single-hop cliques, run Algorithm 2 per clique on
the report value, and account transport cost the way a multi-hop network
does: local (intra-clique) messages cost one hop; reports cost their
clique's hop distance to the source.  The naive comparator ships every
raw reading all the way in.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from ..algorithms.alg2 import algorithm_2
from ..core.consensus import evaluate
from ..core.errors import ConfigurationError
from ..core.execution import run_consensus
from ..core.types import Value


@dataclasses.dataclass
class ClusterReport:
    """One cluster's consensus outcome."""

    members: Tuple[int, ...]
    proposals: Dict[int, Value]
    decision: Value
    rounds: int
    local_messages: int
    agreement_ok: bool
    every_member_voted: bool


@dataclasses.dataclass
class ClusteredNetwork:
    """A field of ``n`` sensors grouped into cliques of ``cluster_size``,
    with cluster ``c`` sitting ``base_distance + c`` hops from the source."""

    n: int
    cluster_size: int
    base_distance: int = 5

    def __post_init__(self) -> None:
        if self.n < 1 or self.cluster_size < 1:
            raise ConfigurationError("n and cluster_size must be >= 1")

    def clusters(self) -> List[Tuple[int, ...]]:
        return [
            tuple(range(start, min(start + self.cluster_size, self.n)))
            for start in range(0, self.n, self.cluster_size)
        ]

    def distance(self, cluster_index: int) -> int:
        return self.base_distance + cluster_index

    # ------------------------------------------------------------------
    def naive_transport_cost(self) -> int:
        """Every device ships its raw reading to the source."""
        return sum(
            self.distance(c) * len(members)
            for c, members in enumerate(self.clusters())
        )

    def clustered_transport_cost(
        self, reports: Sequence[ClusterReport]
    ) -> int:
        """Local consensus messages (1 hop each) + one report per cluster."""
        local = sum(report.local_messages for report in reports)
        uplink = sum(
            self.distance(c) for c in range(len(reports))
        )
        return local + uplink


def cluster_vote(
    network: ClusteredNetwork,
    readings: Dict[int, Value],
    domain: Sequence[Value],
    loss_rate: float = 0.3,
    cst: int = 3,
    seed: int = 0,
    max_rounds: int = 300,
) -> List[ClusterReport]:
    """Run consensus inside every cluster and collect the reports."""
    from ..experiments.scenarios import zero_oac_environment

    if set(readings) != set(range(network.n)):
        raise ConfigurationError("readings must cover every sensor")
    algorithm = algorithm_2(domain)
    reports: List[ClusterReport] = []
    for c, members in enumerate(network.clusters()):
        proposals = {i: readings[i] for i in members}
        if len(members) == 1:
            reports.append(ClusterReport(
                members=members,
                proposals=proposals,
                decision=proposals[members[0]],
                rounds=0,
                local_messages=0,
                agreement_ok=True,
                every_member_voted=True,
            ))
            continue
        env = zero_oac_environment(
            len(members), cst=cst, loss_rate=loss_rate,
            seed=seed * 31 + c, indices=members,
        )
        result = run_consensus(
            env, algorithm, proposals, max_rounds=max_rounds
        )
        report = evaluate(result)
        local_messages = sum(
            rec.broadcast_count for rec in result.records
        )
        decided = set(result.decided_values().values())
        reports.append(ClusterReport(
            members=members,
            proposals=proposals,
            decision=next(iter(decided)) if decided else None,
            rounds=result.rounds,
            local_messages=local_messages,
            agreement_ok=report.agreement and len(decided) == 1,
            every_member_voted=report.termination,
        ))
    return reports
