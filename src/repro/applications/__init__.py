"""The paper's motivating applications (Section 1.4), built on the library.

Section 1.4 motivates single-hop consensus with concrete sensor-network
uses; this package implements two of them end to end, as the downstream
code a practitioner would write on top of the consensus layer:

* :mod:`repro.applications.aggregation` — spanning-tree data aggregation
  where the children of each parent run consensus to agree on the value
  passed up, versus the naive lossy push ("some values might get lost,
  weakening the guarantees ... a consensus protocol can be run among the
  children of each parent");
* :mod:`repro.applications.clustering` — Kumar's scheme [44]: partition
  the network into clusters, run consensus inside each cluster to decide
  what the cluster reports, reducing message traffic while keeping every
  device's vote.
"""

from .aggregation import (
    AggregationOutcome,
    AggregationTree,
    aggregate_with_consensus,
    aggregate_naive,
)
from .clustering import (
    ClusterReport,
    ClusteredNetwork,
    cluster_vote,
)

__all__ = [
    "AggregationTree",
    "AggregationOutcome",
    "aggregate_with_consensus",
    "aggregate_naive",
    "ClusteredNetwork",
    "ClusterReport",
    "cluster_vote",
]
