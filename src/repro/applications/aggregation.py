"""Consensus-hardened spanning-tree aggregation (Section 1.4).

The paper's motivation: aggregation systems pass values up a spanning
tree; unreliable links silently drop contributions, "weakening the
guarantees that can be made about the final output", and the fix is to
run consensus among the children of each parent on the value to be
disseminated.

We implement both pipelines over the same lossy single-hop cliques and
measure the difference:

* **naive**: each child pushes its subtree aggregate to the parent once;
  a lost message silently drops that subtree from the result;
* **consensus-hardened**: each sibling group (a single-hop clique) runs
  max-consensus — Algorithm 2 with the prepare rule merging by ``max``
  instead of adopting the minimum — so the group *agrees* on the group
  aggregate before it moves up, and nothing is silently lost.

Max-merge preserves Algorithm 2's guarantees: agreement and termination
never depended on the prepare-phase choice function, and the maximum of
a set of initial values is itself an initial value, so strong validity
survives.  (Termination may need extra cycles for the maximum to reach
everyone through single-broadcaster rounds — the harness accounts for
that.)
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..algorithms.alg2 import Alg2Process
from ..algorithms.encoding import BinaryEncoding
from ..core.algorithm import ConsensusAlgorithm
from ..core.consensus import evaluate
from ..core.errors import ConfigurationError
from ..core.execution import run_consensus
from ..core.multiset import Multiset
from ..core.types import COLLISION, CollisionAdvice, ContentionAdvice, Value


class MaxConsensusProcess(Alg2Process):
    """Algorithm 2 with a max-merge prepare rule.

    Bit strings of a :class:`BinaryEncoding` are order-preserving, so
    ``max`` over estimates equals ``max`` over the encoded values.
    """

    def transition(
        self,
        received: Multiset,
        cd_advice: CollisionAdvice,
        cm_advice: ContentionAdvice,
    ) -> None:
        if self.phase == "prepare":
            estimates = {
                m for m in received.support() if isinstance(m, str)
            }
            if cd_advice is not COLLISION and estimates:
                self.estimate = max(estimates | {self.estimate})
            self.decide_flag = True
            self.bit = 1
            self.phase = "propose"
            return
        super().transition(received, cd_advice, cm_advice)


def max_consensus(values: Iterable[Value]) -> ConsensusAlgorithm:
    """Anonymous consensus that converges on the group maximum."""
    encoding = BinaryEncoding(values)
    return ConsensusAlgorithm.anonymous(
        lambda v: MaxConsensusProcess(v, encoding), name="max-consensus"
    )


# ----------------------------------------------------------------------
# The aggregation tree
# ----------------------------------------------------------------------
@dataclasses.dataclass
class AggregationTree:
    """A fan-out ``branching`` spanning tree over ``leaf_count`` sensors.

    Leaves hold readings; each internal node aggregates (``max``) its
    children.  ``groups()`` yields the sibling groups bottom-up — each is
    a single-hop clique in the deployment the paper describes.
    """

    leaf_count: int
    branching: int = 4

    def __post_init__(self) -> None:
        if self.leaf_count < 1:
            raise ConfigurationError("need at least one leaf")
        if self.branching < 2:
            raise ConfigurationError("branching must be >= 2")

    def levels(self) -> List[int]:
        """Node counts per level, leaves first."""
        counts = [self.leaf_count]
        while counts[-1] > 1:
            counts.append(
                (counts[-1] + self.branching - 1) // self.branching
            )
        return counts

    def groups_at(self, level_size: int) -> List[Tuple[int, ...]]:
        """Sibling index groups for one level of ``level_size`` nodes."""
        return [
            tuple(range(start, min(start + self.branching, level_size)))
            for start in range(0, level_size, self.branching)
        ]


@dataclasses.dataclass
class AggregationOutcome:
    """One aggregation run: what reached the root, and what should have."""

    result: Value
    ground_truth: Value
    consensus_groups: int
    safety_ok: bool

    @property
    def exact(self) -> bool:
        return self.result == self.ground_truth


# ----------------------------------------------------------------------
# The two pipelines
# ----------------------------------------------------------------------
def aggregate_naive(
    readings: Sequence[int],
    loss_rate: float,
    branching: int = 4,
    seed: int = 0,
) -> AggregationOutcome:
    """Push-up aggregation with silent per-message loss.

    Each child's report to its parent is lost independently with
    ``loss_rate``; a parent aggregates whatever arrived (its own reading
    counts at the leaf level only).  Models the paper's "due to
    unreliable communication some values might get lost".
    """
    rng = random.Random(seed)
    tree = AggregationTree(len(readings), branching)
    level_values: List[Optional[int]] = list(readings)
    while len(level_values) > 1:
        parents: List[Optional[int]] = []
        for group in tree.groups_at(len(level_values)):
            delivered = [
                level_values[i]
                for i in group
                if level_values[i] is not None
                and rng.random() >= loss_rate
            ]
            parents.append(max(delivered) if delivered else None)
        level_values = parents
    result = level_values[0]
    return AggregationOutcome(
        result=result,
        ground_truth=max(readings),
        consensus_groups=0,
        safety_ok=True,
    )


def aggregate_with_consensus(
    readings: Sequence[int],
    domain: Sequence[int],
    loss_rate: float,
    branching: int = 4,
    seed: int = 0,
    cst: int = 4,
    max_rounds: int = 400,
) -> AggregationOutcome:
    """Aggregation with per-group max-consensus at every tree level.

    Each sibling group runs max-consensus over the reading ``domain`` on
    a lossy-but-eventually-collision-free clique; the agreed value is the
    group's contribution to the next level.  Consensus guarantees both
    that nothing is silently dropped (every group member's reading is a
    proposal) and that all group members agree on what went up.
    """
    if any(r not in set(domain) for r in readings):
        raise ConfigurationError("readings must come from the domain")
    from ..experiments.scenarios import zero_oac_environment

    tree = AggregationTree(len(readings), branching)
    algorithm = max_consensus(domain)
    level_values: List[int] = list(readings)
    groups_run = 0
    safety_ok = True
    trial = 0
    while len(level_values) > 1:
        parents: List[int] = []
        for group in tree.groups_at(len(level_values)):
            proposals = {i: level_values[i] for i in group}
            if len(group) == 1:
                parents.append(level_values[group[0]])
                continue
            env = zero_oac_environment(
                len(group), cst=cst,
                loss_rate=loss_rate,
                seed=seed * 7919 + trial,
                indices=group,
            )
            trial += 1
            result = run_consensus(
                env, algorithm, proposals, max_rounds=max_rounds
            )
            report = evaluate(result)
            safety_ok = safety_ok and report.safe and report.termination
            groups_run += 1
            decided = set(result.decided_values().values())
            parents.append(max(decided) if decided else max(
                proposals.values()
            ))
        level_values = parents
    return AggregationOutcome(
        result=level_values[0],
        ground_truth=max(readings),
        consensus_groups=groups_run,
        safety_ok=safety_ok,
    )
