"""Churn adversaries: dynamic membership next to the crash schedules.

The paper's model fixes the process set for the whole execution; the
only membership change it admits is a permanent crash.  Dynamic
peer-to-peer agreement (Augustine et al., "Distributed Agreement in
Dynamic Peer-to-Peer Networks") studies the opposite regime: an
adversary *churns* the membership — processes leave, fresh processes
join, and departed processes may come back — while the algorithm must
still drive the surviving majority to agreement.  This module supplies
that adversary as a third resolver of nondeterminism beside
:mod:`repro.adversary.loss` and :mod:`repro.adversary.crash`.

The churn-event model
---------------------

Each round, *before* crashes and loss resolution, the engine asks the
environment's churn adversary for this round's
:class:`ChurnEvent`\\ s.  An event names a ``pid`` and a ``kind``:

* ``"leave"`` — the process departs the system at the end of this
  round.  ``after_send=True`` (the default) lets its round-``r``
  broadcast go out first, mirroring the crash adversary's two legal
  timings; ``after_send=False`` silences it from the start of the
  round.  A departed process drops out of the sender and receiver sets
  exactly like a crashed one, but — unlike a crash — departure is not
  absorbing: the same pid may later rejoin.
* ``"join"`` / ``"rejoin"`` — the pid (re-)enters the system at the
  *start* of this round with **fresh state**: the engine instantiates a
  brand-new process from the execution's process factory, so a
  rejoining process has no memory of its pre-leave rounds (a decided
  process that churns out and back has forgotten its decision — the
  adversarial heart of the model).  The two kinds are synonymous to the
  engine; schedules use ``"join"`` for pids entering for the first time
  (``initially_absent``) and ``"rejoin"`` for returns, purely for
  legibility.

Events naming pids in the wrong state are ignored, mirroring the crash
adversary's conventions: leaving an absent/crashed pid, or joining a
present one, is a no-op.  Crashes are permanent even here — a crashed
pid never rejoins.

Determinism contract: an adversary must derive its events only from its
construction parameters, its seeded RNG, and the arguments of
:meth:`ChurnAdversary.events` — and must iterate membership in sorted
order when drawing randomness — so the same seed and schedule replay
byte-identical executions.  The ``departed`` mapping is the engine's
own state and must not be mutated.
"""

from __future__ import annotations

import dataclasses
import random
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Sequence,
    Tuple,
)

from ..core.errors import ConfigurationError
from ..core.types import ProcessId

#: The legal churn-event kinds.
CHURN_KINDS: Tuple[str, ...] = ("leave", "join", "rejoin")


@dataclasses.dataclass(frozen=True)
class ChurnEvent:
    """One membership change: who, which direction, and send timing.

    ``after_send`` is only meaningful for ``kind="leave"`` (does the
    final round's broadcast go out before the departure?); joins always
    take effect at the start of the round.
    """

    pid: ProcessId
    kind: str = "leave"
    after_send: bool = True

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ConfigurationError(
                f"churn event kind must be one of {CHURN_KINDS}, "
                f"got {self.kind!r}"
            )


class ChurnAdversary:
    """Chooses which processes leave/join the system in each round.

    ``events`` receives the current live membership, the ``departed``
    mapping (pid -> round it left; ``0`` for initially-absent pids), and
    the set of live pids that have already decided — the last lets
    adversarial schedules target exactly the informed processes.
    """

    def events(
        self,
        round_index: int,
        live: Sequence[ProcessId],
        departed: Mapping[ProcessId, int],
        decided: AbstractSet[ProcessId],
    ) -> Tuple[ChurnEvent, ...]:
        """Churn events for ``round_index``.  Default: none."""
        return ()

    def initially_absent(
        self, indices: Sequence[ProcessId]
    ) -> FrozenSet[ProcessId]:
        """Pids absent at round 1 (they may ``join`` later).  Default: none."""
        return frozenset()

    def reset(self) -> None:
        """Forget internal state before a fresh execution (default: none)."""

    @property
    def last_churn_round(self):
        """Upper bound on churn activity, when known (else ``None``).

        Termination is only meaningful "after churn ceases" (the dynamic
        analogue of the crash adversary's deadline); experiments anchor
        measurements here.
        """
        return None


class NoChurn(ChurnAdversary):
    """The static-membership adversary (the paper's own model)."""

    @property
    def last_churn_round(self) -> int:
        return 0


class ScheduledChurn(ChurnAdversary):
    """Churn at explicitly scripted (round, event) points.

    ``schedule`` maps a round index to the events occurring in that
    round; ``initially_absent`` names pids missing from round 1 until a
    scheduled join.  Events naming pids in the wrong state (leaving an
    absent pid, joining a present one) are filtered here — and ignored
    again by the engine — mirroring :class:`ScheduledCrashes`.
    """

    def __init__(
        self,
        schedule: Mapping[int, Iterable[ChurnEvent]],
        initially_absent: Iterable[ProcessId] = (),
    ) -> None:
        self._schedule: Dict[int, Tuple[ChurnEvent, ...]] = {}
        for round_index, events in schedule.items():
            if round_index < 1:
                raise ConfigurationError("churn rounds are 1-based")
            self._schedule[round_index] = tuple(events)
        self._initially_absent = frozenset(initially_absent)

    @classmethod
    def at(
        cls,
        leaves: Mapping[int, Iterable[ProcessId]] = (),
        joins: Mapping[int, Iterable[ProcessId]] = (),
        after_send: bool = True,
        initially_absent: Iterable[ProcessId] = (),
    ) -> "ScheduledChurn":
        """Shorthand: ``{round: [pids]}`` maps with a uniform send timing."""
        schedule: Dict[int, list] = {}
        for r, pids in dict(leaves).items():
            schedule.setdefault(r, []).extend(
                ChurnEvent(pid, "leave", after_send=after_send)
                for pid in pids
            )
        for r, pids in dict(joins).items():
            schedule.setdefault(r, []).extend(
                ChurnEvent(pid, "rejoin") for pid in pids
            )
        return cls(schedule, initially_absent=initially_absent)

    def events(
        self,
        round_index: int,
        live: Sequence[ProcessId],
        departed: Mapping[ProcessId, int],
        decided: AbstractSet[ProcessId],
    ) -> Tuple[ChurnEvent, ...]:
        live_set = set(live)
        out = []
        for ev in self._schedule.get(round_index, ()):
            if ev.kind == "leave":
                if ev.pid in live_set:
                    out.append(ev)
            elif ev.pid in departed:
                out.append(ev)
        return tuple(out)

    def initially_absent(
        self, indices: Sequence[ProcessId]
    ) -> FrozenSet[ProcessId]:
        return self._initially_absent

    @property
    def last_churn_round(self) -> int:
        return max(self._schedule, default=0)


class SeededChurn(ChurnAdversary):
    """Poisson-style membership churn: independent per-round coin flips.

    Each round up to ``deadline``, every live process leaves with
    probability ``leave_rate`` and every departed process rejoins with
    probability ``join_rate`` — the discrete-time analogue of the
    Poisson churn rates the dynamic-network literature assumes.  At
    least ``min_live`` processes are always spared from leaving, so the
    system never empties out and agreement stays non-vacuous.  Pids are
    visited in sorted order so the RNG stream — and therefore the whole
    execution — is a deterministic function of the seed.
    """

    def __init__(
        self,
        leave_rate: float,
        join_rate: float = 0.5,
        seed: int = 0,
        deadline: int = 0,
        min_live: int = 2,
        after_send: bool = True,
        initially_absent: Iterable[ProcessId] = (),
    ) -> None:
        for name, rate in (("leave_rate", leave_rate),
                           ("join_rate", join_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0,1]")
        if deadline < 0:
            raise ConfigurationError("deadline must be >= 0")
        if min_live < 1:
            raise ConfigurationError("min_live must be >= 1")
        self.leave_rate = leave_rate
        self.join_rate = join_rate
        self.seed = seed
        self.deadline = deadline
        self.min_live = min_live
        self.after_send = after_send
        self._initially_absent = frozenset(initially_absent)
        self._rng = random.Random(seed)

    def events(
        self,
        round_index: int,
        live: Sequence[ProcessId],
        departed: Mapping[ProcessId, int],
        decided: AbstractSet[ProcessId],
    ) -> Tuple[ChurnEvent, ...]:
        if round_index > self.deadline:
            return ()
        rng = self._rng
        events = []
        leaves = 0
        for pid in sorted(live):
            if len(live) - leaves <= self.min_live:
                break
            if rng.random() < self.leave_rate:
                events.append(
                    ChurnEvent(pid, "leave", after_send=self.after_send)
                )
                leaves += 1
        for pid in sorted(departed):
            if rng.random() < self.join_rate:
                kind = "join" if departed[pid] == 0 else "rejoin"
                events.append(ChurnEvent(pid, kind))
        return tuple(events)

    def initially_absent(
        self, indices: Sequence[ProcessId]
    ) -> FrozenSet[ProcessId]:
        return self._initially_absent

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    @property
    def last_churn_round(self) -> int:
        return self.deadline


class BurstChurn(ChurnAdversary):
    """Periodic burst churn: waves of departures with mass rejoins.

    Every ``period`` rounds (up to ``deadline``), every currently
    departed process rejoins and then a random ``fraction`` of the live
    membership leaves — the flash-crowd/correlated-failure shape that a
    smooth per-round rate never produces.  At least ``min_live``
    processes always survive each burst.
    """

    def __init__(
        self,
        period: int,
        fraction: float,
        seed: int = 0,
        deadline: int = 0,
        min_live: int = 2,
        after_send: bool = True,
    ) -> None:
        if period < 1:
            raise ConfigurationError("period must be >= 1")
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must be in [0,1]")
        if deadline < 0:
            raise ConfigurationError("deadline must be >= 0")
        if min_live < 1:
            raise ConfigurationError("min_live must be >= 1")
        self.period = period
        self.fraction = fraction
        self.seed = seed
        self.deadline = deadline
        self.min_live = min_live
        self.after_send = after_send
        self._rng = random.Random(seed)

    def events(
        self,
        round_index: int,
        live: Sequence[ProcessId],
        departed: Mapping[ProcessId, int],
        decided: AbstractSet[ProcessId],
    ) -> Tuple[ChurnEvent, ...]:
        if round_index > self.deadline or round_index % self.period:
            return ()
        events = [
            ChurnEvent(pid, "join" if departed[pid] == 0 else "rejoin")
            for pid in sorted(departed)
        ]
        # The whole membership is present after the rejoins above; the
        # burst samples its departures from that reunified population.
        population = sorted(set(live) | set(departed))
        quota = min(
            int(self.fraction * len(population)),
            max(0, len(population) - self.min_live),
        )
        if quota:
            events.extend(
                ChurnEvent(pid, "leave", after_send=self.after_send)
                for pid in self._rng.sample(population, quota)
            )
        return tuple(events)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    @property
    def last_churn_round(self) -> int:
        return self.deadline


class InformedMinorityChurn(ChurnAdversary):
    """The adversarial schedule: churn out exactly the informed minority.

    While the processes that have decided are still a minority of the
    live membership, up to ``k`` of them (lowest pids first) are evicted
    per round — and each returns ``rejoin_delay`` rounds later with
    fresh state, its decision forgotten.  This is the worst case the
    dynamic-agreement model warns about: progress is repeatedly erased
    at the frontier where it was just made.  Churn ceases after
    ``deadline`` so termination stays measurable.
    """

    def __init__(
        self,
        k: int = 1,
        deadline: int = 0,
        rejoin_delay: int = 1,
        after_send: bool = True,
    ) -> None:
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        if deadline < 0:
            raise ConfigurationError("deadline must be >= 0")
        if rejoin_delay < 1:
            raise ConfigurationError("rejoin_delay must be >= 1")
        self.k = k
        self.deadline = deadline
        self.rejoin_delay = rejoin_delay
        self.after_send = after_send

    def events(
        self,
        round_index: int,
        live: Sequence[ProcessId],
        departed: Mapping[ProcessId, int],
        decided: AbstractSet[ProcessId],
    ) -> Tuple[ChurnEvent, ...]:
        events = [
            ChurnEvent(pid, "rejoin")
            for pid in sorted(departed)
            if departed[pid] > 0
            and round_index - departed[pid] >= self.rejoin_delay
        ]
        if (round_index <= self.deadline
                and decided and 2 * len(decided) <= len(live)):
            events.extend(
                ChurnEvent(pid, "leave", after_send=self.after_send)
                for pid in sorted(decided)[: self.k]
            )
        return tuple(events)

    @property
    def last_churn_round(self) -> int:
        # Evictions stop at the deadline; the trailing rejoins land
        # within one delay of it.
        return self.deadline + self.rejoin_delay
